// dpbench_client — command-line client for dpbench_serve.
//
// Sends one query (default), a stats request (--stats), an audit request
// (--audit), or a stop request (--stop) to a running daemon and prints
// the reply. --audit dumps the daemon's reconstructed spend history: the
// snapshot fold point plus every intact charge-journal record (seq,
// outcome, user, dataset, epsilon, ordinal, spent-after), optionally
// filtered by --user/--dataset.
//
// Exit codes (scripts and the CI smoke job branch on them):
//   0  query answered / stats printed / audit printed / stop acknowledged
//   1  transport failure, protocol error, or invalid request
//   3  query refused: budget exhausted (the documented admission status)
//
// Examples:
//   dpbench_client --port=$(cat port.txt) --user=alice --dataset=ADULT \
//                  --algorithm=IDENTITY --epsilon=0.1 --range=0:1023
//   dpbench_client --port=$(cat port.txt) --stats
//   dpbench_client --port=$(cat port.txt) --audit --user=alice
//   dpbench_client --port=$(cat port.txt) --stop
#include <cstring>
#include <iostream>

#include "src/engine/net.h"
#include "src/engine/serve.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

constexpr int kConnectTimeoutMs = 5000;
constexpr int kReplyTimeoutMs = 60000;

void PrintUsage() {
  std::cout
      << "usage: dpbench_client --port=N [flags]\n"
         "  --port=N           daemon port on 127.0.0.1 (required)\n"
         "  --user=ID          ledger user (default: default)\n"
         "  --dataset=NAME     dataset (default: ADULT)\n"
         "  --algorithm=NAME   algorithm (default: IDENTITY)\n"
         "  --epsilon=EPS      epsilon to spend (default 0.1; must be\n"
         "                     positive and finite)\n"
         "  --scale=N          dataset scale (default 100000)\n"
         "  --domain=N         per-dimension domain size (default 1024)\n"
         "  --range=LO:HI      1D query range, inclusive (repeatable)\n"
         "  --range2d=R0:C0:R1:C1  2D query rectangle (repeatable)\n"
         "  --stats            print server stats instead of querying\n"
         "  --audit            print the charge-journal spend history\n"
         "                     (--user/--dataset filter it)\n"
         "  --stop             stop the daemon instead of querying\n";
}

bool ParseRangeToken(const std::string& spec, char sep,
                     std::vector<uint64_t>* out, size_t expected) {
  out->clear();
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(sep, start);
    std::string tok = spec.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    uint64_t v = 0;
    if (!tools::grid_flags_internal::ParseU64(tok, &v)) return false;
    out->push_back(v);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out->size() == expected;
}

}  // namespace

int main(int argc, char** argv) {
  serve::QueryRequest query;
  query.user = "default";
  query.dataset = "ADULT";
  query.algorithm = "IDENTITY";
  uint64_t port = 0;
  bool port_given = false, stats = false, stop = false, audit = false;
  bool user_given = false, dataset_given = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--port="), &port) ||
          port == 0 || port > 65535) {
        std::cerr << "--port expects 1..65535\n";
        return 1;
      }
      port_given = true;
    } else if (arg.rfind("--user=", 0) == 0) {
      query.user = value("--user=");
      user_given = true;
    } else if (arg.rfind("--dataset=", 0) == 0) {
      query.dataset = value("--dataset=");
      dataset_given = true;
    } else if (arg.rfind("--algorithm=", 0) == 0) {
      query.algorithm = value("--algorithm=");
    } else if (arg.rfind("--epsilon=", 0) == 0) {
      double eps = 0.0;
      if (!tools::grid_flags_internal::ParseF64(value("--epsilon="), &eps) ||
          !ValidateEpsilon(eps).ok()) {
        std::cerr << "--epsilon expects a positive finite value, got '"
                  << value("--epsilon=") << "'\n";
        return 1;
      }
      query.epsilon = eps;
    } else if (arg.rfind("--scale=", 0) == 0) {
      uint64_t v = 0;
      if (!tools::grid_flags_internal::ParseU64(value("--scale="), &v) ||
          v == 0) {
        std::cerr << "--scale expects a positive integer\n";
        return 1;
      }
      query.scale = v;
    } else if (arg.rfind("--domain=", 0) == 0) {
      uint64_t v = 0;
      if (!tools::grid_flags_internal::ParseU64(value("--domain="), &v) ||
          v == 0) {
        std::cerr << "--domain expects a positive integer\n";
        return 1;
      }
      query.domain_size = v;
    } else if (arg.rfind("--range=", 0) == 0) {
      std::vector<uint64_t> parts;
      if (!ParseRangeToken(value("--range="), ':', &parts, 2)) {
        std::cerr << "--range expects LO:HI\n";
        return 1;
      }
      query.lo_row.push_back(parts[0]);
      query.hi_row.push_back(parts[1]);
    } else if (arg.rfind("--range2d=", 0) == 0) {
      std::vector<uint64_t> parts;
      if (!ParseRangeToken(value("--range2d="), ':', &parts, 4)) {
        std::cerr << "--range2d expects R0:C0:R1:C1\n";
        return 1;
      }
      query.lo_row.push_back(parts[0]);
      query.lo_col.push_back(parts[1]);
      query.hi_row.push_back(parts[2]);
      query.hi_col.push_back(parts[3]);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--stop") {
      stop = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }
  if (!port_given) {
    std::cerr << "--port=N is required\n";
    PrintUsage();
    return 1;
  }

  auto sock = net::Connect(static_cast<uint16_t>(port), kConnectTimeoutMs);
  if (!sock.ok()) {
    std::cerr << "cannot connect: " << sock.status().ToString() << "\n";
    return 1;
  }

  std::string request;
  if (stop) {
    request = serve::EncodeStop();
  } else if (stats) {
    request = serve::EncodeStatsRequest();
  } else if (audit) {
    serve::AuditRequest areq;
    if (user_given) areq.user = query.user;
    if (dataset_given) areq.dataset = query.dataset;
    request = serve::EncodeAuditRequest(areq);
  } else {
    if (query.lo_row.empty()) {
      // Default query: the whole 1D domain (total count).
      query.lo_row.push_back(0);
      query.hi_row.push_back(query.domain_size - 1);
    }
    request = serve::EncodeQuery(query);
  }
  if (Status st = sock->SendFrame(request); !st.ok()) {
    std::cerr << "send failed: " << st.ToString() << "\n";
    return 1;
  }
  auto frame = sock->RecvFrame(kReplyTimeoutMs);
  if (!frame.ok() || frame->timed_out) {
    std::cerr << "no reply from server\n";
    return 1;
  }

  if (stop) {
    std::cout << "stopped\n";
    return 0;
  }
  if (stats) {
    auto reply = serve::DecodeStatsReply(frame->bytes);
    if (!reply.ok()) {
      std::cerr << "bad stats reply: " << reply.status().ToString() << "\n";
      return 1;
    }
    std::cout << "requests=" << reply->requests
              << " admitted=" << reply->admitted
              << " refused_budget=" << reply->refused_budget
              << " refused_invalid=" << reply->refused_invalid
              << " internal_errors=" << reply->internal_errors
              << " plan_cache_hits=" << reply->plan_cache_hits
              << " plan_cache_misses=" << reply->plan_cache_misses
              << " plan_cache_evictions=" << reply->plan_cache_evictions
              << " data_cache_hits=" << reply->data_cache_hits
              << " data_cache_misses=" << reply->data_cache_misses
              << " data_cache_evictions=" << reply->data_cache_evictions
              << " connections=" << reply->connections
              << " journal_appends=" << reply->journal_appends
              << " journal_replayed=" << reply->journal_replayed
              << " plans_hydrated=" << reply->plans_hydrated << "\n";
    return 0;
  }
  if (audit) {
    auto reply = serve::DecodeAuditReply(frame->bytes);
    if (!reply.ok()) {
      std::cerr << "bad audit reply: " << reply.status().ToString() << "\n";
      return 1;
    }
    std::cout << "snapshot_seq=" << reply->snapshot_seq
              << " records=" << reply->records.size()
              << " dropped_tail_bytes=" << reply->dropped_tail_bytes << "\n";
    for (const JournalRecord& r : reply->records) {
      std::cout << "seq=" << r.seq << " outcome="
                << JournalOutcomeName(r.outcome) << " user=" << r.user
                << " dataset=" << r.dataset << " epsilon=" << r.epsilon
                << " ordinal=" << r.ordinal << " budget=" << r.budget
                << " spent_after=" << r.spent_after << "\n";
    }
    return 0;
  }

  auto reply = serve::DecodeReply(frame->bytes);
  if (!reply.ok()) {
    std::cerr << "bad reply: " << reply.status().ToString() << "\n";
    return 1;
  }
  std::cout << "status=" << serve::ReplyStatusName(reply->status)
            << " spent=" << reply->spent
            << " remaining=" << reply->remaining
            << " ledger_queries=" << reply->ledger_queries << "\n";
  if (reply->status == serve::ReplyStatus::kOk) {
    for (size_t i = 0; i < reply->answers.size(); ++i) {
      std::cout << "answer[" << i << "]=" << reply->answers[i] << "\n";
    }
    return 0;
  }
  std::cerr << reply->message << "\n";
  return reply->status == serve::ReplyStatus::kBudgetExhausted ? 3 : 1;
}
