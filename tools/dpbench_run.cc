// dpbench_run — the command-line front end to the benchmark runner.
//
// Runs an arbitrary {algorithms x datasets x scales x domains x epsilons}
// grid and reports per-cell summaries, CSV, and (optionally) the
// t-test-based competitive sets.
//
// Examples:
//   dpbench_run --algorithms=IDENTITY,HB,DAWA --datasets=ADULT,TRACE \
//               --scales=1000,100000 --domains=1024 --epsilons=0.1
//   dpbench_run --list            # show available algorithms and datasets
//   dpbench_run --workload=random2d --datasets=GOWALLA --domains=64 \
//               --algorithms=AGRID,UGRID --scales=1000000 --competitive
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/engine/report.h"
#include "src/engine/runner.h"
#include "src/engine/serialize.h"
#include "src/engine/stats.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

void PrintUsage() {
  std::cout << "usage: dpbench_run [flags]\n"
            << tools::GridFlagsHelp()
            << "  --competitive          also print t-test competitive sets\n"
               "  --csv                  print raw CSV\n"
               "  --csv-out=FILE         write raw CSV to FILE "
               "(byte-comparable\n"
               "                         with dpbench_merge --csv-out)\n"
               "  --json                 print run diagnostics as JSON "
               "(ISA tier,\n"
               "                         lane width, lockstep/scalar trial "
               "counts, ...)\n"
               "  --list                 list algorithms and datasets, then "
               "exit\n";
}

void PrintInventory() {
  std::cout << "algorithms (1D): ";
  for (const auto& n : MechanismRegistry::NamesForDims(1)) {
    std::cout << n << " ";
  }
  std::cout << "\nalgorithms (2D): ";
  for (const auto& n : MechanismRegistry::NamesForDims(2)) {
    std::cout << n << " ";
  }
  std::cout << "\ndatasets (1D): ";
  for (const auto& d : DatasetRegistry::All1D()) std::cout << d.name << " ";
  std::cout << "\ndatasets (2D): ";
  for (const auto& d : DatasetRegistry::All2D()) std::cout << d.name << " ";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config = tools::DefaultGridConfig();
  bool competitive = false, csv = false, json = false;
  std::string csv_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string grid_error;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--list") {
      PrintInventory();
      return 0;
    } else if (tools::ParseGridFlag(arg, &config, &grid_error)) {
      if (!grid_error.empty()) {
        std::cerr << grid_error << "\n";
        return 1;
      }
    } else if (arg == "--competitive") {
      competitive = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      csv_out = arg.substr(std::strlen("--csv-out="));
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }

  if (Status st = tools::ResolveDefaultAlgorithms(&config); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  RunDiagnostics diagnostics;
  auto results = Runner::Run(
      config,
      [](const CellResult& cell) {
        std::cerr << cell.key.ToString() << " mean=" << cell.summary.mean
                  << " p95=" << cell.summary.p95 << "\n";
      },
      &diagnostics);
  if (!results.ok()) {
    std::cerr << "run failed: " << results.status().ToString() << "\n";
    return 1;
  }

  TextTable table(
      {"algorithm", "dataset", "scale", "domain", "eps", "mean", "p95"});
  for (const CellResult& cell : *results) {
    table.AddRow({cell.key.algorithm, cell.key.dataset,
                  std::to_string(cell.key.scale),
                  std::to_string(cell.key.domain_size),
                  TextTable::Num(cell.key.epsilon),
                  TextTable::Num(cell.summary.mean),
                  TextTable::Num(cell.summary.p95)});
  }
  table.Print(std::cout);

  std::cout << "\npipeline: " << diagnostics.cells << " cells, "
            << diagnostics.trials << " trials | plans built="
            << diagnostics.plans_built
            << " cache hits=" << diagnostics.plan_cache_hits
            << " | plan time=" << diagnostics.plan_seconds
            << "s execute time=" << diagnostics.execute_seconds << "s ("
            << diagnostics.trials_per_second << " trials/s)\n"
            << "pool: " << diagnostics.pool_parallel_jobs << " phases, "
            << diagnostics.pool_tasks_executed << " tasks, "
            << diagnostics.pool_tasks_stolen << " stolen, "
            << diagnostics.pool_workers_pinned << " pinned\n"
            << "numa: " << diagnostics.numa_nodes << " nodes, workers=[";
  for (size_t n = 0; n < diagnostics.node_workers.size(); ++n) {
    std::cout << (n ? "," : "") << diagnostics.node_workers[n];
  }
  std::cout << "], " << diagnostics.pool_tasks_stolen_remote
            << " remote steals, " << diagnostics.bytes_per_trial
            << " bytes/trial\n"
            << "lockstep: isa=" << diagnostics.isa_tier
            << " lanes=" << diagnostics.lane_width << " | "
            << diagnostics.lockstep_trials << " lockstep + "
            << diagnostics.scalar_trials << " scalar trials\n";
  if (!diagnostics.skipped.empty()) {
    std::cout << "skipped combinations:\n";
    for (const SkippedCombo& s : diagnostics.skipped) {
      std::cout << "  " << s.algorithm << " on " << s.dataset << "/domain="
                << s.domain_size << ": " << s.reason << "\n";
    }
  }

  if (json) {
    auto diag_json = DebugJson(EncodeRunDiagnostics(diagnostics));
    if (!diag_json.ok()) {
      std::cerr << diag_json.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\n" << *diag_json << "\n";
  }
  if (csv) {
    std::cout << "\n";
    WriteCsv(*results, std::cout);
  }
  if (!csv_out.empty()) {
    if (Status st = tools::WriteCsvFile(csv_out, *results); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  if (competitive) {
    std::cout << "\ncompetitive sets (Welch t-test, Bonferroni alpha=0.05):\n";
    // Last consumer of the results: hand the raw errors to the grouping
    // instead of copying them.
    for (const auto& [setting, by_algo] :
         Runner::GroupBySetting(std::move(*results))) {
      auto set = CompetitiveSet(by_algo);
      std::cout << "  " << setting << ": ";
      if (set.ok()) {
        for (const auto& a : *set) std::cout << a << " ";
      } else {
        std::cout << set.status().ToString();
      }
      std::cout << "\n";
    }
  }
  return 0;
}
