// dpbench_run — the command-line front end to the benchmark runner.
//
// Runs an arbitrary {algorithms x datasets x scales x domains x epsilons}
// grid and reports per-cell summaries, CSV, and (optionally) the
// t-test-based competitive sets.
//
// Examples:
//   dpbench_run --algorithms=IDENTITY,HB,DAWA --datasets=ADULT,TRACE \
//               --scales=1000,100000 --domains=1024 --epsilons=0.1
//   dpbench_run --list            # show available algorithms and datasets
//   dpbench_run --workload=random2d --datasets=GOWALLA --domains=64 \
//               --algorithms=AGRID,UGRID --scales=1000000 --competitive
#include <cstring>
#include <iostream>
#include <sstream>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/engine/report.h"
#include "src/engine/runner.h"
#include "src/engine/stats.h"

using namespace dpbench;

namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void PrintUsage() {
  std::cout <<
      "usage: dpbench_run [flags]\n"
      "  --algorithms=A,B,...   algorithms to run (default: all for dims)\n"
      "  --datasets=D1,D2,...   datasets (default: ADULT)\n"
      "  --scales=1000,...      dataset scales (default: 1000,100000)\n"
      "  --domains=1024,...     per-dimension domain sizes (default: 1024)\n"
      "  --epsilons=0.1,...     privacy budgets (default: 0.1)\n"
      "  --workload=prefix|random2d|identity (default: prefix)\n"
      "  --queries=N            random2d query count (default: 2000)\n"
      "  --samples=N            data vectors from generator G (default: 2)\n"
      "  --runs=N               runs per vector (default: 5)\n"
      "  --seed=N               master seed (default: 20160626)\n"
      "  --threads=N            worker threads (default: 1; results are\n"
      "                         identical regardless of thread count)\n"
      "  --competitive          also print t-test competitive sets\n"
      "  --csv                  print raw CSV\n"
      "  --list                 list algorithms and datasets, then exit\n";
}

void PrintInventory() {
  std::cout << "algorithms (1D): ";
  for (const auto& n : MechanismRegistry::NamesForDims(1)) {
    std::cout << n << " ";
  }
  std::cout << "\nalgorithms (2D): ";
  for (const auto& n : MechanismRegistry::NamesForDims(2)) {
    std::cout << n << " ";
  }
  std::cout << "\ndatasets (1D): ";
  for (const auto& d : DatasetRegistry::All1D()) std::cout << d.name << " ";
  std::cout << "\ndatasets (2D): ";
  for (const auto& d : DatasetRegistry::All2D()) std::cout << d.name << " ";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config;
  config.datasets = {"ADULT"};
  config.scales = {1000, 100000};
  config.domain_sizes = {1024};
  config.epsilons = {0.1};
  config.data_samples = 2;
  config.runs_per_sample = 5;
  bool competitive = false, csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--list") {
      PrintInventory();
      return 0;
    } else if (arg.rfind("--algorithms=", 0) == 0) {
      config.algorithms = SplitCsv(value("--algorithms="));
    } else if (arg.rfind("--datasets=", 0) == 0) {
      config.datasets = SplitCsv(value("--datasets="));
    } else if (arg.rfind("--scales=", 0) == 0) {
      config.scales.clear();
      for (const auto& s : SplitCsv(value("--scales="))) {
        config.scales.push_back(std::stoull(s));
      }
    } else if (arg.rfind("--domains=", 0) == 0) {
      config.domain_sizes.clear();
      for (const auto& s : SplitCsv(value("--domains="))) {
        config.domain_sizes.push_back(std::stoul(s));
      }
    } else if (arg.rfind("--epsilons=", 0) == 0) {
      config.epsilons.clear();
      for (const auto& s : SplitCsv(value("--epsilons="))) {
        config.epsilons.push_back(std::stod(s));
      }
    } else if (arg.rfind("--workload=", 0) == 0) {
      std::string w = value("--workload=");
      if (w == "prefix") {
        config.workload = WorkloadKind::kPrefix1D;
      } else if (w == "random2d") {
        config.workload = WorkloadKind::kRandomRange2D;
      } else if (w == "identity") {
        config.workload = WorkloadKind::kIdentity;
      } else {
        std::cerr << "unknown workload " << w << "\n";
        return 1;
      }
    } else if (arg.rfind("--queries=", 0) == 0) {
      config.random_queries = std::stoul(value("--queries="));
    } else if (arg.rfind("--samples=", 0) == 0) {
      config.data_samples = std::stoul(value("--samples="));
    } else if (arg.rfind("--runs=", 0) == 0) {
      config.runs_per_sample = std::stoul(value("--runs="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads = std::stoul(value("--threads="));
    } else if (arg == "--competitive") {
      competitive = true;
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }

  if (config.algorithms.empty()) {
    // Default to every algorithm valid for the first dataset's dims.
    auto info = DatasetRegistry::Info(config.datasets.front());
    if (!info.ok()) {
      std::cerr << info.status().ToString() << "\n";
      return 1;
    }
    config.algorithms = MechanismRegistry::NamesForDims(info->dims);
  }

  RunDiagnostics diagnostics;
  auto results = Runner::Run(
      config,
      [](const CellResult& cell) {
        std::cerr << cell.key.ToString() << " mean=" << cell.summary.mean
                  << " p95=" << cell.summary.p95 << "\n";
      },
      &diagnostics);
  if (!results.ok()) {
    std::cerr << "run failed: " << results.status().ToString() << "\n";
    return 1;
  }

  TextTable table(
      {"algorithm", "dataset", "scale", "domain", "eps", "mean", "p95"});
  for (const CellResult& cell : *results) {
    table.AddRow({cell.key.algorithm, cell.key.dataset,
                  std::to_string(cell.key.scale),
                  std::to_string(cell.key.domain_size),
                  TextTable::Num(cell.key.epsilon),
                  TextTable::Num(cell.summary.mean),
                  TextTable::Num(cell.summary.p95)});
  }
  table.Print(std::cout);

  std::cout << "\npipeline: " << diagnostics.cells << " cells, "
            << diagnostics.trials << " trials | plans built="
            << diagnostics.plans_built
            << " cache hits=" << diagnostics.plan_cache_hits
            << " | plan time=" << diagnostics.plan_seconds
            << "s execute time=" << diagnostics.execute_seconds << "s ("
            << diagnostics.trials_per_second << " trials/s)\n"
            << "pool: " << diagnostics.pool_parallel_jobs << " phases, "
            << diagnostics.pool_tasks_executed << " tasks, "
            << diagnostics.pool_tasks_stolen << " stolen\n";
  if (!diagnostics.skipped.empty()) {
    std::cout << "skipped combinations:\n";
    for (const SkippedCombo& s : diagnostics.skipped) {
      std::cout << "  " << s.algorithm << " on " << s.dataset << "/domain="
                << s.domain_size << ": " << s.reason << "\n";
    }
  }

  if (csv) {
    std::cout << "\n";
    WriteCsv(*results, std::cout);
  }
  if (competitive) {
    std::cout << "\ncompetitive sets (Welch t-test, Bonferroni alpha=0.05):\n";
    // Last consumer of the results: hand the raw errors to the grouping
    // instead of copying them.
    for (const auto& [setting, by_algo] :
         Runner::GroupBySetting(std::move(*results))) {
      auto set = CompetitiveSet(by_algo);
      std::cout << "  " << setting << ": ";
      if (set.ok()) {
        for (const auto& a : *set) std::cout << a << " ";
      } else {
        std::cout << set.status().ToString();
      }
      std::cout << "\n";
    }
  }
  return 0;
}
