// dpbench_shard — runs one shard of an experiment grid and writes a
// serialized cell-result file for dpbench_merge.
//
// The grid flags mirror dpbench_run; --shard=i/n selects the slice. Cells
// are enumerated in a canonical order and cell i goes to shard i % n, and
// every random stream is derived from (seed, cell identity), so the merge
// of any shard partition is bit-identical to the monolithic run.
//
// Plan cache: --save-plans writes the serialized payloads of every
// precomputed plan this shard built; --load-plans hydrates plans from such
// a file instead of re-planning (payloads are validated against the
// mechanism, epsilon and geometry — a stale cache fails loudly).
//
// Examples:
//   dpbench_shard --algorithms=IDENTITY,HB --datasets=ADULT \
//                 --scales=1000 --domains=256 --epsilons=0.1 \
//                 --shard=0/3 --out=shard0.bin
//   dpbench_shard ... --shard=1/3 --out=shard1.bin --save-plans=plans.bin
//   dpbench_shard ... --shard=2/3 --out=shard2.bin --load-plans=plans.bin
//   dpbench_merge shard0.bin shard1.bin shard2.bin
#include <cstring>
#include <iostream>
#include <sstream>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/engine/runner.h"
#include "src/engine/serialize.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

void PrintUsage() {
  std::cout << "usage: dpbench_shard --shard=I/N --out=FILE [grid flags]\n"
               "  --shard=I/N            run shard I of N (I in 0..N-1)\n"
               "  --out=FILE             write the serialized shard result "
               "file\n"
               "  --save-plans=FILE      also write the plans this shard "
               "built\n"
               "  --load-plans=FILE      hydrate plans from FILE instead of "
               "planning\n"
               "  --json                 dump the shard file as JSON to "
               "stdout\n"
               "grid flags (same meaning as dpbench_run):\n"
            << tools::GridFlagsHelp();
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config = tools::DefaultGridConfig();
  std::string out_path, save_plans_path, load_plans_path;
  bool json = false;
  bool shard_given = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string grid_error;
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--shard=", 0) == 0) {
      std::string spec = value("--shard=");
      size_t slash = spec.find('/');
      uint64_t index = 0, count = 0;
      if (slash == std::string::npos ||
          !tools::grid_flags_internal::ParseU64(spec.substr(0, slash),
                                                &index) ||
          !tools::grid_flags_internal::ParseU64(spec.substr(slash + 1),
                                                &count)) {
        std::cerr << "--shard expects I/N, got " << spec << "\n";
        return 1;
      }
      config.shard_index = static_cast<size_t>(index);
      config.shard_count = static_cast<size_t>(count);
      shard_given = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
    } else if (arg.rfind("--save-plans=", 0) == 0) {
      save_plans_path = value("--save-plans=");
    } else if (arg.rfind("--load-plans=", 0) == 0) {
      load_plans_path = value("--load-plans=");
    } else if (arg == "--json") {
      json = true;
    } else if (tools::ParseGridFlag(arg, &config, &grid_error)) {
      if (!grid_error.empty()) {
        std::cerr << grid_error << "\n";
        return 1;
      }
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }

  if (!shard_given) {
    std::cerr << "--shard=I/N is required\n";
    PrintUsage();
    return 1;
  }
  if (out_path.empty()) {
    std::cerr << "--out=FILE is required\n";
    PrintUsage();
    return 1;
  }
  if (Status st = tools::ResolveDefaultAlgorithms(&config); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  PlanStore loaded_plans;
  const PlanStore* hydrate = nullptr;
  if (!load_plans_path.empty()) {
    auto bytes = ReadFileBytes(load_plans_path);
    if (!bytes.ok()) {
      std::cerr << bytes.status().ToString() << "\n";
      return 1;
    }
    auto store = DecodePlanCacheFile(*bytes, config);
    if (!store.ok()) {
      std::cerr << "cannot load plan cache: " << store.status().ToString()
                << "\n";
      return 1;
    }
    loaded_plans = std::move(store).value();
    hydrate = &loaded_plans;
  }

  PlanStore exported_plans;
  PlanStore* export_ptr =
      save_plans_path.empty() ? nullptr : &exported_plans;
  RunDiagnostics diagnostics;
  auto results = Runner::Run(config, nullptr, &diagnostics, hydrate,
                             export_ptr);
  if (!results.ok()) {
    std::cerr << "shard run failed: " << results.status().ToString() << "\n";
    return 1;
  }

  ShardFile shard;
  shard.shard_index = config.shard_index;
  shard.shard_count = config.shard_count;
  shard.total_cells = diagnostics.grid_cells;
  shard.config = config;
  shard.cells = std::move(results).value();
  shard.diagnostics = diagnostics;
  std::string bytes = EncodeShardFile(shard);
  if (Status st = WriteFileBytes(out_path, bytes); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  if (!save_plans_path.empty()) {
    Status st = WriteFileBytes(save_plans_path,
                               EncodePlanCacheFile(exported_plans, config));
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  if (json) {
    auto rendered = DebugJson(bytes);
    if (!rendered.ok()) {
      std::cerr << rendered.status().ToString() << "\n";
      return 1;
    }
    std::cout << *rendered;
  }

  std::cerr << "shard " << config.shard_index << "/" << config.shard_count
            << ": " << shard.cells.size() << " of " << shard.total_cells
            << " cells, " << diagnostics.trials << " trials | plans built="
            << diagnostics.plans_built
            << " hydrated=" << diagnostics.plans_hydrated
            << " | plan time=" << diagnostics.plan_seconds
            << "s execute time=" << diagnostics.execute_seconds << "s\n"
            << "wrote " << bytes.size() << " bytes to " << out_path << "\n";
  if (!save_plans_path.empty()) {
    std::cerr << "saved " << exported_plans.plans.size() << " plans to "
              << save_plans_path << "\n";
  }
  return 0;
}
