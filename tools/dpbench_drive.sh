#!/usr/bin/env bash
# dpbench_drive.sh — schedule a sharded DPBench run across N local
# processes, retry failed shards, and merge the results.
#
# The sharded runner guarantees that any shard partition merges
# bit-identically to the monolithic run (see ROADMAP "Sharded runner");
# this driver supplies the missing operational half: process scheduling
# with a bounded worker pool, per-shard wall-clock timeouts, bounded
# exponential-backoff retries for transient failures (OOM kills,
# preemptions, hung runs), and the final dpbench_merge. A shard that
# exhausts its retries aborts the whole run with a non-zero exit — the
# driver never merges a partial shard set. Every shard's stdout/stderr is
# kept in the work directory for post-mortems.
#
# Usage:
#   tools/dpbench_drive.sh --bin=DIR --shards=N [--procs=P] [--retries=K]
#       [--timeout=SECS] [--backoff=MS] [--workdir=DIR] --csv-out=FILE \
#       -- <grid flags for dpbench_shard>
#
#   --bin=DIR      directory containing dpbench_shard and dpbench_merge
#   --shards=N     number of shards to split the grid into (>= 1)
#   --procs=P      max concurrent shard processes (default: nproc)
#   --retries=K    extra attempts per failed shard (default 1)
#   --timeout=SECS per-attempt wall-clock limit; a shard still running
#                  after SECS is killed and counts as a failed attempt
#                  (default 0 = no limit; requires coreutils `timeout`)
#   --backoff=MS   base retry delay in milliseconds; doubles per attempt,
#                  capped at 16x the base (default 500)
#   --workdir=DIR  where shard files and logs go (default: mktemp -d;
#                  kept on failure, removed on success unless supplied)
#   --csv-out=FILE merged CSV (byte-identical to a monolithic
#                  dpbench_run --csv-out over the same grid)
#
# Everything after `--` is passed to every dpbench_shard invocation
# verbatim (the grid must be identical across shards; dpbench_merge's
# validator rejects config skew, so a mistake fails loudly).
#
# Exit codes: 0 success | 1 shard/merge failure | 2 usage error.
set -euo pipefail

BIN=""
SHARDS=0
PROCS="$(nproc 2>/dev/null || echo 2)"
RETRIES=1
TIMEOUT_SECS=0
BACKOFF_MS=500
WORKDIR=""
CSV_OUT=""
KEEP_WORKDIR=0

usage_error() {
  echo "dpbench_drive: $1" >&2
  exit 2
}

while [ $# -gt 0 ]; do
  case "$1" in
    --bin=*) BIN="${1#--bin=}" ;;
    --shards=*) SHARDS="${1#--shards=}" ;;
    --procs=*) PROCS="${1#--procs=}" ;;
    --retries=*) RETRIES="${1#--retries=}" ;;
    --timeout=*) TIMEOUT_SECS="${1#--timeout=}" ;;
    --backoff=*) BACKOFF_MS="${1#--backoff=}" ;;
    --workdir=*) WORKDIR="${1#--workdir=}"; KEEP_WORKDIR=1 ;;
    --csv-out=*) CSV_OUT="${1#--csv-out=}" ;;
    --) shift; break ;;
    *) usage_error "unknown flag $1" ;;
  esac
  shift
done
GRID_ARGS=("$@")

case "$SHARDS$PROCS$RETRIES$TIMEOUT_SECS$BACKOFF_MS" in
  *[!0-9]*) usage_error "--shards/--procs/--retries/--timeout/--backoff must be non-negative integers" ;;
esac
if [ -z "$BIN" ] || [ "$SHARDS" -lt 1 ] || [ -z "$CSV_OUT" ]; then
  usage_error "--bin, --shards >= 1 and --csv-out are required"
fi
if [ "$PROCS" -lt 1 ]; then
  usage_error "--procs must be >= 1"
fi
for tool in dpbench_shard dpbench_merge; do
  if [ ! -x "$BIN/$tool" ]; then
    usage_error "$BIN/$tool not found or not executable"
  fi
done
if [ "$TIMEOUT_SECS" -gt 0 ] && ! command -v timeout >/dev/null 2>&1; then
  usage_error "--timeout needs the coreutils 'timeout' command"
fi
if [ -z "$WORKDIR" ]; then
  WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/dpbench_drive.XXXXXX")"
fi
mkdir -p "$WORKDIR"

# Runs one shard to completion with bounded-backoff retries. Attempt logs
# are appended so a retried shard's history stays inspectable. A timed-out
# attempt (exit 124 from `timeout`) is logged as such and retried like any
# other failure.
run_shard() {
  local idx="$1"
  local out="$WORKDIR/shard$idx.bin"
  local log="$WORKDIR/shard$idx.log"
  local attempt=0
  local delay_ms="$BACKOFF_MS"
  local max_delay_ms=$((BACKOFF_MS * 16))
  local rc
  while :; do
    rc=0
    if [ "$TIMEOUT_SECS" -gt 0 ]; then
      timeout --kill-after=10 "$TIMEOUT_SECS" \
          "$BIN/dpbench_shard" ${GRID_ARGS[@]+"${GRID_ARGS[@]}"} \
          --shard="$idx/$SHARDS" --out="$out" >> "$log" 2>&1 || rc=$?
    else
      "$BIN/dpbench_shard" ${GRID_ARGS[@]+"${GRID_ARGS[@]}"} \
          --shard="$idx/$SHARDS" --out="$out" >> "$log" 2>&1 || rc=$?
    fi
    if [ "$rc" -eq 0 ]; then
      return 0
    fi
    attempt=$((attempt + 1))
    if [ "$rc" -eq 124 ]; then
      echo "dpbench_drive: shard $idx attempt $attempt timed out after ${TIMEOUT_SECS}s" >&2
    fi
    if [ "$attempt" -gt "$RETRIES" ]; then
      echo "dpbench_drive: shard $idx failed after $((RETRIES + 1)) attempts (log: $log)" >&2
      return 1
    fi
    echo "dpbench_drive: shard $idx attempt $attempt failed (rc=$rc); retrying in ${delay_ms}ms" >&2
    sleep "$(awk "BEGIN {printf \"%.3f\", $delay_ms / 1000}")"
    delay_ms=$((delay_ms * 2))
    if [ "$delay_ms" -gt "$max_delay_ms" ]; then
      delay_ms="$max_delay_ms"
    fi
  done
}

# Bounded worker pool: keep up to PROCS shards in flight. Throttling
# polls the running-job count (portable across bash versions, and every
# pid stays collectable by the final per-pid wait, which is where
# failures are counted).
pids=()
failed=0
for idx in $(seq 0 $((SHARDS - 1))); do
  while [ "$(jobs -pr | wc -l)" -ge "$PROCS" ]; do
    sleep 0.1
  done
  run_shard "$idx" &
  pids+=("$!")
done
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    failed=1
  fi
done
if [ "$failed" -ne 0 ]; then
  echo "dpbench_drive: aborting without merging; shard files and logs kept in $WORKDIR" >&2
  exit 1
fi

shard_files=()
for idx in $(seq 0 $((SHARDS - 1))); do
  shard_files+=("$WORKDIR/shard$idx.bin")
done
if ! "$BIN/dpbench_merge" --csv-out="$CSV_OUT" \
    --error-json="$WORKDIR/merge_report.json" "${shard_files[@]}"; then
  echo "dpbench_drive: merge failed (report: $WORKDIR/merge_report.json); shard files kept in $WORKDIR" >&2
  KEEP_WORKDIR=1
  exit 1
fi
echo "dpbench_drive: merged $SHARDS shards into $CSV_OUT"
if [ "$KEEP_WORKDIR" -eq 0 ]; then
  rm -rf "$WORKDIR"
fi
