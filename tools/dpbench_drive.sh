#!/usr/bin/env bash
# dpbench_drive.sh — schedule a sharded DPBench run across N local
# processes, retry failed shards, and merge the results.
#
# The sharded runner guarantees that any shard partition merges
# bit-identically to the monolithic run (see ROADMAP "Sharded runner");
# this driver supplies the missing operational half: process scheduling
# with a bounded worker pool, per-shard retries for transient failures
# (OOM kills, preemptions), and the final dpbench_merge. Every shard's
# stdout/stderr is kept in the work directory for post-mortems.
#
# Usage:
#   tools/dpbench_drive.sh --bin=DIR --shards=N [--procs=P] [--retries=K]
#       [--workdir=DIR] --csv-out=FILE -- <grid flags for dpbench_shard>
#
#   --bin=DIR      directory containing dpbench_shard and dpbench_merge
#   --shards=N     number of shards to split the grid into (>= 1)
#   --procs=P      max concurrent shard processes (default: nproc)
#   --retries=K    extra attempts per failed shard (default 1)
#   --workdir=DIR  where shard files and logs go (default: mktemp -d;
#                  kept on failure, removed on success unless supplied)
#   --csv-out=FILE merged CSV (byte-identical to a monolithic
#                  dpbench_run --csv-out over the same grid)
#
# Everything after `--` is passed to every dpbench_shard invocation
# verbatim (the grid must be identical across shards; dpbench_merge's
# validator rejects config skew, so a mistake fails loudly).
set -u

BIN=""
SHARDS=0
PROCS="$(nproc 2>/dev/null || echo 2)"
RETRIES=1
WORKDIR=""
CSV_OUT=""
KEEP_WORKDIR=0

while [ $# -gt 0 ]; do
  case "$1" in
    --bin=*) BIN="${1#--bin=}" ;;
    --shards=*) SHARDS="${1#--shards=}" ;;
    --procs=*) PROCS="${1#--procs=}" ;;
    --retries=*) RETRIES="${1#--retries=}" ;;
    --workdir=*) WORKDIR="${1#--workdir=}"; KEEP_WORKDIR=1 ;;
    --csv-out=*) CSV_OUT="${1#--csv-out=}" ;;
    --) shift; break ;;
    *) echo "dpbench_drive: unknown flag $1" >&2; exit 2 ;;
  esac
  shift
done
GRID_ARGS=("$@")

if [ -z "$BIN" ] || [ "$SHARDS" -lt 1 ] || [ -z "$CSV_OUT" ]; then
  echo "dpbench_drive: --bin, --shards >= 1 and --csv-out are required" >&2
  exit 2
fi
for tool in dpbench_shard dpbench_merge; do
  if [ ! -x "$BIN/$tool" ]; then
    echo "dpbench_drive: $BIN/$tool not found or not executable" >&2
    exit 2
  fi
done
if [ -z "$WORKDIR" ]; then
  WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/dpbench_drive.XXXXXX")"
fi
mkdir -p "$WORKDIR"

# Runs one shard to completion with retries. Attempt logs are appended so
# a retried shard's history stays inspectable.
run_shard() {
  local idx="$1"
  local out="$WORKDIR/shard$idx.bin"
  local log="$WORKDIR/shard$idx.log"
  local attempt=0
  while :; do
    if "$BIN/dpbench_shard" ${GRID_ARGS[@]+"${GRID_ARGS[@]}"} \
        --shard="$idx/$SHARDS" --out="$out" >> "$log" 2>&1; then
      return 0
    fi
    attempt=$((attempt + 1))
    if [ "$attempt" -gt "$RETRIES" ]; then
      echo "dpbench_drive: shard $idx failed after $((RETRIES + 1)) attempts (log: $log)" >&2
      return 1
    fi
    echo "dpbench_drive: shard $idx attempt $attempt failed; retrying" >&2
  done
}

# Bounded worker pool: keep up to PROCS shards in flight. Throttling
# polls the running-job count (portable across bash versions, and every
# pid stays collectable by the final per-pid wait, which is where
# failures are counted).
pids=()
failed=0
for idx in $(seq 0 $((SHARDS - 1))); do
  while [ "$(jobs -pr | wc -l)" -ge "$PROCS" ]; do
    sleep 0.1
  done
  run_shard "$idx" &
  pids+=("$!")
done
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    failed=1
  fi
done
if [ "$failed" -ne 0 ]; then
  echo "dpbench_drive: aborting; shard files and logs kept in $WORKDIR" >&2
  exit 1
fi

shard_files=()
for idx in $(seq 0 $((SHARDS - 1))); do
  shard_files+=("$WORKDIR/shard$idx.bin")
done
if ! "$BIN/dpbench_merge" --csv-out="$CSV_OUT" "${shard_files[@]}"; then
  echo "dpbench_drive: merge failed; shard files kept in $WORKDIR" >&2
  exit 1
fi
echo "dpbench_drive: merged $SHARDS shards into $CSV_OUT"
if [ "$KEEP_WORKDIR" -eq 0 ]; then
  rm -rf "$WORKDIR"
fi
