// dpbench_merge — validates and merges dpbench_shard result files into
// one report identical to the single-process run of the same config.
//
// The manifest validator fails loudly on overlapping shards, shard gaps,
// config or shard-count mismatches, duplicate or missing cells,
// format-version skew, and — since envelope v2 — any section whose
// CRC32C does not match (a flipped bit anywhere in a shard file). The
// merged cells are emitted in the canonical (monolithic) order, so
// --csv-out produces a byte-identical file to `dpbench_run --csv-out` on
// the same config.
//
// Exit codes are distinct and documented so schedulers and CI can tell
// retryable failures from fatal ones:
//   0  merge succeeded
//   1  usage error (bad flags, no input files)
//   2  a shard file could not be read (missing/unreadable — retryable by
//      re-producing the file)
//   3  a shard file is corrupt (checksum DataLoss or structural decode
//      failure — re-run that shard)
//   4  config/manifest skew (shards from different runs — fatal)
//   5  the run is incomplete (missing shard or missing cells — retryable
//      by producing what's missing)
//   6  structural merge conflict (overlapping shards, duplicate or
//      out-of-slice cells — the supplied file set is wrong)
//
// --error-json=FILE writes a machine-readable report of the failure (or
// {"ok": true} on success) for the coordinator and CI; "-" = stdout.
//
// Examples:
//   dpbench_merge shard0.bin shard1.bin shard2.bin
//   dpbench_merge --csv-out=merged.csv --error-json=report.json shard*.bin
//   dpbench_merge --json shard0.bin        # debug-dump, no merge
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/engine/report.h"
#include "src/engine/runner.h"
#include "src/engine/serialize.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

void PrintUsage() {
  std::cout <<
      "usage: dpbench_merge [flags] SHARD_FILE...\n"
      "  --csv                  print merged results as CSV to stdout\n"
      "  --csv-out=FILE         write merged results as CSV to FILE\n"
      "  --error-json=FILE      write a JSON success/failure report "
      "(- = stdout)\n"
      "  --json                 dump each input file as JSON (no merge)\n"
      "exit codes: 0 ok | 1 usage | 2 unreadable file | 3 corrupt file |\n"
      "            4 config skew | 5 incomplete run | 6 merge conflict\n";
}

// Exit code for a failure at the decode stage (per-file).
int DecodeExitCode(const Status& st) {
  return st.code() == StatusCode::kNotFound ? 2 : 3;
}

// Exit code for a failure at the merge stage (cross-file validation).
int MergeExitCode(const Status& st) {
  switch (st.code()) {
    case StatusCode::kFailedPrecondition:
      return 4;  // config/manifest skew
    case StatusCode::kNotFound:
      return 5;  // missing shard or cells
    default:
      return 6;  // overlaps, duplicates, out-of-slice cells
  }
}

void JsonEscapeInto(const std::string& s, std::string* out) {
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(ch);
    } else if (c == '\n') {
      *out += "\\n";
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(ch);
    }
  }
}

// Writes the machine-readable report. On success: {"ok": true, ...}.
// On failure: the stage ("read"|"decode"|"merge"), the offending path
// (empty for merge-stage errors), the status code name, the exit code a
// caller will see, and whether retrying (re-producing the named input)
// can fix it.
int WriteErrorJson(const std::string& dest, bool ok, const std::string& stage,
                   const std::string& path, const Status& st, int exit_code,
                   size_t shard_count) {
  std::string body = "{\n  \"ok\": ";
  body += ok ? "true" : "false";
  if (ok) {
    body += ",\n  \"shards\": " + std::to_string(shard_count);
  } else {
    body += ",\n  \"stage\": \"" + stage + "\"";
    body += ",\n  \"path\": \"";
    JsonEscapeInto(path, &body);
    body += "\"";
    body += ",\n  \"status\": \"";
    body += StatusCodeToString(st.code());
    body += "\"";
    body += ",\n  \"message\": \"";
    JsonEscapeInto(st.message(), &body);
    body += "\"";
    body += ",\n  \"exit_code\": " + std::to_string(exit_code);
    bool retryable = exit_code == 2 || exit_code == 3 || exit_code == 5;
    body += ",\n  \"retryable\": ";
    body += retryable ? "true" : "false";
  }
  body += "\n}\n";
  if (dest == "-") {
    std::cout << body;
    return 0;
  }
  std::ofstream os(dest, std::ios::trunc);
  os << body;
  if (!os) {
    std::cerr << "cannot write " << dest << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string csv_out, error_json;
  bool csv = false, json = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      csv_out = arg.substr(std::strlen("--csv-out="));
    } else if (arg.rfind("--error-json=", 0) == 0) {
      error_json = arg.substr(std::strlen("--error-json="));
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "no shard files given\n";
    PrintUsage();
    return 1;
  }

  // Failure path shared by every stage: report to stderr, optionally as
  // JSON, and exit with the stage-appropriate code.
  auto fail = [&](const std::string& stage, const std::string& path,
                  const Status& st, int code) -> int {
    std::cerr << (path.empty() ? "merge" : path) << ": " << st.ToString()
              << "\n";
    if (!error_json.empty()) {
      WriteErrorJson(error_json, false, stage, path, st, code, 0);
    }
    return code;
  };

  if (json) {
    for (const std::string& path : paths) {
      auto bytes = ReadFileBytes(path);
      if (!bytes.ok()) {
        return fail("read", path, bytes.status(), 2);
      }
      auto rendered = DebugJson(*bytes);
      if (!rendered.ok()) {
        return fail("decode", path, rendered.status(),
                    DecodeExitCode(rendered.status()));
      }
      std::cout << *rendered;
    }
    return 0;
  }

  std::vector<ShardFile> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      return fail("read", path, bytes.status(), 2);
    }
    auto shard = DecodeShardFile(*bytes);
    if (!shard.ok()) {
      return fail("decode", path, shard.status(),
                  DecodeExitCode(shard.status()));
    }
    shards.push_back(std::move(shard).value());
  }

  size_t shard_count = shards.size();
  auto merged = MergeShards(std::move(shards));
  if (!merged.ok()) {
    return fail("merge", "", merged.status(),
                MergeExitCode(merged.status()));
  }
  if (!error_json.empty()) {
    if (WriteErrorJson(error_json, true, "", "", Status::OK(), 0,
                       shard_count) != 0) {
      return 1;
    }
  }

  TextTable table(
      {"algorithm", "dataset", "scale", "domain", "eps", "mean", "p95"});
  for (const CellResult& cell : merged->cells) {
    table.AddRow({cell.key.algorithm, cell.key.dataset,
                  std::to_string(cell.key.scale),
                  std::to_string(cell.key.domain_size),
                  TextTable::Num(cell.key.epsilon),
                  TextTable::Num(cell.summary.mean),
                  TextTable::Num(cell.summary.p95)});
  }
  table.Print(std::cout);

  const RunDiagnostics& d = merged->diagnostics;
  std::cout << "\nmerged " << paths.size() << " shard files: " << d.cells
            << " cells, " << d.trials << " trials | plans built="
            << d.plans_built << " hydrated=" << d.plans_hydrated
            << " | total plan time=" << d.plan_seconds
            << "s total execute time=" << d.execute_seconds << "s\n";
  if (!d.skipped.empty()) {
    std::cout << "skipped combinations:\n";
    for (const SkippedCombo& s : d.skipped) {
      std::cout << "  " << s.algorithm << " on " << s.dataset << "/domain="
                << s.domain_size << ": " << s.reason << "\n";
    }
  }

  if (csv) {
    std::cout << "\n";
    WriteCsv(merged->cells, std::cout);
  }
  if (!csv_out.empty()) {
    if (Status st = tools::WriteCsvFile(csv_out, merged->cells); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}
