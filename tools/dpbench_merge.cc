// dpbench_merge — validates and merges dpbench_shard result files into
// one report identical to the single-process run of the same config.
//
// The manifest validator fails loudly on overlapping shards, shard gaps,
// config or shard-count mismatches, duplicate or missing cells, and
// format-version skew; a merge that succeeds is guaranteed complete. The
// merged cells are emitted in the canonical (monolithic) order, so
// --csv-out produces a byte-identical file to
// `dpbench_run --csv-out` on the same config.
//
// Examples:
//   dpbench_merge shard0.bin shard1.bin shard2.bin
//   dpbench_merge --csv-out=merged.csv shard*.bin
//   dpbench_merge --json shard0.bin        # debug-dump, no merge
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/engine/report.h"
#include "src/engine/runner.h"
#include "src/engine/serialize.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

void PrintUsage() {
  std::cout <<
      "usage: dpbench_merge [flags] SHARD_FILE...\n"
      "  --csv                  print merged results as CSV to stdout\n"
      "  --csv-out=FILE         write merged results as CSV to FILE\n"
      "  --json                 dump each input file as JSON (no merge)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string csv_out;
  bool csv = false, json = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      csv_out = arg.substr(std::strlen("--csv-out="));
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "no shard files given\n";
    PrintUsage();
    return 1;
  }

  if (json) {
    for (const std::string& path : paths) {
      auto bytes = ReadFileBytes(path);
      if (!bytes.ok()) {
        std::cerr << bytes.status().ToString() << "\n";
        return 1;
      }
      auto rendered = DebugJson(*bytes);
      if (!rendered.ok()) {
        std::cerr << path << ": " << rendered.status().ToString() << "\n";
        return 1;
      }
      std::cout << *rendered;
    }
    return 0;
  }

  std::vector<ShardFile> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      std::cerr << bytes.status().ToString() << "\n";
      return 1;
    }
    auto shard = DecodeShardFile(*bytes);
    if (!shard.ok()) {
      std::cerr << path << ": " << shard.status().ToString() << "\n";
      return 1;
    }
    shards.push_back(std::move(shard).value());
  }

  auto merged = MergeShards(std::move(shards));
  if (!merged.ok()) {
    std::cerr << "merge failed: " << merged.status().ToString() << "\n";
    return 1;
  }

  TextTable table(
      {"algorithm", "dataset", "scale", "domain", "eps", "mean", "p95"});
  for (const CellResult& cell : merged->cells) {
    table.AddRow({cell.key.algorithm, cell.key.dataset,
                  std::to_string(cell.key.scale),
                  std::to_string(cell.key.domain_size),
                  TextTable::Num(cell.key.epsilon),
                  TextTable::Num(cell.summary.mean),
                  TextTable::Num(cell.summary.p95)});
  }
  table.Print(std::cout);

  const RunDiagnostics& d = merged->diagnostics;
  std::cout << "\nmerged " << paths.size() << " shard files: " << d.cells
            << " cells, " << d.trials << " trials | plans built="
            << d.plans_built << " hydrated=" << d.plans_hydrated
            << " | total plan time=" << d.plan_seconds
            << "s total execute time=" << d.execute_seconds << "s\n";
  if (!d.skipped.empty()) {
    std::cout << "skipped combinations:\n";
    for (const SkippedCombo& s : d.skipped) {
      std::cout << "  " << s.algorithm << " on " << s.dataset << "/domain="
                << s.domain_size << ": " << s.reason << "\n";
    }
  }

  if (csv) {
    std::cout << "\n";
    WriteCsv(merged->cells, std::cout);
  }
  if (!csv_out.empty()) {
    if (Status st = tools::WriteCsvFile(csv_out, merged->cells); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}
