// dpbench_coord — coordinator daemon for fault-tolerant distributed runs.
//
// Partitions the experiment grid into --tasks strided shards (the same
// deterministic partition dpbench_shard uses), serves them to
// dpbench_worker daemons over a loopback TCP protocol, survives worker
// death and stragglers (heartbeat timeouts, speculative re-issue), rejects
// corrupt uploads by shard-section checksum, and writes a merged CSV
// byte-identical to the monolithic `dpbench_run --csv-out` of the same
// grid.
//
// --checkpoint=FILE makes progress durable: every completed task rewrites
// FILE (tmp-write + atomic rename) with the grid identity and each
// finished task's shard image. A coordinator restarted with the same flag
// and the same grid resumes — completed tasks are never re-executed, and
// the merged CSV is byte-identical to an uninterrupted run. A checkpoint
// from a *different* grid, or a damaged one, is a loud refusal (exit 4 /
// exit 3), never a silent fresh start.
//
// Exit codes are distinct and documented — the same vocabulary as
// dpbench_merge, so schedulers and CI treat both tools uniformly:
//   0  run merged successfully
//   1  usage error (bad flags) or environment failure (bind, CSV write)
//   2  the checkpoint file could not be read (present but unreadable —
//      retryable once the file is readable again)
//   3  the checkpoint file is corrupt (checksum DataLoss or structural
//      decode failure — delete it to start over, deliberately)
//   4  config skew (the checkpoint records a different grid — fatal)
//   5  the run is incomplete (merge reported missing shards/cells)
//   6  structural merge conflict (overlaps, duplicate cells)
//
// --error-json=FILE writes a machine-readable report of the failure (or
// {"ok": true} on success) for schedulers and CI; "-" = stdout.
//
// Fault injection for the crash-recovery tests, via DPBENCH_FAULT or
// --fault= (the flag wins): crash_at:after_task_before_checkpoint kills
// the process (SIGKILL) when a task completes but before its checkpoint
// write; crash_at:mid_checkpoint_append kills it after the tmp file is
// written but before the rename.
//
// Examples:
//   dpbench_coord --port=0 --port-file=port.txt --tasks=6 \
//                 --checkpoint=run.ckpt --csv-out=merged.csv \
//                 --epsilons=0.1,0.5
//   dpbench_worker --port=$(cat port.txt) --name=w0 &
//   dpbench_worker --port=$(cat port.txt) --name=w1 &
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/engine/distrib.h"
#include "src/engine/report.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

void PrintUsage() {
  std::cout
      << "usage: dpbench_coord [flags]\n"
         "  --port=N               TCP port on 127.0.0.1 (0 = ephemeral)\n"
         "  --port-file=FILE       write the bound port to FILE (for "
         "workers)\n"
         "  --tasks=N              grid partitions to schedule (default 8)\n"
         "  --checkpoint=FILE      durable progress; resume from FILE if "
         "present\n"
         "  --csv                  print merged results as CSV to stdout\n"
         "  --csv-out=FILE         write merged results as CSV to FILE\n"
         "  --error-json=FILE      write a JSON success/failure report "
         "(- = stdout)\n"
         "  --heartbeat-timeout-ms=N  silence before a worker is lost "
         "(default 5000)\n"
         "  --min-straggler-ms=N   floor before speculative re-issue "
         "(default 10000)\n"
         "  --straggler-factor=F   straggler threshold as F x median task "
         "time (default 3)\n"
         "  --fault=SPEC           inject faults (overrides DPBENCH_FAULT)\n"
         "exit codes: 0 ok | 1 usage/environment | 2 unreadable checkpoint "
         "|\n"
         "            3 corrupt checkpoint | 4 config skew | 5 incomplete "
         "run |\n"
         "            6 merge conflict\n"
         "grid flags (same meaning as dpbench_run):\n"
      << tools::GridFlagsHelp();
}

// Exit code for a Coordinator::Create failure. The checkpoint produces
// every non-environment failure here, and the codes parallel
// dpbench_merge's decode/skew stages.
int CreateExitCode(const Status& st) {
  switch (st.code()) {
    case StatusCode::kFailedPrecondition:
      return 4;  // checkpoint from a different grid or task partition
    case StatusCode::kDataLoss:
    case StatusCode::kInvalidArgument:
      return 3;  // damaged checkpoint or shard image
    case StatusCode::kNotFound:
      return 2;  // unreadable mid-read (present at open, gone after)
    default:
      return 1;  // bind or other environment failure
  }
}

// Exit code for a failed Serve() — its errors come from the merge.
int ServeExitCode(const Status& st) {
  switch (st.code()) {
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kNotFound:
      return 5;
    case StatusCode::kDataLoss:
      return 3;
    default:
      return 6;
  }
}

void JsonEscapeInto(const std::string& s, std::string* out) {
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(ch);
    } else if (c == '\n') {
      *out += "\\n";
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(ch);
    }
  }
}

// Same report shape as dpbench_merge's --error-json: stage, offending
// path, status code name, the exit code the caller sees, and whether a
// retry can fix it.
int WriteErrorJson(const std::string& dest, bool ok, const std::string& stage,
                   const std::string& path, const Status& st, int exit_code,
                   uint64_t tasks) {
  std::string body = "{\n  \"ok\": ";
  body += ok ? "true" : "false";
  if (ok) {
    body += ",\n  \"tasks\": " + std::to_string(tasks);
  } else {
    body += ",\n  \"stage\": \"" + stage + "\"";
    body += ",\n  \"path\": \"";
    JsonEscapeInto(path, &body);
    body += "\"";
    body += ",\n  \"status\": \"";
    body += StatusCodeToString(st.code());
    body += "\"";
    body += ",\n  \"message\": \"";
    JsonEscapeInto(st.message(), &body);
    body += "\"";
    body += ",\n  \"exit_code\": " + std::to_string(exit_code);
    bool retryable = exit_code == 2 || exit_code == 3 || exit_code == 5;
    body += ",\n  \"retryable\": ";
    body += retryable ? "true" : "false";
  }
  body += "\n}\n";
  if (dest == "-") {
    std::cout << body;
    return 0;
  }
  std::ofstream os(dest, std::ios::trunc);
  os << body;
  if (!os) {
    std::cerr << "cannot write " << dest << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config = tools::DefaultGridConfig();
  distrib::CoordinatorOptions options;
  std::string port_file, csv_out, error_json;
  std::string fault_spec;
  if (const char* env = std::getenv("DPBENCH_FAULT")) fault_spec = env;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string grid_error;
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    uint64_t u64 = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--port="), &u64) ||
          u64 > 65535) {
        std::cerr << "--port expects 0..65535\n";
        return 1;
      }
      options.port = static_cast<uint16_t>(u64);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value("--port-file=");
    } else if (arg.rfind("--tasks=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--tasks="), &u64) ||
          u64 == 0) {
        std::cerr << "--tasks expects a positive integer\n";
        return 1;
      }
      options.num_tasks = u64;
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      options.checkpoint_path = value("--checkpoint=");
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      csv_out = value("--csv-out=");
    } else if (arg.rfind("--error-json=", 0) == 0) {
      error_json = value("--error-json=");
    } else if (arg.rfind("--heartbeat-timeout-ms=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(
              value("--heartbeat-timeout-ms="), &u64) ||
          u64 == 0) {
        std::cerr << "--heartbeat-timeout-ms expects a positive integer\n";
        return 1;
      }
      options.heartbeat_timeout_ms = static_cast<int>(u64);
    } else if (arg.rfind("--min-straggler-ms=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--min-straggler-ms="),
                                                &u64)) {
        std::cerr << "--min-straggler-ms expects an integer\n";
        return 1;
      }
      options.min_straggler_ms = static_cast<int>(u64);
    } else if (arg.rfind("--straggler-factor=", 0) == 0) {
      options.straggler_factor = std::atof(value("--straggler-factor=").c_str());
      if (options.straggler_factor < 1.0) {
        std::cerr << "--straggler-factor expects a number >= 1\n";
        return 1;
      }
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = value("--fault=");
    } else if (tools::ParseGridFlag(arg, &config, &grid_error)) {
      if (!grid_error.empty()) {
        std::cerr << grid_error << "\n";
        return 1;
      }
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }
  if (Status st = tools::ResolveDefaultAlgorithms(&config); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  auto fault = ParseFaultSpec(fault_spec);
  if (!fault.ok()) {
    std::cerr << fault.status().ToString() << "\n";
    return 1;
  }
  options.fault = *fault;

  // Failure path shared by both stages: report to stderr, optionally as
  // JSON, and exit with the stage-appropriate code.
  auto fail = [&](const std::string& stage, const std::string& path,
                  const Status& st, int code) -> int {
    std::cerr << "dpbench_coord " << stage << " failed: " << st.ToString()
              << "\n";
    if (!error_json.empty()) {
      WriteErrorJson(error_json, false, stage, path, st, code, 0);
    }
    return code;
  };

  auto coord = distrib::Coordinator::Create(config, options);
  if (!coord.ok()) {
    return fail("create", options.checkpoint_path, coord.status(),
                CreateExitCode(coord.status()));
  }
  std::cerr << "coordinator listening on 127.0.0.1:" << coord->port()
            << " (" << options.num_tasks << " tasks)\n";
  if (!port_file.empty()) {
    // Write-then-rename so workers polling for the file never read a
    // half-written port.
    std::string tmp = port_file + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      os << coord->port() << "\n";
      if (!os) {
        std::cerr << "cannot write " << tmp << "\n";
        return 1;
      }
    }
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::cerr << "cannot rename " << tmp << " to " << port_file << "\n";
      return 1;
    }
  }

  distrib::CoordinatorSummary summary;
  auto merged = coord->Serve(&summary);
  std::cerr << "run summary: tasks=" << summary.tasks
            << " tasks_resumed=" << summary.tasks_resumed
            << " workers_seen=" << summary.workers_seen
            << " workers_lost=" << summary.workers_lost
            << " tasks_reissued=" << summary.tasks_reissued
            << " speculative_issued=" << summary.speculative_issued
            << " duplicate_results=" << summary.duplicate_results
            << " corrupt_uploads=" << summary.corrupt_uploads
            << " checkpoint_writes=" << summary.checkpoint_writes
            << " checkpoint_failures=" << summary.checkpoint_failures << "\n";
  if (!merged.ok()) {
    return fail("serve", "", merged.status(), ServeExitCode(merged.status()));
  }

  if (csv) WriteCsv(merged->cells, std::cout);
  if (!csv_out.empty()) {
    if (Status st = tools::WriteCsvFile(csv_out, merged->cells); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  if (!error_json.empty()) {
    if (WriteErrorJson(error_json, true, "", "", Status::OK(), 0,
                       summary.tasks) != 0) {
      return 1;
    }
  }
  const RunDiagnostics& d = merged->diagnostics;
  std::cerr << "merged " << d.cells << " cells, " << d.trials
            << " trials across " << summary.workers_seen << " workers ("
            << summary.tasks_resumed << " tasks from checkpoint)\n";
  return 0;
}
