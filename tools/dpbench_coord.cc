// dpbench_coord — coordinator daemon for fault-tolerant distributed runs.
//
// Partitions the experiment grid into --tasks strided shards (the same
// deterministic partition dpbench_shard uses), serves them to
// dpbench_worker daemons over a loopback TCP protocol, survives worker
// death and stragglers (heartbeat timeouts, speculative re-issue), rejects
// corrupt uploads by shard-section checksum, and writes a merged CSV
// byte-identical to the monolithic `dpbench_run --csv-out` of the same
// grid.
//
// Examples:
//   dpbench_coord --port=0 --port-file=port.txt --tasks=6 \
//                 --csv-out=merged.csv --epsilons=0.1,0.5
//   dpbench_worker --port=$(cat port.txt) --name=w0 &
//   dpbench_worker --port=$(cat port.txt) --name=w1 &
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/engine/distrib.h"
#include "src/engine/report.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

void PrintUsage() {
  std::cout
      << "usage: dpbench_coord [flags]\n"
         "  --port=N               TCP port on 127.0.0.1 (0 = ephemeral)\n"
         "  --port-file=FILE       write the bound port to FILE (for "
         "workers)\n"
         "  --tasks=N              grid partitions to schedule (default 8)\n"
         "  --csv                  print merged results as CSV to stdout\n"
         "  --csv-out=FILE         write merged results as CSV to FILE\n"
         "  --heartbeat-timeout-ms=N  silence before a worker is lost "
         "(default 5000)\n"
         "  --min-straggler-ms=N   floor before speculative re-issue "
         "(default 10000)\n"
         "  --straggler-factor=F   straggler threshold as F x median task "
         "time (default 3)\n"
         "grid flags (same meaning as dpbench_run):\n"
      << tools::GridFlagsHelp();
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config = tools::DefaultGridConfig();
  distrib::CoordinatorOptions options;
  std::string port_file, csv_out;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string grid_error;
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    uint64_t u64 = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--port="), &u64) ||
          u64 > 65535) {
        std::cerr << "--port expects 0..65535\n";
        return 1;
      }
      options.port = static_cast<uint16_t>(u64);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value("--port-file=");
    } else if (arg.rfind("--tasks=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--tasks="), &u64) ||
          u64 == 0) {
        std::cerr << "--tasks expects a positive integer\n";
        return 1;
      }
      options.num_tasks = u64;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg.rfind("--csv-out=", 0) == 0) {
      csv_out = value("--csv-out=");
    } else if (arg.rfind("--heartbeat-timeout-ms=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(
              value("--heartbeat-timeout-ms="), &u64) ||
          u64 == 0) {
        std::cerr << "--heartbeat-timeout-ms expects a positive integer\n";
        return 1;
      }
      options.heartbeat_timeout_ms = static_cast<int>(u64);
    } else if (arg.rfind("--min-straggler-ms=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--min-straggler-ms="),
                                                &u64)) {
        std::cerr << "--min-straggler-ms expects an integer\n";
        return 1;
      }
      options.min_straggler_ms = static_cast<int>(u64);
    } else if (arg.rfind("--straggler-factor=", 0) == 0) {
      options.straggler_factor = std::atof(value("--straggler-factor=").c_str());
      if (options.straggler_factor < 1.0) {
        std::cerr << "--straggler-factor expects a number >= 1\n";
        return 1;
      }
    } else if (tools::ParseGridFlag(arg, &config, &grid_error)) {
      if (!grid_error.empty()) {
        std::cerr << grid_error << "\n";
        return 1;
      }
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }
  if (Status st = tools::ResolveDefaultAlgorithms(&config); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  auto coord = distrib::Coordinator::Create(config, options);
  if (!coord.ok()) {
    std::cerr << "cannot start coordinator: " << coord.status().ToString()
              << "\n";
    return 1;
  }
  std::cerr << "coordinator listening on 127.0.0.1:" << coord->port()
            << " (" << options.num_tasks << " tasks)\n";
  if (!port_file.empty()) {
    // Write-then-rename so workers polling for the file never read a
    // half-written port.
    std::string tmp = port_file + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      os << coord->port() << "\n";
      if (!os) {
        std::cerr << "cannot write " << tmp << "\n";
        return 1;
      }
    }
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::cerr << "cannot rename " << tmp << " to " << port_file << "\n";
      return 1;
    }
  }

  distrib::CoordinatorSummary summary;
  auto merged = coord->Serve(&summary);
  std::cerr << "run summary: tasks=" << summary.tasks
            << " workers_seen=" << summary.workers_seen
            << " workers_lost=" << summary.workers_lost
            << " tasks_reissued=" << summary.tasks_reissued
            << " speculative_issued=" << summary.speculative_issued
            << " duplicate_results=" << summary.duplicate_results
            << " corrupt_uploads=" << summary.corrupt_uploads << "\n";
  if (!merged.ok()) {
    std::cerr << "distributed run failed: " << merged.status().ToString()
              << "\n";
    return 1;
  }

  if (csv) WriteCsv(merged->cells, std::cout);
  if (!csv_out.empty()) {
    if (Status st = tools::WriteCsvFile(csv_out, merged->cells); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  const RunDiagnostics& d = merged->diagnostics;
  std::cerr << "merged " << d.cells << " cells, " << d.trials
            << " trials across " << summary.workers_seen << " workers\n";
  return 0;
}
