// dpbench_serve — always-on serving daemon (engine/serve).
//
// Answers range-query workload requests over loopback TCP through cached
// plans and the scratch ExecuteInto pipeline, with per-(user, dataset)
// privacy-budget ledgers persisted to --ledger: a killed-and-restarted
// daemon remembers every epsilon it ever granted. Stop it with a
// dpbench_client --stop message or SIGINT/SIGTERM.
//
// Examples:
//   dpbench_serve --port=0 --port-file=port.txt --ledger=ledger.bin \
//                 --budget=1.0 &
//   dpbench_client --port=$(cat port.txt) --user=alice --dataset=ADULT \
//                  --algorithm=IDENTITY --epsilon=0.1 --range=0:1023
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "src/engine/serve.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

// SIGINT/SIGTERM request the same graceful drain a client --stop does.
// The handler only sets a flag; a watcher thread calls Server::Stop().
volatile std::sig_atomic_t g_signaled = 0;

void OnSignal(int) { g_signaled = 1; }

void PrintUsage() {
  std::cout
      << "usage: dpbench_serve [flags]\n"
         "  --port=N          TCP port on 127.0.0.1 (default 0 = "
         "ephemeral)\n"
         "  --port-file=FILE  write the bound port to FILE (for clients)\n"
         "  --ledger=FILE     persist budget ledgers to FILE (omit for\n"
         "                    in-memory-only ledgers)\n"
         "  --budget=EPS      epsilon granted per (user, dataset) pair\n"
         "                    (default 1.0; must be positive and finite)\n"
         "  --seed=N          master noise seed (default 20160626)\n"
         "  --max-plans=N     LRU bound on cached plans (default 64)\n"
         "  --max-datasets=N  LRU bound on hydrated datasets (default 16)\n"
         "  --max-scratch=N   bound on pooled scratch arenas (default 16)\n";
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    uint64_t u64 = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--port="), &u64) ||
          u64 > 65535) {
        std::cerr << "--port expects 0..65535\n";
        return 1;
      }
      options.port = static_cast<uint16_t>(u64);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value("--port-file=");
    } else if (arg.rfind("--ledger=", 0) == 0) {
      options.ledger_path = value("--ledger=");
    } else if (arg.rfind("--budget=", 0) == 0) {
      double eps = 0.0;
      if (!tools::grid_flags_internal::ParseF64(value("--budget="), &eps) ||
          !ValidateEpsilon(eps).ok()) {
        std::cerr << "--budget expects a positive finite epsilon, got '"
                  << value("--budget=") << "'\n";
        return 1;
      }
      options.default_budget = eps;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--seed="), &u64)) {
        std::cerr << "--seed expects an unsigned integer\n";
        return 1;
      }
      options.seed = u64;
    } else if (arg.rfind("--max-plans=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--max-plans="),
                                                &u64) ||
          u64 == 0) {
        std::cerr << "--max-plans expects a positive integer\n";
        return 1;
      }
      options.max_plans = static_cast<size_t>(u64);
    } else if (arg.rfind("--max-datasets=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--max-datasets="),
                                                &u64) ||
          u64 == 0) {
        std::cerr << "--max-datasets expects a positive integer\n";
        return 1;
      }
      options.max_datasets = static_cast<size_t>(u64);
    } else if (arg.rfind("--max-scratch=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--max-scratch="),
                                                &u64) ||
          u64 == 0) {
        std::cerr << "--max-scratch expects a positive integer\n";
        return 1;
      }
      options.max_scratch = static_cast<size_t>(u64);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }

  auto server = serve::Server::Create(options);
  if (!server.ok()) {
    std::cerr << "cannot start server: " << server.status().ToString()
              << "\n";
    return 1;
  }
  std::cerr << "dpbench_serve listening on 127.0.0.1:" << server->port();
  if (!options.ledger_path.empty()) {
    std::cerr << " (ledger: " << options.ledger_path << ")";
  }
  std::cerr << "\n";

  if (!port_file.empty()) {
    // Write-then-rename so clients polling for the file never read a
    // half-written port.
    std::string tmp = port_file + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      os << server->port() << "\n";
      if (!os) {
        std::cerr << "cannot write " << tmp << "\n";
        return 1;
      }
    }
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::cerr << "cannot rename " << tmp << " to " << port_file << "\n";
      return 1;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::atomic<bool> done{false};
  std::thread watcher([&server, &done] {
    while (!g_signaled && !done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server->Stop();
  });

  Status st = server->Serve();
  done.store(true);
  watcher.join();
  serve::ServeStats stats = server->stats();
  std::cerr << "serve summary: requests=" << stats.requests
            << " admitted=" << stats.admitted
            << " refused_budget=" << stats.refused_budget
            << " refused_invalid=" << stats.refused_invalid
            << " internal_errors=" << stats.internal_errors
            << " plan_cache_hits=" << stats.plan_cache_hits
            << " plan_cache_misses=" << stats.plan_cache_misses
            << " plan_cache_evictions=" << stats.plan_cache_evictions
            << " connections=" << stats.connections << "\n";
  if (!st.ok()) {
    std::cerr << "serve loop failed: " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}
