// dpbench_serve — always-on serving daemon (engine/serve).
//
// Answers range-query workload requests over loopback TCP through cached
// plans and the scratch ExecuteInto pipeline, with per-(user, dataset)
// privacy-budget ledgers persisted to --ledger: a killed-and-restarted
// daemon remembers every epsilon it ever granted. Stop it with a
// dpbench_client --stop message or SIGINT/SIGTERM.
//
// With --journal, durability shifts from per-request snapshot rewrites to
// an append-only charge journal: every admission decision is appended
// (checksummed) before its query executes, boot replays the journal over
// the last snapshot, and `dpbench_serve --compact-journal` folds the
// journal back into the snapshot offline. --load-plans hydrates the plan
// cache from a dpbench_run --export-plans file at startup, so the first
// request of each cached configuration skips planning.
//
// Fault injection for the crash-recovery tests, via DPBENCH_FAULT or
// --fault= (the flag wins): crash_at:after_charge_before_journal,
// crash_at:after_journal_before_persist, and crash_at:mid_compaction kill
// the process (SIGKILL) at the named durability window.
//
// Examples:
//   dpbench_serve --port=0 --port-file=port.txt --ledger=ledger.bin \
//                 --journal=journal.bin --budget=1.0 &
//   dpbench_client --port=$(cat port.txt) --user=alice --dataset=ADULT \
//                  --algorithm=IDENTITY --epsilon=0.1 --range=0:1023
//   dpbench_serve --ledger=ledger.bin --journal=journal.bin \
//                 --compact-journal
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "src/engine/serve.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

// SIGINT/SIGTERM request the same graceful drain a client --stop does.
// The handler only sets a flag; a watcher thread calls Server::Stop().
volatile std::sig_atomic_t g_signaled = 0;

void OnSignal(int) { g_signaled = 1; }

void PrintUsage() {
  std::cout
      << "usage: dpbench_serve [flags]\n"
         "  --port=N          TCP port on 127.0.0.1 (default 0 = "
         "ephemeral)\n"
         "  --port-file=FILE  write the bound port to FILE (for clients)\n"
         "  --ledger=FILE     persist budget ledgers to FILE (omit for\n"
         "                    in-memory-only ledgers)\n"
         "  --journal=FILE    append-only charge journal; admission\n"
         "                    decisions are appended before execution and\n"
         "                    replayed over the ledger snapshot at boot\n"
         "  --compact-journal fold --journal into --ledger and exit (no\n"
         "                    serving; needs both flags)\n"
         "  --load-plans=FILE hydrate the plan cache from a plan-cache\n"
         "                    file (dpbench_run --export-plans) at startup\n"
         "  --budget=EPS      epsilon granted per (user, dataset) pair\n"
         "                    (default 1.0; must be positive and finite)\n"
         "  --seed=N          master noise seed (default 20160626)\n"
         "  --max-plans=N     LRU bound on cached plans (default 64)\n"
         "  --max-datasets=N  LRU bound on hydrated datasets (default 16)\n"
         "  --max-scratch=N   bound on pooled scratch arenas (default 16)\n"
         "  --fault=SPEC      inject faults (overrides DPBENCH_FAULT)\n";
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string port_file;
  std::string fault_spec;
  if (const char* env = std::getenv("DPBENCH_FAULT")) fault_spec = env;
  bool compact = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    uint64_t u64 = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--port="), &u64) ||
          u64 > 65535) {
        std::cerr << "--port expects 0..65535\n";
        return 1;
      }
      options.port = static_cast<uint16_t>(u64);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = value("--port-file=");
    } else if (arg.rfind("--ledger=", 0) == 0) {
      options.ledger_path = value("--ledger=");
    } else if (arg.rfind("--journal=", 0) == 0) {
      options.journal_path = value("--journal=");
    } else if (arg == "--compact-journal") {
      compact = true;
    } else if (arg.rfind("--load-plans=", 0) == 0) {
      options.load_plans_path = value("--load-plans=");
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = value("--fault=");
    } else if (arg.rfind("--budget=", 0) == 0) {
      double eps = 0.0;
      if (!tools::grid_flags_internal::ParseF64(value("--budget="), &eps) ||
          !ValidateEpsilon(eps).ok()) {
        std::cerr << "--budget expects a positive finite epsilon, got '"
                  << value("--budget=") << "'\n";
        return 1;
      }
      options.default_budget = eps;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--seed="), &u64)) {
        std::cerr << "--seed expects an unsigned integer\n";
        return 1;
      }
      options.seed = u64;
    } else if (arg.rfind("--max-plans=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--max-plans="),
                                                &u64) ||
          u64 == 0) {
        std::cerr << "--max-plans expects a positive integer\n";
        return 1;
      }
      options.max_plans = static_cast<size_t>(u64);
    } else if (arg.rfind("--max-datasets=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--max-datasets="),
                                                &u64) ||
          u64 == 0) {
        std::cerr << "--max-datasets expects a positive integer\n";
        return 1;
      }
      options.max_datasets = static_cast<size_t>(u64);
    } else if (arg.rfind("--max-scratch=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--max-scratch="),
                                                &u64) ||
          u64 == 0) {
        std::cerr << "--max-scratch expects a positive integer\n";
        return 1;
      }
      options.max_scratch = static_cast<size_t>(u64);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }

  auto fault = ParseFaultSpec(fault_spec);
  if (!fault.ok()) {
    std::cerr << fault.status().ToString() << "\n";
    return 1;
  }
  options.fault = *fault;

  if (compact) {
    auto summary = serve::CompactJournal(options.ledger_path,
                                         options.journal_path,
                                         options.default_budget,
                                         options.fault);
    if (!summary.ok()) {
      std::cerr << "compaction failed: " << summary.status().ToString()
                << "\n";
      return 1;
    }
    std::cerr << "compacted " << options.journal_path << " into "
              << options.ledger_path << ": folded_records="
              << summary->folded_records << " entries=" << summary->entries
              << " journal_seq=" << summary->journal_seq << "\n";
    return 0;
  }

  auto server = serve::Server::Create(options);
  if (!server.ok()) {
    std::cerr << "cannot start server: " << server.status().ToString()
              << "\n";
    return 1;
  }
  std::cerr << "dpbench_serve listening on 127.0.0.1:" << server->port();
  if (!options.ledger_path.empty()) {
    std::cerr << " (ledger: " << options.ledger_path << ")";
  }
  if (!options.journal_path.empty()) {
    std::cerr << " (journal: " << options.journal_path << ")";
  }
  serve::ServeStats boot = server->stats();
  if (boot.journal_replayed > 0) {
    std::cerr << " (replayed " << boot.journal_replayed
              << " journal records)";
  }
  if (boot.plans_hydrated > 0) {
    std::cerr << " (hydrated " << boot.plans_hydrated << " plans)";
  }
  std::cerr << "\n";

  if (!port_file.empty()) {
    // Write-then-rename so clients polling for the file never read a
    // half-written port.
    std::string tmp = port_file + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      os << server->port() << "\n";
      if (!os) {
        std::cerr << "cannot write " << tmp << "\n";
        return 1;
      }
    }
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::cerr << "cannot rename " << tmp << " to " << port_file << "\n";
      return 1;
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::atomic<bool> done{false};
  std::thread watcher([&server, &done] {
    while (!g_signaled && !done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server->Stop();
  });

  Status st = server->Serve();
  done.store(true);
  watcher.join();
  serve::ServeStats stats = server->stats();
  std::cerr << "serve summary: requests=" << stats.requests
            << " admitted=" << stats.admitted
            << " refused_budget=" << stats.refused_budget
            << " refused_invalid=" << stats.refused_invalid
            << " internal_errors=" << stats.internal_errors
            << " plan_cache_hits=" << stats.plan_cache_hits
            << " plan_cache_misses=" << stats.plan_cache_misses
            << " plan_cache_evictions=" << stats.plan_cache_evictions
            << " connections=" << stats.connections
            << " journal_appends=" << stats.journal_appends
            << " journal_replayed=" << stats.journal_replayed
            << " plans_hydrated=" << stats.plans_hydrated << "\n";
  if (!st.ok()) {
    std::cerr << "serve loop failed: " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}
