// Shared grid-flag parsing for the CLI front ends (dpbench_run,
// dpbench_shard). One parser, one set of defaults, one help block: the
// shard/merge byte-identity contract depends on both binaries building
// the *same* ExperimentConfig from the same flags, so the grid surface
// must not be able to drift between them.
#ifndef DPBENCH_TOOLS_GRID_FLAGS_H_
#define DPBENCH_TOOLS_GRID_FLAGS_H_

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/engine/report.h"
#include "src/engine/runner.h"
#include "src/mechanisms/budget.h"

namespace dpbench {
namespace tools {

inline std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// The defaults both CLIs start from (a small ADULT grid).
inline ExperimentConfig DefaultGridConfig() {
  ExperimentConfig config;
  config.datasets = {"ADULT"};
  config.scales = {1000, 100000};
  config.domain_sizes = {1024};
  config.epsilons = {0.1};
  config.data_samples = 2;
  config.runs_per_sample = 5;
  return config;
}

/// Help text for the flags ParseGridFlag understands.
inline const char* GridFlagsHelp() {
  return
      "  --algorithms=A,B,...   algorithms to run (default: all for dims)\n"
      "  --datasets=D1,D2,...   datasets (default: ADULT)\n"
      "  --scales=1000,...      dataset scales (default: 1000,100000)\n"
      "  --domains=1024,...     per-dimension domain sizes (default: 1024)\n"
      "  --epsilons=0.1,...     privacy budgets (default: 0.1)\n"
      "  --workload=prefix|random2d|identity (default: prefix)\n"
      "  --queries=N            random2d query count (default: 2000)\n"
      "  --samples=N            data vectors from generator G (default: 2)\n"
      "  --runs=N               runs per vector (default: 5)\n"
      "  --seed=N               master seed (default: 20160626)\n"
      "  --threads=N            worker threads (default: 1; results are\n"
      "                         identical regardless of thread count)\n"
      "  --pin-threads          pin spawned pool workers to cores\n"
      "                         (Linux, best-effort; never affects results)\n";
}

namespace grid_flags_internal {

inline bool ParseU64(const std::string& s, uint64_t* out) {
  // std::stoull accepts leading whitespace and silently wraps negative
  // input to huge unsigned values; require plain digits so "-3" is a
  // parse error, not shard 0 of 2^64-3.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    size_t pos = 0;
    uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

inline bool ParseF64(const std::string& s, double* out) {
  try {
    size_t pos = 0;
    double v = std::stod(s, &pos);
    if (pos != s.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace grid_flags_internal

/// Applies one grid flag to `config`. Returns true when the flag was a
/// grid flag (consumed), false when the caller should handle it; a
/// malformed value sets *error and returns true (never throws).
///
/// Validation is loud and parse-time: zero counts (--samples=0, --runs=0,
/// --threads=0, ...) and empty value lists are rejected here, not left to
/// produce a silently empty grid or a zero-trial "success" downstream;
/// epsilons must be positive and finite (ValidateEpsilon — the same check
/// dpbench_serve applies at admission), so `--epsilons=0`, `-1`, `nan`
/// and `inf` all fail naming the bad token.
inline bool ParseGridFlag(const std::string& arg, ExperimentConfig* config,
                          std::string* error) {
  using grid_flags_internal::ParseF64;
  using grid_flags_internal::ParseU64;
  auto value = [&](const char* prefix) -> std::string {
    return arg.substr(std::strlen(prefix));
  };
  auto bad = [&](const std::string& s) {
    *error = "malformed value '" + s + "' in " + arg;
  };
  auto zero = [&](const std::string& s) {
    *error = "value '" + s + "' in " + arg + " must be positive";
  };
  auto empty_list = [&]() { *error = "empty value list in " + arg; };
  // Parses one strictly positive count token; sets *error on failure.
  auto positive = [&](const std::string& s, uint64_t* v) {
    if (!ParseU64(s, v)) return bad(s), false;
    if (*v == 0) return zero(s), false;
    return true;
  };
  if (arg.rfind("--algorithms=", 0) == 0) {
    // An empty list is meaningful here: "all algorithms for the
    // dataset's dimensionality" (ResolveDefaultAlgorithms).
    config->algorithms = SplitCsv(value("--algorithms="));
  } else if (arg.rfind("--datasets=", 0) == 0) {
    config->datasets = SplitCsv(value("--datasets="));
    if (config->datasets.empty()) return empty_list(), true;
  } else if (arg.rfind("--scales=", 0) == 0) {
    config->scales.clear();
    for (const auto& s : SplitCsv(value("--scales="))) {
      uint64_t v;
      if (!positive(s, &v)) return true;
      config->scales.push_back(v);
    }
    if (config->scales.empty()) return empty_list(), true;
  } else if (arg.rfind("--domains=", 0) == 0) {
    config->domain_sizes.clear();
    for (const auto& s : SplitCsv(value("--domains="))) {
      uint64_t v;
      if (!positive(s, &v)) return true;
      config->domain_sizes.push_back(static_cast<size_t>(v));
    }
    if (config->domain_sizes.empty()) return empty_list(), true;
  } else if (arg.rfind("--epsilons=", 0) == 0) {
    config->epsilons.clear();
    for (const auto& s : SplitCsv(value("--epsilons="))) {
      double v;
      if (!ParseF64(s, &v)) return bad(s), true;
      if (!ValidateEpsilon(v).ok()) {
        *error = "invalid epsilon '" + s + "' in " + arg +
                 " (must be positive and finite)";
        return true;
      }
      config->epsilons.push_back(v);
    }
    if (config->epsilons.empty()) return empty_list(), true;
  } else if (arg.rfind("--workload=", 0) == 0) {
    std::string w = value("--workload=");
    if (w == "prefix") {
      config->workload = WorkloadKind::kPrefix1D;
    } else if (w == "random2d") {
      config->workload = WorkloadKind::kRandomRange2D;
    } else if (w == "identity") {
      config->workload = WorkloadKind::kIdentity;
    } else {
      *error = "unknown workload " + w;
    }
  } else if (arg.rfind("--queries=", 0) == 0) {
    uint64_t v;
    if (!positive(value("--queries="), &v)) return true;
    config->random_queries = static_cast<size_t>(v);
  } else if (arg.rfind("--samples=", 0) == 0) {
    uint64_t v;
    if (!positive(value("--samples="), &v)) return true;
    config->data_samples = static_cast<size_t>(v);
  } else if (arg.rfind("--runs=", 0) == 0) {
    uint64_t v;
    if (!positive(value("--runs="), &v)) return true;
    config->runs_per_sample = static_cast<size_t>(v);
  } else if (arg.rfind("--seed=", 0) == 0) {
    uint64_t v;
    if (!ParseU64(value("--seed="), &v)) return bad(value("--seed=")), true;
    config->seed = v;  // 0 is a legitimate seed
  } else if (arg.rfind("--threads=", 0) == 0) {
    uint64_t v;
    if (!positive(value("--threads="), &v)) return true;
    config->threads = static_cast<size_t>(v);
  } else if (arg == "--pin-threads") {
    config->pin_threads = true;
  } else {
    return false;
  }
  return true;
}

/// Writes the cells as CSV to `path`, surfacing open and short-write
/// failures. One implementation for dpbench_run and dpbench_merge: their
/// --csv-out files are byte-compared by the shard CI contract, so the
/// writing code must not be able to drift between them.
inline Status WriteCsvFile(const std::string& path,
                           const std::vector<CellResult>& cells) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  WriteCsv(cells, os);
  os.flush();
  if (!os) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

/// Fills an empty algorithm list with every algorithm valid for the
/// first dataset's dimensionality (the shared "--algorithms omitted"
/// behavior).
inline Status ResolveDefaultAlgorithms(ExperimentConfig* config) {
  if (config->datasets.empty()) {
    return Status::InvalidArgument("no datasets given");
  }
  if (!config->algorithms.empty()) return Status::OK();
  DPB_ASSIGN_OR_RETURN(DatasetInfo info,
                       DatasetRegistry::Info(config->datasets.front()));
  config->algorithms = MechanismRegistry::NamesForDims(info.dims);
  return Status::OK();
}

}  // namespace tools
}  // namespace dpbench

#endif  // DPBENCH_TOOLS_GRID_FLAGS_H_
