// dpbench_compare — regression comparison of two benchmark CSV outputs.
//
// Joins two CSV files (produced by dpbench_run --csv or any bench binary
// with --csv) on the configuration key and reports per-cell error ratios,
// flagging cells whose mean error moved more than a threshold. Useful for
// validating algorithm changes against a golden run.
//
//   dpbench_run ... --csv > baseline.csv
//   (change code)
//   dpbench_run ... --csv > candidate.csv
//   dpbench_compare baseline.csv candidate.csv [--threshold=1.2]
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "src/engine/report.h"

using namespace dpbench;

namespace {

Result<std::vector<CellResult>> Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  // Tolerate leading non-CSV banner lines by skipping to the header.
  std::string content, line;
  bool found = false;
  while (std::getline(in, line)) {
    if (!found && line.rfind("algorithm,", 0) == 0) found = true;
    if (found) content += line + "\n";
  }
  std::istringstream iss(content);
  return ReadCsv(iss);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: dpbench_compare baseline.csv candidate.csv"
                 " [--threshold=R]\n";
    return 1;
  }
  double threshold = 1.2;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(12));
    }
  }

  auto baseline = Load(argv[1]);
  auto candidate = Load(argv[2]);
  if (!baseline.ok() || !candidate.ok()) {
    std::cerr << (baseline.ok() ? candidate.status() : baseline.status())
                     .ToString()
              << "\n";
    return 1;
  }

  std::map<ConfigKey, const CellResult*> base_by_key;
  for (const CellResult& cell : *baseline) {
    base_by_key[cell.key] = &cell;
  }

  TextTable table({"configuration", "baseline", "candidate", "ratio",
                   "verdict"});
  size_t regressions = 0, improvements = 0, matched = 0;
  for (const CellResult& cand : *candidate) {
    auto it = base_by_key.find(cand.key);
    if (it == base_by_key.end()) continue;
    ++matched;
    double base_mean = it->second->summary.mean;
    double ratio = (base_mean > 0.0) ? cand.summary.mean / base_mean : 0.0;
    std::string verdict;
    if (ratio > threshold) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (ratio < 1.0 / threshold) {
      verdict = "improved";
      ++improvements;
    }
    table.AddRow({cand.key.ToString(), TextTable::Num(base_mean),
                  TextTable::Num(cand.summary.mean), TextTable::Num(ratio),
                  verdict});
  }
  table.Print(std::cout);
  std::cout << "\nmatched " << matched << " cells; " << regressions
            << " regressions, " << improvements << " improvements at "
            << threshold << "x threshold\n";
  return regressions > 0 ? 2 : 0;
}
