// dpbench_worker — worker daemon for fault-tolerant distributed runs.
//
// Connects to a dpbench_coord coordinator, requests task assignments,
// executes each through the Runner shard path (bit-identical regardless
// of which worker runs a task), streams heartbeats while computing, and
// uploads self-verifying shard images. Survives a lost coordinator
// connection with exponential-backoff reconnects; a coordinator that has
// finished (or died for good) ends the worker cleanly.
//
// Fault injection, for tests and the CI smoke job, via the DPBENCH_FAULT
// environment variable or --fault= (the flag wins):
//   kill_after:N       exit abruptly after N uploads (0 = on first task)
//   drop_conn:N        drop and re-establish the connection after N uploads
//   corrupt_shard      flip one byte in each uploaded shard payload
//   straggle_first:MS  stall MS before executing the first task
//
// Example:
//   dpbench_worker --port=$(cat port.txt) --name=w0 --threads=2
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/engine/distrib.h"
#include "tools/grid_flags.h"

using namespace dpbench;

namespace {

void PrintUsage() {
  std::cout
      << "usage: dpbench_worker --port=N [flags]\n"
         "  --port=N               coordinator port on 127.0.0.1 "
         "(required)\n"
         "  --name=ID              worker name in heartbeats/logs "
         "(default: worker)\n"
         "  --threads=N            Runner threads per task (default 1)\n"
         "  --heartbeat-ms=N       progress-report period (default 500)\n"
         "  --reconnect-attempts=N connection retries before giving up "
         "(default 5)\n"
         "  --fault=SPEC           inject faults (overrides DPBENCH_FAULT)\n";
}

}  // namespace

int main(int argc, char** argv) {
  distrib::WorkerOptions options;
  std::string fault_spec;
  if (const char* env = std::getenv("DPBENCH_FAULT")) fault_spec = env;
  bool port_given = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    uint64_t u64 = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--port="), &u64) ||
          u64 == 0 || u64 > 65535) {
        std::cerr << "--port expects 1..65535\n";
        return 1;
      }
      options.port = static_cast<uint16_t>(u64);
      port_given = true;
    } else if (arg.rfind("--name=", 0) == 0) {
      options.name = value("--name=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--threads="),
                                                 &u64) ||
          u64 == 0) {
        std::cerr << "--threads expects a positive integer\n";
        return 1;
      }
      options.threads = static_cast<size_t>(u64);
    } else if (arg.rfind("--heartbeat-ms=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(value("--heartbeat-ms="),
                                                 &u64) ||
          u64 == 0) {
        std::cerr << "--heartbeat-ms expects a positive integer\n";
        return 1;
      }
      options.heartbeat_ms = static_cast<int>(u64);
    } else if (arg.rfind("--reconnect-attempts=", 0) == 0) {
      if (!tools::grid_flags_internal::ParseU64(
              value("--reconnect-attempts="), &u64) ||
          u64 == 0) {
        std::cerr << "--reconnect-attempts expects a positive integer\n";
        return 1;
      }
      options.reconnect_attempts = static_cast<int>(u64);
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = value("--fault=");
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      PrintUsage();
      return 1;
    }
  }
  if (!port_given) {
    std::cerr << "--port=N is required\n";
    PrintUsage();
    return 1;
  }
  auto fault = distrib::ParseFaultSpec(fault_spec);
  if (!fault.ok()) {
    std::cerr << fault.status().ToString() << "\n";
    return 1;
  }
  options.fault = *fault;

  auto stats = distrib::RunWorker(options);
  if (!stats.ok()) {
    std::cerr << options.name << ": " << stats.status().ToString() << "\n";
    return 1;
  }
  std::cerr << options.name << ": " << stats->tasks_completed
            << " tasks completed, " << stats->plans_hydrated
            << " plans hydrated from cache, " << stats->reconnects
            << " reconnects, ended by " << stats->ended_by << "\n";
  if (stats->killed_by_fault) {
    // Distinct code so scripts can tell an injected death from success.
    return 7;
  }
  return stats->ended_by == "protocol_error" ? 1 : 0;
}
