// Quickstart: release a differentially private histogram in ~30 lines.
//
//   1. Get your data as a DataVector (here: a benchmark dataset at scale
//      10,000 drawn through the DPBench data generator).
//   2. Pick an algorithm from the registry.
//   3. Run it with a privacy budget and answer range queries from the
//      estimate.
#include <iostream>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"
#include "src/workload/workload.h"

using namespace dpbench;

int main() {
  Rng rng(7);

  // 1. Data: the ADULT shape on a 1024-cell domain, 10,000 records.
  DataVector shape = DatasetRegistry::ShapeAtDomain("ADULT", 1024).value();
  DataVector data = SampleAtScale(shape, 10000, &rng).value();
  std::cout << "data: " << data.domain().ToString() << " cells, "
            << data.Scale() << " records, "
            << 100.0 * data.ZeroFraction() << "% empty cells\n";

  // 2. Algorithm: DAWA, the paper's best overall performer.
  MechanismPtr dawa = MechanismRegistry::Get("DAWA").value();

  // 3. Run under eps = 0.1 and answer all prefix range queries.
  Workload workload = Workload::Prefix1D(data.size());
  RunContext ctx{data, workload, /*epsilon=*/0.1, &rng, {}};
  DataVector release = dawa->Run(ctx).value();

  double err = WorkloadError(workload, data, release).value();
  std::cout << "DAWA scaled L2 per-query error at eps=0.1: " << err << "\n";

  // Any concrete range query is answered from the private release.
  RangeQuery q = RangeQuery::D1(100, 200);
  std::cout << "count in [100, 200]: true=" << q.Evaluate(data)
            << "  private=" << q.Evaluate(release) << "\n";
  return 0;
}
