// Spatial scenario: publish a private 2D heatmap of taxi pickups (the
// BJ-CABS workload from the paper) and answer arbitrary rectangular
// region counts. Compares the spatial specialists (AGRID, UGRID,
// QUADTREE) with DAWA-via-Hilbert and the baselines.
#include <iostream>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"
#include "src/engine/report.h"
#include "src/workload/workload.h"

using namespace dpbench;

int main() {
  Rng rng(88);
  const double epsilon = 0.1;
  const size_t side = 64;

  DataVector shape =
      DatasetRegistry::ShapeAtDomain("BJ-CABS-S", side).value();
  DataVector data = SampleAtScale(shape, 1000000, &rng).value();
  std::cout << "taxi pickups: " << data.domain().ToString() << " grid, "
            << data.Scale() << " trips\n\n";

  Workload workload = Workload::RandomRange(data.domain(), 1000, 5);
  std::vector<double> truth = workload.Evaluate(data);

  TextTable table({"algorithm", "scaled error", "example region"});
  RangeQuery downtown = RangeQuery::D2(side / 2 - 4, side / 2 + 4,
                                       side / 2 - 4, side / 2 + 4);
  double true_downtown = downtown.Evaluate(data);

  for (const char* name :
       {"UNIFORM", "IDENTITY", "HB", "QUADTREE", "UGRID", "AGRID", "DAWA"}) {
    MechanismPtr m = MechanismRegistry::Get(name).value();
    RunContext ctx{data, workload, epsilon, &rng, {}};
    ctx.side_info.true_scale = data.Scale();
    DataVector est = m->Run(ctx).value();
    double err = *ScaledL2PerQueryError(truth, workload.Evaluate(est),
                                        data.Scale());
    table.AddRow({name, TextTable::Num(err),
                  TextTable::Num(downtown.Evaluate(est))});
  }
  std::cout << "downtown region true count: " << true_downtown << "\n";
  table.Print(std::cout);
  std::cout << "\nPaper guidance (§8): AGRID consistently beats data-\n"
               "independent methods in 2D; DAWA can win on very sparse "
               "data.\n";
  return 0;
}
