// Rparam in action (paper §5.2, §6.4): learn MWEM's round count T on
// *synthetic* training shapes (power-law + normal) so that the deployed
// algorithm has no free parameters (Principle 6). This program regenerates
// the schedule compiled into MwemMechanism::TunedRounds and prints the
// error improvement it buys (Finding 7).
#include <iostream>

#include "src/algorithms/mwem.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"
#include "src/engine/report.h"
#include "src/engine/tuner.h"
#include "src/workload/workload.h"

using namespace dpbench;

int main() {
  // 1. Learn T per eps*scale regime on held-out synthetic shapes.
  TunerConfig config;
  for (double t : {2, 5, 10, 20, 40, 70, 100}) config.candidates.push_back({t});
  config.products = {1e2, 1e3, 1e4, 1e5};
  config.epsilon = 0.1;
  config.trials = 2;
  config.domain_size = 256;

  auto run_mwem = [](const ParamVector& theta, const DataVector& data,
                     double eps, Rng* rng) -> Result<double> {
    MwemMechanism m(false, static_cast<size_t>(theta[0]));
    Workload w = Workload::Prefix1D(data.size());
    RunContext ctx{data, w, eps, rng, {}};
    ctx.side_info.true_scale = data.Scale();
    DPB_ASSIGN_OR_RETURN(DataVector est, m.Run(ctx));
    return WorkloadError(w, data, est);
  };

  std::cout << "learning T on synthetic power-law/normal shapes...\n";
  auto schedule = LearnSchedule(config, run_mwem);
  if (!schedule.ok()) {
    std::cerr << schedule.status().ToString() << "\n";
    return 1;
  }
  TextTable learned({"eps*scale >=", "best T", "training error"});
  for (const ScheduleEntry& e : *schedule) {
    learned.AddRow({TextTable::Num(e.min_product),
                    TextTable::Num(e.theta[0]),
                    TextTable::Num(e.mean_error)});
  }
  learned.Print(std::cout);

  // 2. Evaluate default-T MWEM vs the compiled tuned schedule on real
  // benchmark shapes (never used in training).
  std::cout << "\nMWEM (T=10) vs MWEM* on held-out benchmark datasets:\n";
  Rng rng(5);
  TextTable eval({"dataset", "scale", "MWEM err", "MWEM* err", "ratio"});
  for (uint64_t scale : {uint64_t{1000}, uint64_t{1000000}}) {
    for (const char* ds : {"ADULT", "SEARCH"}) {
      DataVector shape = DatasetRegistry::ShapeAtDomain(ds, 256).value();
      DataVector data = SampleAtScale(shape, scale, &rng).value();
      Workload w = Workload::Prefix1D(256);
      auto mean_err = [&](const MwemMechanism& m) {
        double err = 0.0;
        const int trials = 3;
        for (int t = 0; t < trials; ++t) {
          RunContext ctx{data, w, 0.1, &rng, {}};
          ctx.side_info.true_scale = data.Scale();
          err += WorkloadError(w, data, m.Run(ctx).value()).value() /
                 trials;
        }
        return err;
      };
      double base = mean_err(MwemMechanism(false, 10));
      double tuned = mean_err(MwemMechanism(true));
      eval.AddRow({ds, std::to_string(scale), TextTable::Num(base),
                   TextTable::Num(tuned), TextTable::Num(base / tuned)});
    }
  }
  eval.Print(std::cout);
  std::cout << "\nThe paper's Finding 7: ratios near 1 at small scale,\n"
               "growing to ~28x at scale 1e8 (T=10 starves MWEM).\n";
  return 0;
}
