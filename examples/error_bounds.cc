// Planning a release without touching the data: public error bounds.
//
// A core advantage of data-independent algorithms (paper §8) is that their
// error is predictable *before* running on the private dataset. This
// example sizes a release: given a domain and workload, how large a
// privacy budget (or dataset) is needed for 1% error — decided entirely
// from public quantities.
#include <iostream>

#include "src/engine/bounds.h"
#include "src/engine/postprocess.h"
#include "src/engine/report.h"
#include "src/workload/workload.h"

using namespace dpbench;

int main() {
  const size_t n = 256;
  Workload w = Workload::Prefix1D(n);

  std::cout << "Planning a 1D range-query release, domain " << n
            << ", Prefix workload.\n"
            << "Scaled error predictions from closed forms (no data "
               "needed):\n\n";

  TextTable table({"epsilon", "scale", "IDENTITY bound", "H bound",
                   "meets 1%?"});
  for (double eps : {0.01, 0.1, 1.0}) {
    for (double scale : {1e3, 1e5}) {
      double ident = IdentityExpectedError(w, eps, scale).value();
      double hier = HierarchicalExpectedError(w, eps, scale, 2).value();
      table.AddRow({TextTable::Num(eps), TextTable::Num(scale),
                    TextTable::Num(ident), TextTable::Num(hier),
                    hier < 0.01 ? "yes (H)" : "no"});
    }
  }
  table.Print(std::cout);

  std::cout
      << "\nBecause scale and epsilon are exchangeable (paper §5.5), any\n"
         "(eps, scale) pair with the same product gives the same row —\n"
         "a data owner short on budget can compensate with more data.\n\n"
         "Post-processing is free (closed under DP): negative counts can\n"
         "be projected away without touching the privacy analysis:\n";

  DataVector noisy(Domain::D1(8), {4.2, -1.3, 0.4, 7.9, -0.2, 1.1, 0, 2.9});
  DataVector clean = ProjectNonNegativeKeepingTotal(noisy);
  std::cout << "  noisy:     ";
  for (size_t i = 0; i < noisy.size(); ++i) std::cout << noisy[i] << " ";
  std::cout << "\n  projected: ";
  for (size_t i = 0; i < clean.size(); ++i) std::cout << clean[i] << " ";
  std::cout << "\n  (total preserved: " << noisy.Scale() << " -> "
            << clean.Scale() << ")\n";
  return 0;
}
