// Census-bureau scenario (the paper's §1 motivation): a data owner wants
// to publish a 1D salary histogram under differential privacy and must
// pick an algorithm *without* looking at the data (that would leak).
//
// This example walks the DPBench decision procedure:
//   - determine the signal regime (eps * scale),
//   - consult benchmark results for that regime,
//   - release with the recommended algorithm and sanity-check against
//     the IDENTITY / UNIFORM baselines.
#include <iostream>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"
#include "src/engine/report.h"
#include "src/workload/workload.h"

using namespace dpbench;

int main() {
  Rng rng(2016);
  const double epsilon = 0.1;
  const size_t domain = 1024;

  // The private data: salary-like shape (MD-SAL), ~135k records.
  DataVector shape = DatasetRegistry::ShapeAtDomain("MD-SAL", domain).value();
  DataVector data = SampleAtScale(shape, 135727, &rng).value();
  Workload workload = Workload::Prefix1D(domain);
  std::vector<double> truth = workload.Evaluate(data);

  // Signal regime: eps * scale ~ 1.4e4 — a "medium signal" regime where
  // the paper found data-dependent algorithms competitive (Table 3a).
  double signal = epsilon * 135727;
  std::cout << "signal (eps*scale) = " << signal << "\n"
            << "paper guidance: medium signal -> try DAWA, keep baselines "
               "for reference\n\n";

  TextTable table({"algorithm", "scaled error", "vs IDENTITY"});
  double identity_err = 0.0;
  const int trials = 5;
  for (const char* name :
       {"IDENTITY", "UNIFORM", "HB", "DAWA", "AHP*", "MWEM*"}) {
    MechanismPtr m = MechanismRegistry::Get(name).value();
    double err = 0.0;
    for (int t = 0; t < trials; ++t) {
      RunContext ctx{data, workload, epsilon, &rng, {}};
      ctx.side_info.true_scale = data.Scale();
      DataVector est = m->Run(ctx).value();
      err += *ScaledL2PerQueryError(truth, workload.Evaluate(est),
                                    data.Scale()) /
             trials;
    }
    if (name == std::string("IDENTITY")) identity_err = err;
    table.AddRow({name, TextTable::Num(err),
                  TextTable::Num(err / identity_err)});
  }
  table.Print(std::cout);
  std::cout << "\nAlgorithms with ratio < 1 justify their complexity over\n"
               "the Laplace-mechanism baseline (paper Principle 10).\n";
  return 0;
}
