// The algorithm-selection problem (paper §1 and §8): a practitioner cannot
// try algorithms on the private data and pick the best — that itself leaks.
// DPBench's answer is regret analysis on *public* benchmark data: find the
// single algorithm whose error is, in geometric mean, closest to the
// per-setting oracle.
//
// This example runs a small benchmark grid and prints the regret ranking,
// mirroring §7.2 (paper: DAWA 1.32, HB 1.51 in 1D).
#include <iostream>

#include "src/engine/report.h"
#include "src/engine/runner.h"

using namespace dpbench;

int main() {
  ExperimentConfig config;
  config.algorithms = {"IDENTITY", "UNIFORM", "HB",   "DAWA",
                       "MWEM*",    "EFPA",    "AHP*", "PHP"};
  config.datasets = {"ADULT", "TRACE", "PATENT", "SEARCH", "MEDCOST",
                     "INCOME"};
  config.scales = {1000, 100000, 10000000};
  config.domain_sizes = {512};
  config.epsilons = {0.1};
  config.data_samples = 2;
  config.runs_per_sample = 3;
  config.workload = WorkloadKind::kPrefix1D;

  std::cout << "running " << config.algorithms.size() << " algorithms x "
            << config.datasets.size() << " datasets x "
            << config.scales.size() << " scales...\n";
  auto results = Runner::Run(config);
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }

  std::map<std::string, std::map<std::string, double>> mean_by_setting;
  for (const CellResult& cell : *results) {
    mean_by_setting[cell.key.dataset + "@" +
                    std::to_string(cell.key.scale)][cell.key.algorithm] =
        cell.summary.mean;
  }
  auto regret = ComputeRegret(mean_by_setting);
  if (!regret.ok()) {
    std::cerr << regret.status().ToString() << "\n";
    return 1;
  }

  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [algo, r] : *regret) ranked.push_back({r, algo});
  std::sort(ranked.begin(), ranked.end());

  TextTable table({"rank", "algorithm", "regret"});
  int rank = 1;
  for (const auto& [r, algo] : ranked) {
    table.AddRow({std::to_string(rank++), algo, TextTable::Num(r)});
  }
  table.Print(std::cout);
  std::cout << "\nRegret 1.0 would match the oracle in every setting.\n"
            << "A practitioner who must commit to one algorithm should\n"
            << "pick the top-ranked one (the paper finds DAWA).\n";
  return 0;
}
