// THROUGHPUT — trial-loop hot-path benchmark with allocation accounting.
//
// Three sections:
//   1. Per-plan trial loops for the converted data-independent mechanisms
//      (IDENTITY/H/HB/PRIVELET/GREEDY_H), comparing the allocating
//      Execute() path against the scratch ExecuteInto() path the runner
//      uses. Reports trials/sec and allocations/trial for both, measured
//      with a global counting operator new. The scratch path must be
//      allocation-free in the steady state: any regression exits nonzero,
//      so CI fails loudly instead of silently.
//   2. Data-dependent trial loops (MWEM/AHP/DAWA/PHP/EFPA/SF/DPCUBE/
//      AGRID/HYBRIDTREE): the converted scratch pipelines against the
//      legacy pass-through ReferencePlan (the pre-conversion execution
//      path, kept as the in-tree reference). Gates: bit-identical output
//      on a fresh stream, 0 allocs/trial on the scratch path for every
//      algorithm, and a throughput floor on the DAWA/MWEM/AHP subset
//      (--min-dd-speedup, the CI-recorded floor).
//   3. Lockstep trial loops: the lane-batched ExecuteMany path (4/8
//      trials per batch, SoA lanes, runtime ISA dispatch) against the
//      scalar ExecuteInto loop for every lane-capable plan. Gates: lane
//      extraction bit-identical to the scalar trial loop, 0 allocs/trial,
//      and the section aggregate at least --min-lockstep-speedup.
//   4. Runner throughput on a fixed small grid, exercising both
//      retain_raw_errors settings, reporting trials/sec and the lockstep
//      trial accounting from RunDiagnostics, and cross-checking the
//      streaming summaries against the exact ones.
//   5. Memory bandwidth: an in-process STREAM triad baseline, then the
//      same runner grid under node-aware placement and forced flat
//      single-node pinning — achieved GB/s (bytes/trial x trials/s) as
//      a fraction of triad, byte-identity across the two policies, and
//      a node-aware-vs-flat throughput floor.
//
// Every per-algorithm row also reports bytes/trial and achieved GB/s
// from an analytic traffic model (input read + estimate write + measured
// rng draws; see BytesPerTrial).
//
// Flags: --smoke (1 repetition, CI mode), --trials=N (per-plan loop
// length, default 2000), --threads=N (runner section, default 4),
// --min-dd-speedup=X (data-dependent gate floor, default 1.5),
// --min-lockstep-speedup=X (lockstep aggregate floor, default 2.0),
// --min-numa-ratio=X (node-aware vs flat-pinned floor, default 0.9),
// --min-runner-gbs=X (achieved-bandwidth floor, default off).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/algorithms/mechanism.h"
#include "src/common/lockstep.h"
#include "src/common/topology.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/runner.h"
#include "src/workload/workload.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: every operator new bumps a relaxed atomic.
// ---------------------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dpbench {
namespace {

using bench::NowSeconds;

struct PlanLoopResult {
  double trials_per_sec = 0.0;
  double allocs_per_trial = 0.0;
  double draws_per_trial = 0.0;  // rng stream positions consumed
};

// Analytic per-trial traffic model shared by the report columns: every
// trial reads the input histogram and writes the estimate (2n doubles)
// and transforms its measured rng draws (1 double each). Intermediate
// buffers (prefix tables, tree nodes) are excluded, so the GB/s column
// is a comparable lower bound on achieved bandwidth, not a cache-line
// count.
double BytesPerTrial(double draws_per_trial, size_t cells) {
  return 8.0 * (draws_per_trial + 2.0 * static_cast<double>(cells));
}

PlanLoopResult TimeTrials(const PlanPtr& plan, const DataVector& x,
                          size_t trials, bool use_scratch) {
  Rng rng(42);
  ExecScratch scratch;
  DataVector est;
  // Warm up: let scratch buffers and the output slot reach steady-state
  // capacity before counting.
  for (int w = 0; w < 3; ++w) {
    ExecContext ectx{x, &rng, use_scratch ? &scratch : nullptr};
    if (use_scratch) {
      if (!plan->ExecuteInto(ectx, &est).ok()) std::abort();
    } else {
      auto r = plan->Execute(ectx);
      if (!r.ok()) std::abort();
    }
  }
  uint64_t alloc_start = g_allocations.load(std::memory_order_relaxed);
  uint64_t draw_start = rng.generator().position();
  double t0 = NowSeconds();
  for (size_t i = 0; i < trials; ++i) {
    ExecContext ectx{x, &rng, use_scratch ? &scratch : nullptr};
    if (use_scratch) {
      if (!plan->ExecuteInto(ectx, &est).ok()) std::abort();
    } else {
      auto r = plan->Execute(ectx);
      if (!r.ok()) std::abort();
    }
  }
  double elapsed = NowSeconds() - t0;
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - alloc_start;
  PlanLoopResult out;
  out.trials_per_sec =
      elapsed > 0.0 ? static_cast<double>(trials) / elapsed : 0.0;
  out.allocs_per_trial =
      static_cast<double>(allocs) / static_cast<double>(trials);
  out.draws_per_trial =
      static_cast<double>(rng.generator().position() - draw_start) /
      static_cast<double>(trials);
  return out;
}

int RunPlanLoops(const char* title, const DataVector& data,
                 const Workload& workload,
                 const std::vector<const char*>& algorithms, size_t trials) {
  std::printf("\n-- %s (%zu trials) --\n", title, trials);
  std::printf("%-10s %12s %12s %9s %9s %10s %7s %8s\n", "algorithm",
              "exec tps", "scratch tps", "exec a/t", "scr a/t", "bytes/t",
              "GB/s", "speedup");
  int failures = 0;
  for (const char* name : algorithms) {
    auto mech = MechanismRegistry::Get(name);
    if (!mech.ok()) std::abort();
    PlanContext pctx{data.domain(), workload, 0.1, {data.Scale()}};
    auto plan = (*mech)->Plan(pctx);
    if (!plan.ok()) std::abort();
    PlanLoopResult alloc_path = TimeTrials(*plan, data, trials, false);
    PlanLoopResult scratch_path = TimeTrials(*plan, data, trials, true);
    double speedup = alloc_path.trials_per_sec > 0.0
                         ? scratch_path.trials_per_sec /
                               alloc_path.trials_per_sec
                         : 0.0;
    double bytes =
        BytesPerTrial(scratch_path.draws_per_trial, data.size());
    std::printf("%-10s %12.0f %12.0f %9.2f %9.2f %10.0f %7.2f %7.2fx\n",
                name, alloc_path.trials_per_sec, scratch_path.trials_per_sec,
                alloc_path.allocs_per_trial, scratch_path.allocs_per_trial,
                bytes, bytes * scratch_path.trials_per_sec / 1e9, speedup);
    if (scratch_path.allocs_per_trial > 0.0) {
      std::printf("FAIL: %s scratch path allocates per trial\n", name);
      ++failures;
    }
  }
  return failures;
}

int RunPlanSection(size_t trials) {
  const size_t kDomain = 1024;
  Rng data_rng(7);
  auto shape = DatasetRegistry::ShapeAtDomain("SEARCH", kDomain);
  if (!shape.ok()) std::abort();
  auto data = SampleAtScale(*shape, 100000, &data_rng);
  if (!data.ok()) std::abort();
  Workload workload = Workload::Prefix1D(kDomain);
  int failures = RunPlanLoops(
      "plan trial loops (1D, domain=1024)", *data, workload,
      {"IDENTITY", "H", "HB", "PRIVELET", "GREEDY_H", "UNIFORM"}, trials);

  // 2D: the grid-hierarchy family plus the batched-noise converts whose
  // hot path only exists on grids (UGRID). Every scratch path must be
  // allocation-free, the same contract as the 1D section.
  const size_t kSide = 64;
  Rng data_rng2(11);
  auto shape2 = DatasetRegistry::ShapeAtDomain("ADULT-2D", kSide);
  if (!shape2.ok()) std::abort();
  auto data2 = SampleAtScale(*shape2, 100000, &data_rng2);
  if (!data2.ok()) std::abort();
  Workload workload2 = Workload::Identity(data2->domain());
  failures += RunPlanLoops(
      "plan trial loops (2D, domain=64x64)", *data2, workload2,
      {"HB", "QUADTREE", "UGRID", "GREEDY_H", "PRIVELET"}, trials);
  return failures;
}

// Data-dependent section: converted scratch pipelines vs the legacy
// pass-through path (the pre-conversion execution semantics, inside this
// binary — the vectorized Gumbel fill of the exponential mechanism is
// shared by both paths, so selection-bound algorithms show close to 1.0x
// here while still beating the actual pre-PR build; those cross-build
// numbers are recorded in ROADMAP.md). Gates: every algorithm's scratch
// path must be allocation-free and bit-identical to the reference;
// `gated` algorithms (DAWA, whose partition/tree pipeline is the
// structural win) must meet `min_speedup`; and the aggregate trials/s of
// the whole section (equal trial counts per algorithm) must not regress
// below kMinAggregateSpeedup — a no-regression floor: the 1D aggregate is
// dominated by SF, whose in-binary ratio is ~1.05 (its cross-build gain
// comes from the shared Gumbel fill; see ROADMAP for those numbers).
constexpr double kMinAggregateSpeedup = 1.05;

int RunDataDependentLoops(const char* title, const DataVector& data,
                          const Workload& workload,
                          const std::vector<const char*>& algorithms,
                          const std::vector<const char*>& gated,
                          size_t trials, double min_speedup) {
  std::printf("\n-- %s (%zu trials) --\n", title, trials);
  std::printf("%-10s %12s %12s %9s %9s %10s %7s %8s\n", "algorithm",
              "legacy tps", "scratch tps", "leg a/t", "scr a/t", "bytes/t",
              "GB/s", "speedup");
  int failures = 0;
  double legacy_seconds_per_round = 0.0;   // one trial of each algorithm
  double scratch_seconds_per_round = 0.0;
  for (const char* name : algorithms) {
    auto mech = MechanismRegistry::Get(name);
    if (!mech.ok()) std::abort();
    PlanContext pctx{data.domain(), workload, 0.1, {data.Scale()}};
    auto plan = (*mech)->Plan(pctx);
    if (!plan.ok()) std::abort();
    auto reference = (*mech)->ReferencePlan(pctx);
    if (!reference.ok()) std::abort();

    // Correctness gate first: the converted pipeline must reproduce the
    // legacy stream bit-for-bit (Release build included — the unit tests
    // only cover the default build type).
    {
      Rng rng_a(7), rng_b(7);
      auto want = (*reference)->Execute({data, &rng_a});
      ExecScratch scratch;
      DataVector got;
      if (!want.ok() ||
          !(*plan)->ExecuteInto({data, &rng_b, &scratch}, &got).ok()) {
        std::printf("FAIL: %s execution error\n", name);
        ++failures;
        continue;
      }
      for (size_t i = 0; i < want->size(); ++i) {
        if ((*want)[i] != got[i]) {
          std::printf("FAIL: %s diverges from the reference at cell %zu\n",
                      name, i);
          ++failures;
          break;
        }
      }
    }

    PlanLoopResult legacy = TimeTrials(*reference, data, trials, false);
    PlanLoopResult scratch_path = TimeTrials(*plan, data, trials, true);
    if (legacy.trials_per_sec > 0.0 && scratch_path.trials_per_sec > 0.0) {
      legacy_seconds_per_round += 1.0 / legacy.trials_per_sec;
      scratch_seconds_per_round += 1.0 / scratch_path.trials_per_sec;
    }
    double speedup = legacy.trials_per_sec > 0.0
                         ? scratch_path.trials_per_sec /
                               legacy.trials_per_sec
                         : 0.0;
    double bytes =
        BytesPerTrial(scratch_path.draws_per_trial, data.size());
    std::printf("%-10s %12.0f %12.0f %9.2f %9.2f %10.0f %7.2f %7.2fx\n",
                name, legacy.trials_per_sec, scratch_path.trials_per_sec,
                legacy.allocs_per_trial, scratch_path.allocs_per_trial,
                bytes, bytes * scratch_path.trials_per_sec / 1e9, speedup);
    if (scratch_path.allocs_per_trial > 0.0) {
      std::printf("FAIL: %s scratch path allocates per trial\n", name);
      ++failures;
    }
    for (const char* g : gated) {
      if (std::strcmp(g, name) == 0 && speedup < min_speedup) {
        std::printf("FAIL: %s speedup %.2fx below the %.2fx floor\n", name,
                    speedup, min_speedup);
        ++failures;
      }
    }
  }
  if (legacy_seconds_per_round > 0.0) {
    double aggregate = legacy_seconds_per_round / scratch_seconds_per_round;
    std::printf("aggregate (1 trial of each): %.2fx\n", aggregate);
    if (aggregate < kMinAggregateSpeedup) {
      std::printf("FAIL: aggregate %.2fx below the %.2fx floor\n",
                  aggregate, kMinAggregateSpeedup);
      ++failures;
    }
  }
  return failures;
}

int RunDataDependentSection(size_t trials, double min_speedup) {
  const size_t kDomain = 1024;
  Rng data_rng(7);
  auto shape = DatasetRegistry::ShapeAtDomain("SEARCH", kDomain);
  if (!shape.ok()) std::abort();
  auto data = SampleAtScale(*shape, 100000, &data_rng);
  if (!data.ok()) std::abort();
  Workload workload = Workload::Prefix1D(kDomain);
  int failures = RunDataDependentLoops(
      "data-dependent trial loops (1D, domain=1024)", *data, workload,
      {"MWEM", "MWEM*", "AHP", "AHP*", "DAWA", "PHP", "EFPA", "SF",
       "DPCUBE"},
      {"DAWA"}, trials, min_speedup);

  const size_t kSide = 64;
  Rng data_rng2(11);
  auto shape2 = DatasetRegistry::ShapeAtDomain("ADULT-2D", kSide);
  if (!shape2.ok()) std::abort();
  auto data2 = SampleAtScale(*shape2, 100000, &data_rng2);
  if (!data2.ok()) std::abort();
  Workload workload2 = Workload::RandomRange(data2->domain(), 256, 13);
  failures += RunDataDependentLoops(
      "data-dependent trial loops (2D, domain=64x64)", *data2, workload2,
      {"MWEM*", "AHP", "DAWA", "DPCUBE", "AGRID", "HYBRIDTREE"},
      {"DAWA"}, trials, min_speedup);
  return failures;
}

// Lockstep section: the lane-batched ExecuteMany path against the scalar
// trial loop it replaces, for every lane-capable plan. Gates: lane
// extraction bit-identical to the scalar loop on a fresh stream, 0
// allocs/trial in the lockstep steady state, and the section AGGREGATE
// (one trial of each algorithm, summed seconds) at least
// --min-lockstep-speedup. The aggregate is the gated number because the
// win is concentrated where trials are serial-latency-bound (prefix
// chains, GLS inference, inverse wavelet); noise-generation-dominated
// plans (IDENTITY, UNIFORM) do the same rng work either way.
PlanLoopResult TimeLockstepTrials(const PlanPtr& plan, const DataVector& x,
                                  size_t trials, size_t lanes) {
  Rng rng(42);
  ExecScratch scratch;
  std::vector<double> est_lanes;
  const size_t batches = std::max<size_t>(trials / lanes, 1);
  for (int w = 0; w < 3; ++w) {
    ExecContext ectx{x, &rng, &scratch};
    if (!plan->ExecuteMany(ectx, lanes, &est_lanes).ok()) std::abort();
  }
  uint64_t alloc_start = g_allocations.load(std::memory_order_relaxed);
  uint64_t draw_start = rng.generator().position();
  double t0 = NowSeconds();
  for (size_t b = 0; b < batches; ++b) {
    ExecContext ectx{x, &rng, &scratch};
    if (!plan->ExecuteMany(ectx, lanes, &est_lanes).ok()) std::abort();
  }
  double elapsed = NowSeconds() - t0;
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - alloc_start;
  const double executed = static_cast<double>(batches * lanes);
  PlanLoopResult out;
  out.trials_per_sec = elapsed > 0.0 ? executed / elapsed : 0.0;
  out.allocs_per_trial = static_cast<double>(allocs) / executed;
  out.draws_per_trial =
      static_cast<double>(rng.generator().position() - draw_start) /
      executed;
  return out;
}

// One ExecuteMany batch must reproduce `lanes` scalar trials of the same
// stream lane for lane, bit for bit.
int CheckLockstepBitIdentity(const char* name, const PlanPtr& plan,
                             const DataVector& x, size_t lanes) {
  Rng scalar_rng(7);
  ExecScratch scalar_scratch;
  std::vector<std::vector<double>> want;
  for (size_t l = 0; l < lanes; ++l) {
    DataVector est;
    if (!plan->ExecuteInto({x, &scalar_rng, &scalar_scratch}, &est).ok()) {
      std::printf("FAIL: %s scalar execution error\n", name);
      return 1;
    }
    want.push_back(est.counts());
  }
  Rng lane_rng(7);
  ExecScratch lane_scratch;
  std::vector<double> got;
  if (!plan->ExecuteMany({x, &lane_rng, &lane_scratch}, lanes, &got).ok()) {
    std::printf("FAIL: %s lockstep execution error\n", name);
    return 1;
  }
  for (size_t l = 0; l < lanes; ++l) {
    for (size_t i = 0; i < want[l].size(); ++i) {
      if (want[l][i] != got[i * lanes + l]) {
        std::printf("FAIL: %s lane %zu diverges from scalar trial %zu at "
                    "cell %zu\n",
                    name, l, l, i);
        return 1;
      }
    }
  }
  return 0;
}

int RunLockstepLoops(const char* title, const DataVector& data,
                     const Workload& workload,
                     const std::vector<const char*>& algorithms,
                     size_t trials, size_t lanes, double min_speedup) {
  std::printf("\n-- %s (%zu trials, %zu lanes, isa=%s) --\n", title, trials,
              lanes, lockstep::TierName(lockstep::ActiveTier()));
  std::printf("%-10s %12s %12s %9s %10s %7s %8s\n", "algorithm",
              "scalar tps", "lockstep tps", "lock a/t", "bytes/t", "GB/s",
              "speedup");
  int failures = 0;
  double scalar_seconds_per_round = 0.0;
  double lockstep_seconds_per_round = 0.0;
  for (const char* name : algorithms) {
    auto mech = MechanismRegistry::Get(name);
    if (!mech.ok()) std::abort();
    PlanContext pctx{data.domain(), workload, 0.1, {data.Scale()}};
    auto plan = (*mech)->Plan(pctx);
    if (!plan.ok()) std::abort();
    if (!(*plan)->SupportsLockstep()) {
      std::printf("FAIL: %s does not support lockstep\n", name);
      ++failures;
      continue;
    }
    failures += CheckLockstepBitIdentity(name, *plan, data, lanes);

    PlanLoopResult scalar_path = TimeTrials(*plan, data, trials, true);
    PlanLoopResult lock_path =
        TimeLockstepTrials(*plan, data, trials, lanes);
    if (scalar_path.trials_per_sec > 0.0 && lock_path.trials_per_sec > 0.0) {
      scalar_seconds_per_round += 1.0 / scalar_path.trials_per_sec;
      lockstep_seconds_per_round += 1.0 / lock_path.trials_per_sec;
    }
    double speedup = scalar_path.trials_per_sec > 0.0
                         ? lock_path.trials_per_sec /
                               scalar_path.trials_per_sec
                         : 0.0;
    double bytes = BytesPerTrial(lock_path.draws_per_trial, data.size());
    std::printf("%-10s %12.0f %12.0f %9.2f %10.0f %7.2f %7.2fx\n", name,
                scalar_path.trials_per_sec, lock_path.trials_per_sec,
                lock_path.allocs_per_trial, bytes,
                bytes * lock_path.trials_per_sec / 1e9, speedup);
    if (lock_path.allocs_per_trial > 0.0) {
      std::printf("FAIL: %s lockstep path allocates per trial\n", name);
      ++failures;
    }
  }
  if (scalar_seconds_per_round > 0.0) {
    double aggregate =
        scalar_seconds_per_round / lockstep_seconds_per_round;
    std::printf("aggregate (1 trial of each): %.2fx\n", aggregate);
    if (aggregate < min_speedup) {
      std::printf("FAIL: lockstep aggregate %.2fx below the %.2fx floor\n",
                  aggregate, min_speedup);
      ++failures;
    }
  }
  return failures;
}

int RunLockstepSection(size_t trials, double min_speedup) {
  const size_t lanes = lockstep::ActiveLaneWidth();
  if (lanes < 2) {
    std::printf("\n-- lockstep trial loops: skipped (isa=%s, 1 lane) --\n",
                lockstep::TierName(lockstep::ActiveTier()));
    return 0;
  }
  const size_t kDomain = 1024;
  Rng data_rng(7);
  auto shape = DatasetRegistry::ShapeAtDomain("SEARCH", kDomain);
  if (!shape.ok()) std::abort();
  auto data = SampleAtScale(*shape, 100000, &data_rng);
  if (!data.ok()) std::abort();
  Workload workload = Workload::Prefix1D(kDomain);
  int failures = RunLockstepLoops(
      "lockstep trial loops (1D, domain=1024)", *data, workload,
      {"IDENTITY", "H", "HB", "PRIVELET", "GREEDY_H", "UNIFORM"}, trials,
      lanes, min_speedup);

  const size_t kSide = 64;
  Rng data_rng2(11);
  auto shape2 = DatasetRegistry::ShapeAtDomain("ADULT-2D", kSide);
  if (!shape2.ok()) std::abort();
  auto data2 = SampleAtScale(*shape2, 100000, &data_rng2);
  if (!data2.ok()) std::abort();
  Workload workload2 = Workload::Identity(data2->domain());
  failures += RunLockstepLoops(
      "lockstep trial loops (2D, domain=64x64)", *data2, workload2,
      {"HB", "QUADTREE", "UGRID", "GREEDY_H", "PRIVELET"}, trials, lanes,
      min_speedup);
  return failures;
}

int RunRunnerSection(size_t threads, size_t runs_per_sample) {
  ExperimentConfig config;
  config.algorithms = {"IDENTITY", "H", "HB", "PRIVELET", "GREEDY_H"};
  config.datasets = {"ADULT"};
  config.scales = {100000};
  config.domain_sizes = {1024};
  config.epsilons = {0.1};
  config.data_samples = 2;
  config.runs_per_sample = runs_per_sample;
  config.threads = threads;

  std::printf("\n-- runner throughput (%zu threads, %zu runs/sample) --\n",
              threads, runs_per_sample);
  int failures = 0;
  std::vector<CellResult> exact_cells;
  for (bool retain : {true, false}) {
    config.retain_raw_errors = retain;
    RunDiagnostics diag;
    auto results = Runner::Run(config, nullptr, &diag);
    if (!results.ok()) {
      std::printf("FAIL: runner error: %s\n",
                  results.status().ToString().c_str());
      return 1;
    }
    std::printf("retain_raw_errors=%d: %zu trials, %.2f s execute, "
                "%.0f trials/s | pool: %llu phases, %llu tasks, %llu stolen "
                "| isa=%s lanes=%zu (%llu lockstep + %llu scalar)\n",
                retain ? 1 : 0, diag.trials, diag.execute_seconds,
                diag.trials_per_second,
                static_cast<unsigned long long>(diag.pool_parallel_jobs),
                static_cast<unsigned long long>(diag.pool_tasks_executed),
                static_cast<unsigned long long>(diag.pool_tasks_stolen),
                diag.isa_tier.c_str(), diag.lane_width,
                static_cast<unsigned long long>(diag.lockstep_trials),
                static_cast<unsigned long long>(diag.scalar_trials));
    if (diag.lockstep_trials + diag.scalar_trials != diag.trials) {
      std::printf("FAIL: lockstep + scalar trial counts do not cover the "
                  "run\n");
      ++failures;
    }
    // Every algorithm in this grid is lane-capable: when the dispatcher
    // found SIMD lanes and the sample loop is wide enough to batch, the
    // runner must actually route trials through ExecuteMany.
    if (diag.lane_width > 1 && runs_per_sample >= diag.lane_width &&
        diag.lockstep_trials == 0) {
      std::printf("FAIL: no trials took the lockstep path (isa=%s)\n",
                  diag.isa_tier.c_str());
      ++failures;
    }
    if (retain) {
      exact_cells = std::move(*results);
    } else {
      // Streaming summaries must agree with the exact ones.
      for (size_t i = 0; i < results->size(); ++i) {
        const ErrorSummary& streaming = (*results)[i].summary;
        const ErrorSummary& exact = exact_cells[i].summary;
        double tol = 1e-9 * std::max(1.0, std::abs(exact.mean));
        if (std::abs(streaming.mean - exact.mean) > tol ||
            std::abs(streaming.stddev - exact.stddev) > tol) {
          std::printf("FAIL: streaming summary diverges at cell %zu\n", i);
          ++failures;
        }
        if (!(*results)[i].errors.empty()) {
          std::printf("FAIL: raw errors retained despite "
                      "retain_raw_errors=false\n");
          ++failures;
        }
      }
    }
  }
  return failures;
}

// Memory-bandwidth section: an in-process STREAM triad baseline (what
// this machine actually sustains from main memory), then the runner's
// achieved bandwidth from the analytic bytes/trial model, as an absolute
// GB/s number and as a fraction of triad. Two placement policies run the
// same grid — topology-aware (default detection) and flat single-node
// pinning (the pre-NUMA layout, forced via the test override) — with
// three gates: bit-identical cell errors across policies, node-aware
// throughput at least --min-numa-ratio of flat, and (when set) achieved
// GB/s at least --min-runner-gbs.
double MeasureTriadGBs(size_t elements, int reps) {
  // Arrays sized far past LLC so the sweep streams from DRAM. 24
  // bytes/element (two reads + one write, write-allocate excluded) —
  // the same accounting BytesPerTrial uses, so "% of triad" compares
  // like with like.
  std::vector<double> a(elements, 0.0);
  std::vector<double> b(elements, 1.0);
  std::vector<double> c(elements, 2.0);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    double t0 = NowSeconds();
    for (size_t i = 0; i < elements; ++i) a[i] = b[i] + 3.0 * c[i];
    double elapsed = NowSeconds() - t0;
    if (elapsed > 0.0) {
      best = std::max(
          best, 24.0 * static_cast<double>(elements) / elapsed / 1e9);
    }
    // Fold the output back into an input so no sweep is dead.
    b[static_cast<size_t>(r) % elements] += a[r % elements] * 1e-300;
  }
  return best;
}

int RunBandwidthSection(size_t threads, size_t runs_per_sample,
                        double min_numa_ratio, double min_gbs) {
  ExperimentConfig config;
  config.algorithms = {"IDENTITY", "H", "HB", "PRIVELET", "GREEDY_H"};
  config.datasets = {"ADULT"};
  config.scales = {100000};
  config.domain_sizes = {1024};
  config.epsilons = {0.1};
  config.data_samples = 2;
  config.runs_per_sample = runs_per_sample;
  config.threads = threads;
  config.pin_threads = true;

  std::printf("\n-- memory bandwidth (%zu threads) --\n", threads);
  double triad = MeasureTriadGBs(size_t{1} << 22, 5);  // 3 x 32 MiB
  std::printf("stream triad baseline: %.2f GB/s\n", triad);

  int failures = 0;
  struct PolicyRun {
    const char* name;
    RunDiagnostics diag;
    std::vector<CellResult> cells;
  };
  PolicyRun runs[2] = {{"node-aware", {}, {}}, {"flat-pinned", {}, {}}};
  for (PolicyRun& run : runs) {
    const bool flat = std::strcmp(run.name, "flat-pinned") == 0;
    if (flat) topology::ForceForTesting(topology::SingleNode(threads));
    auto results = Runner::Run(config, nullptr, &run.diag);
    if (flat) topology::ResetForTesting();
    if (!results.ok()) {
      std::printf("FAIL: %s runner error: %s\n", run.name,
                  results.status().ToString().c_str());
      return 1;
    }
    run.cells = std::move(*results);
    double gbs = run.diag.bytes_per_trial * run.diag.trials_per_second / 1e9;
    std::printf("%-11s %zu nodes, %.0f trials/s, %.0f bytes/trial, "
                "%.2f GB/s (%.1f%% of triad)\n",
                run.name, run.diag.numa_nodes, run.diag.trials_per_second,
                run.diag.bytes_per_trial, gbs,
                triad > 0.0 ? 100.0 * gbs / triad : 0.0);
  }

  // Placement is a scheduling hint: the two policies must not move a bit.
  if (runs[0].cells.size() != runs[1].cells.size()) {
    std::printf("FAIL: placement policies produced different cell counts\n");
    return failures + 1;
  }
  for (size_t i = 0; i < runs[0].cells.size(); ++i) {
    if (runs[0].cells[i].errors != runs[1].cells[i].errors) {
      std::printf("FAIL: cell %zu (%s) differs between placement policies\n",
                  i, runs[0].cells[i].key.ToString().c_str());
      ++failures;
      break;
    }
  }

  double ratio = runs[1].diag.trials_per_second > 0.0
                     ? runs[0].diag.trials_per_second /
                           runs[1].diag.trials_per_second
                     : 0.0;
  std::printf("node-aware vs flat-pinned: %.2fx\n", ratio);
  if (ratio < min_numa_ratio) {
    std::printf("FAIL: node-aware placement %.2fx below the %.2fx floor "
                "of flat pinning\n",
                ratio, min_numa_ratio);
    ++failures;
  }
  double numa_gbs =
      runs[0].diag.bytes_per_trial * runs[0].diag.trials_per_second / 1e9;
  if (min_gbs > 0.0 && numa_gbs < min_gbs) {
    std::printf("FAIL: achieved %.2f GB/s below the %.2f GB/s floor\n",
                numa_gbs, min_gbs);
    ++failures;
  }
  return failures;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  size_t trials = 2000;
  size_t threads = 4;
  double min_dd_speedup = 1.5;
  double min_lockstep_speedup = 2.0;
  // Node-aware may tie flat pinning (single-socket machines run the
  // identical layout); the floor only catches real placement regressions.
  double min_numa_ratio = 0.9;
  double min_runner_gbs = 0.0;  // off unless CI pins a machine floor
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      trials = static_cast<size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--min-dd-speedup=", 17) == 0) {
      min_dd_speedup = std::atof(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--min-lockstep-speedup=", 23) == 0) {
      min_lockstep_speedup = std::atof(argv[i] + 23);
    } else if (std::strncmp(argv[i], "--min-numa-ratio=", 17) == 0) {
      min_numa_ratio = std::atof(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--min-runner-gbs=", 17) == 0) {
      min_runner_gbs = std::atof(argv[i] + 17);
    } else {
      std::printf("warning: unknown flag %s\n", argv[i]);
    }
  }
  if (smoke) trials = 200;
  std::printf("== bench_runner_throughput (%s mode) ==\n",
              smoke ? "smoke" : "full");

  int failures = RunPlanSection(trials);
  // Data-dependent trials are heavier (MWEM rounds, DAWA's partition DP);
  // a shorter loop keeps the gate fast without losing steady state.
  failures += RunDataDependentSection(std::max<size_t>(trials / 4, 50),
                                      min_dd_speedup);
  failures += RunLockstepSection(trials, min_lockstep_speedup);
  // runs_per_sample=10 keeps the lockstep batcher engaged (>= 8 lanes)
  // in smoke mode too — the lockstep-coverage gate depends on it.
  failures += RunRunnerSection(threads, 10);
  failures += RunBandwidthSection(threads, 10, min_numa_ratio,
                                  min_runner_gbs);
  if (failures > 0) {
    std::printf("\n%d hot-path regression(s) detected\n", failures);
    return 1;
  }
  std::printf("\nOK: scratch paths allocation-free, data-dependent "
              "pipelines bit-identical and above the speedup floor, "
              "lockstep lanes bit-identical to scalar trials and above "
              "the aggregate floor, streaming summaries match exact, "
              "placement policies byte-identical and node-aware above "
              "the bandwidth floors\n");
  return 0;
}

}  // namespace
}  // namespace dpbench

int main(int argc, char** argv) { return dpbench::Main(argc, argv); }
