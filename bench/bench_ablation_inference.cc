// ABL-INF — ablation: how much of the hierarchical algorithms' accuracy
// comes from GLS consistency inference (Hay et al.'s "boosting")?
// Compares, per domain size, the H tree with full inference against the
// same measurements expanded from the leaves only, and against IDENTITY.
#include <iostream>

#include "bench/bench_common.h"
#include "src/algorithms/hier.h"
#include "src/algorithms/tree_inference.h"
#include "src/common/rng.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"
#include "src/mechanisms/laplace.h"

using namespace dpbench;

namespace {

// H measurements with uniform per-level budget, leaf-only reconstruction.
Result<DataVector> HNoInference(const DataVector& x, double eps, Rng* rng) {
  size_t n = x.size();
  RangeTree tree = RangeTree::Build(n, 2);
  int levels = tree.num_levels();
  double eps_level = eps / static_cast<double>(levels);
  // Same budget split as H, but only the leaf measurements are used.
  DataVector out(x.domain());
  for (size_t v : tree.level_nodes(levels - 1)) {
    const RangeTree::Node& node = tree.node(v);
    double truth = 0.0;
    for (size_t c = node.lo; c <= node.hi; ++c) truth += x[c];
    double noisy = truth + rng->Laplace(1.0 / eps_level);
    size_t len = node.hi - node.lo + 1;
    for (size_t c = node.lo; c <= node.hi; ++c) {
      out[c] = noisy / static_cast<double>(len);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("ABL-INF", "value of GLS consistency inference", opts);

  const int trials = opts.full ? 40 : 10;
  const double eps = 0.1;
  Rng rng(opts.seed);

  TextTable table({"domain", "IDENTITY", "H leaves only", "H + GLS",
                   "GLS gain"});
  for (size_t n : {256u, 512u, 1024u, 2048u}) {
    auto shape = DatasetRegistry::ShapeAtDomain("SEARCH", n);
    if (!shape.ok()) return 1;
    auto x = SampleAtScale(*shape, 100000, &rng);
    if (!x.ok()) return 1;
    Workload w = Workload::Prefix1D(n);
    std::vector<double> truth = w.Evaluate(*x);

    double e_ident = 0.0, e_leaf = 0.0, e_gls = 0.0;
    HierMechanism h(2);
    for (int t = 0; t < trials; ++t) {
      DataVector ident = *x;
      for (size_t i = 0; i < n; ++i) ident[i] += rng.Laplace(1.0 / eps);
      e_ident += *ScaledL2PerQueryError(truth, w.Evaluate(ident),
                                        x->Scale()) /
                 trials;
      auto leaf = HNoInference(*x, eps, &rng);
      e_leaf += *ScaledL2PerQueryError(truth, w.Evaluate(*leaf),
                                       x->Scale()) /
                trials;
      RunContext ctx{*x, w, eps, &rng, {}};
      auto gls = h.Run(ctx);
      e_gls += *ScaledL2PerQueryError(truth, w.Evaluate(*gls), x->Scale()) /
               trials;
    }
    table.AddRow({std::to_string(n), TextTable::Num(e_ident),
                  TextTable::Num(e_leaf), TextTable::Num(e_gls),
                  TextTable::Num(e_leaf / e_gls)});
  }
  std::cout << "scaled error, SEARCH @ 1e5, eps=0.1, Prefix workload.\n"
            << "'H leaves only' spends the H budget but skips inference —\n"
            << "the GLS gain column is the value of consistency.\n\n";
  table.Print(std::cout);
  return 0;
}
