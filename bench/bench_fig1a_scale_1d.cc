// FIG1A — reproduces Figure 1a: 1D scaled error vs scale, eps = 0.1,
// Prefix workload. Paper: domain 4096, scales {1e3, 1e5, 1e7}, 18 datasets.
// The table reports per-algorithm mean log10 error per scale (the paper's
// white diamonds); --csv adds per-dataset rows (the black dots).
#include "bench/bench_common.h"
#include "src/data/datasets.h"

#include <iostream>

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("FIG1A", "1D error vs scale (eps=0.1, Prefix)", opts);

  ExperimentConfig c;
  c.algorithms = {"IDENTITY", "HB",  "MWEM*",  "DAWA", "PHP", "MWEM",
                  "EFPA",     "DPCUBE", "AHP*", "SF",   "UNIFORM"};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kPrefix1D;
  c.seed = opts.seed;
  if (opts.full) {
    for (const DatasetInfo& d : DatasetRegistry::All1D()) {
      c.datasets.push_back(d.name);
    }
    c.scales = {1000, 100000, 10000000};
    c.domain_sizes = {4096};
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.datasets = {"ADULT", "TRACE", "PATENT", "BIDS-ALL"};
    c.scales = {1000, 100000, 10000000};
    c.domain_sizes = {1024};
    c.data_samples = 2;
    c.runs_per_sample = 2;
  }

  std::vector<CellResult> results = bench::MustRun(c);

  // Means over datasets per (algorithm, scale): the white diamonds.
  std::map<std::pair<std::string, uint64_t>, std::pair<double, int>> agg;
  for (const CellResult& cell : results) {
    auto& [sum, count] = agg[{cell.key.algorithm, cell.key.scale}];
    sum += cell.summary.mean;
    count += 1;
  }
  TextTable table({"algorithm", "scale=1e3", "scale=1e5", "scale=1e7"});
  for (const std::string& algo : c.algorithms) {
    std::vector<std::string> row{algo};
    for (uint64_t s : c.scales) {
      auto it = agg.find({algo, s});
      row.push_back(it == agg.end()
                        ? "-"
                        : TextTable::Num(std::log10(it->second.first /
                                                    it->second.second)));
    }
    table.AddRow(row);
  }
  std::cout << "mean log10(scaled L2 per-query error), averaged over "
            << c.datasets.size() << " datasets\n";
  table.Print(std::cout);

  std::cout << "\nper-dataset spread (black dots) at the smallest scale:\n";
  std::vector<CellResult> small;
  for (const CellResult& cell : results) {
    if (cell.key.scale == c.scales.front()) small.push_back(cell);
  }
  bench::PrintMeanPivot(small, "dataset", bench::ColumnDataset);
  bench::MaybeCsv(results, opts);
  return 0;
}
