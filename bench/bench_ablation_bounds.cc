// ABL-BOUNDS — validates the public error bounds (paper §8: data-
// independent methods ship predictable error; data-dependent ones do not):
// predicted vs measured scaled error for IDENTITY, H and UNIFORM across
// epsilon, plus DAWA's measured spread as the contrast (no public bound).
#include <iostream>

#include "bench/bench_common.h"
#include "src/algorithms/mechanism.h"
#include "src/common/rng.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/bounds.h"
#include "src/engine/error.h"

using namespace dpbench;

namespace {

double Measure(const Mechanism& m, const DataVector& x, const Workload& w,
               double eps, int trials, Rng* rng) {
  std::vector<double> truth = w.Evaluate(x);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    RunContext ctx{x, w, eps, rng, {}};
    ctx.side_info.true_scale = x.Scale();
    auto est = m.Run(ctx);
    if (!est.ok()) std::exit(1);
    total += *ScaledL2PerQueryError(truth, w.Evaluate(*est), x.Scale());
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("ABL-BOUNDS", "public error bounds vs measurements",
                     opts);
  const size_t n = 256;  // exact O(n^3) bound is feasible here
  const int trials = opts.full ? 60 : 15;
  Rng rng(opts.seed);
  auto shape = DatasetRegistry::ShapeAtDomain("MEDCOST", n);
  if (!shape.ok()) return 1;
  auto x = SampleAtScale(*shape, 100000, &rng);
  if (!x.ok()) return 1;
  Workload w = Workload::Prefix1D(n);

  TextTable table({"epsilon", "IDENT pred", "IDENT meas", "H pred",
                   "H meas", "UNIF pred", "UNIF meas", "DAWA meas"});
  for (double eps : {0.01, 0.1, 1.0}) {
    double ident_pred = IdentityExpectedError(w, eps, x->Scale()).value();
    double h_pred =
        HierarchicalExpectedError(w, eps, x->Scale(), 2).value();
    double unif_pred =
        UniformExpectedError(w, eps, x->Scale(), shape->counts()).value();
    double ident_meas =
        Measure(**MechanismRegistry::Get("IDENTITY"), *x, w, eps, trials,
                &rng);
    double h_meas =
        Measure(**MechanismRegistry::Get("H"), *x, w, eps, trials, &rng);
    double unif_meas = Measure(**MechanismRegistry::Get("UNIFORM"), *x, w,
                               eps, trials, &rng);
    double dawa_meas = Measure(**MechanismRegistry::Get("DAWA"), *x, w, eps,
                               trials, &rng);
    table.AddRow({TextTable::Num(eps), TextTable::Num(ident_pred),
                  TextTable::Num(ident_meas), TextTable::Num(h_pred),
                  TextTable::Num(h_meas), TextTable::Num(unif_pred),
                  TextTable::Num(unif_meas), TextTable::Num(dawa_meas)});
  }
  std::cout << "MEDCOST @ 1e5, domain 256, Prefix workload. Predictions\n"
            << "use only public quantities (domain, workload, eps, scale,\n"
            << "and for UNIFORM a public reference shape).\n\n";
  table.Print(std::cout);
  return 0;
}
