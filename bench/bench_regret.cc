// REGRET — reproduces the §7.2 state-of-the-art assessment: the regret of
// always running one algorithm vs an oracle that picks the per-setting
// best. The paper reports DAWA 1.32 (then HB 1.51) for 1D and DAWA 1.73
// (then AGRID 1.90) for 2D.
#include <iostream>

#include "bench/bench_common.h"
#include "src/data/datasets.h"

using namespace dpbench;

namespace {

void RunCase(const std::string& label, ExperimentConfig c,
             const bench::Options& opts) {
  std::vector<CellResult> results = bench::MustRun(c);
  std::map<std::string, std::map<std::string, double>> mean_by_setting;
  for (const CellResult& cell : results) {
    std::string setting = cell.key.dataset + "/" +
                          std::to_string(cell.key.scale);
    mean_by_setting[setting][cell.key.algorithm] = cell.summary.mean;
  }
  auto regret = ComputeRegret(mean_by_setting);
  if (!regret.ok()) {
    std::cerr << regret.status().ToString() << "\n";
    std::exit(1);
  }
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [algo, r] : *regret) ranked.push_back({r, algo});
  std::sort(ranked.begin(), ranked.end());
  TextTable table({"rank", "algorithm", "regret (geomean vs oracle)"});
  int rank = 1;
  for (const auto& [r, algo] : ranked) {
    table.AddRow({std::to_string(rank++), algo, TextTable::Num(r)});
  }
  std::cout << label << "\n";
  table.Print(std::cout);
  std::cout << "\n";
  bench::MaybeCsv(results, opts);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("REGRET", "single-algorithm regret vs oracle", opts);

  {
    ExperimentConfig c;
    c.algorithms = {"IDENTITY", "HB",     "MWEM*", "DAWA", "PHP", "MWEM",
                    "EFPA",     "DPCUBE", "AHP*",  "SF",   "UNIFORM"};
    c.epsilons = {0.1};
    c.workload = WorkloadKind::kPrefix1D;
    c.seed = opts.seed;
    if (opts.full) {
      for (const DatasetInfo& d : DatasetRegistry::All1D()) {
        c.datasets.push_back(d.name);
      }
      c.scales = {1000, 100000, 10000000};
      c.domain_sizes = {4096};
      c.data_samples = 3;
      c.runs_per_sample = 5;
    } else {
      c.datasets = {"ADULT", "TRACE", "PATENT", "SEARCH", "MEDCOST"};
      c.scales = {1000, 100000, 10000000};
      c.domain_sizes = {1024};
      c.data_samples = 2;
      c.runs_per_sample = 3;
    }
    RunCase("1D regret (paper: DAWA 1.32, HB 1.51):", c, opts);
  }
  {
    ExperimentConfig c;
    c.algorithms = {"IDENTITY", "HB",    "AGRID",  "MWEM*", "DAWA",
                    "QUADTREE", "UGRID", "DPCUBE", "UNIFORM"};
    c.epsilons = {0.1};
    c.workload = WorkloadKind::kRandomRange2D;
    c.seed = opts.seed;
    if (opts.full) {
      for (const DatasetInfo& d : DatasetRegistry::All2D()) {
        c.datasets.push_back(d.name);
      }
      c.scales = {10000, 1000000, 100000000};
      c.domain_sizes = {128};
      c.random_queries = 2000;
      c.data_samples = 3;
      c.runs_per_sample = 5;
    } else {
      c.datasets = {"BJ-CABS-S", "GOWALLA", "STROKE"};
      c.scales = {10000, 1000000};
      c.domain_sizes = {64};
      c.random_queries = 400;
      c.data_samples = 2;
      c.runs_per_sample = 3;
    }
    RunCase("2D regret (paper: DAWA 1.73, AGRID 1.90):", c, opts);
  }
  return 0;
}
