// F6 — reproduces Finding 6: free-parameter sensitivity. For AHP, DAWA and
// MWEM, evaluate parameter settings that are each optimal *somewhere*
// (across scales/shapes) on the fixed scenario MEDCOST at scale 1e5, and
// report the highest-to-lowest error ratio. The paper observes ~2.5x for
// DAWA and ~7.5x for MWEM and AHP.
#include <functional>
#include <iostream>

#include "bench/bench_common.h"
#include "src/algorithms/ahp.h"
#include "src/algorithms/dawa.h"
#include "src/algorithms/mwem.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"

using namespace dpbench;

namespace {

double MeanErrorFor(const Mechanism& m, const DataVector& x,
                    const Workload& w, double eps, int trials, Rng* rng) {
  std::vector<double> truth = w.Evaluate(x);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    RunContext ctx{x, w, eps, rng, {}};
    ctx.side_info.true_scale = x.Scale();
    auto est = m.Run(ctx);
    if (!est.ok()) {
      std::cerr << est.status().ToString() << "\n";
      std::exit(1);
    }
    total += *ScaledL2PerQueryError(truth, w.Evaluate(*est), x.Scale());
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("F6", "free-parameter sensitivity (MEDCOST @ 1e5)",
                     opts);
  const size_t domain = opts.full ? 4096 : 1024;
  const int trials = opts.full ? 20 : 5;

  Rng rng(opts.seed);
  auto shape = DatasetRegistry::ShapeAtDomain("MEDCOST", domain);
  if (!shape.ok()) return 1;
  auto x = SampleAtScale(*shape, 100000, &rng);
  if (!x.ok()) return 1;
  Workload w = Workload::Prefix1D(domain);
  const double eps = 0.1;

  TextTable table({"algorithm", "setting", "mean error", "vs best"});
  auto sweep = [&](const std::string& name,
                   const std::vector<std::pair<
                       std::string, std::function<double()>>>& settings) {
    std::vector<std::pair<std::string, double>> errs;
    double best = 1e300;
    for (const auto& [label, run] : settings) {
      double e = run();
      errs.push_back({label, e});
      best = std::min(best, e);
    }
    for (const auto& [label, e] : errs) {
      table.AddRow({name, label, TextTable::Num(e),
                    TextTable::Num(e / best)});
    }
    double worst = 0.0;
    for (const auto& [label, e] : errs) worst = std::max(worst, e);
    std::cout << name << ": worst/best parameter ratio = "
              << TextTable::Num(worst / best) << "\n";
  };

  // MWEM: T values that are optimal at various signal regimes.
  std::vector<std::pair<std::string, std::function<double()>>> mwem_set;
  for (size_t t_rounds : {2u, 10u, 40u, 100u}) {
    mwem_set.push_back({"T=" + std::to_string(t_rounds), [&, t_rounds] {
                          MwemMechanism m(false, t_rounds);
                          return MeanErrorFor(m, *x, w, eps, trials, &rng);
                        }});
  }
  sweep("MWEM", mwem_set);

  // AHP: (rho, eta) grid points that Rparam selects in some regime.
  std::vector<std::pair<std::string, std::function<double()>>> ahp_set;
  for (auto [rho, eta] : std::vector<std::pair<double, double>>{
           {0.7, 2.0}, {0.5, 1.5}, {0.3, 1.0}, {0.15, 0.5}}) {
    char label[64];
    std::snprintf(label, sizeof(label), "rho=%.2f,eta=%.1f", rho, eta);
    ahp_set.push_back({label, [&, rho, eta] {
                         AhpMechanism m(false, rho, eta);
                         return MeanErrorFor(m, *x, w, eps, trials, &rng);
                       }});
  }
  sweep("AHP", ahp_set);

  // DAWA: budget split rho.
  std::vector<std::pair<std::string, std::function<double()>>> dawa_set;
  for (double rho : {0.1, 0.25, 0.5, 0.7}) {
    char label[32];
    std::snprintf(label, sizeof(label), "rho=%.2f", rho);
    dawa_set.push_back({label, [&, rho] {
                          DawaMechanism m(rho);
                          return MeanErrorFor(m, *x, w, eps, trials, &rng);
                        }});
  }
  sweep("DAWA", dawa_set);

  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
