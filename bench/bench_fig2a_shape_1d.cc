// FIG2A — reproduces Figure 2a: 1D error by dataset shape at fixed
// scale 1e3 (paper: domain 4096). Shows how comparative algorithm
// performance varies across shapes (Finding 3).
#include "bench/bench_common.h"
#include "src/data/datasets.h"

#include <iostream>

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("FIG2A", "1D error by shape (scale=1e3, eps=0.1)",
                     opts);

  ExperimentConfig c;
  // The subset shown in the paper's Fig 2a.
  c.algorithms = {"UNIFORM", "DAWA", "EFPA",  "HB",
                  "MWEM",    "MWEM*", "PHP",  "IDENTITY"};
  for (const DatasetInfo& d : DatasetRegistry::All1D()) {
    c.datasets.push_back(d.name);
  }
  c.scales = {1000};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kPrefix1D;
  c.seed = opts.seed;
  if (opts.full) {
    c.domain_sizes = {4096};
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.domain_sizes = {1024};
    c.data_samples = 2;
    c.runs_per_sample = 2;
  }

  std::vector<CellResult> results = bench::MustRun(c);
  std::cout << "log10(scaled error) per dataset (columns) and algorithm:\n";
  bench::PrintMeanPivot(results, "dataset", bench::ColumnDataset);

  // Which algorithm wins on each shape? (Finding 3: four different
  // algorithms achieve lowest error on some shape.)
  std::map<std::string, std::pair<std::string, double>> winner;
  for (const CellResult& cell : results) {
    auto it = winner.find(cell.key.dataset);
    if (it == winner.end() || cell.summary.mean < it->second.second) {
      winner[cell.key.dataset] = {cell.key.algorithm, cell.summary.mean};
    }
  }
  TextTable table({"dataset", "best algorithm", "log10(err)"});
  for (const auto& [ds, best] : winner) {
    table.AddRow({ds, best.first, TextTable::Num(std::log10(best.second))});
  }
  table.Print(std::cout);
  bench::MaybeCsv(results, opts);
  return 0;
}
