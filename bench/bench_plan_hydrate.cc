// PLAN-HYDRATE — measures what the plan cache saves: for each
// plan-capable mechanism, the cost of a fresh Plan() vs hydrating the
// serialized payload (decode + HydratePlan), with the payload size, and a
// bit-identity cross-check between the two plans' executions.
//
// This is the number the sharded-runner workflow banks on: workers that
// --load-plans skip the planning column entirely and pay the hydrate
// column instead.
//
// Flags: --smoke (1 repetition, CI mode), --reps=N (default 50).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/algorithms/matrix_mechanism.h"
#include "src/algorithms/mechanism.h"
#include "src/common/rng.h"
#include "src/engine/serialize.h"
#include "src/histogram/data_vector.h"
#include "src/workload/workload.h"

using namespace dpbench;

namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Case {
  const char* label;
  const char* algo;
  Domain domain;
};

int RunMech(const Case& c, MechanismPtr mech, int reps);

int RunCase(const Case& c, int reps) {
  // "MATRIX:<n>" runs the generic matrix mechanism (registry-external; the
  // paper's framework instance) with the b=2 hierarchical strategy: its
  // plan is the O(n^3) Gram factorization, the plan cache's best case.
  if (std::strncmp(c.algo, "MATRIX:", 7) == 0) {
    size_t n = static_cast<size_t>(std::atoi(c.algo + 7));
    return RunMech(c, std::make_shared<MatrixMechanism>(
                          "H_matrix", strategies::HierarchicalStrategy(n, 2)),
                   reps);
  }
  auto mech_or = MechanismRegistry::Get(c.algo);
  if (!mech_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", c.algo,
                 mech_or.status().ToString().c_str());
    return 1;
  }
  return RunMech(c, *mech_or, reps);
}

int RunMech(const Case& c, MechanismPtr mech, int reps) {
  Workload w = c.domain.num_dims() == 1
                   ? Workload::Prefix1D(c.domain.TotalCells())
                   : Workload::RandomRange(c.domain, 2000, 20160626);
  SideInfo side;
  side.true_scale = 100000.0;
  PlanContext ctx{c.domain, w, 0.1, side};

  // Serialize once (outside the timed loops) for the hydrate side.
  auto first = mech->Plan(ctx);
  if (!first.ok()) {
    std::fprintf(stderr, "%s: %s\n", c.label,
                 first.status().ToString().c_str());
    return 1;
  }
  auto payload = (*first)->SerializePayload();
  if (!payload.ok()) {
    std::fprintf(stderr, "%s: %s\n", c.label,
                 payload.status().ToString().c_str());
    return 1;
  }
  std::string encoded = EncodePlanPayload(*payload);

  PlanPtr planned, hydrated;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    planned = std::move(mech->Plan(ctx)).value();
  }
  auto t1 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto decoded = DecodePlanPayload(encoded);
    if (!decoded.ok()) return 1;
    auto plan = mech->HydratePlan(ctx, *decoded);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s hydrate: %s\n", c.label,
                   plan.status().ToString().c_str());
      return 1;
    }
    hydrated = std::move(plan).value();
  }
  auto t2 = std::chrono::steady_clock::now();

  // Cross-check: both plans must execute bit-identically.
  DataVector x(c.domain);
  Rng fill(7);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(fill.UniformInt(100));
  }
  Rng rng_a(99), rng_b(99);
  auto est_a = planned->Execute({x, &rng_a});
  auto est_b = hydrated->Execute({x, &rng_b});
  if (!est_a.ok() || !est_b.ok()) {
    std::fprintf(stderr, "%s: execute failed\n", c.label);
    return 1;
  }
  for (size_t i = 0; i < est_a->size(); ++i) {
    if ((*est_a)[i] != (*est_b)[i]) {
      std::fprintf(stderr,
                   "%s: hydrated plan diverged from planned at cell %zu\n",
                   c.label, i);
      return 1;
    }
  }

  double plan_us = Seconds(t0, t1) / reps * 1e6;
  double hydrate_us = Seconds(t1, t2) / reps * 1e6;
  std::printf("%-16s %10.1f %12.1f %9.1fx %10zu\n", c.label, plan_us,
              hydrate_us, plan_us / hydrate_us, encoded.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 50;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      reps = 1;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    }
  }

  std::vector<Case> cases = {
      {"H_4096", "H", Domain::D1(4096)},
      {"HB_4096", "HB", Domain::D1(4096)},
      {"GREEDY_H_4096", "GREEDY_H", Domain::D1(4096)},
      {"PRIVELET_4096", "PRIVELET", Domain::D1(4096)},
      {"HB_128x128", "HB", Domain::D2(128, 128)},
      {"QUADTREE_128", "QUADTREE", Domain::D2(128, 128)},
      {"GREEDY_H_64x64", "GREEDY_H", Domain::D2(64, 64)},
      {"UGRID_128x128", "UGRID", Domain::D2(128, 128)},
      {"MATRIX_H_512", "MATRIX:512", Domain::D1(512)},
  };

  std::printf("%-16s %10s %12s %9s %10s\n", "plan", "plan_us",
              "hydrate_us", "speedup", "bytes");
  int rc = 0;
  for (const Case& c : cases) rc |= RunCase(c, reps);
  return rc;
}
