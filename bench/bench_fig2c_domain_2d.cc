// FIG2C — reproduces Figure 2c: effect of 2D domain size on error for two
// shapes (ADULT-2D, BJ-CABS-E) at scales {1e4, 1e6}. Data-independent
// algorithms degrade with domain size; AGRID stays nearly flat; DAWA's
// behavior depends on the shape (Finding 4).
#include "bench/bench_common.h"

#include <iostream>

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("FIG2C", "2D error vs domain size", opts);

  ExperimentConfig c;
  c.algorithms = {"IDENTITY", "HB", "AGRID", "DAWA", "UNIFORM"};
  c.datasets = {"ADULT-2D", "BJ-CABS-E"};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kRandomRange2D;
  c.seed = opts.seed;
  if (opts.full) {
    c.scales = {10000, 1000000};
    c.domain_sizes = {32, 64, 128, 256};
    c.random_queries = 2000;
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.scales = {10000, 1000000};
    c.domain_sizes = {32, 64, 128};
    c.random_queries = 300;
    c.data_samples = 1;
    c.runs_per_sample = 3;
  }

  std::vector<CellResult> results = bench::MustRun(c);
  for (const std::string& ds : c.datasets) {
    for (uint64_t scale : c.scales) {
      std::vector<CellResult> slice;
      for (const CellResult& cell : results) {
        if (cell.key.dataset == ds && cell.key.scale == scale) {
          slice.push_back(cell);
        }
      }
      std::cout << "dataset " << ds << ", scale " << scale << ":\n";
      bench::PrintMeanPivot(slice, "domain side", bench::ColumnDomain);
    }
  }
  bench::MaybeCsv(results, opts);
  return 0;
}
