// F8 — reproduces Finding 8: risk-averse evaluation. Compares algorithm
// rankings by mean error vs by 95th-percentile error and reports the
// scenarios where the winner flips (DAWA's high variability means a risk
// averse analyst sometimes prefers HB or UNIFORM).
#include <iostream>

#include "bench/bench_common.h"
#include "src/data/datasets.h"

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("F8", "mean vs 95th-percentile ranking flips", opts);

  ExperimentConfig c;
  c.algorithms = {"IDENTITY", "HB", "DAWA", "MWEM*", "UNIFORM", "EFPA"};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kPrefix1D;
  c.seed = opts.seed;
  if (opts.full) {
    for (const DatasetInfo& d : DatasetRegistry::All1D()) {
      c.datasets.push_back(d.name);
    }
    c.scales = {1000, 100000, 10000000};
    c.domain_sizes = {4096};
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.datasets = {"ADULT",  "PATENT", "TRACE",    "MD-SAL",
                  "SEARCH", "INCOME", "BIDS-ALL", "MEDCOST"};
    c.scales = {1000, 10000, 100000};
    c.domain_sizes = {512};
    c.data_samples = 3;
    c.runs_per_sample = 5;
  }

  std::vector<CellResult> results = bench::MustRun(c);

  // For each (dataset, scale) find mean-best and p95-best algorithms.
  struct Best {
    std::string mean_algo;
    double mean = 1e300;
    std::string p95_algo;
    double p95 = 1e300;
  };
  std::map<std::string, Best> best;
  for (const CellResult& cell : results) {
    std::string setting = cell.key.dataset + " @ " +
                          std::to_string(cell.key.scale);
    Best& b = best[setting];
    if (cell.summary.mean < b.mean) {
      b.mean = cell.summary.mean;
      b.mean_algo = cell.key.algorithm;
    }
    if (cell.summary.p95 < b.p95) {
      b.p95 = cell.summary.p95;
      b.p95_algo = cell.key.algorithm;
    }
  }

  TextTable table({"setting", "best by mean", "best by p95", "flip?"});
  int flips = 0;
  for (const auto& [setting, b] : best) {
    bool flip = b.mean_algo != b.p95_algo;
    flips += flip;
    table.AddRow({setting, b.mean_algo, b.p95_algo, flip ? "YES" : ""});
  }
  table.Print(std::cout);
  std::cout << "\n" << flips << " of " << best.size()
            << " scenarios rank differently for a risk-averse analyst\n";
  bench::MaybeCsv(results, opts);
  return 0;
}
