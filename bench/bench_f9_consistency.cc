// F9 — reproduces Finding 9: bias and consistency. Sweeps epsilon upward
// and shows that the error of consistent algorithms (IDENTITY, HB, DAWA,
// EFPA) vanishes while MWEM, PHP and UNIFORM plateau at their bias floor.
// Also decomposes the error of each algorithm into bias and dispersion.
#include <iostream>

#include "bench/bench_common.h"
#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("F9", "consistency: error as epsilon grows", opts);

  const size_t domain = opts.full ? 4096 : 512;
  const int trials = opts.full ? 20 : 6;
  const std::vector<double> epsilons = {0.1, 1.0, 10.0, 1000.0, 100000.0};
  const std::vector<std::string> algorithms = {
      "IDENTITY", "HB", "DAWA", "EFPA", "MWEM", "PHP", "UNIFORM"};

  Rng rng(opts.seed);
  auto shape = DatasetRegistry::ShapeAtDomain("SEARCH", domain);
  if (!shape.ok()) return 1;
  auto x = SampleAtScale(*shape, 100000, &rng);
  if (!x.ok()) return 1;
  Workload w = Workload::Prefix1D(domain);
  std::vector<double> truth = w.Evaluate(*x);

  std::vector<std::string> header{"algorithm"};
  for (double eps : epsilons) {
    header.push_back("eps=" + TextTable::Num(eps));
  }
  header.push_back("bias@eps=1e5");
  TextTable table(header);

  for (const std::string& name : algorithms) {
    auto mech = MechanismRegistry::Get(name);
    if (!mech.ok()) return 1;
    std::vector<std::string> row{name};
    double final_bias = 0.0;
    for (double eps : epsilons) {
      double total = 0.0;
      std::vector<std::vector<double>> answers;
      for (int t = 0; t < trials; ++t) {
        RunContext ctx{*x, w, eps, &rng, {}};
        ctx.side_info.true_scale = x->Scale();
        auto est = (*mech)->Run(ctx);
        if (!est.ok()) {
          std::cerr << est.status().ToString() << "\n";
          return 1;
        }
        std::vector<double> y = w.Evaluate(*est);
        total += *ScaledL2PerQueryError(truth, y, x->Scale());
        answers.push_back(std::move(y));
      }
      row.push_back(TextTable::Num(std::log10(total / trials)));
      if (eps == epsilons.back()) {
        auto bv = DecomposeBiasVariance(truth, answers);
        if (bv.ok()) {
          final_bias = bv->bias_l2 /
                       (x->Scale() * static_cast<double>(truth.size()));
        }
      }
    }
    row.push_back(TextTable::Num(final_bias));
    table.AddRow(row);
  }
  std::cout << "log10(scaled error) by epsilon (SEARCH @ scale 1e5).\n"
            << "Consistent algorithms decay; MWEM/PHP/UNIFORM hit a bias "
               "floor (Table 1).\n\n";
  table.Print(std::cout);
  return 0;
}
