// WIDTH — error vs query width (ours): fixed-width range workloads expose
// the hierarchy/identity crossover the paper describes analytically in
// §3.1 — identity noise grows linearly with query width while hierarchies
// pay only a logarithmic number of nodes, and partitioning algorithms sit
// between depending on shape.
#include <iostream>

#include "bench/bench_common.h"
#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("WIDTH", "error vs fixed query width", opts);

  const size_t n = opts.full ? 4096 : 1024;
  const int trials = opts.full ? 20 : 8;
  const double eps = 0.1;
  Rng rng(opts.seed);
  auto shape = DatasetRegistry::ShapeAtDomain("INCOME", n);
  if (!shape.ok()) return 1;
  auto x = SampleAtScale(*shape, 100000, &rng);
  if (!x.ok()) return 1;

  const std::vector<size_t> widths = {1, 8, 64, 512};
  const std::vector<std::string> algorithms = {"IDENTITY", "HB", "DAWA",
                                               "UNIFORM"};

  std::vector<std::string> header{"algorithm"};
  for (size_t wdt : widths) header.push_back("w=" + std::to_string(wdt));
  TextTable table(header);

  for (const std::string& name : algorithms) {
    auto mech = MechanismRegistry::Get(name).value();
    std::vector<std::string> row{name};
    for (size_t width : widths) {
      Workload w = Workload::FixedWidth1D(n, width);
      std::vector<double> truth = w.Evaluate(*x);
      double err = 0.0;
      for (int t = 0; t < trials; ++t) {
        RunContext ctx{*x, w, eps, &rng, {}};
        ctx.side_info.true_scale = x->Scale();
        auto est = mech->Run(ctx);
        if (!est.ok()) {
          std::cerr << est.status().ToString() << "\n";
          return 1;
        }
        err += *ScaledL2PerQueryError(truth, w.Evaluate(*est), x->Scale()) /
               trials;
      }
      row.push_back(TextTable::Num(std::log10(err)));
    }
    table.AddRow(row);
  }
  std::cout << "log10(scaled error) by query width (INCOME @ 1e5, domain "
            << n << ", eps 0.1).\nIDENTITY degrades with width; HB stays "
               "nearly flat (the paper's §3.1 analysis).\n\n";
  table.Print(std::cout);
  return 0;
}
