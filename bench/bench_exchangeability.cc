// SE — empirically demonstrates scale-epsilon exchangeability (§5.5,
// Definition 4): for (scale, eps) pairs with equal product, the scaled
// error of each exchangeable algorithm is the same. SF is not provably
// exchangeable but behaves so empirically — exactly as the paper notes.
#include <iostream>

#include "bench/bench_common.h"
#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("SE", "scale-epsilon exchangeability", opts);

  const size_t domain = opts.full ? 2048 : 512;
  const int trials = opts.full ? 40 : 12;
  // Three (scale, eps) pairs with product 1e4.
  const std::vector<std::pair<uint64_t, double>> settings = {
      {10000, 1.0}, {100000, 0.1}, {1000000, 0.01}};
  const std::vector<std::string> algorithms = {
      "IDENTITY", "HB", "DAWA", "MWEM", "PHP", "EFPA", "UNIFORM", "SF"};

  auto shape = DatasetRegistry::ShapeAtDomain("MEDCOST", domain);
  if (!shape.ok()) return 1;
  Workload w = Workload::Prefix1D(domain);

  std::vector<std::string> header{"algorithm"};
  for (const auto& [scale, eps] : settings) {
    header.push_back("m=" + std::to_string(scale) +
                     ",eps=" + TextTable::Num(eps));
  }
  header.push_back("max/min");
  TextTable table(header);

  for (const std::string& name : algorithms) {
    auto mech = MechanismRegistry::Get(name);
    if (!mech.ok()) return 1;
    std::vector<std::string> row{name};
    double mn = 1e300, mx = 0.0;
    Rng rng(opts.seed);
    for (const auto& [scale, eps] : settings) {
      double total = 0.0;
      for (int t = 0; t < trials; ++t) {
        auto x = SampleAtScale(*shape, scale, &rng);
        if (!x.ok()) return 1;
        std::vector<double> truth = w.Evaluate(*x);
        RunContext ctx{*x, w, eps, &rng, {}};
        ctx.side_info.true_scale = x->Scale();
        auto est = (*mech)->Run(ctx);
        if (!est.ok()) {
          std::cerr << est.status().ToString() << "\n";
          return 1;
        }
        total += *ScaledL2PerQueryError(truth, w.Evaluate(*est),
                                        x->Scale());
      }
      double mean = total / trials;
      mn = std::min(mn, mean);
      mx = std::max(mx, mean);
      row.push_back(TextTable::Num(std::log10(mean)));
    }
    row.push_back(TextTable::Num(mx / mn));
    table.AddRow(row);
  }
  std::cout << "log10(scaled error) at constant eps*scale = 1e4 (MEDCOST).\n"
            << "Exchangeable algorithms show max/min near 1.\n\n";
  table.Print(std::cout);
  return 0;
}
