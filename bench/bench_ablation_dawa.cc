// ABL-DAWA — ablation of DAWA's two stages (DESIGN.md design-choice
// index): full DAWA vs (a) no data-adaptive partition (GREEDY_H straight
// on cells), vs (b) partition but flat Laplace bucket measurement instead
// of GREEDY_H, across scales. Shows both stages matter, in different
// regimes — the partition at small scale, the workload-aware hierarchy at
// large scale.
#include <iostream>

#include "bench/bench_common.h"
#include "src/algorithms/dawa.h"
#include "src/algorithms/greedy_h.h"
#include "src/common/rng.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"
#include "src/mechanisms/laplace.h"

using namespace dpbench;

namespace {

// Stage-1 partition + flat Laplace per bucket (no GREEDY_H).
Result<DataVector> PartitionFlat(const DataVector& x, double eps, Rng* rng) {
  double eps1 = 0.25 * eps, eps2 = eps - eps1;
  std::vector<size_t> ends = dawa_internal::LeastCostPartition(
      x.counts(), eps1, 1.0 / eps2, rng);
  DataVector out(x.domain());
  size_t start = 0;
  for (size_t end : ends) {
    double truth = 0.0;
    for (size_t i = start; i < end; ++i) truth += x[i];
    double noisy = truth + rng->Laplace(1.0 / eps2);
    double width = static_cast<double>(end - start);
    for (size_t i = start; i < end; ++i) out[i] = noisy / width;
    start = end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("ABL-DAWA", "DAWA stage ablation", opts);

  const size_t n = opts.full ? 4096 : 1024;
  const int trials = opts.full ? 20 : 8;
  const double eps = 0.1;
  Rng rng(opts.seed);
  auto shape = DatasetRegistry::ShapeAtDomain("ADULT", n);
  if (!shape.ok()) return 1;
  Workload w = Workload::Prefix1D(n);
  std::vector<std::pair<size_t, size_t>> all_ranges;
  for (const RangeQuery& q : w.queries()) {
    all_ranges.emplace_back(q.lo[0], q.hi[0]);
  }

  TextTable table({"scale", "full DAWA", "no partition (GREEDY_H)",
                   "partition + flat"});
  for (uint64_t scale : {uint64_t{1000}, uint64_t{100000},
                         uint64_t{10000000}}) {
    auto x = SampleAtScale(*shape, scale, &rng);
    if (!x.ok()) return 1;
    std::vector<double> truth = w.Evaluate(*x);
    DawaMechanism dawa;
    double e_full = 0.0, e_nopart = 0.0, e_flat = 0.0;
    for (int t = 0; t < trials; ++t) {
      RunContext ctx{*x, w, eps, &rng, {}};
      auto full = dawa.Run(ctx);
      e_full += *ScaledL2PerQueryError(truth, w.Evaluate(*full),
                                       x->Scale()) /
                trials;
      auto nopart = greedy_h_internal::RunOnCounts(x->counts(), all_ranges,
                                                   2, eps, &rng);
      DataVector np(x->domain(), std::move(nopart).value());
      e_nopart += *ScaledL2PerQueryError(truth, w.Evaluate(np),
                                         x->Scale()) /
                  trials;
      auto flat = PartitionFlat(*x, eps, &rng);
      e_flat += *ScaledL2PerQueryError(truth, w.Evaluate(*flat),
                                       x->Scale()) /
                trials;
    }
    table.AddRow({std::to_string(scale), TextTable::Num(e_full),
                  TextTable::Num(e_nopart), TextTable::Num(e_flat)});
  }
  std::cout << "scaled error on ADULT (domain " << n << ", eps 0.1):\n\n";
  table.Print(std::cout);
  return 0;
}
