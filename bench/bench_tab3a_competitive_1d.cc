// TAB3A — reproduces Table 3a: for each scale, the number of 1D datasets
// on which each algorithm is competitive (lowest mean error or not
// statistically distinguishable from it; Welch t-test with Bonferroni
// correction, §5.3).
#include "bench/bench_common.h"
#include "src/data/datasets.h"
#include "src/engine/stats.h"

#include <iostream>

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("TAB3A", "competitive algorithms per scale (1D)",
                     opts);

  ExperimentConfig c;
  c.algorithms = {"IDENTITY", "HB",     "MWEM*", "DAWA", "PHP", "MWEM",
                  "EFPA",     "DPCUBE", "AHP*",  "SF",   "UNIFORM"};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kPrefix1D;
  c.seed = opts.seed;
  if (opts.full) {
    for (const DatasetInfo& d : DatasetRegistry::All1D()) {
      c.datasets.push_back(d.name);
    }
    c.scales = {1000, 100000, 10000000};
    c.domain_sizes = {4096};
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.datasets = {"ADULT", "TRACE", "PATENT", "SEARCH", "MEDCOST",
                  "BIDS-ALL"};
    c.scales = {1000, 100000, 10000000};
    c.domain_sizes = {1024};
    c.data_samples = 2;
    c.runs_per_sample = 4;
  }

  std::vector<CellResult> results = bench::MustRun(c);

  // Count competitiveness per (algorithm, scale) across datasets.
  std::map<std::pair<std::string, uint64_t>, int> wins;
  std::map<std::pair<std::string, uint64_t>,
           std::map<std::string, std::vector<double>>>
      by_setting;
  for (const CellResult& cell : results) {
    by_setting[{cell.key.dataset, cell.key.scale}][cell.key.algorithm] =
        cell.errors;
  }
  for (const auto& [setting, by_algo] : by_setting) {
    auto competitive = CompetitiveSet(by_algo);
    if (!competitive.ok()) continue;
    for (const std::string& algo : *competitive) {
      wins[{algo, setting.second}]++;
    }
  }

  TextTable table({"algorithm", "10^3", "10^5", "10^7"});
  for (const std::string& algo : c.algorithms) {
    std::vector<std::string> row{algo};
    for (uint64_t s : c.scales) {
      auto it = wins.find({algo, s});
      row.push_back(it == wins.end() ? "" : std::to_string(it->second));
    }
    table.AddRow(row);
  }
  std::cout << "number of datasets (of " << c.datasets.size()
            << ") on which each algorithm is competitive:\n";
  table.Print(std::cout);
  bench::MaybeCsv(results, opts);
  return 0;
}
