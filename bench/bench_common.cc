#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>

namespace dpbench {
namespace bench {

Options ParseOptions(int argc, char** argv) {
  Options opts;
  const char* env_full = std::getenv("DPBENCH_FULL");
  if (env_full != nullptr && std::strcmp(env_full, "1") == 0) {
    opts.full = true;
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--full") {
      opts.full = true;
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed = std::stoull(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --full --csv --seed=N\n";
      std::exit(0);
    } else {
      std::cerr << "warning: ignoring unknown flag " << arg << "\n";
    }
  }
  return opts;
}

void PrintBanner(const std::string& experiment_id, const std::string& title,
                 const Options& opts) {
  std::cout << "=== DPBench " << experiment_id << " — " << title << " ===\n"
            << "mode: " << (opts.full ? "FULL (paper grid)" : "reduced")
            << ", seed: " << opts.seed << "\n\n";
}

std::vector<CellResult> MustRun(const ExperimentConfig& config,
                                bool verbose) {
  size_t done = 0;
  auto progress = [&](const CellResult& cell) {
    ++done;
    if (verbose) {
      std::cerr << "[" << done << "] " << cell.key.ToString()
                << " mean=" << cell.summary.mean << "\n";
    }
  };
  auto results = Runner::Run(config, progress);
  if (!results.ok()) {
    std::cerr << "experiment failed: " << results.status().ToString()
              << "\n";
    std::exit(1);
  }
  return std::move(results).value();
}

namespace {
std::string g_column_buffer;
}  // namespace

const std::string& ColumnDataset(const CellResult& cell) {
  return cell.key.dataset;
}

const std::string& ColumnScale(const CellResult& cell) {
  g_column_buffer = "10^" + std::to_string(static_cast<int>(
                                std::lround(std::log10(
                                    static_cast<double>(cell.key.scale)))));
  return g_column_buffer;
}

const std::string& ColumnDomain(const CellResult& cell) {
  g_column_buffer = std::to_string(cell.key.domain_size);
  return g_column_buffer;
}

void PrintMeanPivot(const std::vector<CellResult>& results,
                    const std::string& column_label,
                    const std::string& (*column_of)(const CellResult&)) {
  // Collect row/column orders as first seen.
  std::vector<std::string> rows, cols;
  std::map<std::pair<std::string, std::string>, double> values;
  for (const CellResult& cell : results) {
    std::string col = column_of(cell);
    if (std::find(rows.begin(), rows.end(), cell.key.algorithm) ==
        rows.end()) {
      rows.push_back(cell.key.algorithm);
    }
    if (std::find(cols.begin(), cols.end(), col) == cols.end()) {
      cols.push_back(col);
    }
    values[{cell.key.algorithm, col}] = cell.summary.mean;
  }
  std::vector<std::string> header{"algorithm \\ " + column_label};
  for (const std::string& c : cols) header.push_back(c + " log10(err)");
  TextTable table(header);
  for (const std::string& r : rows) {
    std::vector<std::string> row{r};
    for (const std::string& c : cols) {
      auto it = values.find({r, c});
      if (it == values.end()) {
        row.push_back("-");
      } else {
        row.push_back(TextTable::Num(std::log10(it->second)));
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void MaybeCsv(const std::vector<CellResult>& results, const Options& opts) {
  if (!opts.csv) return;
  std::cout << "--- raw csv ---\n";
  WriteCsv(results, std::cout);
}

}  // namespace bench
}  // namespace dpbench
