// Shared helpers for the per-figure/table bench binaries.
//
// Every binary supports:
//   --full         run the paper-scale grid (default: reduced, seconds-fast)
//   --seed=N       master seed
//   --csv          additionally dump raw CSV rows
// Environment DPBENCH_FULL=1 is equivalent to --full.
#ifndef DPBENCH_BENCH_BENCH_COMMON_H_
#define DPBENCH_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/engine/report.h"
#include "src/engine/runner.h"

namespace dpbench {
namespace bench {

/// Monotonic wall clock in seconds, for hand-rolled timing loops in the
/// benches that do not use google-benchmark.
inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Options {
  bool full = false;
  bool csv = false;
  uint64_t seed = 20160626;
};

/// Parses command line options (unknown flags are ignored with a warning).
Options ParseOptions(int argc, char** argv);

/// Prints the standard banner for an experiment.
void PrintBanner(const std::string& experiment_id, const std::string& title,
                 const Options& opts);

/// Runs the grid with a progress line per cell, exiting the process with a
/// message on failure.
std::vector<CellResult> MustRun(const ExperimentConfig& config,
                                bool verbose = true);

/// Pivot-prints mean errors (log10) with one row per algorithm and one
/// column per value of `column_of`. Columns appear in first-seen order.
void PrintMeanPivot(const std::vector<CellResult>& results,
                    const std::string& column_label,
                    const std::string& (*column_of)(const CellResult&));

/// Convenience column extractors (return stable references).
const std::string& ColumnDataset(const CellResult& cell);
const std::string& ColumnScale(const CellResult& cell);
const std::string& ColumnDomain(const CellResult& cell);

/// Dumps CSV if requested.
void MaybeCsv(const std::vector<CellResult>& results, const Options& opts);

}  // namespace bench
}  // namespace dpbench

#endif  // DPBENCH_BENCH_BENCH_COMMON_H_
