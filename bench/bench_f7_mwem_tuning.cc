// F7 — reproduces Finding 7: the error ratio MWEM / MWEM* per scale.
// The paper reports {1.8, 1.0, 1.1, 5.2, 12.0, 27.9} for scales 1e3..1e8:
// the tuned variant matches the default at small scale and wins by an
// order of magnitude at large scale (T=10 starves MWEM of measurements).
#include <iostream>

#include "bench/bench_common.h"
#include "src/data/datasets.h"

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("F7", "MWEM vs MWEM* error ratio by scale", opts);

  ExperimentConfig c;
  c.algorithms = {"MWEM", "MWEM*"};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kPrefix1D;
  c.seed = opts.seed;
  if (opts.full) {
    for (const DatasetInfo& d : DatasetRegistry::All1D()) {
      c.datasets.push_back(d.name);
    }
    c.scales = {1000, 10000, 100000, 1000000, 10000000, 100000000};
    c.domain_sizes = {4096};
    c.data_samples = 3;
    c.runs_per_sample = 5;
  } else {
    c.datasets = {"ADULT", "SEARCH", "INCOME"};
    c.scales = {1000, 100000, 10000000};
    c.domain_sizes = {512};
    c.data_samples = 2;
    c.runs_per_sample = 3;
  }

  std::vector<CellResult> results = bench::MustRun(c);

  std::map<uint64_t, std::pair<double, double>> sums;  // scale -> (mwem, star)
  std::map<uint64_t, int> counts;
  for (const CellResult& cell : results) {
    if (cell.key.algorithm == "MWEM") {
      sums[cell.key.scale].first += cell.summary.mean;
      counts[cell.key.scale]++;
    } else {
      sums[cell.key.scale].second += cell.summary.mean;
    }
  }
  TextTable table({"scale", "MWEM err", "MWEM* err", "ratio"});
  for (const auto& [scale, pair] : sums) {
    table.AddRow({std::to_string(scale), TextTable::Num(pair.first),
                  TextTable::Num(pair.second),
                  TextTable::Num(pair.first / pair.second)});
  }
  std::cout << "error ratio MWEM / MWEM*, averaged over "
            << c.datasets.size()
            << " datasets (paper: 1.8, .95, 1.1, 5.2, 12, 27.9)\n";
  table.Print(std::cout);
  bench::MaybeCsv(results, opts);
  return 0;
}
