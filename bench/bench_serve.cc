// SERVE-SATURATION — drives an in-process dpbench_serve Server with
// concurrent synthetic users over persistent loopback sockets and reports
// per-request latency (p50/p99) and sustained throughput (qps). This is
// the serving-mode hot-path number: after warmup every request is a plan
// cache hit answered through the scratch ExecuteInto pipeline, so the
// figure tracks the request pipeline itself, not planning.
//
// Flags:
//   --smoke        CI mode: short run, then enforce conservative floors
//                  (qps >= 200, p99 <= 250 ms, zero refusals/errors) and
//                  exit nonzero when the serving path regresses past them
//   --users=N      concurrent client connections (default 4)
//   --requests=N   requests per user (default 200; smoke 100)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/net.h"
#include "src/engine/serve.h"

using namespace dpbench;

namespace {

struct ClientStats {
  std::vector<double> latencies;  // seconds per answered request
  size_t ok = 0;
  size_t failed = 0;
};

void RunClient(uint16_t port, const std::string& user, size_t requests,
               ClientStats* stats) {
  auto sock = net::Connect(port, 5000);
  if (!sock.ok()) {
    stats->failed += requests;
    return;
  }
  serve::QueryRequest query;
  query.user = user;
  query.dataset = "ADULT";
  query.algorithm = "IDENTITY";
  query.epsilon = 0.01;
  query.scale = 100000;
  query.domain_size = 1024;
  query.lo_row = {0};
  query.hi_row = {1023};
  std::string encoded = serve::EncodeQuery(query);
  stats->latencies.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    double t0 = bench::NowSeconds();
    if (!sock->SendFrame(encoded).ok()) {
      stats->failed += requests - i;
      return;
    }
    auto frame = sock->RecvFrame(30000);
    if (!frame.ok() || frame->timed_out) {
      stats->failed += requests - i;
      return;
    }
    auto reply = serve::DecodeReply(frame->bytes);
    if (!reply.ok() || reply->status != serve::ReplyStatus::kOk) {
      ++stats->failed;
      continue;
    }
    stats->latencies.push_back(bench::NowSeconds() - t0);
    ++stats->ok;
  }
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  size_t k = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  std::nth_element(v->begin(), v->begin() + k, v->end());
  return (*v)[k];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t users = 4;
  size_t requests = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--users=", 8) == 0) {
      users = static_cast<size_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = static_cast<size_t>(std::atoi(argv[i] + 11));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (smoke) requests = 100;
  if (users == 0 || requests == 0) {
    std::fprintf(stderr, "--users and --requests must be positive\n");
    return 1;
  }

  serve::ServerOptions options;
  options.port = 0;
  // In-memory ledgers: the bench measures the request pipeline, and the
  // budget must never exhaust mid-run (each user spends eps * requests).
  options.default_budget = 0.01 * static_cast<double>(requests) * 2.0;
  auto server = serve::Server::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  uint16_t port = server->port();
  std::thread serving([&server] { (void)server->Serve(); });

  std::printf("SERVE-SATURATION (%s): %zu users x %zu requests, "
              "IDENTITY/ADULT n=1024 eps=0.01\n",
              smoke ? "smoke" : "full", users, requests);

  std::vector<ClientStats> stats(users);
  std::vector<std::thread> clients;
  double t0 = bench::NowSeconds();
  for (size_t u = 0; u < users; ++u) {
    clients.emplace_back(RunClient, port, "user" + std::to_string(u),
                         requests, &stats[u]);
  }
  for (auto& t : clients) t.join();
  double wall = bench::NowSeconds() - t0;

  server->Stop();
  serving.join();

  std::vector<double> all;
  size_t ok = 0, failed = 0;
  for (const ClientStats& s : stats) {
    all.insert(all.end(), s.latencies.begin(), s.latencies.end());
    ok += s.ok;
    failed += s.failed;
  }
  double qps = wall > 0 ? static_cast<double>(ok) / wall : 0.0;
  double p50_ms = Percentile(&all, 0.50) * 1e3;
  double p99_ms = Percentile(&all, 0.99) * 1e3;
  serve::ServeStats server_stats = server->stats();

  std::printf("%-10s %12s %12s %12s %10s %10s\n", "metric", "qps",
              "p50_ms", "p99_ms", "ok", "failed");
  std::printf("%-10s %12.1f %12.3f %12.3f %10zu %10zu\n", "serve", qps,
              p50_ms, p99_ms, ok, failed);
  std::printf("server: admitted=%llu plan_hits=%llu plan_misses=%llu "
              "refused_budget=%llu refused_invalid=%llu internal=%llu\n",
              (unsigned long long)server_stats.admitted,
              (unsigned long long)server_stats.plan_cache_hits,
              (unsigned long long)server_stats.plan_cache_misses,
              (unsigned long long)server_stats.refused_budget,
              (unsigned long long)server_stats.refused_invalid,
              (unsigned long long)server_stats.internal_errors);

  if (smoke) {
    // Conservative floors: the serving path answers a 1024-cell IDENTITY
    // request in well under a millisecond of compute, so a debug-grade
    // 200 qps / 250 ms p99 breach means the pipeline regressed, not that
    // the machine was slow.
    bool bad = false;
    if (failed != 0 || server_stats.refused_budget != 0 ||
        server_stats.refused_invalid != 0 ||
        server_stats.internal_errors != 0) {
      std::fprintf(stderr, "FAIL: %zu failed requests, refusals or "
                           "internal errors in smoke run\n", failed);
      bad = true;
    }
    if (qps < 200.0) {
      std::fprintf(stderr, "FAIL: qps %.1f below smoke floor 200\n", qps);
      bad = true;
    }
    if (p99_ms > 250.0) {
      std::fprintf(stderr, "FAIL: p99 %.3f ms above smoke ceiling 250\n",
                   p99_ms);
      bad = true;
    }
    if (bad) return 1;
    std::printf("smoke floors passed (qps >= 200, p99 <= 250 ms, zero "
                "failures)\n");
  }
  return 0;
}
