// MICRO-SUB — google-benchmark microbenchmarks of the substrates the
// algorithms are built on: FFT, Haar wavelets, Hilbert linearization, tree
// GLS inference, multinomial sampling, workload evaluation, and the DAWA
// partition DP. Useful for tracking performance regressions of the pieces
// that dominate full-grid runtime.
#include <benchmark/benchmark.h>

#include "src/algorithms/dawa.h"
#include "src/algorithms/privelet.h"
#include "src/algorithms/tree_inference.h"
#include "src/common/fft.h"
#include "src/common/rng.h"
#include "src/histogram/hilbert.h"
#include "src/workload/workload.h"

namespace dpbench {
namespace {

std::vector<double> RandomCounts(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = static_cast<double>(rng.UniformInt(1000));
  return out;
}

void BM_Fft(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = RandomCounts(n, 1);
  for (auto _ : state) {
    auto f = OrthonormalDft(x);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(4096);

void BM_HaarRoundTrip(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = RandomCounts(n, 2);
  for (auto _ : state) {
    auto back = wavelet::HaarInverse(wavelet::HaarForward(x));
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_HaarRoundTrip)->Arg(1024)->Arg(4096);

void BM_HilbertLinearize(benchmark::State& state) {
  size_t side = static_cast<size_t>(state.range(0));
  DataVector x(Domain::D2(side, side), RandomCounts(side * side, 3));
  for (auto _ : state) {
    auto lin = HilbertLinearize(x);
    benchmark::DoNotOptimize(lin);
  }
}
BENCHMARK(BM_HilbertLinearize)->Arg(64)->Arg(256);

void BM_TreeGls(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  RangeTree tree = RangeTree::Build(n, 2);
  std::vector<double> y(tree.num_nodes(), 1.0);
  std::vector<double> var(tree.num_nodes(), 2.0);
  for (auto _ : state) {
    auto est = tree.Infer(y, var);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_TreeGls)->Arg(1024)->Arg(4096);

void BM_Multinomial(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  uint64_t scale = static_cast<uint64_t>(state.range(1));
  std::vector<double> p(n, 1.0);
  Rng rng(4);
  for (auto _ : state) {
    auto counts = rng.Multinomial(scale, p);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_Multinomial)
    ->Args({4096, 1000})
    ->Args({4096, 100000000});

void BM_PrefixWorkloadEval(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  DataVector x(Domain::D1(n), RandomCounts(n, 5));
  Workload w = Workload::Prefix1D(n);
  for (auto _ : state) {
    auto y = w.Evaluate(x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_PrefixWorkloadEval)->Arg(4096);

void BM_RandomRange2DEval(benchmark::State& state) {
  size_t side = static_cast<size_t>(state.range(0));
  DataVector x(Domain::D2(side, side), RandomCounts(side * side, 6));
  Workload w = Workload::RandomRange(x.domain(), 2000, 7);
  for (auto _ : state) {
    auto y = w.Evaluate(x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_RandomRange2DEval)->Arg(128);

void BM_DawaPartition(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> counts = RandomCounts(n, 8);
  Rng rng(9);
  for (auto _ : state) {
    auto ends = dawa_internal::LeastCostPartition(counts, 0.025, 13.0,
                                                  &rng);
    benchmark::DoNotOptimize(ends);
  }
}
BENCHMARK(BM_DawaPartition)->Arg(1024)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace dpbench

BENCHMARK_MAIN();
