// FIG2B — reproduces Figure 2b: 2D error by dataset shape at fixed
// scale 1e4 (paper: domain 128x128).
#include "bench/bench_common.h"
#include "src/data/datasets.h"

#include <iostream>

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("FIG2B", "2D error by shape (scale=1e4, eps=0.1)",
                     opts);

  ExperimentConfig c;
  c.algorithms = {"UNIFORM", "AGRID", "DAWA", "HB", "IDENTITY"};
  for (const DatasetInfo& d : DatasetRegistry::All2D()) {
    c.datasets.push_back(d.name);
  }
  c.scales = {10000};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kRandomRange2D;
  c.seed = opts.seed;
  if (opts.full) {
    c.domain_sizes = {128};
    c.random_queries = 2000;
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.domain_sizes = {64};
    c.random_queries = 500;
    c.data_samples = 2;
    c.runs_per_sample = 2;
  }

  std::vector<CellResult> results = bench::MustRun(c);
  std::cout << "log10(scaled error) per dataset and algorithm:\n";
  bench::PrintMeanPivot(results, "dataset", bench::ColumnDataset);
  bench::MaybeCsv(results, opts);
  return 0;
}
