// TAB3B — reproduces Table 3b: competitive-count table for the 2D case.
#include "bench/bench_common.h"
#include "src/data/datasets.h"
#include "src/engine/stats.h"

#include <iostream>

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("TAB3B", "competitive algorithms per scale (2D)",
                     opts);

  ExperimentConfig c;
  c.algorithms = {"IDENTITY", "HB",    "AGRID",  "MWEM", "MWEM*", "DAWA",
                  "QUADTREE", "UGRID", "DPCUBE", "AHP",  "UNIFORM"};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kRandomRange2D;
  c.seed = opts.seed;
  if (opts.full) {
    for (const DatasetInfo& d : DatasetRegistry::All2D()) {
      c.datasets.push_back(d.name);
    }
    c.scales = {10000, 1000000, 100000000};
    c.domain_sizes = {128};
    c.random_queries = 2000;
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.datasets = {"BJ-CABS-S", "GOWALLA", "ADULT-2D", "SF-CABS-E",
                  "STROKE"};
    c.scales = {10000, 1000000, 100000000};
    c.domain_sizes = {64};
    c.random_queries = 400;
    c.data_samples = 2;
    c.runs_per_sample = 3;
  }

  std::vector<CellResult> results = bench::MustRun(c);

  std::map<std::pair<std::string, uint64_t>, int> wins;
  std::map<std::pair<std::string, uint64_t>,
           std::map<std::string, std::vector<double>>>
      by_setting;
  for (const CellResult& cell : results) {
    by_setting[{cell.key.dataset, cell.key.scale}][cell.key.algorithm] =
        cell.errors;
  }
  for (const auto& [setting, by_algo] : by_setting) {
    auto competitive = CompetitiveSet(by_algo);
    if (!competitive.ok()) continue;
    for (const std::string& algo : *competitive) {
      wins[{algo, setting.second}]++;
    }
  }

  TextTable table({"algorithm", "10^4", "10^6", "10^8"});
  for (const std::string& algo : c.algorithms) {
    std::vector<std::string> row{algo};
    for (uint64_t s : c.scales) {
      auto it = wins.find({algo, s});
      row.push_back(it == wins.end() ? "" : std::to_string(it->second));
    }
    table.AddRow(row);
  }
  std::cout << "number of datasets (of " << c.datasets.size()
            << ") on which each algorithm is competitive:\n";
  table.Print(std::cout);
  bench::MaybeCsv(results, opts);
  return 0;
}
