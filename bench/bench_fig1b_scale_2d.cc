// FIG1B — reproduces Figure 1b: 2D scaled error vs scale, eps = 0.1,
// 2000 random range queries. Paper: domain 128x128, scales
// {1e4, 1e6, 1e8}, 9 datasets.
#include "bench/bench_common.h"
#include "src/data/datasets.h"

#include <iostream>

using namespace dpbench;

int main(int argc, char** argv) {
  bench::Options opts = bench::ParseOptions(argc, argv);
  bench::PrintBanner("FIG1B",
                     "2D error vs scale (eps=0.1, random ranges)", opts);

  ExperimentConfig c;
  c.algorithms = {"IDENTITY", "HB",    "AGRID",  "MWEM",   "MWEM*", "DAWA",
                  "QUADTREE", "UGRID", "DPCUBE", "AHP",    "UNIFORM"};
  c.epsilons = {0.1};
  c.workload = WorkloadKind::kRandomRange2D;
  c.seed = opts.seed;
  if (opts.full) {
    for (const DatasetInfo& d : DatasetRegistry::All2D()) {
      c.datasets.push_back(d.name);
    }
    c.scales = {10000, 1000000, 100000000};
    c.domain_sizes = {128};
    c.random_queries = 2000;
    c.data_samples = 5;
    c.runs_per_sample = 10;
  } else {
    c.datasets = {"BJ-CABS-S", "ADULT-2D", "STROKE"};
    c.scales = {10000, 1000000, 100000000};
    c.domain_sizes = {64};
    c.random_queries = 500;
    c.data_samples = 2;
    c.runs_per_sample = 2;
  }

  std::vector<CellResult> results = bench::MustRun(c);

  std::map<std::pair<std::string, uint64_t>, std::pair<double, int>> agg;
  for (const CellResult& cell : results) {
    auto& [sum, count] = agg[{cell.key.algorithm, cell.key.scale}];
    sum += cell.summary.mean;
    count += 1;
  }
  TextTable table({"algorithm", "scale=1e4", "scale=1e6", "scale=1e8"});
  for (const std::string& algo : c.algorithms) {
    std::vector<std::string> row{algo};
    for (uint64_t s : c.scales) {
      auto it = agg.find({algo, s});
      row.push_back(it == agg.end()
                        ? "-"
                        : TextTable::Num(std::log10(it->second.first /
                                                    it->second.second)));
    }
    table.AddRow(row);
  }
  std::cout << "mean log10(scaled L2 per-query error), averaged over "
            << c.datasets.size() << " datasets\n";
  table.Print(std::cout);
  bench::MaybeCsv(results, opts);
  return 0;
}
