// MICRO — google-benchmark microbenchmarks: wall-clock cost of one run of
// each algorithm at benchmark domain sizes (ours; the paper reports only
// total compute, ~22 CPU-days for the full grid).
//
// Three families expose the plan/execute split of the pipeline:
//   BM_<Algo>_<dims>            full Run() = plan + execute every iteration
//                               (the legacy per-trial rebuild path)
//   BM_<Algo>_<dims>_PlanOnce   plan hoisted out of the loop; iterations
//                               execute the cached plan into a reused
//                               estimate with a persistent ExecScratch
//                               (the runner's plan-cache + zero-allocation
//                               path — compare against the previous family
//                               for the cache payoff)
//   BM_<Algo>_<dims>_PlanOnly   cost of building the plan itself
#include <benchmark/benchmark.h>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/workload/workload.h"

namespace dpbench {
namespace {

const DataVector& Data1D() {
  static const DataVector* x = [] {
    Rng rng(1);
    auto shape = DatasetRegistry::ShapeAtDomain("SEARCH", 1024);
    return new DataVector(SampleAtScale(*shape, 100000, &rng).value());
  }();
  return *x;
}

const DataVector& Data2D() {
  static const DataVector* x = [] {
    Rng rng(2);
    auto shape = DatasetRegistry::ShapeAtDomain("GOWALLA", 64);
    return new DataVector(SampleAtScale(*shape, 100000, &rng).value());
  }();
  return *x;
}

const Workload& Prefix() {
  static const Workload* w = new Workload(Workload::Prefix1D(1024));
  return *w;
}

const Workload& Ranges2D() {
  static const Workload* w =
      new Workload(Workload::RandomRange(Domain::D2(64, 64), 500, 3));
  return *w;
}

void RunAlgorithm(benchmark::State& state, const std::string& name,
                  bool two_d) {
  MechanismPtr m = MechanismRegistry::Get(name).value();
  const DataVector& x = two_d ? Data2D() : Data1D();
  const Workload& w = two_d ? Ranges2D() : Prefix();
  Rng rng(42);
  for (auto _ : state) {
    RunContext ctx{x, w, 0.1, &rng, {}};
    ctx.side_info.true_scale = x.Scale();
    auto est = m->Run(ctx);
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
}

void RunPlanOnce(benchmark::State& state, const std::string& name,
                 bool two_d) {
  MechanismPtr m = MechanismRegistry::Get(name).value();
  const DataVector& x = two_d ? Data2D() : Data1D();
  const Workload& w = two_d ? Ranges2D() : Prefix();
  PlanContext pctx{x.domain(), w, 0.1, {x.Scale()}};
  auto plan_or = m->Plan(pctx);
  if (!plan_or.ok()) {
    state.SkipWithError(plan_or.status().ToString().c_str());
    return;
  }
  PlanPtr plan = std::move(plan_or).value();
  Rng rng(42);
  ExecScratch scratch;
  DataVector est;
  for (auto _ : state) {
    ExecContext ectx{x, &rng, &scratch};
    Status st = plan->ExecuteInto(ectx, &est);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
}

void RunPlanOnly(benchmark::State& state, const std::string& name,
                 bool two_d) {
  MechanismPtr m = MechanismRegistry::Get(name).value();
  const DataVector& x = two_d ? Data2D() : Data1D();
  const Workload& w = two_d ? Ranges2D() : Prefix();
  for (auto _ : state) {
    PlanContext pctx{x.domain(), w, 0.1, {x.Scale()}};
    auto plan = m->Plan(pctx);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
}

#define DPBENCH_MICRO_1D(NAME, ALGO)                        \
  void BM_##NAME##_1D(benchmark::State& state) {            \
    RunAlgorithm(state, ALGO, false);                       \
  }                                                         \
  BENCHMARK(BM_##NAME##_1D)->Unit(benchmark::kMillisecond)

#define DPBENCH_MICRO_2D(NAME, ALGO)                        \
  void BM_##NAME##_2D(benchmark::State& state) {            \
    RunAlgorithm(state, ALGO, true);                        \
  }                                                         \
  BENCHMARK(BM_##NAME##_2D)->Unit(benchmark::kMillisecond)

#define DPBENCH_MICRO_PLAN_1D(NAME, ALGO)                   \
  void BM_##NAME##_1D_PlanOnce(benchmark::State& state) {   \
    RunPlanOnce(state, ALGO, false);                        \
  }                                                         \
  BENCHMARK(BM_##NAME##_1D_PlanOnce)                        \
      ->Unit(benchmark::kMillisecond);                      \
  void BM_##NAME##_1D_PlanOnly(benchmark::State& state) {   \
    RunPlanOnly(state, ALGO, false);                        \
  }                                                         \
  BENCHMARK(BM_##NAME##_1D_PlanOnly)->Unit(benchmark::kMillisecond)

#define DPBENCH_MICRO_PLAN_2D(NAME, ALGO)                   \
  void BM_##NAME##_2D_PlanOnce(benchmark::State& state) {   \
    RunPlanOnce(state, ALGO, true);                         \
  }                                                         \
  BENCHMARK(BM_##NAME##_2D_PlanOnce)                        \
      ->Unit(benchmark::kMillisecond);                      \
  void BM_##NAME##_2D_PlanOnly(benchmark::State& state) {   \
    RunPlanOnly(state, ALGO, true);                         \
  }                                                         \
  BENCHMARK(BM_##NAME##_2D_PlanOnly)->Unit(benchmark::kMillisecond)

DPBENCH_MICRO_1D(Identity, "IDENTITY");
DPBENCH_MICRO_1D(Privelet, "PRIVELET");
DPBENCH_MICRO_1D(H, "H");
DPBENCH_MICRO_1D(Hb, "HB");
DPBENCH_MICRO_1D(GreedyH, "GREEDY_H");
DPBENCH_MICRO_1D(Uniform, "UNIFORM");
DPBENCH_MICRO_1D(Mwem, "MWEM");
DPBENCH_MICRO_1D(MwemStar, "MWEM*");
DPBENCH_MICRO_1D(Ahp, "AHP");
DPBENCH_MICRO_1D(DpCube, "DPCUBE");
DPBENCH_MICRO_1D(Dawa, "DAWA");
DPBENCH_MICRO_1D(Php, "PHP");
DPBENCH_MICRO_1D(Efpa, "EFPA");
DPBENCH_MICRO_1D(Sf, "SF");

DPBENCH_MICRO_2D(Identity2, "IDENTITY");
DPBENCH_MICRO_2D(Hb2, "HB");
DPBENCH_MICRO_2D(Dawa2, "DAWA");
DPBENCH_MICRO_2D(Agrid, "AGRID");
DPBENCH_MICRO_2D(Ugrid, "UGRID");
DPBENCH_MICRO_2D(QuadTree, "QUADTREE");
DPBENCH_MICRO_2D(HybridTree, "HYBRIDTREE");
DPBENCH_MICRO_2D(DpCube2, "DPCUBE");

// Plan-once / execute-many variants for the data-independent suite (the
// mechanisms whose plans hold real precomputed state).
DPBENCH_MICRO_PLAN_1D(Identity, "IDENTITY");
DPBENCH_MICRO_PLAN_1D(Privelet, "PRIVELET");
DPBENCH_MICRO_PLAN_1D(H, "H");
DPBENCH_MICRO_PLAN_1D(Hb, "HB");
DPBENCH_MICRO_PLAN_1D(GreedyH, "GREEDY_H");
DPBENCH_MICRO_PLAN_1D(Uniform, "UNIFORM");
DPBENCH_MICRO_PLAN_2D(Hb2, "HB");
DPBENCH_MICRO_PLAN_2D(Ugrid, "UGRID");
DPBENCH_MICRO_PLAN_2D(QuadTree, "QUADTREE");

}  // namespace
}  // namespace dpbench

BENCHMARK_MAIN();
