// NOISE ENGINE — throughput of the counter-based generator's block fills
// vs the per-call scalar draws they replace on the trial hot path.
//
// Sections:
//   1. Uniform: Rng::Uniform() loop vs Rng::FillUniform.
//   2. Laplace, constant scale: Rng::Laplace(scale) loop vs
//      Rng::FillLaplace(out, n, scale) — the PRIVELET / LaplaceMechanism
//      shape (n i.i.d. draws per trial).
//   3. Laplace, per-measurement scales: scalar loop vs the per-scale
//      FillLaplace overload — the tree-schedule shape (H/HB/GREEDY_H/
//      QUADTREE node scales).
//   4. Gumbel: scalar Gumbel() loop vs Rng::FillGumbel (the exponential
//      mechanism's block form; same stream positions, FastLog transform).
//   5. Raw counter output: Philox4x32::FillRaw bandwidth.
//
// Before timing, every fill result is checked byte-for-byte against the
// scalar path (the counter-based stream contract), so the bench doubles
// as a quick determinism smoke. The constant-scale batched fill must beat
// the per-call loop by the gate ratio or the bench exits nonzero — CI
// runs it in Release to catch hot-path regressions loudly.
//
// Flags: --smoke (short CI mode), --n=N (buffer length per rep, default
// 1<<16), --reps=N (default 400; smoke uses 40).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/lockstep.h"
#include "src/common/rng.h"

namespace dpbench {
namespace {

using bench::NowSeconds;

// The constant-scale batched fill must stay at least this much faster
// than the per-call loop. The measured margin is well above 2x (see
// ROADMAP); the gate sits lower so a loaded CI machine does not flake.
constexpr double kLaplaceSpeedupGate = 1.5;

// The Gumbel fill (exponential-mechanism selection noise, the MWEM/SF hot
// draw) must beat the scalar Gumbel loop it replaced. Measured ~1.45x
// (two FastLogs, vectorized); gated lower against CI noise.
constexpr double kGumbelSpeedupGate = 1.15;

// The two-chain interleaved AVX2 Philox block loop must beat the
// single-chain loop it replaced. Measured ~1.07x (the second chain fills
// multiplier issue slots left idle by the round dependency ladder); gated
// at 1.03x against CI noise. Only checked when the CPU has AVX2.
constexpr double kPhiloxIlpSpeedupGate = 1.03;

// Keeps the optimizer from deleting the generation loops.
double Checksum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

struct Rate {
  double draws_per_sec = 0.0;
  double ns_per_draw = 0.0;
};

template <typename Fn>
Rate Time(size_t n, size_t reps, double* sink, Fn&& fill) {
  // One untimed rep to warm caches and branch predictors.
  fill();
  double t0 = NowSeconds();
  for (size_t r = 0; r < reps; ++r) *sink += fill();
  double elapsed = NowSeconds() - t0;
  Rate out;
  double draws = static_cast<double>(n) * static_cast<double>(reps);
  out.draws_per_sec = elapsed > 0.0 ? draws / elapsed : 0.0;
  out.ns_per_draw = draws > 0.0 ? elapsed * 1e9 / draws : 0.0;
  return out;
}

void PrintRow(const char* name, Rate scalar, Rate batched) {
  std::printf("%-22s %10.1f %10.1f %12.2f %12.2f %8.2fx\n", name,
              scalar.draws_per_sec / 1e6, batched.draws_per_sec / 1e6,
              scalar.ns_per_draw, batched.ns_per_draw,
              scalar.ns_per_draw > 0.0
                  ? scalar.ns_per_draw / batched.ns_per_draw
                  : 0.0);
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

int Main(int argc, char** argv) {
  size_t n = 1 << 16;
  size_t reps = 400;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<size_t>(std::atoll(argv[i] + 4));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<size_t>(std::atoll(argv[i] + 7));
    } else {
      std::printf("warning: unknown flag %s\n", argv[i]);
    }
  }
  if (smoke) reps = 40;
  std::printf("== bench_noise (%s mode, n=%zu, %zu reps) ==\n",
              smoke ? "smoke" : "full", n, reps);

  const double scale = 2.5;
  std::vector<double> scales(n);
  for (size_t i = 0; i < n; ++i) {
    scales[i] = 0.5 + static_cast<double>(i % 11) * 0.35;
  }

  // Determinism smoke: fills must be byte-identical to the scalar draws.
  int failures = 0;
  {
    std::vector<double> a(n), b(n);
    Rng ra(17), rb(17);
    for (size_t i = 0; i < n; ++i) a[i] = ra.Uniform();
    rb.FillUniform(b.data(), n);
    if (!BitIdentical(a, b)) {
      std::printf("FAIL: FillUniform diverges from scalar Uniform\n");
      ++failures;
    }
    Rng rc(18), rd(18);
    for (size_t i = 0; i < n; ++i) a[i] = rc.Laplace(scale);
    rd.FillLaplace(b.data(), n, scale);
    if (!BitIdentical(a, b)) {
      std::printf("FAIL: FillLaplace diverges from scalar Laplace\n");
      ++failures;
    }
    Rng re(19), rf(19);
    for (size_t i = 0; i < n; ++i) a[i] = re.Laplace(scales[i]);
    rf.FillLaplace(b.data(), scales.data(), n);
    if (!BitIdentical(a, b)) {
      std::printf("FAIL: per-scale FillLaplace diverges from scalar\n");
      ++failures;
    }
    // FillGumbel's values are a documented departure from scalar
    // Gumbel() (midpoint uniform + FastLog), but its *position* contract
    // — n fill draws consume exactly the stream of n scalar draws — must
    // hold, or every draw after an exponential-mechanism call shifts.
    Rng rg(20), rh(20);
    for (size_t i = 0; i < n; ++i) a[i] = rg.Gumbel();
    rh.FillGumbel(b.data(), n);
    if (rg.generator().position() != rh.generator().position()) {
      std::printf("FAIL: FillGumbel consumes a different stream length "
                  "than scalar Gumbel\n");
      ++failures;
    }
  }
  if (failures > 0) return 1;

  std::printf("%-22s %10s %10s %12s %12s %8s\n", "draw", "scalar M/s",
              "batch M/s", "scalar ns", "batch ns", "speedup");

  double sink = 0.0;
  std::vector<double> buf(n);

  Rng su(101);
  Rate scalar_uniform = Time(n, reps, &sink, [&] {
    for (size_t i = 0; i < n; ++i) buf[i] = su.Uniform();
    return Checksum(buf);
  });
  Rng bu(101);
  Rate batch_uniform = Time(n, reps, &sink, [&] {
    bu.FillUniform(buf.data(), n);
    return Checksum(buf);
  });
  PrintRow("uniform", scalar_uniform, batch_uniform);

  Rng sl(202);
  Rate scalar_laplace = Time(n, reps, &sink, [&] {
    for (size_t i = 0; i < n; ++i) buf[i] = sl.Laplace(scale);
    return Checksum(buf);
  });
  Rng bl(202);
  Rate batch_laplace = Time(n, reps, &sink, [&] {
    bl.FillLaplace(buf.data(), n, scale);
    return Checksum(buf);
  });
  PrintRow("laplace const scale", scalar_laplace, batch_laplace);

  Rng sp(303);
  Rate scalar_per_scale = Time(n, reps, &sink, [&] {
    for (size_t i = 0; i < n; ++i) buf[i] = sp.Laplace(scales[i]);
    return Checksum(buf);
  });
  Rng bp(303);
  Rate batch_per_scale = Time(n, reps, &sink, [&] {
    bp.FillLaplace(buf.data(), scales.data(), n);
    return Checksum(buf);
  });
  PrintRow("laplace per-scale", scalar_per_scale, batch_per_scale);

  Rng sg(505);
  Rate scalar_gumbel = Time(n, reps, &sink, [&] {
    for (size_t i = 0; i < n; ++i) buf[i] = sg.Gumbel();
    return Checksum(buf);
  });
  Rng bg(505);
  Rate batch_gumbel = Time(n, reps, &sink, [&] {
    bg.FillGumbel(buf.data(), n);
    return Checksum(buf);
  });
  PrintRow("gumbel", scalar_gumbel, batch_gumbel);

  {
    std::vector<uint64_t> raw(n);
    Philox4x32 gen(404);
    Rate fill_raw = Time(n, reps, &sink, [&] {
      gen.FillRaw(raw.data(), n);
      return static_cast<double>(raw[n - 1] >> 40);
    });
    std::printf("%-22s %10s %10.1f %12s %12.2f\n", "philox raw u64", "-",
                fill_raw.draws_per_sec / 1e6, "-", fill_raw.ns_per_draw);
  }

  // Within-fill ILP: the AVX2 block loop interleaves two independent
  // 4-block Philox chains per iteration to hide the 10-round dependency
  // ladder. Gate the interleaved loop against the single-chain variant it
  // replaced — both reached through the kernel table, both required
  // bit-identical to the baseline-build flat loop first.
  if (lockstep::TierAvailable(lockstep::IsaTier::kAvx2)) {
    const lockstep::Kernels& avx2 =
        lockstep::KernelsFor(lockstep::IsaTier::kAvx2);
    const lockstep::Kernels& base =
        lockstep::KernelsFor(lockstep::IsaTier::kScalar);
    const size_t nblocks = n / 2;
    std::vector<uint64_t> ref(2 * nblocks), got(2 * nblocks);
    base.philox_blocks(404, 7, nblocks, ref.data());
    avx2.philox_blocks(404, 7, nblocks, got.data());
    if (std::memcmp(ref.data(), got.data(),
                    ref.size() * sizeof(uint64_t)) != 0) {
      std::printf("FAIL: AVX2 interleaved Philox blocks diverge from the "
                  "flat loop\n");
      return 1;
    }
    avx2.philox_blocks_narrow(404, 7, nblocks, got.data());
    if (std::memcmp(ref.data(), got.data(),
                    ref.size() * sizeof(uint64_t)) != 0) {
      std::printf("FAIL: AVX2 single-chain Philox blocks diverge from the "
                  "flat loop\n");
      return 1;
    }
    Rate narrow = Time(n, reps, &sink, [&] {
      avx2.philox_blocks_narrow(404, 0, nblocks, got.data());
      return static_cast<double>(got[2 * nblocks - 1] >> 40);
    });
    Rate wide = Time(n, reps, &sink, [&] {
      avx2.philox_blocks(404, 0, nblocks, got.data());
      return static_cast<double>(got[2 * nblocks - 1] >> 40);
    });
    PrintRow("philox 2-chain ILP", narrow, wide);
    double ilp_speedup = narrow.ns_per_draw / wide.ns_per_draw;
    if (ilp_speedup < kPhiloxIlpSpeedupGate) {
      std::printf("\nFAIL: two-chain Philox ILP speedup %.2fx is below "
                  "the %.2fx gate\n",
                  ilp_speedup, kPhiloxIlpSpeedupGate);
      return 1;
    }
    std::printf("philox ILP: two-chain interleave %.2fx over "
                "single-chain (gate %.2fx)\n",
                ilp_speedup, kPhiloxIlpSpeedupGate);
  } else {
    std::printf("philox ILP: skipped (CPU lacks AVX2; flat loop serves "
                "both entries)\n");
  }

  if (sink == 0.12345) std::printf("(unlikely sink value)\n");

  double speedup = scalar_laplace.ns_per_draw / batch_laplace.ns_per_draw;
  if (speedup < kLaplaceSpeedupGate) {
    std::printf("\nFAIL: batched Laplace fill speedup %.2fx is below the "
                "%.2fx gate\n",
                speedup, kLaplaceSpeedupGate);
    return 1;
  }
  double gumbel_speedup =
      scalar_gumbel.ns_per_draw / batch_gumbel.ns_per_draw;
  if (gumbel_speedup < kGumbelSpeedupGate) {
    std::printf("\nFAIL: Gumbel fill speedup %.2fx is below the %.2fx "
                "gate\n",
                gumbel_speedup, kGumbelSpeedupGate);
    return 1;
  }
  std::printf("\nOK: uniform/Laplace fills bit-identical to scalar "
              "draws, Gumbel fill position-exact; batched Laplace %.2fx "
              "over per-call, Gumbel fill %.2fx\n",
              speedup, gumbel_speedup);
  return 0;
}

}  // namespace
}  // namespace dpbench

int main(int argc, char** argv) { return dpbench::Main(argc, argv); }
