// The DPBench data generator G (paper §5.1).
//
// G isolates a dataset's *shape* on a target domain, then samples a fresh
// data vector of any requested *scale* by drawing m tuples i.i.d. from the
// shape. This is what lets the benchmark vary scale, shape, and domain size
// independently — the paper's key methodological device.
#ifndef DPBENCH_DATA_SAMPLER_H_
#define DPBENCH_DATA_SAMPLER_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/histogram/data_vector.h"

namespace dpbench {

/// Samples a data vector of exactly `scale` tuples from `shape`
/// (multinomial with probabilities shape/||shape||_1). Counts are integral.
Result<DataVector> SampleAtScale(const DataVector& shape, uint64_t scale,
                                 Rng* rng);

/// Convenience: coarsen `shape` by an integer factor per dimension first,
/// then sample. Mirrors the generator's domain re-definition step.
Result<DataVector> SampleAtScaleAndDomain(const DataVector& shape,
                                          uint64_t scale,
                                          size_t coarsen_factor, Rng* rng);

}  // namespace dpbench

#endif  // DPBENCH_DATA_SAMPLER_H_
