#include "src/data/shape.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/logging.h"

namespace dpbench {

namespace {

// Normalizes `v` in place to sum to `total` (no-op if the sum is zero).
void NormalizeTo(std::vector<double>* v, double total) {
  double s = std::accumulate(v->begin(), v->end(), 0.0);
  if (s <= 0.0) return;
  for (double& x : *v) x *= total / s;
}

}  // namespace

ShapeBuilder::ShapeBuilder(Domain domain, uint64_t seed)
    : domain_(std::move(domain)),
      rng_(seed),
      mass_(domain_.TotalCells(), 0.0) {}

ShapeBuilder& ShapeBuilder::AddGaussian(const std::vector<double>& center_frac,
                                        const std::vector<double>& width_frac,
                                        double weight) {
  DPB_CHECK_EQ(center_frac.size(), domain_.num_dims());
  DPB_CHECK_EQ(width_frac.size(), domain_.num_dims());
  std::vector<double> bump(mass_.size(), 0.0);
  for (size_t i = 0; i < mass_.size(); ++i) {
    std::vector<size_t> idx = domain_.Unflatten(i);
    double logp = 0.0;
    for (size_t j = 0; j < idx.size(); ++j) {
      double extent = static_cast<double>(domain_.size(j));
      double mu = center_frac[j] * extent;
      double sd = std::max(width_frac[j] * extent, 0.5);
      double z = (static_cast<double>(idx[j]) - mu) / sd;
      logp += -0.5 * z * z;
    }
    bump[i] = std::exp(logp);
  }
  NormalizeTo(&bump, weight);
  for (size_t i = 0; i < mass_.size(); ++i) mass_[i] += bump[i];
  return *this;
}

ShapeBuilder& ShapeBuilder::AddLognormal(double median_frac, double sigma,
                                         double weight) {
  DPB_CHECK_EQ(domain_.num_dims(), 1u);
  size_t n = domain_.size(0);
  std::vector<double> bump(n, 0.0);
  double mu = std::log(std::max(median_frac * static_cast<double>(n), 1.0));
  for (size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) + 1.0;
    double z = (std::log(x) - mu) / sigma;
    bump[i] = std::exp(-0.5 * z * z) / x;
  }
  NormalizeTo(&bump, weight);
  for (size_t i = 0; i < n; ++i) mass_[i] += bump[i];
  return *this;
}

ShapeBuilder& ShapeBuilder::AddZipfSpikes(size_t count, double exponent,
                                          double weight) {
  size_t n = mass_.size();
  count = std::min(count, n);
  std::vector<double> spikes(n, 0.0);
  for (size_t r = 0; r < count; ++r) {
    size_t cell = rng_.UniformInt(n);
    spikes[cell] += std::pow(static_cast<double>(r + 1), -exponent);
  }
  NormalizeTo(&spikes, weight);
  for (size_t i = 0; i < n; ++i) mass_[i] += spikes[i];
  return *this;
}

ShapeBuilder& ShapeBuilder::AddPeriodicSpikes(size_t period, double decay,
                                              double weight) {
  DPB_CHECK_GT(period, 0u);
  size_t n = mass_.size();
  std::vector<double> spikes(n, 0.0);
  size_t k = 0;
  for (size_t i = 0; i < n; i += period, ++k) {
    spikes[i] = std::exp(-decay * static_cast<double>(k));
  }
  NormalizeTo(&spikes, weight);
  for (size_t i = 0; i < n; ++i) mass_[i] += spikes[i];
  return *this;
}

ShapeBuilder& ShapeBuilder::AddUniform(double weight) {
  double u = weight / static_cast<double>(mass_.size());
  for (double& m : mass_) m += u;
  return *this;
}

ShapeBuilder& ShapeBuilder::AddExponentialDecay(double rate_frac,
                                                double weight) {
  DPB_CHECK_EQ(domain_.num_dims(), 1u);
  size_t n = domain_.size(0);
  double rate = 1.0 / std::max(rate_frac * static_cast<double>(n), 1.0);
  std::vector<double> bump(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    bump[i] = std::exp(-rate * static_cast<double>(i));
  }
  NormalizeTo(&bump, weight);
  for (size_t i = 0; i < n; ++i) mass_[i] += bump[i];
  return *this;
}

ShapeBuilder& ShapeBuilder::Roughen(double sigma) {
  for (double& m : mass_) {
    m *= std::exp(sigma * rng_.Normal());
  }
  return *this;
}

ShapeBuilder& ShapeBuilder::AddDiagonalBand(double slope, double offset_frac,
                                            double width_frac, double weight) {
  DPB_CHECK_EQ(domain_.num_dims(), 2u);
  size_t rows = domain_.size(0), cols = domain_.size(1);
  double width = std::max(width_frac * static_cast<double>(rows), 0.5);
  std::vector<double> band(mass_.size(), 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      double target_row = slope * static_cast<double>(c) +
                          offset_frac * static_cast<double>(rows);
      double z = (static_cast<double>(r) - target_row) / width;
      band[r * cols + c] = std::exp(-0.5 * z * z);
    }
  }
  NormalizeTo(&band, weight);
  for (size_t i = 0; i < mass_.size(); ++i) mass_[i] += band[i];
  return *this;
}

ShapeBuilder& ShapeBuilder::TruncateSupport(double target_nonzero_fraction) {
  DPB_CHECK(target_nonzero_fraction > 0.0 && target_nonzero_fraction <= 1.0);
  size_t n = mass_.size();
  if (target_nonzero_fraction >= 1.0) {
    dense_floor_ = true;
    return *this;
  }
  size_t keep = std::max<size_t>(
      1, static_cast<size_t>(
             std::llround(target_nonzero_fraction * static_cast<double>(n))));
  // Order cells by mass descending with random tie-breaking so flat regions
  // do not truncate deterministically at low indices.
  std::vector<std::pair<double, double>> keyed(n);  // (mass, jitter)
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = 0; i < n; ++i) keyed[i] = {mass_[i], rng_.Uniform()};
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keyed[a].first != keyed[b].first)
      return keyed[a].first > keyed[b].first;
    return keyed[a].second > keyed[b].second;
  });
  std::vector<double> truncated(n, 0.0);
  for (size_t r = 0; r < keep; ++r) {
    size_t cell = order[r];
    // Ensure kept cells are strictly positive even if the mixture left
    // them at zero (e.g. more support requested than mixture covers).
    truncated[cell] = std::max(mass_[cell], 1e-9);
  }
  mass_ = std::move(truncated);
  return *this;
}

DataVector ShapeBuilder::Build() const {
  std::vector<double> out = mass_;
  if (dense_floor_) {
    double s = std::accumulate(out.begin(), out.end(), 0.0);
    double floor = (s > 0.0 ? s : 1.0) * 1e-7 / static_cast<double>(out.size());
    for (double& m : out) m = std::max(m, floor);
  }
  NormalizeTo(&out, 1.0);
  return DataVector(domain_, std::move(out));
}

}  // namespace dpbench
