#include "src/data/datasets.h"

#include <functional>
#include <map>

#include "src/data/shape.h"

namespace dpbench {

namespace {

// Deterministic per-dataset seed (FNV-1a over the name).
uint64_t NameSeed(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

using ShapeFn = std::function<DataVector(uint64_t seed)>;

struct DatasetDef {
  DatasetInfo info;
  ShapeFn build;
};

Domain D1() { return Domain::D1(kMaxDomain1D); }
Domain D2() { return Domain::D2(kMaxDomainSide2D, kMaxDomainSide2D); }

// ---------------------------------------------------------------------------
// 1D shape recipes. Each recipe documents the source characteristic it
// imitates; the TruncateSupport argument is 1 - (Table 2 zero fraction).
// ---------------------------------------------------------------------------

// ADULT: "capital gain"-like; the overwhelming majority of records sit at
// zero (cell 0 holds ~90% of the mass), with a thin tail of positive
// values and a spike at the capped maximum. 97.8% empty cells.
DataVector BuildAdult(uint64_t seed) {
  return ShapeBuilder(D1(), seed)
      .AddGaussian({0.0}, {0.0002}, 0.90)
      .AddExponentialDecay(0.01, 0.05)
      .AddZipfSpikes(50, 1.1, 0.03)
      .AddGaussian({0.98}, {0.002}, 0.02)
      .Roughen(0.6)
      .TruncateSupport(1.0 - 0.9780)
      .Build();
}

// HEPPH: citation-network degree-like; smooth heavy tail, mostly dense.
DataVector BuildHepPh(uint64_t seed) {
  return ShapeBuilder(D1(), seed)
      .AddLognormal(0.06, 1.1, 0.85)
      .AddUniform(0.15)
      .Roughen(0.35)
      .TruncateSupport(1.0 - 0.2117)
      .Build();
}

// INCOME: broad lognormal (income distribution), ~45% zeros in the tail.
DataVector BuildIncome(uint64_t seed) {
  return ShapeBuilder(D1(), seed)
      .AddLognormal(0.12, 0.9, 0.9)
      .AddPeriodicSpikes(128, 0.35, 0.1)
      .Roughen(0.25)
      .TruncateSupport(1.0 - 0.4497)
      .Build();
}

// MEDCOST: medical cost; most patients incur near-zero cost, a lognormal
// tail carries the rest. Strongly concentrated at the low end, 74.8% zeros.
DataVector BuildMedCost(uint64_t seed) {
  return ShapeBuilder(D1(), seed)
      .AddGaussian({0.0}, {0.001}, 0.35)
      .AddLognormal(0.03, 1.2, 0.55)
      .AddExponentialDecay(0.02, 0.1)
      .Roughen(0.45)
      .TruncateSupport(1.0 - 0.7480)
      .Build();
}

// TRACE (NETTRACE): network trace; a handful of hosts dominate the traffic
// (heavy Zipf), 96.6% zeros.
DataVector BuildTrace(uint64_t seed) {
  return ShapeBuilder(D1(), seed)
      .AddZipfSpikes(140, 2.2, 0.97)
      .AddUniform(0.03)
      .Roughen(0.5)
      .TruncateSupport(1.0 - 0.9661)
      .Build();
}

// PATENT: dense and smooth, only 6.2% zeros.
DataVector BuildPatent(uint64_t seed) {
  return ShapeBuilder(D1(), seed)
      .AddLognormal(0.25, 0.8, 0.6)
      .AddGaussian({0.55}, {0.2}, 0.3)
      .AddUniform(0.1)
      .Roughen(0.2)
      .TruncateSupport(1.0 - 0.0620)
      .Build();
}

// SEARCH: search-term frequencies; Zipfian with a long half-empty tail.
DataVector BuildSearch(uint64_t seed) {
  return ShapeBuilder(D1(), seed)
      .AddZipfSpikes(1800, 1.05, 0.8)
      .AddExponentialDecay(0.2, 0.2)
      .Roughen(0.4)
      .TruncateSupport(1.0 - 0.5103)
      .Build();
}

// BIDS-*: bid counts per IP address; fully dense (0% zeros), moderately
// rough near-uniform mass. Filter variants differ in texture/seed.
DataVector BuildBids(uint64_t seed, double roughness, double spike_weight) {
  return ShapeBuilder(D1(), seed)
      .AddUniform(1.0 - spike_weight)
      .AddZipfSpikes(400, 0.8, spike_weight)
      .Roughen(roughness)
      .TruncateSupport(1.0)
      .Build();
}

// MD-SAL(-FA): salary histograms; lognormal body with round-number spikes,
// ~83% zeros.
DataVector BuildMdSal(uint64_t seed, double zero_frac) {
  return ShapeBuilder(D1(), seed)
      .AddLognormal(0.18, 0.55, 0.7)
      .AddPeriodicSpikes(64, 0.12, 0.3)
      .Roughen(0.35)
      .TruncateSupport(1.0 - zero_frac)
      .Build();
}

// LC-REQ-*: requested loan amounts cluster hard at round values.
DataVector BuildLcReq(uint64_t seed, double zero_frac) {
  return ShapeBuilder(D1(), seed)
      .AddPeriodicSpikes(40, 0.05, 0.55)
      .AddLognormal(0.2, 0.7, 0.45)
      .Roughen(0.3)
      .TruncateSupport(1.0 - zero_frac)
      .Build();
}

// LC-DTIR-*: debt-to-income ratio; smooth unimodal, dense (F2: 11.9% zeros).
DataVector BuildLcDtir(uint64_t seed, double zero_frac) {
  return ShapeBuilder(D1(), seed)
      .AddGaussian({0.3}, {0.12}, 0.75)
      .AddExponentialDecay(0.5, 0.25)
      .Roughen(0.25)
      .TruncateSupport(zero_frac <= 0.0 ? 1.0 : 1.0 - zero_frac)
      .Build();
}

// ---------------------------------------------------------------------------
// 2D shape recipes (256x256).
// ---------------------------------------------------------------------------

// Taxi pickup/dropoff density: a dense urban core plus satellite clusters.
DataVector BuildCabs(uint64_t seed, size_t clusters, double core_weight,
                     double zero_frac) {
  ShapeBuilder b(D2(), seed);
  b.AddGaussian({0.5, 0.5}, {0.03, 0.03}, core_weight);
  Rng placement(seed ^ 0x9E3779B97F4A7C15ULL);
  // Satellite cluster masses decay Zipf-like: a few hotspots dominate.
  double zipf_total = 0.0;
  for (size_t c = 0; c < clusters; ++c) {
    zipf_total += std::pow(static_cast<double>(c + 1), -1.2);
  }
  for (size_t c = 0; c < clusters; ++c) {
    double cx = 0.15 + 0.7 * placement.Uniform();
    double cy = 0.15 + 0.7 * placement.Uniform();
    double w = 0.005 + 0.015 * placement.Uniform();
    double mass = (1.0 - core_weight) *
                  std::pow(static_cast<double>(c + 1), -1.2) / zipf_total;
    b.AddGaussian({cx, cy}, {w, w}, mass);
  }
  return b.Roughen(0.5).TruncateSupport(1.0 - zero_frac).Build();
}

// GOWALLA check-ins: many small clusters, heavy tail, 88.9% zeros.
DataVector BuildGowalla(uint64_t seed) {
  ShapeBuilder b(D2(), seed);
  Rng placement(seed ^ 0xA5A5A5A5ULL);
  constexpr size_t kClusters = 40;
  for (size_t c = 0; c < kClusters; ++c) {
    double cx = placement.Uniform();
    double cy = placement.Uniform();
    double w = 0.005 + 0.02 * placement.Uniform();
    double mass = std::pow(static_cast<double>(c + 1), -1.1);
    b.AddGaussian({cx, cy}, {w, w}, mass);
  }
  return b.AddUniform(0.02).Roughen(0.6).TruncateSupport(1.0 - 0.8892).Build();
}

// ADULT-2D: capital-gain x capital-loss; almost all mass at (0,0) and on
// the two axes (a record rarely has both), 99.3% zeros.
DataVector BuildAdult2D(uint64_t seed) {
  return ShapeBuilder(D2(), seed)
      .AddGaussian({0.0, 0.0}, {0.004, 0.004}, 0.55)
      .AddGaussian({0.0, 0.15}, {0.002, 0.1}, 0.2)
      .AddGaussian({0.15, 0.0}, {0.1, 0.002}, 0.2)
      .AddGaussian({0.98, 0.0}, {0.004, 0.002}, 0.05)
      .Roughen(0.5)
      .TruncateSupport(1.0 - 0.9930)
      .Build();
}

// MD-SAL-2D: annual salary x overtime; band along low overtime, 97.9% zeros.
DataVector BuildMdSal2D(uint64_t seed) {
  return ShapeBuilder(D2(), seed)
      .AddDiagonalBand(0.0, 0.02, 0.01, 0.5)
      .AddGaussian({0.05, 0.2}, {0.03, 0.1}, 0.3)
      .AddDiagonalBand(0.3, 0.0, 0.03, 0.2)
      .Roughen(0.5)
      .TruncateSupport(1.0 - 0.9789)
      .Build();
}

// LC-2D: funded amount x annual income; correlated diagonal band.
DataVector BuildLc2D(uint64_t seed) {
  return ShapeBuilder(D2(), seed)
      .AddDiagonalBand(0.6, 0.05, 0.06, 0.7)
      .AddGaussian({0.2, 0.25}, {0.08, 0.08}, 0.3)
      .Roughen(0.4)
      .TruncateSupport(1.0 - 0.9266)
      .Build();
}

// STROKE: age x systolic blood pressure; broad bivariate normal, 79% zeros.
DataVector BuildStroke(uint64_t seed) {
  return ShapeBuilder(D2(), seed)
      .AddGaussian({0.65, 0.5}, {0.12, 0.1}, 0.8)
      .AddGaussian({0.45, 0.55}, {0.2, 0.15}, 0.2)
      .Roughen(0.3)
      .TruncateSupport(1.0 - 0.7902)
      .Build();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

const std::vector<DatasetDef>& AllDefs() {
  static const std::vector<DatasetDef>* defs = [] {
    auto* v = new std::vector<DatasetDef>;
    auto add = [&](std::string name, size_t dims, double scale, double zf,
                   bool is_new, ShapeFn fn) {
      v->push_back({{name, dims, scale, zf, is_new}, std::move(fn)});
    };
    // 1D (Table 2, top block).
    add("ADULT", 1, 32558, 0.9780, false, BuildAdult);
    add("HEPPH", 1, 347414, 0.2117, false, BuildHepPh);
    add("INCOME", 1, 20787122, 0.4497, false, BuildIncome);
    add("MEDCOST", 1, 9415, 0.7480, false, BuildMedCost);
    add("TRACE", 1, 25714, 0.9661, false, BuildTrace);
    add("PATENT", 1, 27948226, 0.0620, false, BuildPatent);
    add("SEARCH", 1, 335889, 0.5103, false, BuildSearch);
    add("BIDS-FJ", 1, 1901799, 0.0, true,
        [](uint64_t s) { return BuildBids(s, 0.45, 0.25); });
    add("BIDS-FM", 1, 2126344, 0.0, true,
        [](uint64_t s) { return BuildBids(s, 0.55, 0.35); });
    add("BIDS-ALL", 1, 7655502, 0.0, true,
        [](uint64_t s) { return BuildBids(s, 0.4, 0.2); });
    add("MD-SAL", 1, 135727, 0.8312, true,
        [](uint64_t s) { return BuildMdSal(s, 0.8312); });
    add("MD-SAL-FA", 1, 100534, 0.8317, true,
        [](uint64_t s) { return BuildMdSal(s, 0.8317); });
    add("LC-REQ-F1", 1, 3737472, 0.6157, true,
        [](uint64_t s) { return BuildLcReq(s, 0.6157); });
    add("LC-REQ-F2", 1, 198045, 0.6769, true,
        [](uint64_t s) { return BuildLcReq(s, 0.6769); });
    add("LC-REQ-ALL", 1, 3999425, 0.6015, true,
        [](uint64_t s) { return BuildLcReq(s, 0.6015); });
    add("LC-DTIR-F1", 1, 3336740, 0.0, true,
        [](uint64_t s) { return BuildLcDtir(s, 0.0); });
    add("LC-DTIR-F2", 1, 189827, 0.1191, true,
        [](uint64_t s) { return BuildLcDtir(s, 0.1191); });
    add("LC-DTIR-ALL", 1, 3589119, 0.0, true,
        [](uint64_t s) { return BuildLcDtir(s, 0.0); });
    // 2D (Table 2, bottom block).
    add("BJ-CABS-S", 2, 4268780, 0.7817, false,
        [](uint64_t s) { return BuildCabs(s, 18, 0.35, 0.7817); });
    add("BJ-CABS-E", 2, 4268780, 0.7683, false,
        [](uint64_t s) { return BuildCabs(s, 22, 0.30, 0.7683); });
    add("GOWALLA", 2, 6442863, 0.8892, false, BuildGowalla);
    add("ADULT-2D", 2, 32561, 0.9930, false, BuildAdult2D);
    add("SF-CABS-S", 2, 464040, 0.9504, false,
        [](uint64_t s) { return BuildCabs(s, 10, 0.5, 0.9504); });
    add("SF-CABS-E", 2, 464040, 0.9731, false,
        [](uint64_t s) { return BuildCabs(s, 8, 0.55, 0.9731); });
    add("MD-SAL-2D", 2, 70526, 0.9789, true, BuildMdSal2D);
    add("LC-2D", 2, 550559, 0.9266, true, BuildLc2D);
    add("STROKE", 2, 19435, 0.7902, true, BuildStroke);
    return v;
  }();
  return *defs;
}

}  // namespace

const std::vector<DatasetInfo>& DatasetRegistry::All1D() {
  static const std::vector<DatasetInfo>* infos = [] {
    auto* v = new std::vector<DatasetInfo>;
    for (const auto& d : AllDefs()) {
      if (d.info.dims == 1) v->push_back(d.info);
    }
    return v;
  }();
  return *infos;
}

const std::vector<DatasetInfo>& DatasetRegistry::All2D() {
  static const std::vector<DatasetInfo>* infos = [] {
    auto* v = new std::vector<DatasetInfo>;
    for (const auto& d : AllDefs()) {
      if (d.info.dims == 2) v->push_back(d.info);
    }
    return v;
  }();
  return *infos;
}

Result<DatasetInfo> DatasetRegistry::Info(const std::string& name) {
  for (const auto& d : AllDefs()) {
    if (d.info.name == name) return d.info;
  }
  return Status::NotFound("unknown dataset: " + name);
}

Result<DataVector> DatasetRegistry::Shape(const std::string& name) {
  // Cache shapes: recipes are deterministic but not free to rebuild.
  static std::map<std::string, DataVector>* cache =
      new std::map<std::string, DataVector>;
  auto it = cache->find(name);
  if (it != cache->end()) return it->second;
  for (const auto& d : AllDefs()) {
    if (d.info.name == name) {
      DataVector shape = d.build(NameSeed(name));
      cache->emplace(name, shape);
      return shape;
    }
  }
  return Status::NotFound("unknown dataset: " + name);
}

Result<DataVector> DatasetRegistry::ShapeAtDomain(const std::string& name,
                                                  size_t domain_size_per_dim) {
  DPB_ASSIGN_OR_RETURN(DataVector shape, Shape(name));
  size_t max_size = shape.domain().size(0);
  if (domain_size_per_dim == 0 || max_size % domain_size_per_dim != 0) {
    return Status::InvalidArgument(
        "domain size must divide the maximum domain size");
  }
  size_t factor = max_size / domain_size_per_dim;
  if (factor == 1) return shape;
  std::vector<size_t> factors(shape.domain().num_dims(), factor);
  return shape.Coarsen(factors);
}

}  // namespace dpbench
