#include "src/data/sampler.h"

namespace dpbench {

Result<DataVector> SampleAtScale(const DataVector& shape, uint64_t scale,
                                 Rng* rng) {
  if (shape.size() == 0) {
    return Status::InvalidArgument("empty shape");
  }
  std::vector<uint64_t> counts = rng->Multinomial(scale, shape.counts());
  std::vector<double> out(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]);
  }
  return DataVector(shape.domain(), std::move(out));
}

Result<DataVector> SampleAtScaleAndDomain(const DataVector& shape,
                                          uint64_t scale,
                                          size_t coarsen_factor, Rng* rng) {
  if (coarsen_factor == 0) {
    return Status::InvalidArgument("zero coarsening factor");
  }
  if (coarsen_factor == 1) return SampleAtScale(shape, scale, rng);
  std::vector<size_t> factors(shape.domain().num_dims(), coarsen_factor);
  DPB_ASSIGN_OR_RETURN(DataVector coarse, shape.Coarsen(factors));
  return SampleAtScale(coarse, scale, rng);
}

}  // namespace dpbench
