// The DPBench dataset registry: all 27 datasets of Table 2 (18 1D + 9 2D),
// rebuilt as deterministic synthetic shapes. See DESIGN.md §4.
//
// Each dataset is defined at the paper's maximum domain size (4096 for 1D,
// 256x256 for 2D); smaller domains are derived by coarsening, exactly as in
// the paper (§6.1).
#ifndef DPBENCH_DATA_DATASETS_H_
#define DPBENCH_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/histogram/data_vector.h"

namespace dpbench {

/// Maximum 1D domain size in the benchmark.
inline constexpr size_t kMaxDomain1D = 4096;
/// Maximum 2D domain side in the benchmark (256x256 cells).
inline constexpr size_t kMaxDomainSide2D = 256;

/// Static description of one benchmark dataset (one row of Table 2).
struct DatasetInfo {
  std::string name;
  size_t dims;            // 1 or 2
  double original_scale;  // Table 2 "Original Scale"
  double zero_fraction;   // Table 2 "% Zero Counts" at the maximum domain
  bool new_in_paper;      // "new" in the Previous-works column
};

/// Access to the benchmark's datasets.
class DatasetRegistry {
 public:
  /// All 18 1D datasets, in Table 2 order.
  static const std::vector<DatasetInfo>& All1D();

  /// All 9 2D datasets, in Table 2 order.
  static const std::vector<DatasetInfo>& All2D();

  /// Metadata lookup by name.
  static Result<DatasetInfo> Info(const std::string& name);

  /// The dataset's shape (normalized histogram) at the maximum domain size.
  /// Deterministic: repeated calls return identical vectors.
  static Result<DataVector> Shape(const std::string& name);

  /// Shape coarsened to the given 1D domain size (must divide 4096) or
  /// 2D side (must divide 256).
  static Result<DataVector> ShapeAtDomain(const std::string& name,
                                          size_t domain_size_per_dim);
};

}  // namespace dpbench

#endif  // DPBENCH_DATA_DATASETS_H_
