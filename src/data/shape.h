// Shape construction utilities.
//
// A *shape* (paper §2.2) is a normalized, non-negative distribution p over
// the cells of a domain: p = x / ||x||_1. The paper's 27 datasets enter the
// benchmark only through their shapes — the data generator G resamples a
// shape at any requested scale. Since the original raw datasets are not
// available offline, src/data/datasets.cc rebuilds each shape synthetically
// from mixtures assembled with this builder, matched to the documented
// characteristics (sparsity from Table 2, modality, heavy-tailedness); see
// DESIGN.md §4 for the substitution rationale.
#ifndef DPBENCH_DATA_SHAPE_H_
#define DPBENCH_DATA_SHAPE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/histogram/data_vector.h"

namespace dpbench {

/// Incrementally composes a mixture distribution over a domain, then
/// truncates its support to match a target sparsity and normalizes.
class ShapeBuilder {
 public:
  explicit ShapeBuilder(Domain domain, uint64_t seed);

  /// Adds a (possibly truncated) Gaussian bump. Fractions are relative to
  /// the domain extent per dimension; weight is the mixture mass.
  /// For 2D domains center/width must have two entries.
  ShapeBuilder& AddGaussian(const std::vector<double>& center_frac,
                            const std::vector<double>& width_frac,
                            double weight);

  /// Adds lognormal-like mass along dimension 0 (1D only): cell i gets mass
  /// proportional to the lognormal density with the given log-median
  /// (as a fraction of the domain) and log-sigma.
  ShapeBuilder& AddLognormal(double median_frac, double sigma, double weight);

  /// Adds `count` spikes at random cells with Zipf-ranked masses
  /// (mass of the r-th spike proportional to r^-exponent).
  ShapeBuilder& AddZipfSpikes(size_t count, double exponent, double weight);

  /// Adds spikes at regularly spaced cells ("round number" artifacts,
  /// e.g. salaries / loan amounts clustering at multiples).
  ShapeBuilder& AddPeriodicSpikes(size_t period, double decay, double weight);

  /// Adds uniform background mass.
  ShapeBuilder& AddUniform(double weight);

  /// Adds an exponential decay from cell 0 (1D only).
  ShapeBuilder& AddExponentialDecay(double rate_frac, double weight);

  /// Adds i.i.d. multiplicative jitter exp(sigma * N(0,1)) per cell,
  /// giving "rough" empirical texture.
  ShapeBuilder& Roughen(double sigma);

  /// 2D only: adds a band of mass around the line row = slope*col + offset
  /// (both as fractions), with the given width fraction. Models correlated
  /// attributes (e.g. funded amount vs income).
  ShapeBuilder& AddDiagonalBand(double slope, double offset_frac,
                                double width_frac, double weight);

  /// Keeps only the `target_nonzero_fraction` heaviest cells (everything
  /// else becomes exactly zero), matching Table 2's "% zero counts".
  /// A fraction of 1.0 keeps all cells and additionally lifts zeros to a
  /// tiny positive floor so that the shape is strictly dense.
  ShapeBuilder& TruncateSupport(double target_nonzero_fraction);

  /// Returns the normalized shape (sums to 1).
  DataVector Build() const;

 private:
  Domain domain_;
  Rng rng_;
  std::vector<double> mass_;
  bool dense_floor_ = false;
};

}  // namespace dpbench

#endif  // DPBENCH_DATA_SHAPE_H_
