#include "src/mechanisms/budget.h"

#include <cmath>
#include <sstream>

namespace dpbench {

namespace {
// Relative slack tolerated when summing many small sub-budgets.
constexpr double kSlack = 1e-9;
}  // namespace

Status ValidateEpsilon(double eps) {
  if (!std::isfinite(eps) || eps <= 0.0) {
    std::ostringstream os;
    os << "epsilon must be a positive finite number, got " << eps;
    return Status::InvalidArgument(os.str());
  }
  return Status::OK();
}

Status BudgetAccountant::Spend(double epsilon, const std::string& step) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("non-positive epsilon for step " + step);
  }
  if (spent_ + epsilon > total_ * (1.0 + kSlack) + kSlack) {
    return Status::FailedPrecondition(
        "budget exceeded at step " + step + ": spent " +
        std::to_string(spent_) + " + " + std::to_string(epsilon) +
        " > total " + std::to_string(total_));
  }
  spent_ += epsilon;
  ledger_.push_back({step, epsilon});
  return Status::OK();
}

double BudgetAccountant::SpendRemaining(const std::string& step) {
  double rem = remaining();
  if (rem <= 0.0) return 0.0;
  spent_ = total_;
  ledger_.push_back({step, rem});
  return rem;
}

}  // namespace dpbench
