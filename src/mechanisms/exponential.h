// The exponential mechanism: selects item i with probability proportional
// to exp(epsilon * score_i / (2 * sensitivity)).
//
// Implemented with the Gumbel-max trick, which is numerically stable for
// large epsilon*score values and exactly equivalent in distribution.
#ifndef DPBENCH_MECHANISMS_EXPONENTIAL_H_
#define DPBENCH_MECHANISMS_EXPONENTIAL_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace dpbench {

/// Samples an index in [0, scores.size()) with probability proportional to
/// exp(epsilon * scores[i] / (2 * sensitivity)). Higher score = better.
Result<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                    double sensitivity, double epsilon,
                                    Rng* rng);

/// Allocation-free block form: draws the per-candidate Gumbel noise from
/// one vectorized Rng::FillGumbel block staged in *unif_scratch (reusing
/// its capacity) instead of n scalar Gumbel() round-trips. Consumes the
/// rng stream identically to the vector form — one 64-bit draw per
/// candidate, in index order — and the vector form delegates here, so
/// the two forms select bit-identically on the same stream. This is the
/// form MWEM's per-round selection and the split searches of
/// PHP/SF/HYBRIDTREE use.
Result<size_t> ExponentialMechanismInto(const double* scores, size_t n,
                                        double sensitivity, double epsilon,
                                        Rng* rng,
                                        std::vector<double>* unif_scratch);

}  // namespace dpbench

#endif  // DPBENCH_MECHANISMS_EXPONENTIAL_H_
