// The exponential mechanism: selects item i with probability proportional
// to exp(epsilon * score_i / (2 * sensitivity)).
//
// Implemented with the Gumbel-max trick, which is numerically stable for
// large epsilon*score values and exactly equivalent in distribution.
#ifndef DPBENCH_MECHANISMS_EXPONENTIAL_H_
#define DPBENCH_MECHANISMS_EXPONENTIAL_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace dpbench {

/// Samples an index in [0, scores.size()) with probability proportional to
/// exp(epsilon * scores[i] / (2 * sensitivity)). Higher score = better.
Result<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                    double sensitivity, double epsilon,
                                    Rng* rng);

}  // namespace dpbench

#endif  // DPBENCH_MECHANISMS_EXPONENTIAL_H_
