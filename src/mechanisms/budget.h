// Privacy budget accounting via sequential composition (paper §2.1):
// running subroutines with budgets eps_1..eps_k yields sum(eps_i)-DP.
//
// Every algorithm in the suite draws its sub-budgets through an accountant
// so that end-to-end privacy (Principle 5) is enforced mechanically: any
// attempt to spend more than the total budget is an error.
#ifndef DPBENCH_MECHANISMS_BUDGET_H_
#define DPBENCH_MECHANISMS_BUDGET_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace dpbench {

/// The one validity check for a privacy budget: finite and strictly
/// positive. eps <= 0 makes the privacy guarantee meaningless and a
/// non-finite value (nan, inf) silently turns every Laplace scale
/// downstream into inf/NaN — both must be rejected at the boundary
/// (flag parsing, serve admission), never propagated into noise draws.
Status ValidateEpsilon(double eps);

/// Tracks spending of a fixed epsilon budget under sequential composition.
class BudgetAccountant {
 public:
  explicit BudgetAccountant(double total_epsilon)
      : total_(total_epsilon), spent_(0.0) {}

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

  /// Records spending `epsilon` on a named step. Fails (without recording)
  /// if this would exceed the total budget beyond a small numeric slack.
  Status Spend(double epsilon, const std::string& step);

  /// Spends everything that remains and returns it.
  double SpendRemaining(const std::string& step);

  /// Per-step ledger for auditing.
  struct Entry {
    std::string step;
    double epsilon;
  };
  const std::vector<Entry>& ledger() const { return ledger_; }

 private:
  double total_;
  double spent_;
  std::vector<Entry> ledger_;
};

}  // namespace dpbench

#endif  // DPBENCH_MECHANISMS_BUDGET_H_
