// The Laplace mechanism (paper Definition 2): f(I) + Laplace(sensitivity/eps)
// noise per coordinate.
#ifndef DPBENCH_MECHANISMS_LAPLACE_H_
#define DPBENCH_MECHANISMS_LAPLACE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace dpbench {

/// Adds i.i.d. Laplace(sensitivity/epsilon) noise to each value.
/// epsilon and sensitivity must be positive.
Result<std::vector<double>> LaplaceMechanism(const std::vector<double>& values,
                                             double sensitivity,
                                             double epsilon, Rng* rng);

/// Allocation-free form: writes values + noise into *out, reusing its
/// capacity. Same noise-draw order (hence bit-identical results) as
/// LaplaceMechanism. The noise is block-filled into *out before the
/// values are added, so *out must not alias `values`.
Status LaplaceMechanismInto(const std::vector<double>& values,
                            double sensitivity, double epsilon, Rng* rng,
                            std::vector<double>* out);

/// Scalar convenience overload.
Result<double> LaplaceMechanismScalar(double value, double sensitivity,
                                      double epsilon, Rng* rng);

/// Variance of a single Laplace(sensitivity/epsilon) noise draw:
/// 2 * (sensitivity/epsilon)^2. Used by inference steps that combine
/// measurements by inverse variance.
double LaplaceVariance(double sensitivity, double epsilon);

}  // namespace dpbench

#endif  // DPBENCH_MECHANISMS_LAPLACE_H_
