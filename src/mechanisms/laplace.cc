#include "src/mechanisms/laplace.h"

namespace dpbench {

Status LaplaceMechanismInto(const std::vector<double>& values,
                            double sensitivity, double epsilon, Rng* rng,
                            std::vector<double>* out) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("LaplaceMechanism: epsilon must be > 0");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument(
        "LaplaceMechanism: sensitivity must be > 0");
  }
  double scale = sensitivity / epsilon;
  out->resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    (*out)[i] = values[i] + rng->Laplace(scale);
  }
  return Status::OK();
}

Result<std::vector<double>> LaplaceMechanism(const std::vector<double>& values,
                                             double sensitivity,
                                             double epsilon, Rng* rng) {
  std::vector<double> out;
  DPB_RETURN_NOT_OK(
      LaplaceMechanismInto(values, sensitivity, epsilon, rng, &out));
  return out;
}

Result<double> LaplaceMechanismScalar(double value, double sensitivity,
                                      double epsilon, Rng* rng) {
  DPB_ASSIGN_OR_RETURN(std::vector<double> v,
                       LaplaceMechanism({value}, sensitivity, epsilon, rng));
  return v[0];
}

double LaplaceVariance(double sensitivity, double epsilon) {
  double scale = sensitivity / epsilon;
  return 2.0 * scale * scale;
}

}  // namespace dpbench
