#include "src/mechanisms/laplace.h"

namespace dpbench {

Status LaplaceMechanismInto(const std::vector<double>& values,
                            double sensitivity, double epsilon, Rng* rng,
                            std::vector<double>* out) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("LaplaceMechanism: epsilon must be > 0");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument(
        "LaplaceMechanism: sensitivity must be > 0");
  }
  double scale = sensitivity / epsilon;
  const size_t n = values.size();
  // Block-fill the noise into the output, then add the values — the same
  // draws in the same order as the scalar loop, but generated and
  // transformed over contiguous buffers (Rng::FillLaplace) instead of one
  // engine round-trip per coordinate.
  out->resize(n);
  rng->FillLaplace(out->data(), n, scale);
  const double* v = values.data();
  double* o = out->data();
  for (size_t i = 0; i < n; ++i) o[i] += v[i];
  return Status::OK();
}

Result<std::vector<double>> LaplaceMechanism(const std::vector<double>& values,
                                             double sensitivity,
                                             double epsilon, Rng* rng) {
  std::vector<double> out;
  DPB_RETURN_NOT_OK(
      LaplaceMechanismInto(values, sensitivity, epsilon, rng, &out));
  return out;
}

Result<double> LaplaceMechanismScalar(double value, double sensitivity,
                                      double epsilon, Rng* rng) {
  DPB_ASSIGN_OR_RETURN(std::vector<double> v,
                       LaplaceMechanism({value}, sensitivity, epsilon, rng));
  return v[0];
}

double LaplaceVariance(double sensitivity, double epsilon) {
  double scale = sensitivity / epsilon;
  return 2.0 * scale * scale;
}

}  // namespace dpbench
