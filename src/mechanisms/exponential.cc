#include "src/mechanisms/exponential.h"

namespace dpbench {

Result<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                    double sensitivity, double epsilon,
                                    Rng* rng) {
  if (scores.empty()) {
    return Status::InvalidArgument("ExponentialMechanism: empty score set");
  }
  if (epsilon <= 0.0 || sensitivity <= 0.0) {
    return Status::InvalidArgument(
        "ExponentialMechanism: epsilon and sensitivity must be > 0");
  }
  // Gumbel-max: argmax_i (eps * s_i / (2*sens) + G_i) has exactly the
  // exponential-mechanism distribution.
  double coef = epsilon / (2.0 * sensitivity);
  size_t best = 0;
  double best_val = scores[0] * coef + rng->Gumbel();
  for (size_t i = 1; i < scores.size(); ++i) {
    double v = scores[i] * coef + rng->Gumbel();
    if (v > best_val) {
      best_val = v;
      best = i;
    }
  }
  return best;
}

}  // namespace dpbench
