#include "src/mechanisms/exponential.h"

namespace dpbench {

Result<size_t> ExponentialMechanismInto(const double* scores, size_t n,
                                        double sensitivity, double epsilon,
                                        Rng* rng,
                                        std::vector<double>* unif_scratch) {
  if (n == 0) {
    return Status::InvalidArgument("ExponentialMechanism: empty score set");
  }
  if (epsilon <= 0.0 || sensitivity <= 0.0) {
    return Status::InvalidArgument(
        "ExponentialMechanism: epsilon and sensitivity must be > 0");
  }
  // Gumbel-max: argmax_i (eps * s_i / (2*sens) + G_i) has exactly the
  // exponential-mechanism distribution. The per-candidate Gumbels come
  // from one vectorized block fill (same stream positions as n scalar
  // draws; FastLog transform — selection cost is log-bound, and the two
  // libm logs per candidate dominated MWEM's rounds before this).
  unif_scratch->resize(n);
  rng->FillGumbel(unif_scratch->data(), n);
  const double* g = unif_scratch->data();
  double coef = epsilon / (2.0 * sensitivity);
  size_t best = 0;
  double best_val = scores[0] * coef + g[0];
  for (size_t i = 1; i < n; ++i) {
    double v = scores[i] * coef + g[i];
    if (v > best_val) {
      best_val = v;
      best = i;
    }
  }
  return best;
}

Result<size_t> ExponentialMechanism(const std::vector<double>& scores,
                                    double sensitivity, double epsilon,
                                    Rng* rng) {
  std::vector<double> unif;
  return ExponentialMechanismInto(scores.data(), scores.size(), sensitivity,
                                  epsilon, rng, &unif);
}

}  // namespace dpbench
