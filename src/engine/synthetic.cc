#include "src/engine/synthetic.h"

#include <cmath>

namespace dpbench {

Result<std::vector<SyntheticRecord>> SampleSyntheticRecords(
    const DataVector& estimate, size_t count, Rng* rng) {
  if (estimate.size() == 0) {
    return Status::InvalidArgument("empty estimate");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must be provided");
  }
  // Clamp negatives: probabilities must be non-negative.
  std::vector<double> mass(estimate.size());
  double total = 0.0;
  for (size_t i = 0; i < estimate.size(); ++i) {
    mass[i] = std::max(estimate[i], 0.0);
    total += mass[i];
  }
  if (count == 0) {
    count = static_cast<size_t>(std::llround(std::max(total, 0.0)));
  }
  std::vector<SyntheticRecord> records;
  records.reserve(count);
  if (count == 0) return records;
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "estimate carries no positive mass to sample from");
  }
  std::vector<uint64_t> counts = rng->Multinomial(count, mass);
  const Domain& domain = estimate.domain();
  for (size_t cell = 0; cell < counts.size(); ++cell) {
    SyntheticRecord index = domain.Unflatten(cell);
    for (uint64_t k = 0; k < counts[cell]; ++k) records.push_back(index);
  }
  return records;
}

Result<DataVector> HistogramOfRecords(
    const std::vector<SyntheticRecord>& records, const Domain& domain) {
  DataVector out(domain);
  for (const SyntheticRecord& r : records) {
    if (r.size() != domain.num_dims()) {
      return Status::InvalidArgument("record dimensionality mismatch");
    }
    for (size_t j = 0; j < r.size(); ++j) {
      if (r[j] >= domain.size(j)) {
        return Status::OutOfRange("record outside domain");
      }
    }
    out[domain.Flatten(r)] += 1.0;
  }
  return out;
}

}  // namespace dpbench
