// Rparam (paper §5.2): learning free-parameter settings on held-out
// synthetic training shapes so that deployed algorithms carry no free
// parameters (Principle 6).
//
// The tuner evaluates a candidate grid theta on training shapes generated
// from power-law and normal distributions (paper §6.4) across a range of
// eps*scale products, and returns the best theta per signal regime. The
// static schedules compiled into MWEM* and AHP* were produced by this
// procedure (see examples/parameter_tuning.cc, which regenerates them).
#ifndef DPBENCH_ENGINE_TUNER_H_
#define DPBENCH_ENGINE_TUNER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/histogram/data_vector.h"

namespace dpbench {

/// A candidate parameter vector.
using ParamVector = std::vector<double>;

/// Factory: instantiates a run of the target algorithm with parameters
/// theta on (data, epsilon), returning the scaled L2-per-query error on the
/// Prefix workload. Implementations wrap a Mechanism.
using TunableRunFn = std::function<Result<double>(
    const ParamVector& theta, const DataVector& data, double epsilon,
    Rng* rng)>;

/// Training shapes used by Rparam (paper §6.4: "synthetically generated
/// from power law and normal distributions").
std::vector<DataVector> TrainingShapes(size_t domain_size, uint64_t seed);

/// One learned schedule entry: for signal >= min_product use theta.
struct ScheduleEntry {
  double min_product;  ///< lower bound of the eps*scale regime
  ParamVector theta;
  double mean_error;   ///< training error achieved
};

/// Configuration of a tuning run.
struct TunerConfig {
  std::vector<ParamVector> candidates;  ///< the theta grid
  std::vector<double> products;         ///< eps*scale products to train at
  double epsilon = 0.1;                 ///< eps held fixed; scale varies
  size_t trials = 3;                    ///< runs per (theta, shape, product)
  size_t domain_size = 1024;
  uint64_t seed = 7;
};

/// Learns the schedule: for every product, evaluates every candidate on all
/// training shapes and keeps the argmin-mean-error theta.
Result<std::vector<ScheduleEntry>> LearnSchedule(const TunerConfig& config,
                                                 const TunableRunFn& run);

/// Looks up the theta for a given eps*scale product in a learned schedule.
const ParamVector& ScheduleLookup(const std::vector<ScheduleEntry>& schedule,
                                  double product);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_TUNER_H_
