#include "src/engine/distrib.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "src/engine/wire.h"

namespace dpbench {
namespace distrib {

namespace {

using Clock = std::chrono::steady_clock;

int64_t MsSince(Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               t)
      .count();
}

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

constexpr char kKindReady[] = "dpbench.d.ready";
constexpr char kKindAssign[] = "dpbench.d.assign";
constexpr char kKindHeartbeat[] = "dpbench.d.heartbeat";
constexpr char kKindResult[] = "dpbench.d.result";
constexpr char kKindIdle[] = "dpbench.d.idle";
constexpr char kKindShutdown[] = "dpbench.d.shutdown";

constexpr char kSectionBody[] = "body";
constexpr char kSectionTask[] = "task";
constexpr char kSectionConfig[] = "config";
constexpr char kSectionMeta[] = "meta";
constexpr char kSectionShard[] = "shard";

std::string WrapBody(const std::string& kind, std::string record) {
  std::vector<wire::Section> sections;
  sections.push_back({kSectionBody, std::move(record)});
  return wire::WrapEnvelope(kind, std::move(sections));
}

Result<wire::Record> UnwrapBody(const std::string& bytes,
                                const std::string& expected_kind) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != expected_kind) {
    return Status::InvalidArgument("protocol message is a '" + env.kind +
                                   "', expected '" + expected_kind + "'");
  }
  DPB_ASSIGN_OR_RETURN(std::string body, env.Take(kSectionBody));
  return wire::Record::Parse(body);
}

}  // namespace

// ---------------------------------------------------------------------------
// Message codecs.
// ---------------------------------------------------------------------------

std::string EncodeReady(const ReadyMsg& m) {
  wire::RecordWriter w;
  w.Str("worker", m.worker);
  return WrapBody(kKindReady, std::move(w).Finish());
}

Result<ReadyMsg> DecodeReady(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindReady));
  ReadyMsg m;
  DPB_ASSIGN_OR_RETURN(m.worker, rec.Str("worker"));
  return m;
}

std::string EncodeAssign(const AssignMsg& m) {
  wire::RecordWriter task;
  task.U64("task_index", m.task_index);
  task.U64("task_count", m.task_count);
  std::vector<wire::Section> sections;
  sections.push_back({kSectionTask, std::move(task).Finish()});
  sections.push_back(
      {kSectionConfig, EncodeExperimentConfigRecord(m.config)});
  return wire::WrapEnvelope(kKindAssign, std::move(sections));
}

Result<AssignMsg> DecodeAssign(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != kKindAssign) {
    return Status::InvalidArgument("protocol message is a '" + env.kind +
                                   "', expected '" + kKindAssign + "'");
  }
  AssignMsg m;
  DPB_ASSIGN_OR_RETURN(std::string task_bytes, env.Take(kSectionTask));
  DPB_ASSIGN_OR_RETURN(wire::Record task, wire::Record::Parse(task_bytes));
  DPB_ASSIGN_OR_RETURN(m.task_index, task.U64("task_index"));
  DPB_ASSIGN_OR_RETURN(m.task_count, task.U64("task_count"));
  if (m.task_count == 0 || m.task_index >= m.task_count) {
    return Status::InvalidArgument(
        "assignment has inconsistent task indexing (task " +
        std::to_string(m.task_index) + " of " +
        std::to_string(m.task_count) + ")");
  }
  DPB_ASSIGN_OR_RETURN(std::string config_bytes, env.Take(kSectionConfig));
  DPB_ASSIGN_OR_RETURN(m.config,
                       DecodeExperimentConfigRecord(config_bytes));
  return m;
}

std::string EncodeHeartbeat(const HeartbeatMsg& m) {
  wire::RecordWriter w;
  w.Str("worker", m.worker);
  w.U64("task_index", m.task_index);
  w.U64("cells_done", m.cells_done);
  return WrapBody(kKindHeartbeat, std::move(w).Finish());
}

Result<HeartbeatMsg> DecodeHeartbeat(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindHeartbeat));
  HeartbeatMsg m;
  DPB_ASSIGN_OR_RETURN(m.worker, rec.Str("worker"));
  DPB_ASSIGN_OR_RETURN(m.task_index, rec.U64("task_index"));
  DPB_ASSIGN_OR_RETURN(m.cells_done, rec.U64("cells_done"));
  return m;
}

std::string EncodeResult(const ResultMsg& m) {
  wire::RecordWriter meta;
  meta.Str("worker", m.worker);
  meta.U64("task_index", m.task_index);
  std::vector<wire::Section> sections;
  sections.push_back({kSectionMeta, std::move(meta).Finish()});
  sections.push_back({kSectionShard, m.shard_bytes});
  return wire::WrapEnvelope(kKindResult, std::move(sections));
}

Result<ResultMsg> DecodeResult(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != kKindResult) {
    return Status::InvalidArgument("protocol message is a '" + env.kind +
                                   "', expected '" + kKindResult + "'");
  }
  ResultMsg m;
  DPB_ASSIGN_OR_RETURN(std::string meta_bytes, env.Take(kSectionMeta));
  DPB_ASSIGN_OR_RETURN(wire::Record meta, wire::Record::Parse(meta_bytes));
  DPB_ASSIGN_OR_RETURN(m.worker, meta.Str("worker"));
  DPB_ASSIGN_OR_RETURN(m.task_index, meta.U64("task_index"));
  DPB_ASSIGN_OR_RETURN(m.shard_bytes, env.Take(kSectionShard));
  return m;
}

std::string EncodeIdle(const IdleMsg& m) {
  wire::RecordWriter w;
  w.U64("retry_ms", m.retry_ms);
  return WrapBody(kKindIdle, std::move(w).Finish());
}

Result<IdleMsg> DecodeIdle(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindIdle));
  IdleMsg m;
  DPB_ASSIGN_OR_RETURN(m.retry_ms, rec.U64("retry_ms"));
  return m;
}

std::string EncodeShutdown() {
  wire::RecordWriter w;
  return WrapBody(kKindShutdown, std::move(w).Finish());
}

Result<std::string> MessageKind(const std::string& bytes) {
  return wire::PeekKind(bytes);
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

namespace {

enum class TaskState { kPending, kInFlight, kDone };

struct TaskEntry {
  TaskState state = TaskState::kPending;
  uint64_t issue_count = 0;       // outstanding assignments
  Clock::time_point issued_at{};  // earliest outstanding assignment
  ShardFile result;               // valid once state == kDone
  std::string image;              // encoded result (kept when checkpointing)
};

// Shared coordinator state; every access under `mu`.
struct CoordState {
  std::mutex mu;
  std::vector<TaskEntry> tasks;
  uint64_t done_count = 0;
  std::set<std::string> workers_seen;
  std::map<std::string, Clock::time_point> last_seen;  // by worker name
  std::vector<int64_t> completed_ms;  // task durations, for the median
  CoordinatorSummary summary;
  bool all_done = false;
};

// Rewrites the checkpoint with every completed task's image, tmp-write +
// atomic rename: the live file is always a complete image, and a crash at
// any byte of the write leaves the previous checkpoint intact. A persist
// failure is counted, not fatal — the run still completes, only
// recoverability degrades. Caller holds s->mu.
void PersistCheckpoint(CoordState* s, const ExperimentConfig& config,
                       const CoordinatorOptions& opt) {
  if (opt.checkpoint_path.empty()) return;
  CrashIfRequested(opt.fault, "after_task_before_checkpoint");
  CheckpointFile ckpt;
  ckpt.num_tasks = opt.num_tasks;
  ckpt.config = config;
  for (size_t i = 0; i < s->tasks.size(); ++i) {
    TaskEntry& t = s->tasks[i];
    if (t.state != TaskState::kDone) continue;
    ckpt.task_indices.push_back(static_cast<uint64_t>(i));
    ckpt.shard_images.push_back(t.image);
  }
  std::string tmp = opt.checkpoint_path + ".tmp";
  if (!WriteFileBytes(tmp, EncodeCheckpointFile(ckpt)).ok()) {
    ++s->summary.checkpoint_failures;
    return;
  }
  CrashIfRequested(opt.fault, "mid_checkpoint_append");
  if (std::rename(tmp.c_str(), opt.checkpoint_path.c_str()) != 0) {
    ++s->summary.checkpoint_failures;
    return;
  }
  ++s->summary.checkpoint_writes;
}

int64_t StragglerThresholdMs(const CoordState& s,
                             const CoordinatorOptions& opt) {
  int64_t threshold = opt.min_straggler_ms;
  if (!s.completed_ms.empty()) {
    std::vector<int64_t> sorted = s.completed_ms;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    int64_t median = sorted[sorted.size() / 2];
    threshold = std::max<int64_t>(
        threshold, static_cast<int64_t>(opt.straggler_factor *
                                        static_cast<double>(median)));
  }
  return threshold;
}

// Requeues a task whose assignment was lost: one outstanding copy fewer;
// back to pending when no copies remain in flight. Caller holds s.mu.
void ReleaseIssue(CoordState* s, int64_t task) {
  if (task < 0) return;
  TaskEntry& t = s->tasks[static_cast<size_t>(task)];
  if (t.state != TaskState::kInFlight) return;
  if (t.issue_count > 0) --t.issue_count;
  if (t.issue_count == 0) {
    t.state = TaskState::kPending;
    ++s->summary.tasks_reissued;
  }
}

// Picks the next task for an idle worker: a pending task if any, else the
// most overdue straggler that has only one outstanding copy. -1 = nothing
// to hand out. Caller holds s.mu.
int64_t PickTask(CoordState& s, const CoordinatorOptions& opt,
                 bool* speculative) {
  *speculative = false;
  for (size_t i = 0; i < s.tasks.size(); ++i) {
    if (s.tasks[i].state == TaskState::kPending) {
      return static_cast<int64_t>(i);
    }
  }
  int64_t best = -1;
  int64_t best_age = StragglerThresholdMs(s, opt);
  for (size_t i = 0; i < s.tasks.size(); ++i) {
    const TaskEntry& t = s.tasks[i];
    if (t.state != TaskState::kInFlight || t.issue_count != 1) continue;
    int64_t age = MsSince(t.issued_at);
    if (age >= best_age) {
      best = static_cast<int64_t>(i);
      best_age = age;
    }
  }
  if (best >= 0) *speculative = true;
  return best;
}

// One worker connection, served until it closes, goes silent past the
// heartbeat timeout, or the run completes.
void ServeConnection(net::Socket sock, const ExperimentConfig& config,
                     const CoordinatorOptions& opt, CoordState* s) {
  std::string worker;      // set by the first ready message
  int64_t conn_task = -1;  // task this connection has in flight

  auto connection_lost = [&]() {
    std::lock_guard<std::mutex> lock(s->mu);
    if (!worker.empty()) {
      ++s->summary.workers_lost;
      s->last_seen.erase(worker);
    }
    ReleaseIssue(s, conn_task);
  };

  // Replies to a work request with assign/idle/shutdown. Returns false
  // when this connection is finished (shutdown sent or the send failed).
  auto reply_instruction = [&]() -> bool {
    std::string out;
    bool is_shutdown = false;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->all_done) {
        out = EncodeShutdown();
        is_shutdown = true;
      } else {
        bool speculative = false;
        int64_t pick = PickTask(*s, opt, &speculative);
        if (pick < 0) {
          IdleMsg idle;
          idle.retry_ms = static_cast<uint64_t>(opt.idle_retry_ms);
          out = EncodeIdle(idle);
        } else {
          TaskEntry& t = s->tasks[static_cast<size_t>(pick)];
          if (t.issue_count == 0) t.issued_at = Clock::now();
          t.state = TaskState::kInFlight;
          ++t.issue_count;
          if (speculative) ++s->summary.speculative_issued;
          conn_task = pick;
          AssignMsg assign;
          assign.task_index = static_cast<uint64_t>(pick);
          assign.task_count = opt.num_tasks;
          assign.config = config;
          out = EncodeAssign(assign);
        }
      }
    }
    if (!sock.SendFrame(out).ok()) {
      connection_lost();
      return false;
    }
    return !is_shutdown;
  };

  for (;;) {
    auto frame = sock.RecvFrame(opt.poll_ms);
    if (!frame.ok()) {
      connection_lost();
      return;
    }
    if (frame->timed_out) {
      bool done, lost = false;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        done = s->all_done;
        if (!worker.empty()) {
          auto it = s->last_seen.find(worker);
          if (it != s->last_seen.end() &&
              MsSince(it->second) > opt.heartbeat_timeout_ms) {
            // Heartbeat timeout: the worker hangs (or its heartbeats are
            // not getting through) — declare it lost and requeue.
            ++s->summary.workers_lost;
            s->last_seen.erase(it);
            ReleaseIssue(s, conn_task);
            lost = true;
          }
        }
      }
      if (lost) return;
      if (done) {
        // The worker may be mid-execution on a task someone else already
        // finished; closing after a shutdown frame unblocks it.
        (void)sock.SendFrame(EncodeShutdown());
        return;
      }
      continue;
    }

    auto kind = wire::PeekKind(frame->bytes);
    if (!kind.ok()) {
      connection_lost();
      return;
    }

    if (*kind == kKindReady) {
      auto msg = DecodeReady(frame->bytes);
      if (!msg.ok()) {
        connection_lost();
        return;
      }
      worker = msg->worker;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        s->workers_seen.insert(worker);
        s->summary.workers_seen = s->workers_seen.size();
        s->last_seen[worker] = Clock::now();
      }
      if (!reply_instruction()) return;
    } else if (*kind == kKindHeartbeat) {
      auto msg = DecodeHeartbeat(frame->bytes);
      if (!msg.ok()) {
        connection_lost();
        return;
      }
      bool done;
      {
        std::lock_guard<std::mutex> lock(s->mu);
        s->last_seen[msg->worker] = Clock::now();
        done = s->all_done;
      }
      if (done) {
        // Tell a worker still grinding a stale speculative copy to stop.
        (void)sock.SendFrame(EncodeShutdown());
        return;
      }
    } else if (*kind == kKindResult) {
      auto msg = DecodeResult(frame->bytes);
      if (!msg.ok()) {
        connection_lost();
        return;
      }
      // The shard image is self-verifying; a corrupt upload fails decode
      // with DataLoss naming the damaged section, and the task goes back
      // into the queue instead of poisoning the merge.
      auto shard = DecodeShardFile(msg->shard_bytes);
      {
        std::lock_guard<std::mutex> lock(s->mu);
        s->last_seen[msg->worker] = Clock::now();
        if (msg->task_index >= s->tasks.size()) {
          ++s->summary.corrupt_uploads;
        } else {
          TaskEntry& t = s->tasks[msg->task_index];
          bool was_ours =
              conn_task == static_cast<int64_t>(msg->task_index);
          if (was_ours) conn_task = -1;
          if (!shard.ok()) {
            ++s->summary.corrupt_uploads;
            if (was_ours) {
              if (t.state == TaskState::kInFlight) {
                if (t.issue_count > 0) --t.issue_count;
                if (t.issue_count == 0) {
                  t.state = TaskState::kPending;
                  ++s->summary.tasks_reissued;
                }
              }
            }
          } else if (t.state == TaskState::kDone) {
            // A speculative copy finished second; by determinism its
            // bytes are identical, so it carries no new information.
            ++s->summary.duplicate_results;
          } else {
            if (t.state == TaskState::kInFlight && t.issue_count > 0) {
              --t.issue_count;
            }
            t.state = TaskState::kDone;
            t.result = std::move(shard).value();
            if (!opt.checkpoint_path.empty()) {
              t.image = std::move(msg->shard_bytes);
            }
            s->completed_ms.push_back(MsSince(t.issued_at));
            ++s->done_count;
            if (s->done_count == s->tasks.size()) s->all_done = true;
            PersistCheckpoint(s, config, opt);
          }
        }
      }
      if (!reply_instruction()) return;
    } else {
      // Unknown message kind: protocol skew; drop the connection.
      connection_lost();
      return;
    }
  }
}

}  // namespace

Result<Coordinator> Coordinator::Create(const ExperimentConfig& config,
                                        const CoordinatorOptions& options) {
  if (options.num_tasks == 0) {
    return Status::InvalidArgument("num_tasks must be at least 1");
  }
  Coordinator c;
  c.config_ = config;
  c.options_ = options;
  if (!options.checkpoint_path.empty()) {
    auto bytes = ReadFileBytes(options.checkpoint_path);
    if (bytes.ok()) {
      // Resume. Everything about the file must line up with this run —
      // a checkpoint from another grid or partition silently mixed in
      // would merge skewed shards, the one failure mode worse than
      // rerunning from scratch.
      DPB_ASSIGN_OR_RETURN(CheckpointFile ckpt,
                           DecodeCheckpointFile(*bytes));
      if (ConfigFingerprint(ckpt.config) != ConfigFingerprint(config)) {
        return Status::FailedPrecondition(
            "checkpoint '" + options.checkpoint_path +
            "' was written for a different experiment config (fingerprint "
            "mismatch); refusing to resume");
      }
      if (ckpt.num_tasks != options.num_tasks) {
        return Status::FailedPrecondition(
            "checkpoint '" + options.checkpoint_path + "' partitions the "
            "grid into " + std::to_string(ckpt.num_tasks) +
            " tasks but this run asked for " +
            std::to_string(options.num_tasks) + "; refusing to resume");
      }
      for (size_t i = 0; i < ckpt.task_indices.size(); ++i) {
        DPB_ASSIGN_OR_RETURN(ShardFile shard,
                             DecodeShardFile(ckpt.shard_images[i]));
        if (shard.shard_index != ckpt.task_indices[i] ||
            shard.shard_count != options.num_tasks) {
          return Status::InvalidArgument(
              "checkpoint entry for task " +
              std::to_string(ckpt.task_indices[i]) +
              " carries a shard image of shard " +
              std::to_string(shard.shard_index) + " of " +
              std::to_string(shard.shard_count));
        }
        c.resumed_indices_.push_back(ckpt.task_indices[i]);
        c.resumed_shards_.push_back(std::move(shard));
        c.resumed_images_.push_back(std::move(ckpt.shard_images[i]));
      }
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      // The file exists but cannot be read: never silently start over.
      return bytes.status();
    }
  }
  DPB_ASSIGN_OR_RETURN(c.listener_, net::Listener::Bind(options.port));
  return c;
}

Result<MergedRun> Coordinator::Serve(CoordinatorSummary* summary) {
  CoordState state;
  state.tasks.resize(options_.num_tasks);
  state.summary.tasks = options_.num_tasks;
  for (size_t i = 0; i < resumed_indices_.size(); ++i) {
    TaskEntry& t = state.tasks[resumed_indices_[i]];
    t.state = TaskState::kDone;
    t.result = std::move(resumed_shards_[i]);
    t.image = std::move(resumed_images_[i]);
    ++state.done_count;
  }
  state.summary.tasks_resumed = resumed_indices_.size();
  resumed_indices_.clear();
  resumed_shards_.clear();
  resumed_images_.clear();
  if (state.done_count == state.tasks.size()) state.all_done = true;

  Status serve_status = Status::OK();
  std::vector<std::thread> conns;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.all_done) break;
    }
    auto sock = listener_.Accept(options_.poll_ms);
    if (!sock.ok()) {
      serve_status = sock.status();
      break;
    }
    if (!sock->valid()) continue;  // accept timeout slice; re-check done
    conns.emplace_back(ServeConnection, std::move(sock).value(), config_,
                       options_, &state);
  }
  // Stop accepting; connection threads notice all_done within one poll
  // slice, send shutdown to their workers, and exit.
  listener_.Close();
  for (std::thread& t : conns) t.join();
  DPB_RETURN_NOT_OK(serve_status);

  if (summary != nullptr) *summary = state.summary;
  std::vector<ShardFile> shards;
  shards.reserve(state.tasks.size());
  for (TaskEntry& t : state.tasks) {
    shards.push_back(std::move(t.result));
  }
  return MergeShards(std::move(shards));
}

// ---------------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------------

namespace {

// Bound on waiting for the coordinator's reply to a ready/result message.
// It answers immediately when healthy; a silent socket this long means
// the connection is wedged and the worker should reconnect.
constexpr int kReplyTimeoutMs = 30000;

// Connects with exponential backoff; reconnect_attempts tries total.
Result<net::Socket> ConnectWithBackoff(const WorkerOptions& opt) {
  int backoff = opt.reconnect_base_ms;
  Status last = Status::Unavailable("no connection attempt made");
  for (int attempt = 0; attempt < std::max(1, opt.reconnect_attempts);
       ++attempt) {
    if (attempt > 0) {
      SleepMs(backoff);
      backoff = std::min(backoff * 2, opt.reconnect_max_ms);
    }
    auto sock = net::Connect(opt.port, opt.connect_timeout_ms);
    if (sock.ok()) return sock;
    last = sock.status();
  }
  return last;
}

// Flips one byte of the first section payload of a shard image, so the
// damage lands inside checksummed bytes (not framing) and must be caught
// by the section CRC.
void CorruptShardImage(std::string* bytes) {
  auto layout = wire::EnvelopeLayout(*bytes);
  if (layout.ok() && !layout->empty() && (*layout)[0].length > 0) {
    (*bytes)[(*layout)[0].offset] =
        static_cast<char>((*bytes)[(*layout)[0].offset] ^ 0x01);
  } else if (!bytes->empty()) {
    bytes->back() = static_cast<char>(bytes->back() ^ 0x01);
  }
}

}  // namespace

Result<WorkerStats> RunWorker(const WorkerOptions& options) {
  WorkerStats stats;
  uint64_t uploads = 0;
  bool first_task = true;

  // Plans survive across assignments: tasks are shards of one grid, so
  // every assignment after the first re-plans the same (algorithm,
  // domain, epsilon) set. Cache the serialized plans per config
  // fingerprint (grid identity — shard fields excluded by design) and
  // hydrate instead. A shard may still *build* keys no cached assignment
  // touched; those are merged in after each task.
  std::map<std::string, PlanStore> plan_caches;

  // The initial connection: a coordinator that never appears is an error
  // (unlike one that disappears later, which ends a degraded run cleanly).
  auto initial = ConnectWithBackoff(options);
  if (!initial.ok()) return initial.status();
  net::Socket sock = std::move(initial).value();

  // The instruction currently in hand (empty = need to send ready first).
  std::string instruction;

  auto reconnect = [&]() -> bool {
    sock.Close();
    instruction.clear();
    auto again = ConnectWithBackoff(options);
    if (!again.ok()) return false;
    sock = std::move(again).value();
    ++stats.reconnects;
    return true;
  };

  for (;;) {
    if (instruction.empty()) {
      ReadyMsg ready;
      ready.worker = options.name;
      if (!sock.SendFrame(EncodeReady(ready)).ok()) {
        if (reconnect()) continue;
        stats.ended_by = "coordinator_gone";
        return stats;
      }
      auto reply = sock.RecvFrame(kReplyTimeoutMs);
      if (!reply.ok() || reply->timed_out) {
        if (reconnect()) continue;
        stats.ended_by = "coordinator_gone";
        return stats;
      }
      instruction = std::move(reply->bytes);
    }
    std::string current = std::move(instruction);
    instruction.clear();

    auto kind = wire::PeekKind(current);
    if (!kind.ok()) {
      stats.ended_by = "protocol_error";
      return stats;
    }
    if (*kind == kKindShutdown) {
      stats.ended_by = "shutdown";
      return stats;
    }
    if (*kind == kKindIdle) {
      auto idle = DecodeIdle(current);
      SleepMs(idle.ok() ? static_cast<int64_t>(idle->retry_ms) : 200);
      continue;
    }
    if (*kind != kKindAssign) {
      stats.ended_by = "protocol_error";
      return stats;
    }
    auto assign = DecodeAssign(current);
    if (!assign.ok()) {
      stats.ended_by = "protocol_error";
      return stats;
    }

    // kill_after:0 — die the moment work arrives, before producing
    // anything: the cleanest mid-run crash for fault-injection tests.
    if (options.fault.kill_after == 0) {
      sock.Close();
      stats.killed_by_fault = true;
      stats.ended_by = "fault";
      return stats;
    }

    int64_t stall_ms = first_task ? options.fault.straggle_first_ms : 0;
    first_task = false;

    ExperimentConfig config = assign->config;
    config.threads = options.threads;
    config.shard_index = static_cast<size_t>(assign->task_index);
    config.shard_count = static_cast<size_t>(assign->task_count);

    // Heartbeat pump: owns the socket while this thread computes (nothing
    // else touches it until the pump is joined). A shutdown arriving
    // mid-task means the run finished without us.
    std::atomic<uint64_t> cells_done{0};
    std::atomic<bool> stop_pump{false};
    std::atomic<bool> conn_lost{false};
    std::atomic<bool> got_shutdown{false};
    std::thread pump([&]() {
      while (!stop_pump.load()) {
        HeartbeatMsg hb;
        hb.worker = options.name;
        hb.task_index = assign->task_index;
        hb.cells_done = cells_done.load();
        if (!sock.SendFrame(EncodeHeartbeat(hb)).ok()) {
          conn_lost.store(true);
          return;
        }
        // The recv timeout doubles as the heartbeat pacing.
        auto resp = sock.RecvFrame(options.heartbeat_ms);
        if (!resp.ok()) {
          conn_lost.store(true);
          return;
        }
        if (!resp->timed_out) {
          auto k = wire::PeekKind(resp->bytes);
          if (k.ok() && *k == kKindShutdown) {
            got_shutdown.store(true);
            return;
          }
        }
      }
    });

    if (stall_ms > 0) SleepMs(stall_ms);  // injected straggler
    PlanStore& plan_cache = plan_caches[ConfigFingerprint(config)];
    PlanStore exported;
    RunDiagnostics diagnostics;
    auto cells = Runner::Run(
        config, [&](const CellResult&) { cells_done.fetch_add(1); },
        &diagnostics, &plan_cache, &exported);
    stop_pump.store(true);
    pump.join();

    if (got_shutdown.load()) {
      stats.ended_by = "shutdown";
      return stats;
    }
    if (!cells.ok()) return cells.status();  // config error: fatal, no retry
    stats.plans_hydrated += diagnostics.plans_hydrated;
    for (auto& [key, payload] : exported.plans) {
      plan_cache.plans[key] = std::move(payload);
    }

    ShardFile shard;
    shard.shard_index = config.shard_index;
    shard.shard_count = config.shard_count;
    shard.total_cells = diagnostics.grid_cells;
    shard.config = config;
    shard.cells = std::move(cells).value();
    shard.diagnostics = diagnostics;
    std::string shard_bytes = EncodeShardFile(shard);
    if (options.fault.corrupt_shard) CorruptShardImage(&shard_bytes);

    ResultMsg result;
    result.worker = options.name;
    result.task_index = assign->task_index;
    result.shard_bytes = std::move(shard_bytes);
    std::string result_frame = EncodeResult(result);
    bool sent = !conn_lost.load() && sock.SendFrame(result_frame).ok();
    if (!sent) {
      // The connection died somewhere along the task: reconnect and
      // re-send the finished result (a duplicate is harmless — the bytes
      // are deterministic — and the work is too expensive to discard).
      if (!reconnect()) {
        stats.ended_by = "coordinator_gone";
        return stats;
      }
      if (!sock.SendFrame(result_frame).ok()) {
        stats.ended_by = "coordinator_gone";
        return stats;
      }
    }
    ++uploads;
    ++stats.tasks_completed;

    if (options.fault.kill_after > 0 &&
        static_cast<int64_t>(uploads) >= options.fault.kill_after) {
      sock.Close();  // abrupt: no shutdown handshake, mimicking a crash
      stats.killed_by_fault = true;
      stats.ended_by = "fault";
      return stats;
    }
    if (options.fault.drop_conn_after >= 0 &&
        static_cast<int64_t>(uploads) == options.fault.drop_conn_after) {
      sock.Close();  // then reconnect: exercises the backoff path
      if (reconnect()) continue;
      stats.ended_by = "coordinator_gone";
      return stats;
    }

    // Collect the instruction that answers our result; it feeds the top
    // of the loop.
    auto next = sock.RecvFrame(kReplyTimeoutMs);
    if (!next.ok() || next->timed_out) {
      if (reconnect()) continue;
      stats.ended_by = "coordinator_gone";
      return stats;
    }
    instruction = std::move(next->bytes);
  }
}

}  // namespace distrib
}  // namespace dpbench
