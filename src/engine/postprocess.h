// Post-processing transforms for private estimates.
//
// Differential privacy is closed under post-processing, so these
// transforms are "free": they consume no budget and can only be applied to
// the mechanism output. DPBench evaluates raw algorithm outputs (matching
// the paper), but deployments almost always clamp negatives and restore
// integrality; the ablation bench bench_ablation_bounds quantifies what
// the transforms change.
#ifndef DPBENCH_ENGINE_POSTPROCESS_H_
#define DPBENCH_ENGINE_POSTPROCESS_H_

#include "src/common/status.h"
#include "src/histogram/data_vector.h"

namespace dpbench {

/// Clamps negative cells to zero.
DataVector ClampNonNegative(const DataVector& x);

/// Rescales the estimate so its total matches `target_scale`
/// (no-op if the current total is not positive).
DataVector NormalizeToScale(const DataVector& x, double target_scale);

/// Rounds every cell to the nearest non-negative integer.
DataVector RoundToCounts(const DataVector& x);

/// The minimum-L2 projection onto the non-negative orthant subject to the
/// total being preserved: iteratively zero the most-negative cells and
/// redistribute the deficit over the remaining positive cells. This is the
/// standard "truncate and renormalize" estimator used in private synthetic
/// data generation.
DataVector ProjectNonNegativeKeepingTotal(const DataVector& x);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_POSTPROCESS_H_
