// Always-on serving mode: a long-lived daemon that answers range-query
// workload requests over loopback TCP through hydrated cached plans and
// the scratch ExecuteInto pipeline — the batch engine turned into the
// system the ROADMAP's north star describes.
//
// The production core is the privacy-budget accountant. Every (user,
// dataset) pair owns an epsilon ledger; a query request names its user,
// dataset, algorithm, and epsilon, and admission control charges the
// ledger *before* any noise is drawn:
//   - a request whose remaining ledger cannot cover its epsilon is
//     refused with the distinct kBudgetExhausted wire status and an
//     untouched ledger — never a silent partial answer;
//   - an admitted request's charge is persisted (engine/serialize ledger
//     envelope, write-then-rename) before the response is computed, so a
//     daemon killed at any instant — SIGKILL included — restarts knowing
//     every epsilon it ever granted;
//   - epsilon validation at admission is the same check the flag layer
//     applies (ValidateEpsilon): non-finite and non-positive budgets are
//     rejected as kInvalidRequest, never forwarded to a Laplace scale.
//
// The hot path is plan-once/execute-many: plans are cached per
// (algorithm, domain, epsilon[, scale]) in an LRU-bounded cache (data
// samples and workloads likewise), each request executes the cached plan
// through a pooled ExecScratch arena via ExecuteInto, and the requested
// rectangles are answered from one prefix-sum pass over the estimate.
// After warmup, a request plans nothing and allocates nothing on the
// execute path.
//
// Noise streams are never reused across requests or restarts: each
// execution is seeded by (master seed, user, dataset, algorithm, scale,
// domain, epsilon bits, ledger query count), and the query count is part
// of the persisted ledger — a restarted daemon continues the sequence
// instead of replaying it (replaying would let a client average away the
// noise for free).
#ifndef DPBENCH_ENGINE_SERVE_H_
#define DPBENCH_ENGINE_SERVE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/engine/fault.h"
#include "src/engine/net.h"
#include "src/engine/serialize.h"

namespace dpbench {
namespace serve {

// ---------------------------------------------------------------------------
// Wire protocol. Each message is a checksummed wire envelope sent as one
// net frame. Client → server: query, stats, stop. Server → client: reply,
// statsreply, stop (ack). The server answers every frame with exactly one
// frame.
// ---------------------------------------------------------------------------

/// Response status, carried in QueryResponse::status. The codes are wire
/// contract (documented in README "Serving mode") — clients branch on
/// them, so they must stay stable.
enum class ReplyStatus : uint64_t {
  kOk = 0,               ///< answers present; ledger charged
  kInvalidRequest = 1,   ///< malformed request; ledger untouched
  kBudgetExhausted = 2,  ///< admission refused; ledger untouched
  kInternal = 3,         ///< execution failed after the charge (rare;
                         ///< the charge stands — privacy-conservative)
};

const char* ReplyStatusName(ReplyStatus status);

/// One range-query workload request. Ranges are inclusive per dimension:
/// query q covers rows [lo_row[q], hi_row[q]] (and, for 2D datasets,
/// columns [lo_col[q], hi_col[q]]; the col vectors stay empty for 1D).
struct QueryRequest {
  std::string user;       ///< ledger identity (with dataset)
  std::string dataset;    ///< registry dataset name (e.g. "ADULT")
  std::string algorithm;  ///< registry mechanism name (e.g. "IDENTITY")
  double epsilon = 0.1;   ///< privacy budget to spend on this request
  uint64_t scale = 100000;     ///< dataset scale (tuples)
  uint64_t domain_size = 1024; ///< per-dimension domain size
  std::vector<uint64_t> lo_row, hi_row;
  std::vector<uint64_t> lo_col, hi_col;
};

/// The server's answer. On kOk, answers[q] is query q's estimate and the
/// ledger fields reflect the post-charge state (spent/remaining travel by
/// bit pattern — what the client sees is exactly what was persisted). On
/// any other status, answers is empty — a refused or failed request never
/// returns a partial answer.
struct QueryResponse {
  ReplyStatus status = ReplyStatus::kOk;
  std::string message;        ///< error detail when status != kOk
  double spent = 0.0;         ///< ledger epsilon spent after this request
  double remaining = 0.0;     ///< ledger epsilon still available
  uint64_t ledger_queries = 0;  ///< admitted queries for (user, dataset)
  std::vector<double> answers;
};

/// Server counters, for tests, the saturation bench, and the CI smoke
/// job's cached-plan assertions.
struct ServeStats {
  uint64_t requests = 0;         ///< query frames received
  uint64_t admitted = 0;         ///< charged and answered
  uint64_t refused_budget = 0;   ///< kBudgetExhausted replies
  uint64_t refused_invalid = 0;  ///< kInvalidRequest replies
  uint64_t internal_errors = 0;  ///< kInternal replies
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_evictions = 0;
  uint64_t data_cache_hits = 0;
  uint64_t data_cache_misses = 0;
  uint64_t data_cache_evictions = 0;
  uint64_t connections = 0;  ///< connections accepted over the lifetime
  uint64_t journal_appends = 0;   ///< records appended to the charge journal
  uint64_t journal_replayed = 0;  ///< records replayed over the snapshot at boot
  uint64_t plans_hydrated = 0;    ///< plans loaded from --load-plans at boot
};

std::string EncodeQuery(const QueryRequest& request);
Result<QueryRequest> DecodeQuery(const std::string& bytes);

std::string EncodeReply(const QueryResponse& response);
Result<QueryResponse> DecodeReply(const std::string& bytes);

std::string EncodeStatsRequest();
std::string EncodeStatsReply(const ServeStats& stats);
Result<ServeStats> DecodeStatsReply(const std::string& bytes);

/// Stop doubles as the request (client → server) and the acknowledgement
/// (server → client, sent before the server drains and exits).
std::string EncodeStop();

/// Audit: ask the daemon for its reconstructed spend history — the
/// snapshot fold point plus every intact charge-journal record (optionally
/// filtered by user and/or dataset; empty string = no filter). The reply
/// is the auditor's raw material: who spent what, in what order, with
/// what outcome. Records folded away by compaction live on only as
/// snapshot totals (documented in README "Recovery semantics").
struct AuditRequest {
  std::string user;     ///< "" = all users
  std::string dataset;  ///< "" = all datasets
};

struct AuditReply {
  uint64_t snapshot_seq = 0;  ///< journal seq folded into the boot snapshot
  uint64_t dropped_tail_bytes = 0;  ///< torn tail discarded by the decode
  std::vector<JournalRecord> records;
};

std::string EncodeAuditRequest(const AuditRequest& request);
Result<AuditRequest> DecodeAuditRequest(const std::string& bytes);
std::string EncodeAuditReply(const AuditReply& reply);
Result<AuditReply> DecodeAuditReply(const std::string& bytes);

/// Kind tag of an encoded serve message ("dpbench.s.query", ".reply",
/// ".stats", ".statsreply", ".stop", ".audit", ".auditreply") for
/// dispatch.
Result<std::string> MessageKind(const std::string& bytes);

// ---------------------------------------------------------------------------
// Budget accountant.
// ---------------------------------------------------------------------------

/// Ledger identity: budgets are tracked per (user, dataset) pair.
struct LedgerKey {
  std::string user;
  std::string dataset;
  bool operator<(const LedgerKey& other) const {
    return user != other.user ? user < other.user
                              : dataset < other.dataset;
  }
};

/// Per-(user, dataset) epsilon ledgers with admission control. Not
/// internally synchronized — the server serializes access under its
/// accountant mutex (tests and the bench drive it single-threaded or do
/// the same).
///
/// Accounting is sequential composition with *conservative* floating
/// point: a request is admitted iff epsilon <= budget - spent exactly (no
/// slack), so accumulated rounding can only under-grant, never
/// over-spend the ledger.
class LedgerAccountant {
 public:
  /// `default_budget` is granted to a (user, dataset) pair on first
  /// contact; persisted entries keep the budget they were created with.
  explicit LedgerAccountant(double default_budget)
      : default_budget_(default_budget) {}

  /// Replaces all state with the persisted entries (the restart path).
  /// Rejects duplicate (user, dataset) keys and non-finite budgets.
  Status Load(const std::vector<LedgerEntry>& entries);

  /// Snapshot in sorted key order — identical state always serializes to
  /// identical bytes (the restart byte-identity contract).
  std::vector<LedgerEntry> Snapshot() const;

  /// Admission control: validates epsilon (ValidateEpsilon), then charges
  /// the ledger. On success returns the post-charge entry (spent +=
  /// epsilon, queries += 1). InvalidArgument leaves the ledger untouched;
  /// FailedPrecondition (exhausted: epsilon > remaining) likewise — a
  /// refused request must not alter persisted state.
  Result<LedgerEntry> Charge(const LedgerKey& key, double epsilon);

  /// Reverses the most recent Charge for `key` (the persist-failure
  /// rollback): restores `before` when `existed`, removes the entry
  /// otherwise (the charge was first contact).
  void Restore(const LedgerKey& key, const LedgerEntry& before,
               bool existed);

  /// Current entry without charging (creates nothing; NotFound for a pair
  /// never seen).
  Result<LedgerEntry> Peek(const LedgerKey& key) const;

  /// Replays journal records over the loaded snapshot, applying only
  /// records with seq > snapshot_seq (earlier ones are already folded
  /// in). Replay reproduces the original charges bit-exactly: grants
  /// re-run `spent += epsilon` in journal order, refusals change nothing,
  /// rollbacks restore the recorded before-state. Every applied grant is
  /// cross-checked against the ledger (its ordinal must equal the entry's
  /// query count and its spent_after the recomputed spent); a mismatch is
  /// a named InvalidArgument — the journal and snapshot are from
  /// different histories, and replaying would misattribute budget.
  /// `applied` (optional) receives the number of records applied.
  Status Replay(const std::vector<JournalRecord>& records,
                uint64_t snapshot_seq, uint64_t* applied = nullptr);

  size_t size() const { return ledgers_.size(); }

 private:
  double default_budget_;
  std::map<LedgerKey, LedgerEntry> ledgers_;
};

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

struct ServerOptions {
  uint16_t port = 0;        ///< 0 = pick an ephemeral port
  std::string ledger_path;  ///< ledger file; "" = in-memory only (tests)
  double default_budget = 1.0;  ///< epsilon granted per (user, dataset)
  uint64_t seed = 20160626;     ///< master noise seed
  size_t max_plans = 64;     ///< LRU bound on cached plans
  size_t max_datasets = 16;  ///< LRU bound on hydrated samples/workloads
  size_t max_scratch = 16;   ///< bound on pooled ExecScratch arenas
  int poll_ms = 100;         ///< accept/receive poll slice
  /// Append-only charge journal ("" = off). When set, every admission
  /// decision is appended — and fsync-free durability shifts from
  /// per-request snapshot rewrites to O(1) appends: boot replays
  /// journal-over-snapshot, and CompactJournal() folds the journal back
  /// into the snapshot. When unset, the PR-8 per-request snapshot persist
  /// is used unchanged.
  std::string journal_path;
  /// Plan-cache file to hydrate the plan LRU from at startup ("" = cold
  /// start). Keys and payloads must match this server's conventions
  /// (workload, seed); a mismatched cache fails Create() loudly.
  std::string load_plans_path;
  FaultSpec fault;  ///< crash points for recovery tests (DPBENCH_FAULT)
};

/// Folds ledger_path + journal_path into a fresh snapshot: replays the
/// journal over the snapshot, writes the result (with the fold point
/// recorded as journal_seq) via tmp-write + atomic rename, then truncates
/// the journal. Crash-safe at every window — before the rename the old
/// pair is untouched; between rename and truncation the journal's records
/// are all <= the snapshot's fold point, so boot replay skips them.
struct CompactionSummary {
  uint64_t folded_records = 0;  ///< journal records folded in
  uint64_t entries = 0;         ///< ledger entries in the new snapshot
  uint64_t journal_seq = 0;     ///< fold point recorded in the snapshot
};
Result<CompactionSummary> CompactJournal(const std::string& ledger_path,
                                         const std::string& journal_path,
                                         double default_budget,
                                         const FaultSpec& fault = FaultSpec());

/// The serving daemon. Create() binds the listener (and loads the ledger
/// file if one exists at ledger_path); Serve() blocks until Stop() is
/// called or a stop message arrives. One thread per connection; all
/// caches and the accountant are shared across connections.
class Server {
 public:
  /// Cross-connection server state (accountant, caches, counters).
  /// Defined in serve.cc; public so the connection-thread helpers there
  /// can name it.
  struct Shared;

  static Result<Server> Create(const ServerOptions& options);

  Server(Server&&) = default;
  Server& operator=(Server&&) = default;

  uint16_t port() const { return listener_.port(); }

  /// Serves until stopped. Returns the status that ended the loop
  /// (OK for a requested stop).
  Status Serve();

  /// Requests a stop; Serve() drains in-flight requests and returns
  /// within one poll slice. Safe from any thread.
  void Stop();

  /// Lifetime counters (atomic reads; callable while serving).
  ServeStats stats() const;

 private:
  Server() = default;

  ServerOptions options_;
  net::Listener listener_;
  std::shared_ptr<Shared> shared_;
};

}  // namespace serve
}  // namespace dpbench

#endif  // DPBENCH_ENGINE_SERVE_H_
