// Fault injection for the daemons (tests and the CI smoke jobs).
//
// A FaultSpec — parsed from the DPBENCH_FAULT environment variable or a
// --fault= flag — tells a process what to break and when. The worker-side
// faults (kill_after, drop_conn, corrupt_shard, straggle_first) exercise
// the coordinator's recovery machinery; the crash_at points kill the
// process with SIGKILL at a named durability window so recovery tests can
// assert the invariants each window guarantees (budget never
// under-charged, no partial answer emitted, resume never re-executes a
// completed task).
#ifndef DPBENCH_ENGINE_FAULT_H_
#define DPBENCH_ENGINE_FAULT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace dpbench {

// Crash-point vocabulary. Each name marks one durability window:
//   after_charge_before_journal    serve: budget charged in memory, journal
//                                  record not yet appended
//   after_journal_before_persist   serve: grant journaled, snapshot/answer
//                                  not yet produced
//   mid_checkpoint_append          coordinator: checkpoint tmp written, not
//                                  yet renamed over the live file
//   after_task_before_checkpoint   coordinator: task marked done in memory,
//                                  checkpoint not yet persisted
//   mid_compaction                 serve: compacted snapshot tmp written,
//                                  not yet renamed / journal not truncated
inline constexpr const char* kCrashPoints[] = {
    "after_charge_before_journal", "after_journal_before_persist",
    "mid_checkpoint_append",       "after_task_before_checkpoint",
    "mid_compaction",
};

/// What a process has been told to break, parsed from DPBENCH_FAULT:
///   kill_after:N       exit abruptly (no shutdown handshake) after N uploads
///   drop_conn:N        close and reconnect after N uploads
///   corrupt_shard      flip one byte in each shard payload before upload
///   straggle_first:MS  sleep MS before executing the first task
///   crash_at:POINT     raise SIGKILL at the named durability window
struct FaultSpec {
  int64_t kill_after = -1;      // uploads before dying; -1 = never
  int64_t drop_conn_after = -1; // uploads before dropping the connection
  bool corrupt_shard = false;
  int64_t straggle_first_ms = 0;
  std::string crash_at;         // one of kCrashPoints; "" = never
};

/// Parses a DPBENCH_FAULT value ("" = no faults). InvalidArgument on an
/// unknown fault name, malformed count, or unknown crash point.
Result<FaultSpec> ParseFaultSpec(const std::string& spec);

/// Kills the process with SIGKILL (no atexit, no flush — exactly what a
/// kill -9 or power loss leaves behind) if `spec.crash_at == point`.
/// A note is written to stderr first so test logs show which window fired.
void CrashIfRequested(const FaultSpec& spec, const char* point);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_FAULT_H_
