#include "src/engine/fault.h"

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace dpbench {

namespace {

bool IsKnownCrashPoint(const std::string& point) {
  for (const char* known : kCrashPoints) {
    if (point == known) return true;
  }
  return false;
}

std::string KnownCrashPointList() {
  std::string out;
  for (const char* known : kCrashPoints) {
    if (!out.empty()) out += ", ";
    out += known;
  }
  return out;
}

}  // namespace

Result<FaultSpec> ParseFaultSpec(const std::string& spec) {
  FaultSpec f;
  if (spec.empty()) return f;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    std::string name = item;
    std::string arg;
    size_t colon = item.find(':');
    if (colon != std::string::npos) {
      name = item.substr(0, colon);
      arg = item.substr(colon + 1);
    }
    if (name == "crash_at") {
      if (!IsKnownCrashPoint(arg)) {
        return Status::InvalidArgument(
            "unknown crash point '" + arg +
            "' (known: " + KnownCrashPointList() + ")");
      }
      f.crash_at = arg;
      continue;
    }
    int64_t value = -1;
    if (colon != std::string::npos) {
      if (arg.empty() ||
          arg.find_first_not_of("0123456789") != std::string::npos ||
          arg.size() > 9) {
        return Status::InvalidArgument(
            "fault '" + name +
            "' expects a small non-negative integer, got '" + arg + "'");
      }
      value = std::stoll(arg);
    }
    if (name == "kill_after") {
      if (value < 0) {
        return Status::InvalidArgument(
            "kill_after needs a count: kill_after:N");
      }
      f.kill_after = value;
    } else if (name == "drop_conn") {
      if (value < 0) {
        return Status::InvalidArgument(
            "drop_conn needs a count: drop_conn:N");
      }
      f.drop_conn_after = value;
    } else if (name == "corrupt_shard") {
      f.corrupt_shard = true;
    } else if (name == "straggle_first") {
      if (value < 0) {
        return Status::InvalidArgument(
            "straggle_first needs milliseconds: straggle_first:MS");
      }
      f.straggle_first_ms = value;
    } else {
      return Status::InvalidArgument(
          "unknown fault '" + name +
          "' (known: kill_after:N, drop_conn:N, corrupt_shard, "
          "straggle_first:MS, crash_at:POINT)");
    }
  }
  return f;
}

void CrashIfRequested(const FaultSpec& spec, const char* point) {
  if (spec.crash_at.empty() || spec.crash_at != point) return;
  // stderr is unbuffered enough for test logs; the raise() below never
  // returns and skips atexit/flush, matching an external kill -9.
  std::fprintf(stderr, "DPBENCH_FAULT: crashing at %s\n", point);
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; belt and braces if SIGKILL is blocked
}

}  // namespace dpbench
