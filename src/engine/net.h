// Minimal length-delimited TCP framing for the distributed runner.
//
// A frame on the wire is `u32 payload_len (little-endian) | payload`; the
// payload is always a wire-envelope message (src/engine/distrib.h), so it
// carries its own magic, version, kind, and section checksums — the frame
// layer only solves message boundaries, not integrity.
//
// Error taxonomy, chosen so the coordinator can tell "retry" from "give
// up": every transport-level failure (connect refused, peer closed,
// send/recv error) is Status::Unavailable — retryable; a frame that
// violates the framing protocol itself (length over kMaxFrameBytes) is
// InvalidArgument — the peer is broken, not unlucky. Receive timeouts are
// not errors at all: RecvFrame returns a Frame with timed_out set, because
// "nothing arrived yet" is a normal scheduling event for a coordinator
// polling workers, not a failure.
//
// Sockets here are blocking with poll()-bounded waits; SIGPIPE is
// suppressed per-send (MSG_NOSIGNAL), so a worker dying mid-write surfaces
// as an Unavailable status instead of killing the process.
#ifndef DPBENCH_ENGINE_NET_H_
#define DPBENCH_ENGINE_NET_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace dpbench {
namespace net {

/// Upper bound on one frame's payload. Shard uploads dominate frame size;
/// a full grid's raw-error payload stays far below this. Anything bigger
/// is a framing desync or a hostile peer.
inline constexpr uint32_t kMaxFrameBytes = 1u << 30;  // 1 GiB

/// Result of a bounded receive. Exactly one of the cases holds:
/// timed_out (no full frame within the deadline; partial bytes are
/// retained in the socket's buffer for the next call), or `bytes` is the
/// complete payload.
struct Frame {
  bool timed_out = false;
  std::string bytes;
};

/// A connected stream socket owning its fd. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes one complete frame (length prefix + payload). Unavailable on
  /// any send failure or peer reset.
  Status SendFrame(const std::string& payload);

  /// Reads one complete frame, waiting at most `timeout_ms` (<0 = wait
  /// forever). Returns timed_out=true on deadline expiry with no complete
  /// frame; Unavailable if the peer closed or the read failed;
  /// InvalidArgument on an over-limit length prefix.
  Result<Frame> RecvFrame(int timeout_ms);

 private:
  int fd_ = -1;
  std::string rx_;  // partial frame carried across timed-out reads
};

/// A listening socket bound to 127.0.0.1. Move-only.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  /// port (read it back from port()).
  static Result<Listener> Bind(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  void Close();

  /// Accepts one connection, waiting at most `timeout_ms` (<0 = forever).
  /// An expired deadline returns an invalid Socket (not an error).
  Result<Socket> Accept(int timeout_ms);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port` with a bounded wait. Unavailable on
/// refusal or timeout (both retryable: the coordinator may not be up yet).
Result<Socket> Connect(uint16_t port, int timeout_ms);

}  // namespace net
}  // namespace dpbench

#endif  // DPBENCH_ENGINE_NET_H_
