// Fault-tolerant distributed execution of a DPBench experiment grid:
// a coordinator that deterministically pre-partitions the cell grid into
// tasks and hands them to worker daemons over a small TCP protocol, plus
// the worker side of that protocol.
//
// Calvin-style determinism-first design: the schedule is fixed before
// execution. The grid is enumerated in its canonical order and task t of T
// is exactly the strided shard {cells i : i % T == t} — the same partition
// dpbench_shard uses — and every cell's random stream is derived from
// (seed, cell identity). Any re-execution of a task therefore produces
// bit-identical bytes, which makes every recovery mechanism here safe by
// construction: speculative duplicates are harmless (first valid result
// wins, the loser is discarded unread), a worker that dies mid-task loses
// nothing but time, and the merged result is byte-identical to the
// monolithic run.
//
// Robustness mechanics:
//   - heartbeats: workers report progress during execution; a worker
//     silent past the heartbeat timeout is declared lost and its task goes
//     back to the pending queue (graceful degradation to fewer workers);
//   - stragglers: a task in flight for longer than
//     max(min_straggler_ms, straggler_factor x median completed task time)
//     is speculatively re-issued to the next idle worker;
//   - integrity: every protocol message is a checksummed wire envelope and
//     every shard upload is a full self-verifying shard file image — a
//     corrupt upload is rejected (DataLoss naming the damaged section) and
//     the task re-queued;
//   - reconnect: workers retry a lost coordinator connection with
//     exponential backoff before giving up.
//
// Fault injection (tests and the CI smoke job) is built in: FaultSpec,
// parsed from the DPBENCH_FAULT environment variable by the worker tool,
// can kill a worker after N uploads, drop its connection, corrupt a shard
// payload, or delay its first task to force speculation.
#ifndef DPBENCH_ENGINE_DISTRIB_H_
#define DPBENCH_ENGINE_DISTRIB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/engine/fault.h"
#include "src/engine/net.h"
#include "src/engine/runner.h"
#include "src/engine/serialize.h"

namespace dpbench {
namespace distrib {

// ---------------------------------------------------------------------------
// Protocol messages. Each is a wire envelope (magic, version, kind,
// checksummed sections) sent as one net frame. Worker → coordinator:
// ready, heartbeat, result. Coordinator → worker: assign, idle, shutdown.
// The coordinator answers every ready and every result with exactly one
// instruction (assign / idle / shutdown); heartbeats are one-way.
// ---------------------------------------------------------------------------

/// Worker announces itself (on connect and after every result).
struct ReadyMsg {
  std::string worker;
};

/// One task: run shard task_index of task_count of `config`. The config
/// travels as a grid-identity record; execution-only fields (threads,
/// shard assignment) are the worker's business.
struct AssignMsg {
  uint64_t task_index = 0;
  uint64_t task_count = 1;
  ExperimentConfig config;
};

/// Progress report while executing, also serving as a liveness signal.
struct HeartbeatMsg {
  std::string worker;
  uint64_t task_index = 0;
  uint64_t cells_done = 0;
};

/// A completed task: the full self-verifying shard-file image.
struct ResultMsg {
  std::string worker;
  uint64_t task_index = 0;
  std::string shard_bytes;  // EncodeShardFile image (internally checksummed)
};

/// Nothing to hand out right now; ask again in retry_ms.
struct IdleMsg {
  uint64_t retry_ms = 200;
};

std::string EncodeReady(const ReadyMsg& m);
std::string EncodeAssign(const AssignMsg& m);
std::string EncodeHeartbeat(const HeartbeatMsg& m);
std::string EncodeResult(const ResultMsg& m);
std::string EncodeIdle(const IdleMsg& m);
std::string EncodeShutdown();

/// Kind tag of an encoded message ("dpbench.d.ready", ".assign",
/// ".heartbeat", ".result", ".idle", ".shutdown") for dispatch.
Result<std::string> MessageKind(const std::string& bytes);

Result<ReadyMsg> DecodeReady(const std::string& bytes);
Result<AssignMsg> DecodeAssign(const std::string& bytes);
Result<HeartbeatMsg> DecodeHeartbeat(const std::string& bytes);
Result<ResultMsg> DecodeResult(const std::string& bytes);
Result<IdleMsg> DecodeIdle(const std::string& bytes);

// ---------------------------------------------------------------------------
// Fault injection — shared with serve; lives in src/engine/fault.h. The
// aliases keep the historical distrib::FaultSpec spelling working.
// ---------------------------------------------------------------------------

using dpbench::FaultSpec;
using dpbench::ParseFaultSpec;

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

struct CoordinatorOptions {
  uint16_t port = 0;           ///< 0 = pick an ephemeral port
  uint64_t num_tasks = 8;      ///< grid partitions (≥ worker count works best)
  int heartbeat_timeout_ms = 5000;  ///< silence before a worker is lost
  int min_straggler_ms = 10000;     ///< floor before speculation kicks in
  double straggler_factor = 3.0;    ///< x median task time
  int idle_retry_ms = 200;     ///< backoff we hand to idle workers
  int poll_ms = 100;           ///< connection-thread poll slice
  /// Durable progress file ("" = no checkpointing). Every completed task
  /// rewrites the checkpoint via tmp-write + atomic rename, so the live
  /// file is always a complete, self-verifying image. Create() resumes
  /// from an existing file whose config fingerprint and task count match
  /// (anything else is a loud refusal), re-running only incomplete tasks.
  std::string checkpoint_path;
  FaultSpec fault;  ///< coordinator-side crash points (tests / CI)
};

/// What happened during a coordinated run (for logs, tests, and the CI
/// smoke job's assertions).
struct CoordinatorSummary {
  uint64_t tasks = 0;
  uint64_t workers_seen = 0;        ///< distinct worker names that connected
  uint64_t workers_lost = 0;        ///< connections lost / heartbeat timeouts
  uint64_t tasks_reissued = 0;      ///< re-queued after a lost worker
  uint64_t speculative_issued = 0;  ///< straggler copies handed out
  uint64_t duplicate_results = 0;   ///< uploads for already-done tasks
  uint64_t corrupt_uploads = 0;     ///< uploads rejected by checksum/decode
  uint64_t tasks_resumed = 0;       ///< completed tasks taken from checkpoint
  uint64_t checkpoint_writes = 0;   ///< successful checkpoint persists
  uint64_t checkpoint_failures = 0; ///< persists that failed (run continues)
};

class Coordinator {
 public:
  /// Binds the listener (options.port; 0 = ephemeral, read back via
  /// port()) without accepting yet, so callers can learn the port before
  /// starting workers. If options.checkpoint_path names an existing file,
  /// loads it and resumes: completed tasks are trusted (their images are
  /// self-verifying) and never re-executed. A checkpoint whose config
  /// fingerprint differs is FailedPrecondition, a damaged one DataLoss —
  /// never a silent fresh start that could merge skewed shards.
  static Result<Coordinator> Create(const ExperimentConfig& config,
                                    const CoordinatorOptions& options);

  Coordinator(Coordinator&&) = default;
  Coordinator& operator=(Coordinator&&) = default;

  uint16_t port() const { return listener_.port(); }

  /// Serves until every task has one valid result, then tells workers to
  /// shut down and merges. The merged cells are byte-identical to the
  /// monolithic run of `config`. Blocks; drive it from a thread when the
  /// caller also hosts workers (tests).
  Result<MergedRun> Serve(CoordinatorSummary* summary = nullptr);

 private:
  Coordinator() = default;

  ExperimentConfig config_;
  CoordinatorOptions options_;
  net::Listener listener_;
  /// Tasks recovered from the checkpoint: (task index, decoded shard,
  /// original image bytes — kept so later checkpoint rewrites carry them).
  std::vector<uint64_t> resumed_indices_;
  std::vector<ShardFile> resumed_shards_;
  std::vector<std::string> resumed_images_;
};

// ---------------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------------

struct WorkerOptions {
  std::string name = "worker";
  uint16_t port = 0;           ///< coordinator port (required)
  size_t threads = 1;          ///< Runner threads per task
  int heartbeat_ms = 500;      ///< progress-report period while executing
  int connect_timeout_ms = 2000;
  int reconnect_attempts = 5;  ///< connection-loss retries before giving up
  int reconnect_base_ms = 100; ///< exponential backoff base (doubles, capped)
  int reconnect_max_ms = 2000;
  FaultSpec fault;
};

struct WorkerStats {
  uint64_t tasks_completed = 0;  ///< results uploaded (including duplicates)
  uint64_t reconnects = 0;       ///< successful reconnections
  /// Plans rehydrated from the worker's per-config-fingerprint cache
  /// instead of re-planned: after the first assignment of a config, later
  /// assignments reuse the serialized plans it built (shard subsets may
  /// still plan keys the cached assignments never touched).
  uint64_t plans_hydrated = 0;
  bool killed_by_fault = false;  ///< exited via kill_after
  std::string ended_by;          ///< "shutdown" | "fault" | "coordinator_gone"
};

/// Runs the worker loop: connect (with backoff), request work, execute,
/// heartbeat, upload, repeat — until the coordinator says shutdown or
/// disappears for good. Returns OK with stats.ended_by explaining why it
/// stopped; a worker outliving its coordinator is a normal end, not an
/// error. Unavailable only if the *initial* connection never succeeds.
Result<WorkerStats> RunWorker(const WorkerOptions& options);

}  // namespace distrib
}  // namespace dpbench

#endif  // DPBENCH_ENGINE_DISTRIB_H_
