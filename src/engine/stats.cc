#include "src/engine/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math.h"

namespace dpbench {

Result<ErrorSummary> Summarize(const std::vector<double>& errors) {
  if (errors.empty()) {
    return Status::InvalidArgument("no trials to summarize");
  }
  ErrorSummary s;
  s.mean = Mean(errors);
  s.stddev = SampleStddev(errors);
  s.p95 = Percentile(errors, 95.0);
  s.trials = errors.size();
  return s;
}

namespace {

constexpr double kP2Quantile = 0.95;

}  // namespace

void StreamingSummary::Add(double x) {
  // Welford update.
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);

  if (count_ <= kExactWindow) window_[count_ - 1] = x;
  AddP2(x);
}

void StreamingSummary::AddP2(double x) {
  const double p = kP2Quantile;
  if (count_ <= 5) {
    // Collect the first five observations, kept sorted.
    size_t i = count_ - 1;
    q_[i] = x;
    for (; i > 0 && q_[i - 1] > q_[i]; --i) std::swap(q_[i - 1], q_[i]);
    if (count_ == 5) {
      for (size_t k = 0; k < 5; ++k) pos_[k] = static_cast<double>(k + 1);
      des_ = {1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0};
    }
    return;
  }

  // Locate the cell containing x, clamping the extreme markers.
  size_t k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  for (size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  const std::array<double, 5> dn = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
  for (size_t i = 0; i < 5; ++i) des_[i] += dn[i];

  // Nudge the three interior markers toward their desired positions with
  // piecewise-parabolic (P^2) interpolation, falling back to linear when
  // the parabola would leave the bracketing heights.
  for (size_t i = 1; i <= 3; ++i) {
    double d = des_[i] - pos_[i];
    double right_gap = pos_[i + 1] - pos_[i];
    double left_gap = pos_[i - 1] - pos_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      double sign = d >= 1.0 ? 1.0 : -1.0;
      double qp = q_[i] +
                  sign / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + sign) * (q_[i + 1] - q_[i]) /
                           right_gap +
                       (pos_[i + 1] - pos_[i] - sign) * (q_[i] - q_[i - 1]) /
                           (pos_[i] - pos_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        // Linear toward the neighbour in the movement direction.
        size_t j = d >= 1.0 ? i + 1 : i - 1;
        q_[i] += sign * (q_[j] - q_[i]) /
                 (pos_[j] - pos_[i]);
      }
      pos_[i] += sign;
    }
  }
}

double StreamingSummary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingSummary::stddev() const { return std::sqrt(variance()); }

double StreamingSummary::p95() const {
  if (count_ == 0) return 0.0;
  if (count_ <= kExactWindow) {
    std::vector<double> head(window_.begin(), window_.begin() + count_);
    return Percentile(std::move(head), 95.0);
  }
  return q_[2];  // the middle marker tracks the p-quantile
}

StreamingSummary::State StreamingSummary::state() const {
  State s;
  s.count = count_;
  s.mean = mean_;
  s.m2 = m2_;
  s.window = window_;
  s.q = q_;
  s.pos = pos_;
  s.des = des_;
  return s;
}

StreamingSummary StreamingSummary::FromState(const State& s) {
  StreamingSummary out;
  out.count_ = static_cast<size_t>(s.count);
  out.mean_ = s.mean;
  out.m2_ = s.m2;
  out.window_ = s.window;
  out.q_ = s.q;
  out.pos_ = s.pos;
  out.des_ = s.des;
  return out;
}

Result<ErrorSummary> StreamingSummary::Finalize() const {
  if (count_ == 0) {
    return Status::InvalidArgument("no trials to summarize");
  }
  ErrorSummary s;
  s.mean = mean();
  s.stddev = stddev();
  s.p95 = p95();
  s.trials = count_;
  return s;
}

Result<double> WelchTTestPValue(const std::vector<double>& xs,
                                const std::vector<double>& ys) {
  if (xs.size() < 2 || ys.size() < 2) {
    return Status::InvalidArgument("t-test needs at least 2 samples per arm");
  }
  double mx = Mean(xs), my = Mean(ys);
  double vx = SampleVariance(xs), vy = SampleVariance(ys);
  double nx = static_cast<double>(xs.size());
  double ny = static_cast<double>(ys.size());
  double se2 = vx / nx + vy / ny;
  if (se2 <= 0.0) {
    // Identical constant samples: no evidence of difference if means equal.
    return (mx == my) ? 1.0 : 0.0;
  }
  double t = (mx - my) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  double df_num = se2 * se2;
  double df_den = (vx / nx) * (vx / nx) / (nx - 1.0) +
                  (vy / ny) * (vy / ny) / (ny - 1.0);
  double df = (df_den > 0.0) ? df_num / df_den : nx + ny - 2.0;
  df = std::max(df, 1.0);
  double cdf = StudentTCdf(std::abs(t), df);
  return 2.0 * (1.0 - cdf);
}

Result<std::vector<std::string>> CompetitiveSet(
    const std::map<std::string, std::vector<double>>& errors_by_algorithm,
    double alpha) {
  if (errors_by_algorithm.empty()) {
    return Status::InvalidArgument("no algorithms to compare");
  }
  // Locate the algorithm with lowest mean error.
  std::string best;
  double best_mean = std::numeric_limits<double>::infinity();
  for (const auto& [name, errs] : errors_by_algorithm) {
    if (errs.empty()) {
      return Status::InvalidArgument("algorithm " + name + " has no trials");
    }
    double m = Mean(errs);
    if (m < best_mean) {
      best_mean = m;
      best = name;
    }
  }
  size_t nalgs = errors_by_algorithm.size();
  double corrected =
      (nalgs > 1) ? alpha / static_cast<double>(nalgs - 1) : alpha;

  std::vector<std::string> competitive{best};
  const std::vector<double>& best_errs = errors_by_algorithm.at(best);
  for (const auto& [name, errs] : errors_by_algorithm) {
    if (name == best) continue;
    if (errs.size() < 2 || best_errs.size() < 2) continue;
    DPB_ASSIGN_OR_RETURN(double p, WelchTTestPValue(errs, best_errs));
    // Not significantly different from the best -> competitive.
    if (p > corrected) competitive.push_back(name);
  }
  std::sort(competitive.begin(), competitive.end());
  return competitive;
}

}  // namespace dpbench
