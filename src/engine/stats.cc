#include "src/engine/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math.h"

namespace dpbench {

Result<ErrorSummary> Summarize(const std::vector<double>& errors) {
  if (errors.empty()) {
    return Status::InvalidArgument("no trials to summarize");
  }
  ErrorSummary s;
  s.mean = Mean(errors);
  s.stddev = SampleStddev(errors);
  s.p95 = Percentile(errors, 95.0);
  s.trials = errors.size();
  return s;
}

Result<double> WelchTTestPValue(const std::vector<double>& xs,
                                const std::vector<double>& ys) {
  if (xs.size() < 2 || ys.size() < 2) {
    return Status::InvalidArgument("t-test needs at least 2 samples per arm");
  }
  double mx = Mean(xs), my = Mean(ys);
  double vx = SampleVariance(xs), vy = SampleVariance(ys);
  double nx = static_cast<double>(xs.size());
  double ny = static_cast<double>(ys.size());
  double se2 = vx / nx + vy / ny;
  if (se2 <= 0.0) {
    // Identical constant samples: no evidence of difference if means equal.
    return (mx == my) ? 1.0 : 0.0;
  }
  double t = (mx - my) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  double df_num = se2 * se2;
  double df_den = (vx / nx) * (vx / nx) / (nx - 1.0) +
                  (vy / ny) * (vy / ny) / (ny - 1.0);
  double df = (df_den > 0.0) ? df_num / df_den : nx + ny - 2.0;
  df = std::max(df, 1.0);
  double cdf = StudentTCdf(std::abs(t), df);
  return 2.0 * (1.0 - cdf);
}

Result<std::vector<std::string>> CompetitiveSet(
    const std::map<std::string, std::vector<double>>& errors_by_algorithm,
    double alpha) {
  if (errors_by_algorithm.empty()) {
    return Status::InvalidArgument("no algorithms to compare");
  }
  // Locate the algorithm with lowest mean error.
  std::string best;
  double best_mean = std::numeric_limits<double>::infinity();
  for (const auto& [name, errs] : errors_by_algorithm) {
    if (errs.empty()) {
      return Status::InvalidArgument("algorithm " + name + " has no trials");
    }
    double m = Mean(errs);
    if (m < best_mean) {
      best_mean = m;
      best = name;
    }
  }
  size_t nalgs = errors_by_algorithm.size();
  double corrected =
      (nalgs > 1) ? alpha / static_cast<double>(nalgs - 1) : alpha;

  std::vector<std::string> competitive{best};
  const std::vector<double>& best_errs = errors_by_algorithm.at(best);
  for (const auto& [name, errs] : errors_by_algorithm) {
    if (name == best) continue;
    if (errs.size() < 2 || best_errs.size() < 2) continue;
    DPB_ASSIGN_OR_RETURN(double p, WelchTTestPValue(errs, best_errs));
    // Not significantly different from the best -> competitive.
    if (p > corrected) competitive.push_back(name);
  }
  std::sort(competitive.begin(), competitive.end());
  return competitive;
}

}  // namespace dpbench
