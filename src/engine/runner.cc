#include "src/engine/runner.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/algorithms/mechanism.h"
#include "src/common/lockstep.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"
#include "src/engine/thread_pool.h"

namespace dpbench {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

bool ConfigKey::operator<(const ConfigKey& other) const {
  return std::tie(algorithm, dataset, scale, domain_size, epsilon) <
         std::tie(other.algorithm, other.dataset, other.scale,
                  other.domain_size, other.epsilon);
}

std::string ConfigKey::ToString() const {
  std::ostringstream os;
  os << algorithm << "/" << dataset << "/scale=" << scale
     << "/domain=" << domain_size << "/eps=" << epsilon;
  return os.str();
}

uint64_t CellStreamSeed(uint64_t master_seed, const ConfigKey& key) {
  // Structured-field mixing (not the formatted label): the epsilon enters
  // by bit pattern, so every distinct double gets its own stream, and the
  // seed is invariant to shard assignment and cell execution order.
  return SeedMixer(master_seed)
      .Mix(std::string("cell"))
      .Mix(key.algorithm)
      .Mix(key.dataset)
      .Mix(key.scale)
      .Mix(static_cast<uint64_t>(key.domain_size))
      .MixDouble(key.epsilon)
      .seed();
}

Workload MakeWorkload(WorkloadKind kind, const Domain& domain,
                      size_t random_queries, uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kPrefix1D:
      return Workload::Prefix1D(domain.TotalCells());
    case WorkloadKind::kRandomRange2D:
      return Workload::RandomRange(domain, random_queries, seed);
    case WorkloadKind::kIdentity:
      return Workload::Identity(domain);
  }
  return Workload::Identity(domain);
}

Result<std::vector<CellResult>> Runner::Run(const ExperimentConfig& config,
                                            ProgressFn progress,
                                            RunDiagnostics* diagnostics,
                                            const PlanStore* hydrate_plans,
                                            PlanStore* export_plans) {
  struct SharedInput {
    SharedInput(std::shared_ptr<const Workload> w, DataVector sh,
                uint64_t sc, uint64_t seed, size_t node)
        : workload(std::move(w)),
          shape(std::move(sh)),
          scale(sc),
          data_seed(seed),
          home_node(node) {}

    std::shared_ptr<const Workload> workload;
    // Materialization inputs, recorded during grid enumeration; samples
    // and true answers are filled later on a worker of home_node so the
    // pages are first-touched on the socket that will execute the cells.
    DataVector shape;
    uint64_t scale = 0;
    uint64_t data_seed = 0;
    size_t home_node = 0;
    std::vector<DataVector> samples;
    std::vector<std::vector<double>> true_answers;
  };
  struct CellTask {
    ConfigKey key;
    size_t grid_index = 0;
    const SharedInput* input = nullptr;
    std::string plan_key;
  };

  if (config.shard_count == 0) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  if (config.shard_index >= config.shard_count) {
    return Status::InvalidArgument(
        "shard_index " + std::to_string(config.shard_index) +
        " out of range for shard_count " +
        std::to_string(config.shard_count));
  }

  // Phase 0: resolve the algorithm list against the registry exactly once
  // (one lookup per algorithm, not one per grid cell).
  std::map<std::string, MechanismPtr> mechanisms;
  for (const std::string& algo : config.algorithms) {
    if (mechanisms.count(algo)) continue;
    DPB_ASSIGN_OR_RETURN(MechanismPtr mech, MechanismRegistry::Get(algo));
    mechanisms.emplace(algo, std::move(mech));
  }

  // The pool exists before enumeration so inputs can be assigned home
  // NUMA nodes (round-robin over the pool's node count, in canonical
  // input order — deterministic, and irrelevant to results).
  size_t threads = std::max<size_t>(config.threads, 1);
  WorkStealingPool pool(threads, config.pin_threads);

  // Phase 1 (sequential): enumerate the full grid in its canonical order
  // (dataset, domain, scale, epsilon, algorithm) — assigning every
  // non-skipped cell its stable grid index — and keep the cells of this
  // shard. Data vectors are drawn per (dataset, domain, scale) from a
  // stream seeded by that identity, so all algorithms and epsilons (and
  // every shard) see identical samples — the paper's controlled-comparison
  // requirement. Inputs are materialized lazily: a shard only pays for the
  // samples and true answers of combos it actually executes. Workloads are
  // shared per domain; plans per (algorithm, domain, epsilon [, scale]).
  std::vector<std::unique_ptr<SharedInput>> inputs;
  std::vector<CellTask> tasks;
  std::map<std::string, std::shared_ptr<const Workload>> workload_cache;
  struct PlanRequest {
    MechanismPtr mech;
    const SharedInput* input = nullptr;
    double epsilon = 0.0;
    SideInfo side_info;
  };
  std::map<std::string, PlanRequest> plan_requests;
  std::set<std::tuple<std::string, std::string, size_t>> skipped_seen;
  std::vector<SkippedCombo> skipped;
  size_t grid_cells = 0;  // canonical index counter over the full grid

  for (const std::string& dataset : config.datasets) {
    DPB_ASSIGN_OR_RETURN(DatasetInfo info, DatasetRegistry::Info(dataset));
    (void)info;
    for (size_t domain_size : config.domain_sizes) {
      DPB_ASSIGN_OR_RETURN(
          DataVector shape,
          DatasetRegistry::ShapeAtDomain(dataset, domain_size));
      const Domain& domain = shape.domain();
      std::string domain_tag = domain.ToString();
      auto workload_it = workload_cache.find(domain_tag);
      if (workload_it == workload_cache.end()) {
        workload_it =
            workload_cache
                .emplace(domain_tag,
                         std::make_shared<const Workload>(MakeWorkload(
                             config.workload, domain, config.random_queries,
                             config.seed)))
                .first;
      }
      std::shared_ptr<const Workload> workload = workload_it->second;
      for (uint64_t scale : config.scales) {
        std::unique_ptr<SharedInput> input;  // materialized on first use
        for (double eps : config.epsilons) {
          for (const std::string& algo : config.algorithms) {
            const MechanismPtr& mech = mechanisms.at(algo);
            if (!mech->SupportsDims(domain.num_dims())) {
              // e.g. PHP on 2D: out of scope, but surfaced in diagnostics
              // rather than dropped without trace. Skips are detected over
              // the full grid, so every shard reports the same list.
              if (skipped_seen.emplace(algo, dataset, domain_size).second) {
                skipped.push_back(
                    {algo, dataset, domain_size, domain.num_dims(),
                     "unsupported dimensionality (" +
                         std::to_string(domain.num_dims()) + "D)"});
              }
              continue;
            }
            size_t grid_index = grid_cells++;
            if (grid_index % config.shard_count != config.shard_index) {
              continue;  // another shard's cell
            }
            if (input == nullptr) {
              std::ostringstream label;
              label << "data/" << dataset << "/" << domain_size << "/"
                    << scale;
              input = std::make_unique<SharedInput>(
                  workload, shape, scale,
                  StreamSeed(config.seed, label.str()),
                  inputs.size() % pool.num_nodes());
            }
            SideInfo side_info;
            if (config.provide_true_scale) {
              side_info.true_scale = static_cast<double>(scale);
            }
            // Plans depend on (algorithm, domain, epsilon) — plus the
            // scale when the mechanism consumes it as side information.
            // Epsilon is keyed at full precision: the default 6-digit
            // formatting would collide near-equal epsilons from generated
            // sweeps onto one plan (silently wrong noise scale).
            std::ostringstream plan_key;
            plan_key.precision(17);
            plan_key << algo << "|" << domain_tag << "|eps=" << eps;
            if (mech->uses_side_info() && side_info.true_scale) {
              plan_key << "|scale=" << scale;
            }
            auto [it, inserted] = plan_requests.emplace(
                plan_key.str(),
                PlanRequest{mech, input.get(), eps, side_info});
            (void)it;
            (void)inserted;
            tasks.push_back({{algo, dataset, scale, domain_size, eps},
                             grid_index,
                             input.get(),
                             plan_key.str()});
          }
        }
        if (input != nullptr) {
          inputs.push_back(std::move(input));
        }
      }
    }
  }

  // Phase 1b: materialize every input's data samples and true answers on
  // a worker of its home node. The sampling streams are seeded purely by
  // (seed, dataset, domain, scale) — recorded above — so deferring and
  // parallelizing this cannot change a bit; what it changes is which
  // socket first touches the dataset pages, which is where they stay.
  std::vector<Status> input_failures(inputs.size(), Status::OK());
  pool.ParallelForWorkerPlaced(
      inputs.size(),
      [&](size_t i, size_t) {
        SharedInput& input = *inputs[i];
        Rng data_rng(input.data_seed);
        for (size_t s = 0; s < config.data_samples; ++s) {
          auto x = SampleAtScale(input.shape, input.scale, &data_rng);
          if (!x.ok()) {
            input_failures[i] = x.status();
            return;
          }
          input.samples.push_back(std::move(x).value());
        }
        input.true_answers = input.workload->EvaluateAll(input.samples);
      },
      [&](size_t i) { return inputs[i]->home_node; });
  for (const Status& st : input_failures) {
    DPB_RETURN_NOT_OK(st);
  }

  // Phase 2a: build every unique plan once — or hydrate it from the
  // provided serialized store instead of planning. Planning and hydration
  // are deterministic (they never draw randomness), so running them
  // concurrently cannot change results.
  auto plan_start = std::chrono::steady_clock::now();
  std::vector<std::pair<const std::string*, const PlanRequest*>> plan_order;
  plan_order.reserve(plan_requests.size());
  for (const auto& [key, req] : plan_requests) {
    plan_order.emplace_back(&key, &req);
  }
  std::map<std::string, PlanPtr> plan_cache;
  std::vector<PlanPtr> built_plans(plan_order.size());
  std::vector<Status> plan_failures(plan_order.size(), Status::OK());
  std::vector<char> hydrated(plan_order.size(), 0);
  pool.ParallelFor(plan_order.size(), [&](size_t i) {
    const PlanRequest& req = *plan_order[i].second;
    PlanContext pctx{req.input->workload->domain(), *req.input->workload,
                     req.epsilon, req.side_info};
    if (hydrate_plans != nullptr) {
      auto it = hydrate_plans->plans.find(*plan_order[i].first);
      if (it != hydrate_plans->plans.end()) {
        auto plan_or = req.mech->HydratePlan(pctx, it->second);
        if (!plan_or.ok()) {
          // A supplied-but-unusable payload is a corrupt or mismatched
          // cache; surface it instead of silently re-planning.
          plan_failures[i] = plan_or.status();
          return;
        }
        built_plans[i] = std::move(plan_or).value();
        hydrated[i] = 1;
        return;
      }
    }
    auto plan_or = req.mech->Plan(pctx);
    if (!plan_or.ok()) {
      plan_failures[i] = plan_or.status();
      return;
    }
    built_plans[i] = std::move(plan_or).value();
  });
  for (const Status& st : plan_failures) {
    DPB_RETURN_NOT_OK(st);
  }
  size_t plans_hydrated = 0;
  for (char h : hydrated) plans_hydrated += h;
  if (export_plans != nullptr) {
    for (size_t i = 0; i < plan_order.size(); ++i) {
      if (!built_plans[i]->precomputed()) continue;
      auto payload = built_plans[i]->SerializePayload();
      if (payload.ok()) {
        export_plans->plans[*plan_order[i].first] =
            std::move(payload).value();
      } else if (payload.status().code() != StatusCode::kNotSupported) {
        return payload.status();
      }
    }
  }
  for (size_t i = 0; i < plan_order.size(); ++i) {
    plan_cache.emplace(*plan_order[i].first, std::move(built_plans[i]));
  }
  double plan_seconds = SecondsSince(plan_start);

  // Phase 2b: execute cells (independently seeded, hence parallelizable).
  // Each worker owns a scratch arena (buffers + estimate + workload
  // answers), so the trial loop performs zero per-trial heap allocations
  // in the steady state. Scratch never carries values between trials —
  // every use fully overwrites what it reads — so results stay
  // bit-identical across thread counts and worker assignments.
  auto exec_start = std::chrono::steady_clock::now();
  std::vector<CellResult> out(tasks.size());
  std::vector<Status> failures(tasks.size(), Status::OK());
  std::mutex progress_mu;

  struct WorkerState {
    ExecScratch scratch;
    DataVector est;             // reusable estimate slot
    std::vector<double> y_hat;  // workload answers
    std::vector<double> cum;    // workload prefix-sum table
    std::vector<double> est_lanes;   // lane-major lockstep estimates
    std::vector<double> yhat_lanes;  // lane-major workload answers
  };
  std::vector<WorkerState> workers(pool.num_threads());
  const size_t active_lanes = lockstep::ActiveLaneWidth();
  std::atomic<uint64_t> lockstep_trials{0};
  std::atomic<uint64_t> scalar_trials{0};
  std::atomic<uint64_t> traffic_bytes{0};

  auto run_cell = [&](size_t idx, size_t worker) {
    WorkerState& ws = workers[worker];
    const CellTask& task = tasks[idx];
    const PlanPtr& plan = plan_cache.at(task.plan_key);
    CellResult cell;
    cell.key = task.key;
    cell.grid_index = task.grid_index;
    StreamingSummary stream;
    if (config.retain_raw_errors) {
      cell.errors.reserve(task.input->samples.size() *
                          config.runs_per_sample);
    }
    // Trials of one cell batch through the lane-parallel path when the
    // plan runs all lanes in lockstep and the workload has a lane
    // evaluator. Lane l of a batch starting at trial r is bit-identical
    // to scalar trial r + l: each eligible plan consumes its per-trial
    // noise in exactly one block fill, and the lane fills reproduce each
    // lane's draws at its scalar stream positions.
    const size_t W = (active_lanes > 1 && plan->SupportsLockstep() &&
                      task.input->workload->has_eval_plan())
                         ? active_lanes
                         : 1;
    uint64_t cell_lockstep = 0, cell_scalar = 0;
    const size_t num_queries = task.input->workload->size();
    Rng run_rng(CellStreamSeed(config.seed, task.key));
    for (size_t s = 0; s < task.input->samples.size(); ++s) {
      const DataVector& x = task.input->samples[s];
      size_t r = 0;
      for (; W > 1 && r + W <= config.runs_per_sample; r += W) {
        ExecContext ectx{x, &run_rng, &ws.scratch};
        Status exec_status = plan->ExecuteMany(ectx, W, &ws.est_lanes);
        if (!exec_status.ok()) {
          failures[idx] = exec_status;
          return;
        }
        task.input->workload->EvaluateMany(ws.est_lanes.data(), W, &ws.cum,
                                           &ws.yhat_lanes);
        ws.y_hat.resize(num_queries);
        for (size_t l = 0; l < W; ++l) {
          for (size_t qi = 0; qi < num_queries; ++qi) {
            ws.y_hat[qi] = ws.yhat_lanes[qi * W + l];
          }
          auto err = ScaledL2PerQueryError(task.input->true_answers[s],
                                           ws.y_hat, x.Scale());
          if (!err.ok()) {
            failures[idx] = err.status();
            return;
          }
          if (config.retain_raw_errors) {
            cell.errors.push_back(*err);
          } else {
            stream.Add(*err);
          }
        }
        cell_lockstep += W;
      }
      for (; r < config.runs_per_sample; ++r) {
        ExecContext ectx{x, &run_rng, &ws.scratch};
        Status exec_status = plan->ExecuteInto(ectx, &ws.est);
        if (!exec_status.ok()) {
          failures[idx] = exec_status;
          return;
        }
        task.input->workload->EvaluateInto(ws.est, &ws.cum, &ws.y_hat);
        auto err = ScaledL2PerQueryError(task.input->true_answers[s],
                                         ws.y_hat, x.Scale());
        if (!err.ok()) {
          failures[idx] = err.status();
          return;
        }
        if (config.retain_raw_errors) {
          cell.errors.push_back(*err);
        } else {
          stream.Add(*err);
        }
        ++cell_scalar;
      }
    }
    lockstep_trials.fetch_add(cell_lockstep, std::memory_order_relaxed);
    scalar_trials.fetch_add(cell_scalar, std::memory_order_relaxed);
    // Analytic memory traffic of this cell: the Philox counter position is
    // exactly the draw count (8 bytes materialized each), and every trial
    // writes the estimate once and reads it back once through workload
    // evaluation (domain cells x 8 bytes, twice).
    traffic_bytes.fetch_add(
        8 * (run_rng.generator().position() +
             2 * static_cast<uint64_t>(
                     task.input->workload->domain().TotalCells()) *
                 (cell_lockstep + cell_scalar)),
        std::memory_order_relaxed);
    auto summary =
        config.retain_raw_errors ? Summarize(cell.errors) : stream.Finalize();
    if (!summary.ok()) {
      failures[idx] = summary.status();
      return;
    }
    cell.summary = *summary;
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(cell);
    }
    out[idx] = std::move(cell);
  };

  // Cells are routed to the node that owns their input's pages; stealing
  // may still rebalance them anywhere (counted as remote steals).
  pool.ParallelForWorkerPlaced(
      tasks.size(), run_cell,
      [&](size_t idx) { return tasks[idx].input->home_node; });
  for (const Status& st : failures) {
    DPB_RETURN_NOT_OK(st);
  }

  if (diagnostics != nullptr) {
    diagnostics->skipped = std::move(skipped);
    diagnostics->cells = tasks.size();
    diagnostics->grid_cells = grid_cells;
    diagnostics->trials = 0;
    for (const CellResult& cell : out) {
      diagnostics->trials += cell.summary.trials;
    }
    diagnostics->plans_built = plan_cache.size() - plans_hydrated;
    diagnostics->plans_hydrated = plans_hydrated;
    diagnostics->plan_cache_hits =
        tasks.size() > plan_cache.size() ? tasks.size() - plan_cache.size()
                                         : 0;
    diagnostics->plan_seconds = plan_seconds;
    diagnostics->execute_seconds = SecondsSince(exec_start);
    diagnostics->trials_per_second =
        diagnostics->execute_seconds > 0.0
            ? static_cast<double>(diagnostics->trials) /
                  diagnostics->execute_seconds
            : 0.0;
    PoolStats pstats = pool.stats();
    diagnostics->pool_parallel_jobs = pstats.parallel_jobs;
    diagnostics->pool_tasks_executed = pstats.tasks_executed;
    diagnostics->pool_tasks_stolen = pstats.tasks_stolen;
    diagnostics->pool_workers_pinned = pstats.workers_pinned;
    diagnostics->numa_nodes = pool.num_nodes();
    diagnostics->node_workers = pool.workers_per_node();
    diagnostics->pool_tasks_stolen_remote = pstats.tasks_stolen_remote;
    diagnostics->bytes_per_trial =
        diagnostics->trials > 0
            ? static_cast<double>(
                  traffic_bytes.load(std::memory_order_relaxed)) /
                  static_cast<double>(diagnostics->trials)
            : 0.0;
    diagnostics->isa_tier = lockstep::TierName(lockstep::ActiveTier());
    diagnostics->lane_width = active_lanes;
    diagnostics->lockstep_trials =
        lockstep_trials.load(std::memory_order_relaxed);
    diagnostics->scalar_trials =
        scalar_trials.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

std::string SettingLabel(const ConfigKey& key) {
  std::ostringstream setting;
  setting << key.dataset << "/scale=" << key.scale
          << "/domain=" << key.domain_size << "/eps=" << key.epsilon;
  return setting.str();
}

}  // namespace

std::map<std::string, std::map<std::string, std::vector<double>>>
Runner::GroupBySetting(const std::vector<CellResult>& results) {
  std::map<std::string, std::map<std::string, std::vector<double>>> grouped;
  for (const CellResult& cell : results) {
    grouped[SettingLabel(cell.key)][cell.key.algorithm] = cell.errors;
  }
  return grouped;
}

std::map<std::string, std::map<std::string, std::vector<double>>>
Runner::GroupBySetting(std::vector<CellResult>&& results) {
  std::map<std::string, std::map<std::string, std::vector<double>>> grouped;
  for (CellResult& cell : results) {
    grouped[SettingLabel(cell.key)][cell.key.algorithm] =
        std::move(cell.errors);
  }
  return grouped;
}

}  // namespace dpbench
