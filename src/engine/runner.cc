#include "src/engine/runner.h"

#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <tuple>

#include "src/algorithms/mechanism.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/engine/error.h"

namespace dpbench {

namespace {

// Deterministic stream seed for a labelled sub-experiment: FNV-1a over the
// master seed and the label. Guarantees results do not depend on grid
// iteration order or thread scheduling.
uint64_t StreamSeed(uint64_t master, const std::string& label) {
  uint64_t h = 1469598103934665603ULL ^ master;
  h *= 1099511628211ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

bool ConfigKey::operator<(const ConfigKey& other) const {
  return std::tie(algorithm, dataset, scale, domain_size, epsilon) <
         std::tie(other.algorithm, other.dataset, other.scale,
                  other.domain_size, other.epsilon);
}

std::string ConfigKey::ToString() const {
  std::ostringstream os;
  os << algorithm << "/" << dataset << "/scale=" << scale
     << "/domain=" << domain_size << "/eps=" << epsilon;
  return os.str();
}

Workload MakeWorkload(WorkloadKind kind, const Domain& domain,
                      size_t random_queries, uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kPrefix1D:
      return Workload::Prefix1D(domain.TotalCells());
    case WorkloadKind::kRandomRange2D:
      return Workload::RandomRange(domain, random_queries, seed);
    case WorkloadKind::kIdentity:
      return Workload::Identity(domain);
  }
  return Workload::Identity(domain);
}

Result<std::vector<CellResult>> Runner::Run(const ExperimentConfig& config,
                                            ProgressFn progress) {
  struct SharedInput {
    Workload workload;
    std::vector<DataVector> samples;
    std::vector<std::vector<double>> true_answers;
  };
  struct CellTask {
    ConfigKey key;
    const SharedInput* input = nullptr;
  };

  // Phase 1 (sequential): draw the data vectors per (dataset, domain,
  // scale) so all algorithms and epsilons see identical samples — the
  // paper's controlled-comparison requirement.
  std::vector<std::unique_ptr<SharedInput>> inputs;
  std::vector<CellTask> tasks;
  for (const std::string& dataset : config.datasets) {
    DPB_ASSIGN_OR_RETURN(DatasetInfo info, DatasetRegistry::Info(dataset));
    (void)info;
    for (size_t domain_size : config.domain_sizes) {
      DPB_ASSIGN_OR_RETURN(
          DataVector shape,
          DatasetRegistry::ShapeAtDomain(dataset, domain_size));
      Workload workload = MakeWorkload(config.workload, shape.domain(),
                                       config.random_queries, config.seed);
      for (uint64_t scale : config.scales) {
        std::ostringstream label;
        label << "data/" << dataset << "/" << domain_size << "/" << scale;
        Rng data_rng(StreamSeed(config.seed, label.str()));
        auto input = std::make_unique<SharedInput>();
        input->workload = workload;
        for (size_t s = 0; s < config.data_samples; ++s) {
          DPB_ASSIGN_OR_RETURN(DataVector x,
                               SampleAtScale(shape, scale, &data_rng));
          input->true_answers.push_back(input->workload.Evaluate(x));
          input->samples.push_back(std::move(x));
        }
        for (double eps : config.epsilons) {
          for (const std::string& algo : config.algorithms) {
            DPB_ASSIGN_OR_RETURN(MechanismPtr mech,
                                 MechanismRegistry::Get(algo));
            if (!mech->SupportsDims(shape.domain().num_dims())) {
              continue;  // e.g. PHP on 2D: silently out of scope
            }
            tasks.push_back(
                {{algo, dataset, scale, domain_size, eps}, input.get()});
          }
        }
        inputs.push_back(std::move(input));
      }
    }
  }

  // Phase 2: execute cells (independently seeded, hence parallelizable).
  std::vector<CellResult> out(tasks.size());
  std::vector<Status> failures(tasks.size(), Status::OK());
  std::atomic<size_t> next{0};
  std::mutex progress_mu;

  auto run_cell = [&](size_t idx) {
    const CellTask& task = tasks[idx];
    auto mech_or = MechanismRegistry::Get(task.key.algorithm);
    if (!mech_or.ok()) {
      failures[idx] = mech_or.status();
      return;
    }
    MechanismPtr mech = std::move(mech_or).value();
    CellResult cell;
    cell.key = task.key;
    Rng run_rng(StreamSeed(config.seed, "run/" + task.key.ToString()));
    for (size_t s = 0; s < task.input->samples.size(); ++s) {
      const DataVector& x = task.input->samples[s];
      for (size_t r = 0; r < config.runs_per_sample; ++r) {
        RunContext ctx{x, task.input->workload, task.key.epsilon, &run_rng,
                       {}};
        if (config.provide_true_scale) {
          ctx.side_info.true_scale = x.Scale();
        }
        auto est = mech->Run(ctx);
        if (!est.ok()) {
          failures[idx] = est.status();
          return;
        }
        std::vector<double> y_hat = task.input->workload.Evaluate(*est);
        auto err = ScaledL2PerQueryError(task.input->true_answers[s], y_hat,
                                         x.Scale());
        if (!err.ok()) {
          failures[idx] = err.status();
          return;
        }
        cell.errors.push_back(*err);
      }
    }
    auto summary = Summarize(cell.errors);
    if (!summary.ok()) {
      failures[idx] = summary.status();
      return;
    }
    cell.summary = *summary;
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(cell);
    }
    out[idx] = std::move(cell);
  };

  size_t threads = std::max<size_t>(config.threads, 1);
  if (threads == 1) {
    for (size_t i = 0; i < tasks.size(); ++i) run_cell(i);
  } else {
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < tasks.size();
             i = next.fetch_add(1)) {
          run_cell(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  for (const Status& st : failures) {
    DPB_RETURN_NOT_OK(st);
  }
  return out;
}

std::map<std::string, std::map<std::string, std::vector<double>>>
Runner::GroupBySetting(const std::vector<CellResult>& results) {
  std::map<std::string, std::map<std::string, std::vector<double>>> grouped;
  for (const CellResult& cell : results) {
    std::ostringstream setting;
    setting << cell.key.dataset << "/scale=" << cell.key.scale
            << "/domain=" << cell.key.domain_size
            << "/eps=" << cell.key.epsilon;
    grouped[setting.str()][cell.key.algorithm] = cell.errors;
  }
  return grouped;
}

}  // namespace dpbench
