#include "src/engine/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/common/math.h"
#include "src/data/sampler.h"
#include "src/data/shape.h"

namespace dpbench {

std::vector<DataVector> TrainingShapes(size_t domain_size, uint64_t seed) {
  std::vector<DataVector> shapes;
  Domain d(domain_size);
  // Power-law shapes with different exponents.
  for (double exponent : {0.8, 1.2, 2.0}) {
    std::vector<double> mass(domain_size);
    for (size_t i = 0; i < domain_size; ++i) {
      mass[i] = std::pow(static_cast<double>(i + 1), -exponent);
    }
    double s = 0.0;
    for (double m : mass) s += m;
    for (double& m : mass) m /= s;
    shapes.emplace_back(d, std::move(mass));
  }
  // Normal shapes with different widths.
  uint64_t k = 0;
  for (double width : {0.02, 0.1, 0.3}) {
    ShapeBuilder b(d, seed + (k++));
    b.AddGaussian({0.5}, {width}, 1.0);
    shapes.push_back(b.Build());
  }
  return shapes;
}

Result<std::vector<ScheduleEntry>> LearnSchedule(const TunerConfig& config,
                                                 const TunableRunFn& run) {
  if (config.candidates.empty() || config.products.empty()) {
    return Status::InvalidArgument("tuner needs candidates and products");
  }
  std::vector<DataVector> shapes =
      TrainingShapes(config.domain_size, config.seed);
  Rng rng(config.seed * 2654435761ULL + 1);

  std::vector<double> sorted_products = config.products;
  std::sort(sorted_products.begin(), sorted_products.end());

  std::vector<ScheduleEntry> schedule;
  for (double product : sorted_products) {
    uint64_t scale = static_cast<uint64_t>(
        std::llround(std::max(product / config.epsilon, 1.0)));
    double best_err = std::numeric_limits<double>::infinity();
    const ParamVector* best_theta = nullptr;
    for (const ParamVector& theta : config.candidates) {
      std::vector<double> errs;
      for (const DataVector& shape : shapes) {
        for (size_t t = 0; t < config.trials; ++t) {
          DPB_ASSIGN_OR_RETURN(DataVector x,
                               SampleAtScale(shape, scale, &rng));
          DPB_ASSIGN_OR_RETURN(double err,
                               run(theta, x, config.epsilon, &rng));
          errs.push_back(err);
        }
      }
      double mean = Mean(errs);
      if (mean < best_err) {
        best_err = mean;
        best_theta = &theta;
      }
    }
    DPB_CHECK(best_theta != nullptr);
    // Regime lower bound: geometric midpoint with the previous product.
    double min_product = schedule.empty()
                             ? 0.0
                             : std::sqrt(product * sorted_products
                                             [schedule.size() - 1]);
    schedule.push_back({min_product, *best_theta, best_err});
  }
  return schedule;
}

const ParamVector& ScheduleLookup(const std::vector<ScheduleEntry>& schedule,
                                  double product) {
  DPB_CHECK(!schedule.empty());
  const ParamVector* theta = &schedule.front().theta;
  for (const ScheduleEntry& e : schedule) {
    if (product >= e.min_product) theta = &e.theta;
  }
  return *theta;
}

}  // namespace dpbench
