// Serialization of experiment artifacts for the sharded runner: cell
// results, streaming-summary state, run diagnostics, mechanism plan
// payloads, and the two file formats built from them (shard result files
// and plan-cache files), plus the manifest-validated shard merge.
//
// Wire format (src/engine/wire.h): a versioned envelope ("DPBS" magic,
// format version, kind tag) around named, individually CRC32C-checksummed
// sections, each holding a self-describing binary record — a field count
// followed by (name, type, value) triples, nestable. Integers are
// fixed-width little-endian; doubles travel by bit pattern, so every value
// round-trips bit-exactly. Every file this module writes is
// self-verifying: section checksums are validated before any payload is
// parsed, so a flipped bit in a shard or plan-cache file fails with a
// DataLoss error naming the damaged section instead of poisoning a merge.
// Unknown fields are preserved by the parser (they are simply not looked
// up), version skew and truncation are rejected with precise errors, and
// any artifact can be rendered as JSON for debugging with DebugJson().
#ifndef DPBENCH_ENGINE_SERIALIZE_H_
#define DPBENCH_ENGINE_SERIALIZE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/algorithms/mechanism.h"
#include "src/common/status.h"
#include "src/engine/runner.h"
#include "src/engine/stats.h"
#include "src/engine/wire.h"

namespace dpbench {

/// Format version of everything this module writes (the wire envelope
/// version). Readers reject other versions (no silent cross-version
/// reinterpretation): v1 readers fail loudly on today's checksummed v2
/// files, and this build fails loudly on unchecksummed v1 files.
inline constexpr uint32_t kSerializeFormatVersion = wire::kFormatVersion;

// ---------------------------------------------------------------------------
// Standalone artifacts. Each Encode* output is a complete enveloped file
// image (magic + version + kind + record); the matching Decode* validates
// the envelope and every field it reads.
// ---------------------------------------------------------------------------

std::string EncodeCellResult(const CellResult& cell);
Result<CellResult> DecodeCellResult(const std::string& bytes);

std::string EncodeStreamingSummary(const StreamingSummary& summary);
Result<StreamingSummary> DecodeStreamingSummary(const std::string& bytes);

std::string EncodeRunDiagnostics(const RunDiagnostics& diagnostics);
Result<RunDiagnostics> DecodeRunDiagnostics(const std::string& bytes);

std::string EncodePlanPayload(const PlanPayload& payload);
Result<PlanPayload> DecodePlanPayload(const std::string& bytes);

// ---------------------------------------------------------------------------
// Shard result files.
// ---------------------------------------------------------------------------

/// One shard's complete output: which slice of which grid it ran, the
/// cells it produced (each carrying its canonical grid index), and the
/// shard's diagnostics. `config` records the grid identity — all fields
/// of ExperimentConfig except the execution-only ones (threads,
/// shard_index, shard_count), which decode to their defaults — and must
/// be identical across shards for a merge to be valid.
struct ShardFile {
  uint64_t shard_index = 0;
  uint64_t shard_count = 1;
  uint64_t total_cells = 0;  ///< non-skipped cells in the *full* grid
  ExperimentConfig config;
  std::vector<CellResult> cells;
  RunDiagnostics diagnostics;
};

std::string EncodeShardFile(const ShardFile& shard);
Result<ShardFile> DecodeShardFile(const std::string& bytes);

/// The canonical encoding of a grid identity (the config minus execution
/// fields). Two configs describe the same grid iff their fingerprints are
/// byte-identical; the merge validator compares these.
std::string ConfigFingerprint(const ExperimentConfig& config);

/// Record form of a grid identity for transports that embed a config in a
/// larger message (the distributed runner's work assignments).
/// EncodeExperimentConfigRecord is ConfigFingerprint under another name;
/// the decoder restores every grid field, with the execution-only fields
/// (threads, shard_index, shard_count) left at their defaults.
std::string EncodeExperimentConfigRecord(const ExperimentConfig& config);
Result<ExperimentConfig> DecodeExperimentConfigRecord(
    const std::string& bytes);

// ---------------------------------------------------------------------------
// Plan-cache files: serialized plan payloads keyed by the runner's
// plan-cache key, written by a planning run and hydrated by later ones.
//
// The file records the workload identity it was planned against
// (workload kind, random-query count, and — for the seeded random2d
// workload — the master seed); Decode validates it against the loading
// run's config. Plans of workload-aware mechanisms (GREEDY_H) are only
// valid for the exact workload they were built from, and a mismatch must
// fail loudly rather than silently run a mis-budgeted mechanism. A cache
// IS reusable across seeds for the deterministic workloads (prefix,
// identity), where the seed never enters planning.
// ---------------------------------------------------------------------------

std::string EncodePlanCacheFile(const PlanStore& store,
                                const ExperimentConfig& config);
Result<PlanStore> DecodePlanCacheFile(const std::string& bytes,
                                      const ExperimentConfig& config);

/// The workload identity a plan-cache file was planned against.
/// random_queries and workload_seed are 0 unless workload is
/// kRandomRange2D (the only workload where they shape planning).
struct PlanCacheIdentity {
  WorkloadKind workload = WorkloadKind::kPrefix1D;
  uint64_t random_queries = 0;
  uint64_t workload_seed = 0;
};

/// Decodes a plan-cache file without a loading config, returning the
/// stored workload identity for the caller to validate (dpbench_serve
/// hydrates caches against its own workload conventions rather than an
/// ExperimentConfig). DecodePlanCacheFile is this plus the identity check.
Result<PlanStore> DecodePlanCacheFileRaw(const std::string& bytes,
                                         PlanCacheIdentity* identity);

// ---------------------------------------------------------------------------
// Privacy-budget ledger files: the persisted state of dpbench_serve's
// budget accountant (engine/serve). One entry per (user, dataset) pair;
// budget and spent epsilon travel by bit pattern, so a restarted daemon
// resumes from byte-exactly the ledger it last persisted — spent budget is
// never forgotten and never silently rounded. The file is a checksummed
// envelope like every other DPBS artifact: a flipped bit is rejected at
// load (DataLoss naming the damaged section) instead of silently
// resurrecting budget.
// ---------------------------------------------------------------------------

/// One (user, dataset) privacy-budget ledger.
struct LedgerEntry {
  std::string user;
  std::string dataset;
  double budget = 0.0;   ///< epsilon capacity granted to this pair
  double spent = 0.0;    ///< epsilon consumed by admitted queries
  uint64_t queries = 0;  ///< admitted queries (also salts noise streams)

  bool operator==(const LedgerEntry& other) const {
    return user == other.user && dataset == other.dataset &&
           budget == other.budget && spent == other.spent &&
           queries == other.queries;
  }
};

/// A decoded ledger snapshot. `journal_seq` is the highest charge-journal
/// sequence number already folded into the entries (0 for snapshots
/// written before journaling existed, or when no journal is in use):
/// journal replay applies only records with seq > journal_seq, which is
/// what makes compaction crash-safe — a crash after the snapshot rename
/// but before the journal truncation merely replays already-folded
/// records as no-ops (they are skipped by sequence).
struct LedgerFile {
  std::vector<LedgerEntry> entries;
  uint64_t journal_seq = 0;
};

/// Encodes a ledger snapshot. Entries are written in the order given;
/// the accountant snapshots in sorted key order, so identical state
/// always produces identical bytes (the serve-smoke restart contract).
std::string EncodeLedgerFile(const std::vector<LedgerEntry>& entries,
                             uint64_t journal_seq = 0);

/// Decodes a ledger snapshot. Rejects duplicate (user, dataset) entries
/// with a named error — a file that lists the same ledger twice is
/// corrupt or hand-edited, and last-write-wins could silently resurrect
/// spent budget.
Result<LedgerFile> DecodeLedgerFile(const std::string& bytes);

// ---------------------------------------------------------------------------
// Charge journal: the append-only record of every admission decision
// dpbench_serve makes (engine/serve). Unlike the enveloped formats above,
// the journal is a flat sequence of individually framed records —
//
//   "DPBJ" | u32 payload_len (LE) | u32 CRC32C(payload) | payload
//
// — because an append-only file must be extendable without rewriting (an
// envelope's section table lives at the front). Each payload is a wire
// record; each frame carries its own checksum. A record is appended
// *before* its query executes, so a crash at any point leaves the journal
// at-or-ahead of reality: replay can over-charge (privacy-conservative)
// but never under-charge. A torn trailing record — one that stops at EOF
// mid-frame, exactly what kill -9 during an append leaves — is discarded
// with a count (the decision it described never became durable); damage
// anywhere *before* the tail is DataLoss, loudly.
// ---------------------------------------------------------------------------

enum class JournalOutcome : uint64_t {
  kGrant = 0,     ///< budget charged; the query will execute
  kRefusal = 1,   ///< admission refused (budget exhausted); no state change
  kRollback = 2,  ///< a prior grant undone (journal-append failure path)
};

/// Stable display name ("grant" | "refusal" | "rollback").
const char* JournalOutcomeName(JournalOutcome outcome);

/// One admission decision.
struct JournalRecord {
  uint64_t seq = 0;  ///< strictly increasing across the journal's life
  JournalOutcome outcome = JournalOutcome::kGrant;
  std::string user;
  std::string dataset;
  double epsilon = 0.0;      ///< epsilon the decision concerned
  uint64_t ordinal = 0;      ///< ledger query ordinal the decision is about
  double budget = 0.0;       ///< ledger budget at decision time
  double spent_after = 0.0;  ///< ledger spent after the decision applied
  uint64_t existed = 1;  ///< rollback only: did the ledger entry pre-exist?

  bool operator==(const JournalRecord& other) const {
    return seq == other.seq && outcome == other.outcome &&
           user == other.user && dataset == other.dataset &&
           epsilon == other.epsilon && ordinal == other.ordinal &&
           budget == other.budget && spent_after == other.spent_after &&
           existed == other.existed;
  }
};

/// One framed journal record, ready to append.
std::string EncodeJournalRecord(const JournalRecord& record);

/// A decoded journal: every intact record in file order, plus the size of
/// the discarded torn tail (0 when the file ends cleanly).
struct Journal {
  std::vector<JournalRecord> records;
  uint64_t dropped_tail_bytes = 0;
};

/// Walks the journal front to back. Fails loudly (DataLoss) on bad magic
/// or a checksum mismatch before the final record; fails InvalidArgument
/// on a non-monotonic sequence number (named error — a journal whose
/// sequence regresses has been truncated-and-appended or spliced, and
/// replaying it would misattribute charges). A torn final record is
/// tolerated and reported via dropped_tail_bytes.
Result<Journal> DecodeJournal(const std::string& bytes);

// ---------------------------------------------------------------------------
// Coordinator checkpoint files: the durable progress of a distributed run
// (engine/distrib). Records the grid identity, the deterministic task
// partition, and every completed task's full shard-file image. Because
// task t of T is the strided shard {cells i : i % T == t} and every cell
// stream is derived from (seed, cell identity), a resumed coordinator that
// trusts these images and re-runs only the rest merges byte-identical to
// an uninterrupted run.
// ---------------------------------------------------------------------------

struct CheckpointFile {
  uint64_t num_tasks = 0;  ///< the run's task partition (fixed at start)
  ExperimentConfig config; ///< grid identity (execution fields defaulted)
  /// Completed tasks, parallel arrays: task_indices[i] finished with the
  /// self-verifying EncodeShardFile image shard_images[i].
  std::vector<uint64_t> task_indices;
  std::vector<std::string> shard_images;
};

std::string EncodeCheckpointFile(const CheckpointFile& checkpoint);

/// Decodes and validates a checkpoint envelope. Rejects, with named
/// errors: a duplicate task index (two images for one task — the file was
/// not written by one coordinator run), a task index outside [0,
/// num_tasks), and mismatched index/image arities. Shard-image *content*
/// is validated by DecodeShardFile at resume time.
Result<CheckpointFile> DecodeCheckpointFile(const std::string& bytes);

// ---------------------------------------------------------------------------
// Merge.
// ---------------------------------------------------------------------------

/// A validated, merged multi-shard run: cells in canonical (monolithic)
/// order and aggregated diagnostics.
struct MergedRun {
  ExperimentConfig config;
  std::vector<CellResult> cells;
  RunDiagnostics diagnostics;
};

/// Validates the shard manifest and merges. Fails loudly on: no shards;
/// config fingerprint mismatch; disagreeing shard_count or total_cells;
/// the same shard index supplied twice (overlap); a missing shard index
/// (gap); a cell outside its shard's slice; duplicate or missing cell
/// indices. On success the merged cells are bit-identical to the
/// single-process run of the same config (summed diagnostics: cells,
/// trials, plan and pool counters; wall-clock fields are summed CPU
/// seconds across shards, and `skipped` — identical in every shard by
/// construction — is taken from the first).
///
/// Failures carry machine-distinguishable status codes so schedulers and
/// CI can separate retryable from fatal conditions:
///   - FailedPrecondition: config/manifest skew (shards from different
///     runs or grids — fatal, re-running one shard cannot fix it);
///   - NotFound: a shard or cell is missing (incomplete — retryable by
///     producing the missing shard);
///   - InvalidArgument: structural corruption (overlaps, duplicate or
///     out-of-slice cells — the supplied file set is wrong).
/// Checksum damage inside a file surfaces earlier, as DataLoss from
/// DecodeShardFile.
Result<MergedRun> MergeShards(std::vector<ShardFile> shards);

// ---------------------------------------------------------------------------
// Debugging and IO.
// ---------------------------------------------------------------------------

/// Renders any enveloped artifact produced by this module as indented
/// JSON (kind and version included; doubles printed with 17 significant
/// digits, non-finite values as strings). Debug form only — there is no
/// JSON reader.
Result<std::string> DebugJson(const std::string& bytes);

Status WriteFileBytes(const std::string& path, const std::string& bytes);
Result<std::string> ReadFileBytes(const std::string& path);

/// Appends bytes to `path` (creating it if absent) in one O_APPEND write,
/// the journal's durability primitive: concurrent appenders never
/// interleave within a record, and a crash mid-append leaves a torn tail
/// that DecodeJournal discards rather than a corrupt file.
Status AppendFileBytes(const std::string& path, const std::string& bytes);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_SERIALIZE_H_
