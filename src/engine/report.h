// Output helpers: aligned ASCII tables, CSV emission, and the regret
// measure from the paper's state-of-the-art assessment (§7.2).
#ifndef DPBENCH_ENGINE_REPORT_H_
#define DPBENCH_ENGINE_REPORT_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/engine/runner.h"

namespace dpbench {

/// A simple aligned-text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& os) const;

  /// Formats a double compactly ("1.23e-4" style).
  static std::string Num(double v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Emits the raw cell results as CSV (one line per configuration).
void WriteCsv(const std::vector<CellResult>& results, std::ostream& os);

/// Parses CSV produced by WriteCsv back into summaries (raw per-trial
/// errors are not serialized; CellResult.errors stays empty). Tolerates
/// and skips blank lines; fails on malformed rows.
Result<std::vector<CellResult>> ReadCsv(std::istream& is);

/// Regret (paper §7.2): for each setting, the ratio of an algorithm's mean
/// error to the per-setting oracle-best mean error; aggregated across
/// settings with the geometric mean. Input shape: setting -> algorithm ->
/// mean error. Only algorithms present in *every* setting are scored.
Result<std::map<std::string, double>> ComputeRegret(
    const std::map<std::string, std::map<std::string, double>>&
        mean_error_by_setting);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_REPORT_H_
