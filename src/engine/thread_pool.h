// A small work-stealing parallel-for used by the experiment runner.
//
// Tasks are pre-distributed round-robin across per-worker deques; a worker
// drains its own deque from the front and, when empty, steals single tasks
// from the back of a victim's deque. This keeps neighbouring cells (which
// share plan-cache entries and data samples) on the same core while still
// balancing the tail — grid cells have wildly different costs (IDENTITY at
// domain 128 vs DAWA at 4096), so static partitioning alone stalls on
// stragglers.
//
// Determinism: the pool makes no ordering promises, so callers must ensure
// task results do not depend on execution order. The runner guarantees
// this by seeding every cell independently (StreamSeed) and writing each
// result to a distinct slot.
#ifndef DPBENCH_ENGINE_THREAD_POOL_H_
#define DPBENCH_ENGINE_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace dpbench {

class WorkStealingPool {
 public:
  /// `num_threads` == 0 or 1 means run inline on the calling thread.
  explicit WorkStealingPool(size_t num_threads);

  /// Runs fn(i) for every i in [0, num_tasks); blocks until all complete.
  /// fn must be safe to call concurrently from multiple threads.
  void ParallelFor(size_t num_tasks,
                   const std::function<void(size_t)>& fn) const;

  size_t num_threads() const { return num_threads_; }

 private:
  size_t num_threads_;
};

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_THREAD_POOL_H_
