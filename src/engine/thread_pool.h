// A persistent work-stealing parallel-for used by the experiment runner,
// with NUMA-node-aware placement.
//
// Workers are spawned once at construction and parked on a condition
// variable between ParallelFor calls, so the execute-many trial loop pays
// no thread spawn/join cost per phase. Tasks are pre-distributed
// round-robin across per-worker deques; a worker drains its own deque from
// the front and, when empty, steals single tasks from the back of a
// victim's deque. This keeps neighbouring cells (which share plan-cache
// entries and data samples) on the same core while still balancing the
// tail — grid cells have wildly different costs (IDENTITY at domain 128 vs
// DAWA at 4096), so static partitioning alone stalls on stragglers.
//
// NUMA awareness (topology::Detect, or an explicit topology): workers are
// grouped per node — contiguous worker-id blocks, sized proportionally to
// each node's CPU count — and, when pinning is on, each worker pins to a
// CPU of its own node. Stealing is local-first: a worker exhausts every
// same-node victim before crossing to another socket, and cross-node
// steals are counted separately (PoolStats::tasks_stolen_remote) so the
// runner can report how often placement was violated to balance the tail.
// ParallelForWorkerPlaced lets the caller route each task to the node that
// owns its data. On a single-node machine all of this degenerates to the
// historical flat behavior: one steal ring, worker w pinned to core
// w mod cores, no remote steals.
//
// The calling thread participates as worker 0; spawned threads are workers
// 1..num_threads-1. Worker ids are stable for the lifetime of the pool and
// are exposed through ParallelForWorker so callers can index per-thread
// scratch state (the runner's ExecScratch arenas) without locking.
//
// Determinism: the pool makes no ordering promises, so callers must ensure
// task results do not depend on execution order. The runner guarantees
// this by seeding every cell independently (StreamSeed) and writing each
// result to a distinct slot — which is also why placement hints and
// cross-node steals can never change results, only locality.
//
// Concurrency contract: ParallelFor/ParallelForWorker must be issued from
// one thread at a time (the pool owner) and must not be called reentrantly
// from inside a task. Destruction joins all workers (TSan-clean shutdown).
#ifndef DPBENCH_ENGINE_THREAD_POOL_H_
#define DPBENCH_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/topology.h"

namespace dpbench {

/// Lifetime counters of a pool — cheap relaxed atomics, suitable for
/// utilization diagnostics (RunDiagnostics), not for synchronization.
struct PoolStats {
  uint64_t parallel_jobs = 0;   ///< ParallelFor/ParallelForWorker calls served
  uint64_t tasks_executed = 0;  ///< total task-function invocations
  uint64_t tasks_stolen = 0;    ///< tasks popped from another worker's deque
  uint64_t tasks_stolen_remote = 0;  ///< steals that crossed a NUMA node
  uint64_t workers_pinned = 0;  ///< workers with a core affinity applied
};

class WorkStealingPool {
 public:
  /// fn(task, worker): `worker` is a stable id in [0, num_threads).
  using WorkerFn = std::function<void(size_t task, size_t worker)>;
  /// Placement hint: the NUMA node whose workers should own task i.
  /// Return kAnyNode (or any out-of-range node) for no preference.
  using HomeNodeFn = std::function<size_t(size_t task)>;

  static constexpr size_t kAnyNode = static_cast<size_t>(-1);

  /// `num_threads` == 0 or 1 means run inline on the calling thread (no
  /// workers are spawned — the 1-thread fast path takes no locks).
  ///
  /// `topo` is the NUMA layout to place against (nullptr = the cached
  /// topology::Detect()). Workers are split into contiguous per-node
  /// groups proportional to each node's CPU count.
  ///
  /// `pin_threads` pins each spawned worker to a CPU of its node (its
  /// index within the node's worker group, wrapping over the node's CPU
  /// list): persistent workers then keep their cache and NUMA locality
  /// across phases instead of migrating between them. Worker 0 is the
  /// calling thread and is never pinned — the pool must not mutate the
  /// caller's scheduling state beyond its own lifetime. Pinning is
  /// best-effort (Linux only; a cpuset that excludes the target CPU
  /// leaves that worker unpinned) and never affects results —
  /// PoolStats::workers_pinned reports how many workers it actually
  /// stuck.
  explicit WorkStealingPool(size_t num_threads, bool pin_threads = false,
                            const topology::Topology* topo = nullptr);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Runs fn(i) for every i in [0, num_tasks); blocks until all complete.
  /// fn must be safe to call concurrently from multiple threads.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn);

  /// As ParallelFor, but fn also receives the executing worker's id so the
  /// caller can index per-thread scratch without synchronization. At most
  /// one task runs per worker id at any instant.
  void ParallelForWorker(size_t num_tasks, const WorkerFn& fn);

  /// As ParallelForWorker, but each task is queued to a worker of
  /// home_node(task) — round-robin within that node's worker group — so
  /// the threads executing a task run on the socket that owns its data.
  /// Tasks hinted at kAnyNode (or a node with no workers) fall back to
  /// the global round-robin. A hint is locality only, never correctness:
  /// work stealing may still execute any task anywhere (remote steals are
  /// counted), and results must not depend on placement.
  void ParallelForWorkerPlaced(size_t num_tasks, const WorkerFn& fn,
                               const HomeNodeFn& home_node);

  size_t num_threads() const { return num_threads_; }

  /// NUMA shape the pool planned against.
  size_t num_nodes() const { return node_workers_.size(); }
  size_t node_of_worker(size_t worker) const { return worker_node_[worker]; }
  /// Worker count per node, indexed by the pool's node order (the
  /// topology's node order, not raw sysfs ids).
  std::vector<uint64_t> workers_per_node() const;

  PoolStats stats() const;

 private:
  // One worker's task deque. Owner pops from the front; thieves pop from
  // the back. A plain mutex per deque is plenty: runner tasks are coarse
  // (milliseconds to seconds), so contention on the queue lock is noise.
  struct TaskDeque {
    std::deque<size_t> tasks;
    std::mutex mu;

    bool PopFront(size_t* out) {
      std::lock_guard<std::mutex> lock(mu);
      if (tasks.empty()) return false;
      *out = tasks.front();
      tasks.pop_front();
      return true;
    }

    bool PopBack(size_t* out) {
      std::lock_guard<std::mutex> lock(mu);
      if (tasks.empty()) return false;
      *out = tasks.back();
      tasks.pop_back();
      return true;
    }
  };

  void BuildPlacement(const topology::Topology& topo);
  /// Publishes the already-filled deques as one job, participates as
  /// worker 0, and blocks until every spawned worker has parked again.
  void RunQueuedJob(const WorkerFn& fn);
  void WorkerLoop(size_t self);
  void DrainTasks(size_t self);
  /// Pins the calling thread to `cpu`; returns whether the affinity call
  /// succeeded. No-op (false) off Linux or for out-of-range CPUs.
  static bool PinSelfToCpu(int cpu);

  size_t num_threads_;
  bool pin_threads_;
  std::vector<TaskDeque> queues_;

  // Placement plan, fixed at construction. worker_node_[w] is w's node;
  // worker_cpu_[w] its pin target; node_workers_[n] the worker ids of
  // node n; victim_order_[w] the steal order (same-node victims first),
  // with victims_local_[w] counting the same-node prefix.
  std::vector<size_t> worker_node_;
  std::vector<int> worker_cpu_;
  std::vector<std::vector<size_t>> node_workers_;
  std::vector<std::vector<size_t>> victim_order_;
  std::vector<size_t> victims_local_;

  // Job state, published under mu_ at the start of every parallel region.
  const WorkerFn* job_ = nullptr;
  uint64_t epoch_ = 0;        // bumped per job; workers wake on change
  size_t workers_done_ = 0;   // spawned workers that finished this epoch
  bool shutdown_ = false;
  std::mutex mu_;
  std::condition_variable cv_work_;  // workers park here between jobs
  std::condition_variable cv_done_;  // owner waits for quiescence here

  std::atomic<uint64_t> parallel_jobs_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> tasks_stolen_remote_{0};
  std::atomic<uint64_t> workers_pinned_{0};

  std::vector<std::thread> threads_;  // workers 1..num_threads-1
};

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_THREAD_POOL_H_
