// Error measurement standards EM (paper §5.3).
#ifndef DPBENCH_ENGINE_ERROR_H_
#define DPBENCH_ENGINE_ERROR_H_

#include <vector>

#include "src/common/status.h"
#include "src/histogram/data_vector.h"
#include "src/workload/workload.h"

namespace dpbench {

/// Scaled average per-query error (paper Definition 3) with the L2 loss:
/// (1 / (scale * |W|)) * ||y_true - y_hat||_2.
Result<double> ScaledL2PerQueryError(const std::vector<double>& y_true,
                                     const std::vector<double>& y_hat,
                                     double scale);

/// Convenience: evaluates the workload on the truth and the estimate and
/// returns the scaled error. `scale` is taken from the true data.
Result<double> WorkloadError(const Workload& w, const DataVector& truth,
                             const DataVector& estimate);

/// Decomposition of error into bias and dispersion across repeated runs of
/// one algorithm on the same input (used by the consistency analyses,
/// Finding 9): bias = ||mean(y_hat) - y_true||, and the remainder is noise.
struct BiasVariance {
  double bias_l2;       ///< L2 norm of the mean residual
  double stddev_l2;     ///< sqrt of the summed per-query variances
};
Result<BiasVariance> DecomposeBiasVariance(
    const std::vector<double>& y_true,
    const std::vector<std::vector<double>>& y_hats);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_ERROR_H_
