#include "src/engine/bounds.h"

#include <cmath>

#include "src/algorithms/matrix_mechanism.h"

namespace dpbench {

Result<double> IdentityExpectedError(const Workload& w, double epsilon,
                                     double scale) {
  if (epsilon <= 0.0 || scale <= 0.0) {
    return Status::InvalidArgument("epsilon and scale must be positive");
  }
  if (w.size() == 0) {
    return Status::InvalidArgument("empty workload");
  }
  double total_var = 0.0;
  for (const RangeQuery& q : w.queries()) {
    total_var += static_cast<double>(q.NumCells()) * 2.0 /
                 (epsilon * epsilon);
  }
  return std::sqrt(total_var) / (scale * static_cast<double>(w.size()));
}

Result<double> UniformExpectedError(const Workload& w, double epsilon,
                                    double scale,
                                    const std::vector<double>& shape) {
  if (epsilon <= 0.0 || scale <= 0.0) {
    return Status::InvalidArgument("epsilon and scale must be positive");
  }
  size_t n = w.domain().TotalCells();
  if (shape.size() != n || w.size() == 0) {
    return Status::InvalidArgument("shape arity mismatch or empty workload");
  }
  // Per query: bias s*(Wp - Wu)_q plus noise (Wu)_q * Lap(1/eps) from the
  // scale estimate.
  DataVector p(w.domain(), shape);
  std::vector<double> wp = w.Evaluate(p);
  DataVector u(w.domain(),
               std::vector<double>(n, 1.0 / static_cast<double>(n)));
  std::vector<double> wu = w.Evaluate(u);
  double total = 0.0;
  for (size_t q = 0; q < w.size(); ++q) {
    double bias = scale * (wp[q] - wu[q]);
    double noise_var = wu[q] * wu[q] * 2.0 / (epsilon * epsilon);
    total += bias * bias + noise_var;
  }
  return std::sqrt(total) / (scale * static_cast<double>(w.size()));
}

Result<double> HierarchicalExpectedError(const Workload& w, double epsilon,
                                         double scale, size_t branching) {
  if (w.domain().num_dims() != 1) {
    return Status::NotSupported("hierarchical bound is 1D-only");
  }
  size_t n = w.domain().TotalCells();
  MatrixMechanism mm("H-bound",
                     strategies::HierarchicalStrategy(n, branching));
  DPB_ASSIGN_OR_RETURN(double sq, mm.ExpectedSquaredError(w, epsilon));
  return std::sqrt(sq) / (scale * static_cast<double>(w.size()));
}

}  // namespace dpbench
