#include "src/engine/postprocess.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dpbench {

DataVector ClampNonNegative(const DataVector& x) {
  DataVector out = x;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0) out[i] = 0.0;
  }
  return out;
}

DataVector NormalizeToScale(const DataVector& x, double target_scale) {
  DataVector out = x;
  double total = out.Scale();
  if (total <= 0.0) return out;
  double factor = target_scale / total;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= factor;
  return out;
}

DataVector RoundToCounts(const DataVector& x) {
  DataVector out = x;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::max(0.0, std::round(out[i]));
  }
  return out;
}

DataVector ProjectNonNegativeKeepingTotal(const DataVector& x) {
  // Exact Euclidean projection onto {v >= 0, sum(v) = total}: the solution
  // is v_i = max(x_i - theta, 0) where theta solves
  // sum_i max(x_i - theta, 0) = total (standard simplex projection,
  // generalized to an arbitrary non-negative total).
  const double total = std::max(x.Scale(), 0.0);
  const size_t n = x.size();
  if (n == 0) return x;

  std::vector<double> sorted = x.counts();
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double theta = (sorted[0] - total);  // k = 1 candidate
  for (size_t k = 1; k <= n; ++k) {
    cumulative += sorted[k - 1];
    double candidate = (cumulative - total) / static_cast<double>(k);
    // Valid while every kept cell exceeds theta.
    if (k == n || sorted[k] <= candidate) {
      theta = candidate;
      break;
    }
  }
  DataVector out = x;
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::max(x[i] - theta, 0.0);
  }
  return out;
}

}  // namespace dpbench
