#include "src/engine/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "src/common/crc32c.h"
#include "src/engine/wire.h"

namespace dpbench {

namespace {

using wire::Record;
using wire::RecordWriter;

// ---------------------------------------------------------------------------
// Record-level encoders/decoders for the engine structs (no envelope; the
// public Encode*/Decode* and the file formats wrap these).
// ---------------------------------------------------------------------------

std::string ConfigKeyRecord(const ConfigKey& key) {
  RecordWriter w;
  w.Str("algorithm", key.algorithm);
  w.Str("dataset", key.dataset);
  w.U64("scale", key.scale);
  w.U64("domain_size", key.domain_size);
  w.F64("epsilon", key.epsilon);
  return std::move(w).Finish();
}

Result<ConfigKey> ConfigKeyFromRecord(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  ConfigKey key;
  DPB_ASSIGN_OR_RETURN(key.algorithm, rec.Str("algorithm"));
  DPB_ASSIGN_OR_RETURN(key.dataset, rec.Str("dataset"));
  DPB_ASSIGN_OR_RETURN(key.scale, rec.U64("scale"));
  DPB_ASSIGN_OR_RETURN(uint64_t domain, rec.U64("domain_size"));
  key.domain_size = static_cast<size_t>(domain);
  DPB_ASSIGN_OR_RETURN(key.epsilon, rec.F64("epsilon"));
  return key;
}

std::string ErrorSummaryRecord(const ErrorSummary& s) {
  RecordWriter w;
  w.F64("mean", s.mean);
  w.F64("stddev", s.stddev);
  w.F64("p95", s.p95);
  w.U64("trials", s.trials);
  return std::move(w).Finish();
}

Result<ErrorSummary> ErrorSummaryFromRecord(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  ErrorSummary s;
  DPB_ASSIGN_OR_RETURN(s.mean, rec.F64("mean"));
  DPB_ASSIGN_OR_RETURN(s.stddev, rec.F64("stddev"));
  DPB_ASSIGN_OR_RETURN(s.p95, rec.F64("p95"));
  DPB_ASSIGN_OR_RETURN(uint64_t trials, rec.U64("trials"));
  s.trials = static_cast<size_t>(trials);
  return s;
}

std::string CellResultRecord(const CellResult& cell) {
  RecordWriter w;
  w.Rec("key", ConfigKeyRecord(cell.key));
  w.U64("grid_index", cell.grid_index);
  w.F64Vec("errors", cell.errors);
  w.Rec("summary", ErrorSummaryRecord(cell.summary));
  return std::move(w).Finish();
}

Result<CellResult> CellResultFromRecord(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  CellResult cell;
  DPB_ASSIGN_OR_RETURN(std::string key_rec, rec.Rec("key"));
  DPB_ASSIGN_OR_RETURN(cell.key, ConfigKeyFromRecord(key_rec));
  DPB_ASSIGN_OR_RETURN(uint64_t grid_index, rec.U64("grid_index"));
  cell.grid_index = static_cast<size_t>(grid_index);
  DPB_ASSIGN_OR_RETURN(cell.errors, rec.F64Vec("errors"));
  DPB_ASSIGN_OR_RETURN(std::string summary_rec, rec.Rec("summary"));
  DPB_ASSIGN_OR_RETURN(cell.summary, ErrorSummaryFromRecord(summary_rec));
  return cell;
}

std::string StreamingSummaryRecord(const StreamingSummary& summary) {
  StreamingSummary::State s = summary.state();
  RecordWriter w;
  w.U64("count", s.count);
  w.F64("mean", s.mean);
  w.F64("m2", s.m2);
  w.F64Vec("window", {s.window.begin(), s.window.end()});
  w.F64Vec("q", {s.q.begin(), s.q.end()});
  w.F64Vec("pos", {s.pos.begin(), s.pos.end()});
  w.F64Vec("des", {s.des.begin(), s.des.end()});
  return std::move(w).Finish();
}

Result<StreamingSummary> StreamingSummaryFromRecord(
    const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  StreamingSummary::State s;
  DPB_ASSIGN_OR_RETURN(s.count, rec.U64("count"));
  DPB_ASSIGN_OR_RETURN(s.mean, rec.F64("mean"));
  DPB_ASSIGN_OR_RETURN(s.m2, rec.F64("m2"));
  DPB_ASSIGN_OR_RETURN(std::vector<double> window, rec.F64Vec("window"));
  DPB_ASSIGN_OR_RETURN(std::vector<double> q, rec.F64Vec("q"));
  DPB_ASSIGN_OR_RETURN(std::vector<double> pos, rec.F64Vec("pos"));
  DPB_ASSIGN_OR_RETURN(std::vector<double> des, rec.F64Vec("des"));
  if (window.size() != s.window.size() || q.size() != 5 ||
      pos.size() != 5 || des.size() != 5) {
    return Status::InvalidArgument(
        "streaming-summary state has wrong accumulator arities");
  }
  std::copy(window.begin(), window.end(), s.window.begin());
  std::copy(q.begin(), q.end(), s.q.begin());
  std::copy(pos.begin(), pos.end(), s.pos.begin());
  std::copy(des.begin(), des.end(), s.des.begin());
  return StreamingSummary::FromState(s);
}

std::string SkippedComboRecord(const SkippedCombo& s) {
  RecordWriter w;
  w.Str("algorithm", s.algorithm);
  w.Str("dataset", s.dataset);
  w.U64("domain_size", s.domain_size);
  w.U64("dims", s.dims);
  w.Str("reason", s.reason);
  return std::move(w).Finish();
}

Result<SkippedCombo> SkippedComboFromRecord(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  SkippedCombo s;
  DPB_ASSIGN_OR_RETURN(s.algorithm, rec.Str("algorithm"));
  DPB_ASSIGN_OR_RETURN(s.dataset, rec.Str("dataset"));
  DPB_ASSIGN_OR_RETURN(uint64_t domain, rec.U64("domain_size"));
  s.domain_size = static_cast<size_t>(domain);
  DPB_ASSIGN_OR_RETURN(uint64_t dims, rec.U64("dims"));
  s.dims = static_cast<size_t>(dims);
  DPB_ASSIGN_OR_RETURN(s.reason, rec.Str("reason"));
  return s;
}

std::string RunDiagnosticsRecord(const RunDiagnostics& d) {
  RecordWriter w;
  std::vector<std::string> skipped;
  skipped.reserve(d.skipped.size());
  for (const SkippedCombo& s : d.skipped) {
    skipped.push_back(SkippedComboRecord(s));
  }
  w.RecVec("skipped", skipped);
  w.U64("cells", d.cells);
  w.U64("grid_cells", d.grid_cells);
  w.U64("trials", d.trials);
  w.U64("plans_built", d.plans_built);
  w.U64("plans_hydrated", d.plans_hydrated);
  w.U64("plan_cache_hits", d.plan_cache_hits);
  w.F64("plan_seconds", d.plan_seconds);
  w.F64("execute_seconds", d.execute_seconds);
  w.F64("trials_per_second", d.trials_per_second);
  w.U64("pool_parallel_jobs", d.pool_parallel_jobs);
  w.U64("pool_tasks_executed", d.pool_tasks_executed);
  w.U64("pool_tasks_stolen", d.pool_tasks_stolen);
  w.U64("pool_tasks_stolen_remote", d.pool_tasks_stolen_remote);
  w.U64("numa_nodes", d.numa_nodes);
  w.U64Vec("node_workers", d.node_workers);
  w.F64("bytes_per_trial", d.bytes_per_trial);
  w.Str("isa_tier", d.isa_tier);
  w.U64("lane_width", d.lane_width);
  w.U64("lockstep_trials", d.lockstep_trials);
  w.U64("scalar_trials", d.scalar_trials);
  return std::move(w).Finish();
}

Result<RunDiagnostics> RunDiagnosticsFromRecord(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  RunDiagnostics d;
  DPB_ASSIGN_OR_RETURN(std::vector<std::string> skipped,
                       rec.RecVec("skipped"));
  for (const std::string& s : skipped) {
    DPB_ASSIGN_OR_RETURN(SkippedCombo combo, SkippedComboFromRecord(s));
    d.skipped.push_back(std::move(combo));
  }
  DPB_ASSIGN_OR_RETURN(uint64_t cells, rec.U64("cells"));
  d.cells = static_cast<size_t>(cells);
  DPB_ASSIGN_OR_RETURN(uint64_t grid_cells, rec.U64("grid_cells"));
  d.grid_cells = static_cast<size_t>(grid_cells);
  DPB_ASSIGN_OR_RETURN(uint64_t trials, rec.U64("trials"));
  d.trials = static_cast<size_t>(trials);
  DPB_ASSIGN_OR_RETURN(uint64_t plans_built, rec.U64("plans_built"));
  d.plans_built = static_cast<size_t>(plans_built);
  DPB_ASSIGN_OR_RETURN(uint64_t plans_hydrated, rec.U64("plans_hydrated"));
  d.plans_hydrated = static_cast<size_t>(plans_hydrated);
  DPB_ASSIGN_OR_RETURN(uint64_t cache_hits, rec.U64("plan_cache_hits"));
  d.plan_cache_hits = static_cast<size_t>(cache_hits);
  DPB_ASSIGN_OR_RETURN(d.plan_seconds, rec.F64("plan_seconds"));
  DPB_ASSIGN_OR_RETURN(d.execute_seconds, rec.F64("execute_seconds"));
  DPB_ASSIGN_OR_RETURN(d.trials_per_second, rec.F64("trials_per_second"));
  DPB_ASSIGN_OR_RETURN(d.pool_parallel_jobs, rec.U64("pool_parallel_jobs"));
  DPB_ASSIGN_OR_RETURN(d.pool_tasks_executed,
                       rec.U64("pool_tasks_executed"));
  DPB_ASSIGN_OR_RETURN(d.pool_tasks_stolen, rec.U64("pool_tasks_stolen"));
  DPB_ASSIGN_OR_RETURN(d.pool_tasks_stolen_remote,
                       rec.U64("pool_tasks_stolen_remote"));
  DPB_ASSIGN_OR_RETURN(uint64_t numa_nodes, rec.U64("numa_nodes"));
  d.numa_nodes = static_cast<size_t>(numa_nodes);
  DPB_ASSIGN_OR_RETURN(d.node_workers, rec.U64Vec("node_workers"));
  DPB_ASSIGN_OR_RETURN(d.bytes_per_trial, rec.F64("bytes_per_trial"));
  DPB_ASSIGN_OR_RETURN(d.isa_tier, rec.Str("isa_tier"));
  DPB_ASSIGN_OR_RETURN(uint64_t lane_width, rec.U64("lane_width"));
  d.lane_width = static_cast<size_t>(lane_width);
  DPB_ASSIGN_OR_RETURN(d.lockstep_trials, rec.U64("lockstep_trials"));
  DPB_ASSIGN_OR_RETURN(d.scalar_trials, rec.U64("scalar_trials"));
  return d;
}

// Plan payloads: the mechanism/kind header plus the typed field maps,
// each map entry stored as its own prefixed field ("i:", "r:", "iv:",
// "rv:") so the record stays flat and self-describing.
std::string PlanPayloadRecord(const PlanPayload& p) {
  RecordWriter w;
  w.Str("mechanism", p.mechanism);
  w.Str("kind", p.kind);
  for (const auto& [name, v] : p.ints) w.U64("i:" + name, v);
  for (const auto& [name, v] : p.reals) w.F64("r:" + name, v);
  for (const auto& [name, v] : p.int_vecs) w.U64Vec("iv:" + name, v);
  for (const auto& [name, v] : p.real_vecs) w.F64Vec("rv:" + name, v);
  return std::move(w).Finish();
}

Result<PlanPayload> PlanPayloadFromRecord(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  PlanPayload p;
  DPB_ASSIGN_OR_RETURN(p.mechanism, rec.Str("mechanism"));
  DPB_ASSIGN_OR_RETURN(p.kind, rec.Str("kind"));
  // Move vector payloads out of the record: GLS/tree arrays run to
  // megabytes and the record is discarded right after this loop.
  for (auto& [name, value] : rec.mutable_fields()) {
    if (name.rfind("i:", 0) == 0 && value.type == wire::kU64) {
      p.ints[name.substr(2)] = value.u64;
    } else if (name.rfind("r:", 0) == 0 && value.type == wire::kF64) {
      p.reals[name.substr(2)] = wire::DoubleFromBits(value.u64);
    } else if (name.rfind("iv:", 0) == 0 && value.type == wire::kU64Vec) {
      p.int_vecs[name.substr(3)] = std::move(value.u64_vec);
    } else if (name.rfind("rv:", 0) == 0 && value.type == wire::kF64Vec) {
      std::vector<double>& out = p.real_vecs[name.substr(3)];
      out.resize(value.u64_vec.size());
      for (size_t i = 0; i < out.size(); ++i) {
        out[i] = wire::DoubleFromBits(value.u64_vec[i]);
      }
    }
  }
  return p;
}

// Grid identity: every config field that affects results. The execution
// fields (threads, shard_index, shard_count) are deliberately absent —
// shards differ in them by design.
std::string ConfigRecord(const ExperimentConfig& c) {
  RecordWriter w;
  w.StrVec("algorithms", c.algorithms);
  w.StrVec("datasets", c.datasets);
  w.U64Vec("scales", c.scales);
  w.U64Vec("domain_sizes",
           std::vector<uint64_t>(c.domain_sizes.begin(),
                                 c.domain_sizes.end()));
  w.F64Vec("epsilons", c.epsilons);
  w.U64("workload", static_cast<uint64_t>(c.workload));
  w.U64("random_queries", c.random_queries);
  w.U64("data_samples", c.data_samples);
  w.U64("runs_per_sample", c.runs_per_sample);
  w.U64("seed", c.seed);
  w.U64("provide_true_scale", c.provide_true_scale ? 1 : 0);
  w.U64("retain_raw_errors", c.retain_raw_errors ? 1 : 0);
  return std::move(w).Finish();
}

Result<ExperimentConfig> ConfigFromRecord(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(bytes));
  ExperimentConfig c;
  DPB_ASSIGN_OR_RETURN(c.algorithms, rec.StrVec("algorithms"));
  DPB_ASSIGN_OR_RETURN(c.datasets, rec.StrVec("datasets"));
  DPB_ASSIGN_OR_RETURN(c.scales, rec.U64Vec("scales"));
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> domains,
                       rec.U64Vec("domain_sizes"));
  c.domain_sizes.assign(domains.begin(), domains.end());
  DPB_ASSIGN_OR_RETURN(c.epsilons, rec.F64Vec("epsilons"));
  DPB_ASSIGN_OR_RETURN(uint64_t workload, rec.U64("workload"));
  if (workload > static_cast<uint64_t>(WorkloadKind::kIdentity)) {
    return Status::InvalidArgument(
        "serialized config has unknown workload kind");
  }
  c.workload = static_cast<WorkloadKind>(workload);
  DPB_ASSIGN_OR_RETURN(uint64_t random_queries, rec.U64("random_queries"));
  c.random_queries = static_cast<size_t>(random_queries);
  DPB_ASSIGN_OR_RETURN(uint64_t data_samples, rec.U64("data_samples"));
  c.data_samples = static_cast<size_t>(data_samples);
  DPB_ASSIGN_OR_RETURN(uint64_t runs, rec.U64("runs_per_sample"));
  c.runs_per_sample = static_cast<size_t>(runs);
  DPB_ASSIGN_OR_RETURN(c.seed, rec.U64("seed"));
  DPB_ASSIGN_OR_RETURN(uint64_t true_scale, rec.U64("provide_true_scale"));
  c.provide_true_scale = true_scale != 0;
  DPB_ASSIGN_OR_RETURN(uint64_t retain, rec.U64("retain_raw_errors"));
  c.retain_raw_errors = retain != 0;
  return c;
}

// Envelope kinds.
constexpr char kKindCellResult[] = "dpbench.cell_result";
constexpr char kKindStreamingSummary[] = "dpbench.streaming_summary";
constexpr char kKindRunDiagnostics[] = "dpbench.run_diagnostics";
constexpr char kKindPlanPayload[] = "dpbench.plan_payload";
constexpr char kKindShard[] = "dpbench.shard";
constexpr char kKindPlanCache[] = "dpbench.plan_cache";
constexpr char kKindLedger[] = "dpbench.ledger";
constexpr char kKindCheckpoint[] = "dpbench.checkpoint";

// Section names. Single-record artifacts live in one "body" section; the
// multi-part file formats split into sections along their natural seams so
// checksum errors localize the damage (and a reader could skip sections it
// does not need).
constexpr char kSectionBody[] = "body";
constexpr char kSectionManifest[] = "manifest";
constexpr char kSectionCells[] = "cells";
constexpr char kSectionDiagnostics[] = "diagnostics";
constexpr char kSectionWorkload[] = "workload";
constexpr char kSectionPlans[] = "plans";
constexpr char kSectionLedger[] = "ledger";
constexpr char kSectionTasks[] = "tasks";

std::string WrapSingle(const std::string& kind, std::string record) {
  std::vector<wire::Section> sections;
  sections.push_back({kSectionBody, std::move(record)});
  return wire::WrapEnvelope(kind, std::move(sections));
}

// Unwraps (verifying checksums), checks the kind, and returns the body
// section of a single-record artifact.
Result<std::string> UnwrapSingle(const std::string& bytes,
                                 const std::string& expected_kind) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != expected_kind) {
    return Status::InvalidArgument("serialized artifact is a '" + env.kind +
                                   "', expected '" + expected_kind + "'");
  }
  return env.Take(kSectionBody);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public standalone artifacts.
// ---------------------------------------------------------------------------

std::string EncodeCellResult(const CellResult& cell) {
  return WrapSingle(kKindCellResult, CellResultRecord(cell));
}

Result<CellResult> DecodeCellResult(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(std::string body,
                       UnwrapSingle(bytes, kKindCellResult));
  return CellResultFromRecord(body);
}

std::string EncodeStreamingSummary(const StreamingSummary& summary) {
  return WrapSingle(kKindStreamingSummary, StreamingSummaryRecord(summary));
}

Result<StreamingSummary> DecodeStreamingSummary(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(std::string body,
                       UnwrapSingle(bytes, kKindStreamingSummary));
  return StreamingSummaryFromRecord(body);
}

std::string EncodeRunDiagnostics(const RunDiagnostics& diagnostics) {
  return WrapSingle(kKindRunDiagnostics, RunDiagnosticsRecord(diagnostics));
}

Result<RunDiagnostics> DecodeRunDiagnostics(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(std::string body,
                       UnwrapSingle(bytes, kKindRunDiagnostics));
  return RunDiagnosticsFromRecord(body);
}

std::string EncodePlanPayload(const PlanPayload& payload) {
  return WrapSingle(kKindPlanPayload, PlanPayloadRecord(payload));
}

Result<PlanPayload> DecodePlanPayload(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(std::string body,
                       UnwrapSingle(bytes, kKindPlanPayload));
  return PlanPayloadFromRecord(body);
}

// ---------------------------------------------------------------------------
// Shard files.
// ---------------------------------------------------------------------------

std::string ConfigFingerprint(const ExperimentConfig& config) {
  return ConfigRecord(config);
}

std::string EncodeExperimentConfigRecord(const ExperimentConfig& config) {
  return ConfigRecord(config);
}

Result<ExperimentConfig> DecodeExperimentConfigRecord(
    const std::string& bytes) {
  return ConfigFromRecord(bytes);
}

std::string EncodeShardFile(const ShardFile& shard) {
  RecordWriter manifest;
  manifest.U64("shard_index", shard.shard_index);
  manifest.U64("shard_count", shard.shard_count);
  manifest.U64("total_cells", shard.total_cells);
  manifest.Rec("config", ConfigRecord(shard.config));

  RecordWriter cells;
  std::vector<std::string> cell_records;
  cell_records.reserve(shard.cells.size());
  for (const CellResult& cell : shard.cells) {
    cell_records.push_back(CellResultRecord(cell));
  }
  cells.RecVec("cells", cell_records);

  std::vector<wire::Section> sections;
  sections.push_back({kSectionManifest, std::move(manifest).Finish()});
  sections.push_back({kSectionCells, std::move(cells).Finish()});
  sections.push_back(
      {kSectionDiagnostics, RunDiagnosticsRecord(shard.diagnostics)});
  return wire::WrapEnvelope(kKindShard, std::move(sections));
}

Result<ShardFile> DecodeShardFile(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != kKindShard) {
    return Status::InvalidArgument("serialized artifact is a '" + env.kind +
                                   "', expected '" + kKindShard + "'");
  }
  ShardFile shard;
  DPB_ASSIGN_OR_RETURN(std::string manifest_bytes,
                       env.Take(kSectionManifest));
  DPB_ASSIGN_OR_RETURN(Record manifest, Record::Parse(manifest_bytes));
  DPB_ASSIGN_OR_RETURN(shard.shard_index, manifest.U64("shard_index"));
  DPB_ASSIGN_OR_RETURN(shard.shard_count, manifest.U64("shard_count"));
  DPB_ASSIGN_OR_RETURN(shard.total_cells, manifest.U64("total_cells"));
  DPB_ASSIGN_OR_RETURN(std::string config_rec, manifest.Rec("config"));
  DPB_ASSIGN_OR_RETURN(shard.config, ConfigFromRecord(config_rec));

  DPB_ASSIGN_OR_RETURN(std::string cells_bytes, env.Take(kSectionCells));
  DPB_ASSIGN_OR_RETURN(Record cells_rec, Record::Parse(cells_bytes));
  DPB_ASSIGN_OR_RETURN(std::vector<std::string> cells,
                       cells_rec.TakeRecVec("cells"));
  shard.cells.reserve(cells.size());
  for (const std::string& cell_rec : cells) {
    DPB_ASSIGN_OR_RETURN(CellResult cell, CellResultFromRecord(cell_rec));
    shard.cells.push_back(std::move(cell));
  }

  DPB_ASSIGN_OR_RETURN(std::string diag_bytes,
                       env.Take(kSectionDiagnostics));
  DPB_ASSIGN_OR_RETURN(shard.diagnostics,
                       RunDiagnosticsFromRecord(diag_bytes));
  if (shard.shard_count == 0 || shard.shard_index >= shard.shard_count) {
    return Status::InvalidArgument(
        "shard file has inconsistent shard indexing (shard " +
        std::to_string(shard.shard_index) + " of " +
        std::to_string(shard.shard_count) + ")");
  }
  return shard;
}

// ---------------------------------------------------------------------------
// Plan-cache files.
// ---------------------------------------------------------------------------

std::string EncodePlanCacheFile(const PlanStore& store,
                                const ExperimentConfig& config) {
  // The query count and seed shape the workload only for random2d; they
  // are normalized to 0 otherwise so caches stay reusable across runs
  // that differ only in irrelevant fields.
  bool random2d = config.workload == WorkloadKind::kRandomRange2D;
  RecordWriter workload;
  workload.U64("workload", static_cast<uint64_t>(config.workload));
  workload.U64("random_queries", random2d ? config.random_queries : 0);
  workload.U64("workload_seed", random2d ? config.seed : 0);

  RecordWriter plans;
  std::vector<std::string> keys;
  std::vector<std::string> payloads;
  keys.reserve(store.plans.size());
  payloads.reserve(store.plans.size());
  for (const auto& [key, payload] : store.plans) {
    keys.push_back(key);
    payloads.push_back(PlanPayloadRecord(payload));
  }
  plans.StrVec("keys", keys);
  plans.RecVec("payloads", payloads);

  std::vector<wire::Section> sections;
  sections.push_back({kSectionWorkload, std::move(workload).Finish()});
  sections.push_back({kSectionPlans, std::move(plans).Finish()});
  return wire::WrapEnvelope(kKindPlanCache, std::move(sections));
}

Result<PlanStore> DecodePlanCacheFileRaw(const std::string& bytes,
                                         PlanCacheIdentity* identity) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != kKindPlanCache) {
    return Status::InvalidArgument("serialized artifact is a '" + env.kind +
                                   "', expected '" + kKindPlanCache + "'");
  }
  DPB_ASSIGN_OR_RETURN(std::string workload_bytes,
                       env.Take(kSectionWorkload));
  DPB_ASSIGN_OR_RETURN(Record workload_rec, Record::Parse(workload_bytes));
  DPB_ASSIGN_OR_RETURN(uint64_t workload, workload_rec.U64("workload"));
  if (workload > static_cast<uint64_t>(WorkloadKind::kIdentity)) {
    return Status::InvalidArgument(
        "plan-cache file has unknown workload kind");
  }
  identity->workload = static_cast<WorkloadKind>(workload);
  DPB_ASSIGN_OR_RETURN(identity->random_queries,
                       workload_rec.U64("random_queries"));
  DPB_ASSIGN_OR_RETURN(identity->workload_seed,
                       workload_rec.U64("workload_seed"));
  DPB_ASSIGN_OR_RETURN(std::string plans_bytes, env.Take(kSectionPlans));
  DPB_ASSIGN_OR_RETURN(Record plans_rec, Record::Parse(plans_bytes));
  DPB_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                       plans_rec.StrVec("keys"));
  DPB_ASSIGN_OR_RETURN(std::vector<std::string> payloads,
                       plans_rec.TakeRecVec("payloads"));
  if (keys.size() != payloads.size()) {
    return Status::InvalidArgument(
        "plan-cache file has mismatched key/payload arities");
  }
  PlanStore store;
  for (size_t i = 0; i < keys.size(); ++i) {
    DPB_ASSIGN_OR_RETURN(PlanPayload payload,
                         PlanPayloadFromRecord(payloads[i]));
    if (!store.plans.emplace(keys[i], std::move(payload)).second) {
      return Status::InvalidArgument(
          "plan-cache file has duplicate plan key '" + keys[i] + "'");
    }
  }
  return store;
}

Result<PlanStore> DecodePlanCacheFile(const std::string& bytes,
                                      const ExperimentConfig& config) {
  // Workload identity check: plans of workload-aware mechanisms are only
  // valid for the exact workload they were planned against. The plan keys
  // (algo|domain|eps) deliberately omit it, so the file carries it.
  PlanCacheIdentity identity;
  DPB_ASSIGN_OR_RETURN(PlanStore store,
                       DecodePlanCacheFileRaw(bytes, &identity));
  bool random2d = config.workload == WorkloadKind::kRandomRange2D;
  if (identity.workload != config.workload ||
      identity.random_queries != (random2d ? config.random_queries : 0) ||
      identity.workload_seed != (random2d ? config.seed : 0)) {
    return Status::InvalidArgument(
        "plan cache was built for a different workload than this run's "
        "config");
  }
  return store;
}

// ---------------------------------------------------------------------------
// Ledger files.
// ---------------------------------------------------------------------------

std::string EncodeLedgerFile(const std::vector<LedgerEntry>& entries,
                             uint64_t journal_seq) {
  RecordWriter body;
  body.U64("entries", entries.size());
  body.U64("journal_seq", journal_seq);
  std::vector<std::string> records;
  records.reserve(entries.size());
  for (const LedgerEntry& e : entries) {
    RecordWriter w;
    w.Str("user", e.user);
    w.Str("dataset", e.dataset);
    w.F64("budget", e.budget);
    w.F64("spent", e.spent);
    w.U64("queries", e.queries);
    records.push_back(std::move(w).Finish());
  }
  body.RecVec("ledgers", records);
  std::vector<wire::Section> sections;
  sections.push_back({kSectionLedger, std::move(body).Finish()});
  return wire::WrapEnvelope(kKindLedger, std::move(sections));
}

Result<LedgerFile> DecodeLedgerFile(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != kKindLedger) {
    return Status::InvalidArgument("serialized artifact is a '" + env.kind +
                                   "', expected '" + kKindLedger + "'");
  }
  DPB_ASSIGN_OR_RETURN(std::string body_bytes, env.Take(kSectionLedger));
  DPB_ASSIGN_OR_RETURN(Record body, Record::Parse(body_bytes));
  DPB_ASSIGN_OR_RETURN(uint64_t count, body.U64("entries"));
  LedgerFile file;
  // Pre-journal snapshots lack the field; they fold nothing, seq 0.
  if (auto seq = body.U64("journal_seq"); seq.ok()) {
    file.journal_seq = *seq;
  }
  DPB_ASSIGN_OR_RETURN(std::vector<std::string> records,
                       body.TakeRecVec("ledgers"));
  if (records.size() != count) {
    return Status::InvalidArgument(
        "ledger file declares " + std::to_string(count) +
        " entries but carries " + std::to_string(records.size()));
  }
  file.entries.reserve(records.size());
  std::set<std::pair<std::string, std::string>> seen;
  for (const std::string& rec_bytes : records) {
    DPB_ASSIGN_OR_RETURN(Record rec, Record::Parse(rec_bytes));
    LedgerEntry e;
    DPB_ASSIGN_OR_RETURN(e.user, rec.Str("user"));
    DPB_ASSIGN_OR_RETURN(e.dataset, rec.Str("dataset"));
    DPB_ASSIGN_OR_RETURN(e.budget, rec.F64("budget"));
    DPB_ASSIGN_OR_RETURN(e.spent, rec.F64("spent"));
    DPB_ASSIGN_OR_RETURN(e.queries, rec.U64("queries"));
    if (!seen.emplace(e.user, e.dataset).second) {
      // Last-write-wins here could silently resurrect spent budget.
      return Status::InvalidArgument(
          "duplicate ledger entry: (user '" + e.user + "', dataset '" +
          e.dataset + "') appears more than once in the ledger file");
    }
    file.entries.push_back(std::move(e));
  }
  return file;
}

// ---------------------------------------------------------------------------
// Charge journal.
// ---------------------------------------------------------------------------

const char* JournalOutcomeName(JournalOutcome outcome) {
  switch (outcome) {
    case JournalOutcome::kGrant: return "grant";
    case JournalOutcome::kRefusal: return "refusal";
    case JournalOutcome::kRollback: return "rollback";
  }
  return "unknown";
}

namespace {

// Per-record frame: magic | u32 payload_len | u32 CRC32C(payload) | payload.
constexpr char kJournalMagic[4] = {'D', 'P', 'B', 'J'};
constexpr size_t kJournalFrameHeader = 12;
// No admission decision is remotely this large; a bigger declared length
// is either a torn tail or corruption, never a real record.
constexpr uint32_t kMaxJournalRecordBytes = 1u << 20;

uint32_t LoadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void StoreU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

}  // namespace

std::string EncodeJournalRecord(const JournalRecord& record) {
  RecordWriter w;
  w.U64("seq", record.seq);
  w.U64("outcome", static_cast<uint64_t>(record.outcome));
  w.Str("user", record.user);
  w.Str("dataset", record.dataset);
  w.F64("epsilon", record.epsilon);
  w.U64("ordinal", record.ordinal);
  w.F64("budget", record.budget);
  w.F64("spent_after", record.spent_after);
  w.U64("existed", record.existed);
  std::string payload = std::move(w).Finish();
  std::string out;
  out.reserve(kJournalFrameHeader + payload.size());
  out.append(kJournalMagic, sizeof(kJournalMagic));
  StoreU32Le(static_cast<uint32_t>(payload.size()), &out);
  StoreU32Le(Crc32c(payload), &out);
  out += payload;
  return out;
}

Result<Journal> DecodeJournal(const std::string& bytes) {
  Journal journal;
  size_t off = 0;
  size_t index = 0;
  uint64_t prev_seq = 0;
  while (off < bytes.size()) {
    size_t remaining = bytes.size() - off;
    if (remaining < kJournalFrameHeader) {
      // kill -9 mid-append: the frame header itself is torn.
      journal.dropped_tail_bytes = remaining;
      break;
    }
    if (std::memcmp(bytes.data() + off, kJournalMagic,
                    sizeof(kJournalMagic)) != 0) {
      return Status::DataLoss(
          "journal record " + std::to_string(index) +
          " does not start with the DPBJ magic (corrupt journal)");
    }
    uint32_t len = LoadU32Le(bytes.data() + off + 4);
    uint32_t crc = LoadU32Le(bytes.data() + off + 8);
    if (len > kMaxJournalRecordBytes || kJournalFrameHeader + len > remaining) {
      // The declared payload runs past EOF: a torn tail if this really is
      // the last append, corruption if bytes follow. With an over-long
      // (garbage) length we cannot distinguish the two — tolerate only
      // when nothing but this frame remains.
      if (len <= kMaxJournalRecordBytes ||
          remaining <= kJournalFrameHeader + kMaxJournalRecordBytes) {
        journal.dropped_tail_bytes = remaining;
        break;
      }
      return Status::DataLoss("journal record " + std::to_string(index) +
                              " declares an impossible length " +
                              std::to_string(len));
    }
    const char* payload = bytes.data() + off + kJournalFrameHeader;
    bool last = off + kJournalFrameHeader + len == bytes.size();
    if (Crc32c(static_cast<const void*>(payload), len) != crc) {
      if (last) {
        // Torn final record: the append never completed, the decision it
        // described never became durable. Drop it.
        journal.dropped_tail_bytes = remaining;
        break;
      }
      return Status::DataLoss("journal record " + std::to_string(index) +
                              " fails its checksum before the journal tail "
                              "(corrupt journal)");
    }
    DPB_ASSIGN_OR_RETURN(Record rec,
                         Record::Parse(std::string(payload, len)));
    JournalRecord r;
    DPB_ASSIGN_OR_RETURN(r.seq, rec.U64("seq"));
    DPB_ASSIGN_OR_RETURN(uint64_t outcome, rec.U64("outcome"));
    if (outcome > static_cast<uint64_t>(JournalOutcome::kRollback)) {
      return Status::InvalidArgument("journal record " +
                                     std::to_string(index) +
                                     " has unknown outcome " +
                                     std::to_string(outcome));
    }
    r.outcome = static_cast<JournalOutcome>(outcome);
    DPB_ASSIGN_OR_RETURN(r.user, rec.Str("user"));
    DPB_ASSIGN_OR_RETURN(r.dataset, rec.Str("dataset"));
    DPB_ASSIGN_OR_RETURN(r.epsilon, rec.F64("epsilon"));
    DPB_ASSIGN_OR_RETURN(r.ordinal, rec.U64("ordinal"));
    DPB_ASSIGN_OR_RETURN(r.budget, rec.F64("budget"));
    DPB_ASSIGN_OR_RETURN(r.spent_after, rec.F64("spent_after"));
    DPB_ASSIGN_OR_RETURN(r.existed, rec.U64("existed"));
    if (index > 0 && r.seq <= prev_seq) {
      return Status::InvalidArgument(
          "journal sequence regressed at record " + std::to_string(index) +
          ": seq " + std::to_string(r.seq) + " after " +
          std::to_string(prev_seq) +
          " (spliced or rewritten journal; refusing to replay)");
    }
    prev_seq = r.seq;
    journal.records.push_back(std::move(r));
    off += kJournalFrameHeader + len;
    ++index;
  }
  return journal;
}

// ---------------------------------------------------------------------------
// Coordinator checkpoint files.
// ---------------------------------------------------------------------------

std::string EncodeCheckpointFile(const CheckpointFile& checkpoint) {
  RecordWriter manifest;
  manifest.U64("num_tasks", checkpoint.num_tasks);
  manifest.Rec("config", ConfigRecord(checkpoint.config));
  manifest.U64("completed", checkpoint.task_indices.size());

  RecordWriter tasks;
  tasks.U64Vec("indices", checkpoint.task_indices);
  tasks.StrVec("images", checkpoint.shard_images);

  std::vector<wire::Section> sections;
  sections.push_back({kSectionManifest, std::move(manifest).Finish()});
  sections.push_back({kSectionTasks, std::move(tasks).Finish()});
  return wire::WrapEnvelope(kKindCheckpoint, std::move(sections));
}

Result<CheckpointFile> DecodeCheckpointFile(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != kKindCheckpoint) {
    return Status::InvalidArgument("serialized artifact is a '" + env.kind +
                                   "', expected '" + kKindCheckpoint + "'");
  }
  CheckpointFile ckpt;
  DPB_ASSIGN_OR_RETURN(std::string manifest_bytes,
                       env.Take(kSectionManifest));
  DPB_ASSIGN_OR_RETURN(Record manifest, Record::Parse(manifest_bytes));
  DPB_ASSIGN_OR_RETURN(ckpt.num_tasks, manifest.U64("num_tasks"));
  DPB_ASSIGN_OR_RETURN(std::string config_rec, manifest.Rec("config"));
  DPB_ASSIGN_OR_RETURN(ckpt.config, ConfigFromRecord(config_rec));
  DPB_ASSIGN_OR_RETURN(uint64_t completed, manifest.U64("completed"));

  DPB_ASSIGN_OR_RETURN(std::string tasks_bytes, env.Take(kSectionTasks));
  DPB_ASSIGN_OR_RETURN(Record tasks, Record::Parse(tasks_bytes));
  DPB_ASSIGN_OR_RETURN(ckpt.task_indices, tasks.U64Vec("indices"));
  DPB_ASSIGN_OR_RETURN(ckpt.shard_images, tasks.StrVec("images"));
  if (ckpt.num_tasks == 0) {
    return Status::InvalidArgument("checkpoint declares zero tasks");
  }
  if (ckpt.task_indices.size() != ckpt.shard_images.size() ||
      ckpt.task_indices.size() != completed) {
    return Status::InvalidArgument(
        "checkpoint declares " + std::to_string(completed) +
        " completed tasks but carries " +
        std::to_string(ckpt.task_indices.size()) + " indices and " +
        std::to_string(ckpt.shard_images.size()) + " shard images");
  }
  std::set<uint64_t> seen;
  for (uint64_t index : ckpt.task_indices) {
    if (index >= ckpt.num_tasks) {
      return Status::InvalidArgument(
          "checkpoint lists completed task " + std::to_string(index) +
          " outside its partition of " + std::to_string(ckpt.num_tasks) +
          " tasks");
    }
    if (!seen.insert(index).second) {
      return Status::InvalidArgument(
          "duplicate checkpoint entry: task " + std::to_string(index) +
          " appears more than once (checkpoint was not written by one "
          "coordinator run)");
    }
  }
  return ckpt;
}

// ---------------------------------------------------------------------------
// Merge.
// ---------------------------------------------------------------------------

Result<MergedRun> MergeShards(std::vector<ShardFile> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("no shard files to merge");
  }
  // shard_count and total_cells come from the files, so they are bounded
  // by set-based bookkeeping (never by allocating or looping over the
  // claimed counts): a corrupt header must fail with a precise error,
  // not crash the merge on a 2^60-element reservation.
  const ShardFile& first = shards.front();
  const std::string fingerprint = ConfigRecord(first.config);
  std::set<uint64_t> shard_seen;
  for (const ShardFile& shard : shards) {
    if (shard.shard_count != first.shard_count) {
      return Status::FailedPrecondition(
          "shard manifest mismatch: shard " +
          std::to_string(shard.shard_index) + " was run as 1 of " +
          std::to_string(shard.shard_count) + ", expected 1 of " +
          std::to_string(first.shard_count));
    }
    if (shard.shard_count == 0 || shard.shard_index >= shard.shard_count) {
      return Status::InvalidArgument(
          "shard file has inconsistent shard indexing (shard " +
          std::to_string(shard.shard_index) + " of " +
          std::to_string(shard.shard_count) + ")");
    }
    if (shard.total_cells != first.total_cells) {
      return Status::FailedPrecondition(
          "shard manifest mismatch: shards disagree on the full grid size");
    }
    if (ConfigRecord(shard.config) != fingerprint) {
      return Status::FailedPrecondition(
          "shard manifest mismatch: shard " +
          std::to_string(shard.shard_index) +
          " was run with a different experiment config");
    }
    if (!shard_seen.insert(shard.shard_index).second) {
      return Status::InvalidArgument(
          "overlapping shards: shard " + std::to_string(shard.shard_index) +
          " supplied more than once");
    }
  }
  if (shard_seen.size() < first.shard_count) {
    // The smallest missing index is at most the number of distinct
    // indices present, so this scan is bounded by the input size.
    uint64_t missing = 0;
    while (shard_seen.count(missing)) ++missing;
    return Status::NotFound(
        "shard gap: shard " + std::to_string(missing) + " of " +
        std::to_string(first.shard_count) + " is missing");
  }

  size_t supplied_cells = 0;
  for (const ShardFile& shard : shards) {
    supplied_cells += shard.cells.size();
  }
  MergedRun merged;
  merged.config = first.config;
  merged.cells.reserve(supplied_cells);
  std::set<uint64_t> cell_seen;
  for (ShardFile& shard : shards) {
    for (CellResult& cell : shard.cells) {
      if (cell.grid_index >= first.total_cells) {
        return Status::InvalidArgument(
            "cell " + cell.key.ToString() + " has grid index " +
            std::to_string(cell.grid_index) + " outside the grid of " +
            std::to_string(first.total_cells) + " cells");
      }
      if (cell.grid_index % shard.shard_count != shard.shard_index) {
        return Status::InvalidArgument(
            "cell " + cell.key.ToString() + " (grid index " +
            std::to_string(cell.grid_index) + ") does not belong to shard " +
            std::to_string(shard.shard_index));
      }
      if (!cell_seen.insert(cell.grid_index).second) {
        return Status::InvalidArgument(
            "duplicate cell: grid index " +
            std::to_string(cell.grid_index) + " (" + cell.key.ToString() +
            ") appears more than once");
      }
      merged.cells.push_back(std::move(cell));
    }
  }
  if (cell_seen.size() < first.total_cells) {
    uint64_t missing = 0;
    while (cell_seen.count(missing)) ++missing;
    return Status::NotFound(
        "missing cell: grid index " + std::to_string(missing) +
        " was produced by no shard");
  }
  std::sort(merged.cells.begin(), merged.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.grid_index < b.grid_index;
            });

  // Aggregate diagnostics: counters sum; the wall-clock fields become
  // total CPU-seconds across shards; skipped combos are identical in every
  // shard (skips are detected over the full grid), take the first's.
  RunDiagnostics& d = merged.diagnostics;
  d.skipped = std::move(shards.front().diagnostics.skipped);
  d.grid_cells = static_cast<size_t>(first.total_cells);
  // Lockstep identity: uniform across shards it passes through; shards
  // run on different machines (or forced tiers) report "mixed"/0 — the
  // trial counters still sum meaningfully either way.
  d.isa_tier = shards.front().diagnostics.isa_tier;
  d.lane_width = shards.front().diagnostics.lane_width;
  double traffic_bytes = 0.0;
  for (const ShardFile& shard : shards) {
    const RunDiagnostics& sd = shard.diagnostics;
    d.cells += sd.cells;
    d.trials += sd.trials;
    d.plans_built += sd.plans_built;
    d.plans_hydrated += sd.plans_hydrated;
    d.plan_cache_hits += sd.plan_cache_hits;
    d.plan_seconds += sd.plan_seconds;
    d.execute_seconds += sd.execute_seconds;
    d.pool_parallel_jobs += sd.pool_parallel_jobs;
    d.pool_tasks_executed += sd.pool_tasks_executed;
    d.pool_tasks_stolen += sd.pool_tasks_stolen;
    d.pool_tasks_stolen_remote += sd.pool_tasks_stolen_remote;
    d.lockstep_trials += sd.lockstep_trials;
    d.scalar_trials += sd.scalar_trials;
    // NUMA shape: shards run on different machines, so take the widest
    // node count seen and sum worker counts elementwise (node_workers
    // then reads as total workers that ran at each node index).
    d.numa_nodes = std::max(d.numa_nodes, sd.numa_nodes);
    if (sd.node_workers.size() > d.node_workers.size()) {
      d.node_workers.resize(sd.node_workers.size(), 0);
    }
    for (size_t n = 0; n < sd.node_workers.size(); ++n) {
      d.node_workers[n] += sd.node_workers[n];
    }
    traffic_bytes += sd.bytes_per_trial * static_cast<double>(sd.trials);
    if (sd.isa_tier != d.isa_tier) d.isa_tier = "mixed";
    if (sd.lane_width != d.lane_width) d.lane_width = 0;
  }
  d.trials_per_second =
      d.execute_seconds > 0.0
          ? static_cast<double>(d.trials) / d.execute_seconds
          : 0.0;
  // Trial-weighted mean: shards cover different cells, so their per-trial
  // traffic differs legitimately.
  d.bytes_per_trial =
      d.trials > 0 ? traffic_bytes / static_cast<double>(d.trials) : 0.0;
  return merged;
}

// ---------------------------------------------------------------------------
// JSON debug rendering.
// ---------------------------------------------------------------------------

namespace {

void JsonEscape(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void JsonDouble(double v, std::string* out) {
  if (!std::isfinite(v)) {
    // JSON has no literals for these; render as strings in the debug form.
    *out += v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  *out += os.str();
}

std::string Indent(int depth) { return std::string(2 * depth, ' '); }

// Nesting bound for the JSON renderer: file-supplied structure must not
// be able to drive unbounded recursion (stack overflow) — no legitimate
// artifact nests anywhere near this deep.
constexpr int kMaxJsonDepth = 64;

Status JsonRecord(const std::string& record_bytes, int depth,
                  std::string* out);

Status JsonValue(const wire::FieldValue& v, int depth, std::string* out) {
  switch (v.type) {
    case wire::kU64:
      *out += std::to_string(v.u64);
      return Status::OK();
    case wire::kF64:
      JsonDouble(wire::DoubleFromBits(v.u64), out);
      return Status::OK();
    case wire::kStr:
      JsonEscape(v.str, out);
      return Status::OK();
    case wire::kU64Vec: {
      *out += "[";
      for (size_t i = 0; i < v.u64_vec.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += std::to_string(v.u64_vec[i]);
      }
      *out += "]";
      return Status::OK();
    }
    case wire::kF64Vec: {
      *out += "[";
      for (size_t i = 0; i < v.u64_vec.size(); ++i) {
        if (i > 0) *out += ", ";
        JsonDouble(wire::DoubleFromBits(v.u64_vec[i]), out);
      }
      *out += "]";
      return Status::OK();
    }
    case wire::kStrVec: {
      *out += "[";
      for (size_t i = 0; i < v.str_vec.size(); ++i) {
        if (i > 0) *out += ", ";
        JsonEscape(v.str_vec[i], out);
      }
      *out += "]";
      return Status::OK();
    }
    case wire::kRec:
      return JsonRecord(v.str, depth, out);
    case wire::kRecVec: {
      if (v.str_vec.empty()) {
        *out += "[]";
        return Status::OK();
      }
      *out += "[\n";
      for (size_t i = 0; i < v.str_vec.size(); ++i) {
        *out += Indent(depth + 1);
        DPB_RETURN_NOT_OK(JsonRecord(v.str_vec[i], depth + 1, out));
        if (i + 1 < v.str_vec.size()) *out += ",";
        *out += "\n";
      }
      *out += Indent(depth) + "]";
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown field type in JSON rendering");
}

Status JsonRecord(const std::string& record_bytes, int depth,
                  std::string* out) {
  if (depth > kMaxJsonDepth) {
    return Status::InvalidArgument(
        "serialized record nests deeper than " +
        std::to_string(kMaxJsonDepth) + " levels (corrupt or hostile file)");
  }
  DPB_ASSIGN_OR_RETURN(wire::Record rec, wire::Record::Parse(record_bytes));
  if (rec.fields().empty()) {
    *out += "{}";
    return Status::OK();
  }
  *out += "{\n";
  size_t i = 0;
  for (const auto& [name, value] : rec.fields()) {
    *out += Indent(depth + 1);
    JsonEscape(name, out);
    *out += ": ";
    DPB_RETURN_NOT_OK(JsonValue(value, depth + 1, out));
    if (++i < rec.fields().size()) *out += ",";
    *out += "\n";
  }
  *out += Indent(depth) + "}";
  return Status::OK();
}

}  // namespace

Result<std::string> DebugJson(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  std::string out = "{\n  \"kind\": ";
  JsonEscape(env.kind, &out);
  out += ",\n  \"format_version\": " +
         std::to_string(kSerializeFormatVersion) + ",\n  \"sections\": {";
  for (size_t i = 0; i < env.sections.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += Indent(2);
    JsonEscape(env.sections[i].name, &out);
    out += ": ";
    DPB_RETURN_NOT_OK(JsonRecord(env.sections[i].bytes, 2, &out));
  }
  out += "\n  }\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// File IO.
// ---------------------------------------------------------------------------

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status AppendFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  if (!os) {
    return Status::NotFound("cannot open '" + path + "' for appending");
  }
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os) {
    return Status::Internal("short append to '" + path + "'");
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) {
    return Status::Internal("read error on '" + path + "'");
  }
  return buf.str();
}

}  // namespace dpbench
