// Synthetic microdata release: convert a private histogram estimate into
// individual records.
//
// The census scenario that motivates the paper (§1) usually ends in a
// microdata file, not a histogram. Because differential privacy is closed
// under post-processing, sampling records from the released estimate is
// free: the records carry exactly the privacy guarantee of the estimate.
#ifndef DPBENCH_ENGINE_SYNTHETIC_H_
#define DPBENCH_ENGINE_SYNTHETIC_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/histogram/data_vector.h"

namespace dpbench {

/// A synthetic record: one multi-index into the domain per tuple.
using SyntheticRecord = std::vector<size_t>;

/// Draws `count` records i.i.d. from the (clamped, normalized) estimate.
/// Pass count == 0 to draw round(max(Scale, 0)) records — the natural
/// choice matching the released total.
Result<std::vector<SyntheticRecord>> SampleSyntheticRecords(
    const DataVector& estimate, size_t count, Rng* rng);

/// Rebuilds the histogram of a record set on a domain (inverse of the
/// sampler; useful for verifying round trips and for re-aggregation).
Result<DataVector> HistogramOfRecords(
    const std::vector<SyntheticRecord>& records, const Domain& domain);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_SYNTHETIC_H_
