#include "src/engine/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/math.h"

namespace dpbench {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  DPB_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double v) {
  std::ostringstream os;
  if (v == 0.0) {
    os << "0";
  } else if (std::abs(v) >= 0.01 && std::abs(v) < 10000.0) {
    os << std::fixed << std::setprecision(4) << v;
  } else {
    os << std::scientific << std::setprecision(3) << v;
  }
  return os.str();
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void WriteCsv(const std::vector<CellResult>& results, std::ostream& os) {
  os << "algorithm,dataset,scale,domain,epsilon,trials,mean_error,"
        "stddev,p95\n";
  for (const CellResult& cell : results) {
    os << cell.key.algorithm << "," << cell.key.dataset << ","
       << cell.key.scale << "," << cell.key.domain_size << ","
       << cell.key.epsilon << "," << cell.summary.trials << ","
       << cell.summary.mean << "," << cell.summary.stddev << ","
       << cell.summary.p95 << "\n";
  }
}

Result<std::vector<CellResult>> ReadCsv(std::istream& is) {
  std::vector<CellResult> out;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      if (line.rfind("algorithm,", 0) != 0) {
        return Status::InvalidArgument("missing CSV header");
      }
      saw_header = true;
      continue;
    }
    std::stringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 9) {
      return Status::InvalidArgument("malformed CSV row: " + line);
    }
    try {
      CellResult cell;
      cell.key.algorithm = fields[0];
      cell.key.dataset = fields[1];
      cell.key.scale = std::stoull(fields[2]);
      cell.key.domain_size = std::stoul(fields[3]);
      cell.key.epsilon = std::stod(fields[4]);
      cell.summary.trials = std::stoul(fields[5]);
      cell.summary.mean = std::stod(fields[6]);
      cell.summary.stddev = std::stod(fields[7]);
      cell.summary.p95 = std::stod(fields[8]);
      out.push_back(std::move(cell));
    } catch (const std::exception&) {
      return Status::InvalidArgument("malformed CSV row: " + line);
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty CSV");
  }
  return out;
}

Result<std::map<std::string, double>> ComputeRegret(
    const std::map<std::string, std::map<std::string, double>>&
        mean_error_by_setting) {
  if (mean_error_by_setting.empty()) {
    return Status::InvalidArgument("no settings");
  }
  // Algorithms present in every setting.
  std::map<std::string, size_t> presence;
  for (const auto& [setting, by_algo] : mean_error_by_setting) {
    for (const auto& [algo, err] : by_algo) {
      (void)err;
      presence[algo]++;
    }
  }
  size_t num_settings = mean_error_by_setting.size();
  std::map<std::string, std::vector<double>> ratios;
  for (const auto& [setting, by_algo] : mean_error_by_setting) {
    double oracle = std::numeric_limits<double>::infinity();
    for (const auto& [algo, err] : by_algo) {
      if (presence[algo] == num_settings) oracle = std::min(oracle, err);
    }
    if (!std::isfinite(oracle) || oracle <= 0.0) {
      return Status::InvalidArgument("setting with no positive oracle error");
    }
    for (const auto& [algo, err] : by_algo) {
      if (presence[algo] == num_settings) {
        ratios[algo].push_back(err / oracle);
      }
    }
  }
  std::map<std::string, double> regret;
  for (const auto& [algo, rs] : ratios) {
    regret[algo] = GeometricMean(rs);
  }
  return regret;
}

}  // namespace dpbench
