// The wire layer under every DPBench serialized artifact and network
// message: self-describing binary records inside a versioned, checksummed
// envelope.
//
// Records are a field count followed by (name, type, value) triples,
// nestable. Integers are fixed-width little-endian; doubles travel by bit
// pattern, so every value round-trips bit-exactly. Unknown fields are
// preserved by the parser; truncation and type skew are rejected with
// precise errors.
//
// Envelopes (format v2) are self-verifying: "DPBS" magic, format version,
// kind tag, then named sections, each framed as
//   u64 name_len | name | u64 payload_len | u32 CRC32C(payload) | payload
// The checksums are verified before any payload is parsed, AHEAD-style
// on-the-fly error detection: a flipped bit in a week-long distributed
// run's shard upload is caught at the envelope boundary with an error
// naming the damaged section, instead of poisoning the merged grid (or
// surfacing as a confusing structural parse error deep in a record).
// v1 files (unchecksummed, single unnamed record) are rejected loudly
// with a version-skew error, never reinterpreted.
#ifndef DPBENCH_ENGINE_WIRE_H_
#define DPBENCH_ENGINE_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dpbench {
namespace wire {

/// Format version of every envelope this module writes. Readers reject
/// other versions (no silent cross-version reinterpretation). v2 added
/// per-section CRC32C checksums; v1 readers fail on v2 files and vice
/// versa, both with a precise "version skew" error.
inline constexpr uint32_t kFormatVersion = 2;

// ---------------------------------------------------------------------------
// Field wire types. The tag is written with every field, which is what
// makes the format self-describing: a reader can walk (and render) any
// record without knowing its schema.
// ---------------------------------------------------------------------------
enum FieldType : uint8_t {
  kU64 = 1,
  kF64 = 2,
  kStr = 3,
  kU64Vec = 4,
  kF64Vec = 5,
  kStrVec = 6,
  kRec = 7,     // nested record (encoded bytes)
  kRecVec = 8,  // vector of nested records
};

const char* FieldTypeName(uint8_t type);

uint64_t DoubleBits(double v);
double DoubleFromBits(uint64_t bits);

// ---------------------------------------------------------------------------
// Record writer: accumulates (name, type, value) fields; Finish() prefixes
// the field count. All scalars little-endian fixed-width.
// ---------------------------------------------------------------------------
class RecordWriter {
 public:
  void U64(const std::string& name, uint64_t v);
  void F64(const std::string& name, double v);
  void Str(const std::string& name, const std::string& v);
  void U64Vec(const std::string& name, const std::vector<uint64_t>& v);
  void F64Vec(const std::string& name, const std::vector<double>& v);
  void StrVec(const std::string& name, const std::vector<std::string>& v);
  void Rec(const std::string& name, const std::string& record_bytes);
  void RecVec(const std::string& name,
              const std::vector<std::string>& records);

  std::string Finish() &&;

 private:
  void RawU64(uint64_t v);
  void RawStr(const std::string& s);
  void Header(const std::string& name, FieldType type);

  uint64_t fields_ = 0;
  std::string body_;
};

// ---------------------------------------------------------------------------
// Record reader. Parse() walks every field with bounds checks (truncated
// input fails with a precise error, oversized counts are rejected before
// any allocation); typed getters validate presence and wire type.
// ---------------------------------------------------------------------------
struct FieldValue {
  uint8_t type = 0;
  uint64_t u64 = 0;
  std::string str;                   // kStr / kRec payload
  std::vector<uint64_t> u64_vec;     // also kF64Vec (bit patterns)
  std::vector<std::string> str_vec;  // kStrVec / kRecVec payloads
};

class Record {
 public:
  static Result<Record> Parse(const std::string& bytes);

  const std::map<std::string, FieldValue>& fields() const { return fields_; }
  /// Mutable access for decoders that consume the record by moving field
  /// payloads out (the plan-payload path decodes multi-MB GLS arrays).
  std::map<std::string, FieldValue>& mutable_fields() { return fields_; }

  Result<const FieldValue*> Find(const std::string& name,
                                 uint8_t type) const;

  Result<uint64_t> U64(const std::string& name) const;
  Result<double> F64(const std::string& name) const;
  Result<std::string> Str(const std::string& name) const;
  Result<std::vector<uint64_t>> U64Vec(const std::string& name) const;
  Result<std::vector<double>> F64Vec(const std::string& name) const;
  Result<std::vector<std::string>> StrVec(const std::string& name) const;
  Result<std::string> Rec(const std::string& name) const;
  Result<std::vector<std::string>> RecVec(const std::string& name) const;
  /// Moving form for the bulk paths (a shard file's cells can be most of
  /// the file): steals the record-bytes vector instead of copying it.
  Result<std::vector<std::string>> TakeRecVec(const std::string& name);

 private:
  std::map<std::string, FieldValue> fields_;
};

// ---------------------------------------------------------------------------
// Envelope: kind + named checksummed sections.
// ---------------------------------------------------------------------------

struct Section {
  std::string name;
  std::string bytes;  // usually an encoded Record
};

struct Envelope {
  std::string kind;
  std::vector<Section> sections;

  /// The named section's bytes, or InvalidArgument if absent.
  Result<const std::string*> Find(const std::string& name) const;
  /// Moving form: steals the section payload.
  Result<std::string> Take(const std::string& name);
};

std::string WrapEnvelope(const std::string& kind,
                         std::vector<Section> sections);

/// Validates magic, version, framing, and every section checksum (a
/// mismatch is DataLoss naming the section). Sections are verified in file
/// order before any payload is parsed.
Result<Envelope> UnwrapEnvelope(const std::string& bytes);

/// Reads only the kind tag (magic + version validated; checksums are NOT
/// verified). For dispatching network messages before full decode.
Result<std::string> PeekKind(const std::string& bytes);

/// Byte layout of an envelope's sections, for corruption tests and fault
/// injectors that need to damage a specific payload region. `offset` is
/// the payload's position in the full envelope image.
struct SectionSpan {
  std::string name;
  size_t offset = 0;
  size_t length = 0;
};
Result<std::vector<SectionSpan>> EnvelopeLayout(const std::string& bytes);

}  // namespace wire
}  // namespace dpbench

#endif  // DPBENCH_ENGINE_WIRE_H_
