#include "src/engine/error.h"

#include <cmath>

namespace dpbench {

Result<double> ScaledL2PerQueryError(const std::vector<double>& y_true,
                                     const std::vector<double>& y_hat,
                                     double scale) {
  if (y_true.size() != y_hat.size()) {
    return Status::InvalidArgument("answer vector size mismatch");
  }
  if (y_true.empty()) {
    return Status::InvalidArgument("empty workload answers");
  }
  if (scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  double ss = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double d = y_true[i] - y_hat[i];
    ss += d * d;
  }
  return std::sqrt(ss) / (scale * static_cast<double>(y_true.size()));
}

Result<double> WorkloadError(const Workload& w, const DataVector& truth,
                             const DataVector& estimate) {
  if (!(truth.domain() == estimate.domain())) {
    return Status::InvalidArgument("domain mismatch between truth/estimate");
  }
  std::vector<double> y_true = w.Evaluate(truth);
  std::vector<double> y_hat = w.Evaluate(estimate);
  return ScaledL2PerQueryError(y_true, y_hat, truth.Scale());
}

Result<BiasVariance> DecomposeBiasVariance(
    const std::vector<double>& y_true,
    const std::vector<std::vector<double>>& y_hats) {
  if (y_hats.empty()) {
    return Status::InvalidArgument("need at least one run");
  }
  size_t q = y_true.size();
  std::vector<double> mean(q, 0.0);
  for (const auto& y : y_hats) {
    if (y.size() != q) {
      return Status::InvalidArgument("run arity mismatch");
    }
    for (size_t i = 0; i < q; ++i) mean[i] += y[i];
  }
  for (double& m : mean) m /= static_cast<double>(y_hats.size());

  double bias_ss = 0.0;
  for (size_t i = 0; i < q; ++i) {
    double d = mean[i] - y_true[i];
    bias_ss += d * d;
  }
  double var_ss = 0.0;
  if (y_hats.size() > 1) {
    for (size_t i = 0; i < q; ++i) {
      double v = 0.0;
      for (const auto& y : y_hats) {
        double d = y[i] - mean[i];
        v += d * d;
      }
      var_ss += v / static_cast<double>(y_hats.size() - 1);
    }
  }
  return BiasVariance{std::sqrt(bias_ss), std::sqrt(var_ss)};
}

}  // namespace dpbench
