#include "src/engine/thread_pool.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dpbench {

bool WorkStealingPool::PinSelfToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void WorkStealingPool::BuildPlacement(const topology::Topology& topo) {
  const size_t num_nodes = std::max<size_t>(topo.nodes.size(), 1);
  worker_node_.assign(num_threads_, 0);
  worker_cpu_.assign(num_threads_, -1);
  node_workers_.assign(num_nodes, {});

  // Split the worker count across nodes proportionally to each node's
  // CPU share, largest-remainder rounding (ties to the earlier node so
  // the plan is deterministic). On one node this collapses to "all
  // workers, CPUs w mod cores" — exactly the pre-NUMA layout.
  size_t total_cpus = 0;
  for (const auto& node : topo.nodes) total_cpus += node.cpus.size();
  std::vector<size_t> counts(num_nodes, 0);
  if (topo.nodes.empty() || total_cpus == 0) {
    counts[0] = num_threads_;
  } else {
    size_t assigned = 0;
    std::vector<std::pair<size_t, size_t>> remainders;  // (-share%, node)
    for (size_t n = 0; n < num_nodes; ++n) {
      size_t share = num_threads_ * topo.nodes[n].cpus.size();
      counts[n] = share / total_cpus;
      assigned += counts[n];
      remainders.push_back({total_cpus - share % total_cpus, n});
    }
    std::sort(remainders.begin(), remainders.end());
    for (size_t r = 0; assigned < num_threads_; ++r) {
      ++counts[remainders[r % num_nodes].second];
      ++assigned;
    }
  }

  // Contiguous worker-id blocks per node, in node order. Worker 0 (the
  // calling thread) lands on the first non-empty node.
  size_t next = 0;
  for (size_t n = 0; n < num_nodes; ++n) {
    for (size_t k = 0; k < counts[n]; ++k, ++next) {
      worker_node_[next] = n;
      node_workers_[n].push_back(next);
      if (n < topo.nodes.size() && !topo.nodes[n].cpus.empty()) {
        worker_cpu_[next] = topo.nodes[n].cpus[k % topo.nodes[n].cpus.size()];
      }
    }
  }

  // Steal order: ring over the same-node group first (starting just past
  // self, so thieves fan out instead of all hammering one victim), then
  // the remaining workers in global ring order.
  victim_order_.assign(num_threads_, {});
  victims_local_.assign(num_threads_, 0);
  for (size_t w = 0; w < num_threads_; ++w) {
    const auto& group = node_workers_[worker_node_[w]];
    size_t pos = std::find(group.begin(), group.end(), w) - group.begin();
    for (size_t off = 1; off < group.size(); ++off) {
      victim_order_[w].push_back(group[(pos + off) % group.size()]);
    }
    victims_local_[w] = victim_order_[w].size();
    for (size_t off = 1; off < num_threads_; ++off) {
      size_t v = (w + off) % num_threads_;
      if (worker_node_[v] != worker_node_[w]) victim_order_[w].push_back(v);
    }
  }
}

WorkStealingPool::WorkStealingPool(size_t num_threads, bool pin_threads,
                                   const topology::Topology* topo)
    : num_threads_(num_threads == 0 ? 1 : num_threads),
      pin_threads_(pin_threads),
      queues_(num_threads_) {
  BuildPlacement(topo != nullptr ? *topo : topology::Detect());
  threads_.reserve(num_threads_ - 1);
  for (size_t t = 1; t < num_threads_; ++t) {
    threads_.emplace_back(&WorkStealingPool::WorkerLoop, this, t);
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealingPool::DrainTasks(size_t self) {
  size_t task;
  for (;;) {
    if (queues_[self].PopFront(&task)) {
      (*job_)(task, self);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Own deque drained: steal one task from the back of a victim —
    // every same-node victim before the first cross-node attempt.
    bool stole = false;
    const auto& victims = victim_order_[self];
    for (size_t v = 0; v < victims.size(); ++v) {
      if (queues_[victims[v]].PopBack(&task)) {
        if (v >= victims_local_[self]) {
          tasks_stolen_remote_.fetch_add(1, std::memory_order_relaxed);
        }
        stole = true;
        break;
      }
    }
    if (!stole) return;  // every deque empty: all tasks claimed
    (*job_)(task, self);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WorkStealingPool::WorkerLoop(size_t self) {
  if (pin_threads_ && PinSelfToCpu(worker_cpu_[self])) {
    workers_pinned_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    lock.unlock();
    DrainTasks(self);
    lock.lock();
    ++workers_done_;
    if (workers_done_ == threads_.size()) cv_done_.notify_one();
  }
}

void WorkStealingPool::RunQueuedJob(const WorkerFn& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    workers_done_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();

  // The owner participates as worker 0, then waits until every spawned
  // worker has drained and parked — only then is it safe to reuse the
  // deques (and for the caller to read results produced by stolen tasks).
  DrainTasks(0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return workers_done_ == threads_.size(); });
  job_ = nullptr;
}

void WorkStealingPool::ParallelForWorker(size_t num_tasks,
                                         const WorkerFn& fn) {
  if (num_tasks == 0) return;
  parallel_jobs_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ == 1 || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i, 0);
    tasks_executed_.fetch_add(num_tasks, std::memory_order_relaxed);
    return;
  }

  // All workers are parked (the previous job waited for quiescence), so
  // the deques can be filled without holding their locks; publishing the
  // epoch under mu_ gives the fills a happens-before edge to every worker.
  size_t used = std::min(num_threads_, num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    queues_[i % used].tasks.push_back(i);
  }
  RunQueuedJob(fn);
}

void WorkStealingPool::ParallelForWorkerPlaced(size_t num_tasks,
                                               const WorkerFn& fn,
                                               const HomeNodeFn& home_node) {
  if (num_tasks == 0) return;
  parallel_jobs_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ == 1 || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i, 0);
    tasks_executed_.fetch_add(num_tasks, std::memory_order_relaxed);
    return;
  }

  // Hinted tasks round-robin over their home node's worker group; the
  // rest round-robin globally, same shape as ParallelForWorker.
  size_t used = std::min(num_threads_, num_tasks);
  std::vector<size_t> node_rr(node_workers_.size(), 0);
  size_t global_rr = 0;
  for (size_t i = 0; i < num_tasks; ++i) {
    size_t home = home_node(i);
    size_t target;
    if (home < node_workers_.size() && !node_workers_[home].empty()) {
      const auto& group = node_workers_[home];
      target = group[node_rr[home]++ % group.size()];
    } else {
      target = global_rr++ % used;
    }
    queues_[target].tasks.push_back(i);
  }
  RunQueuedJob(fn);
}

void WorkStealingPool::ParallelFor(size_t num_tasks,
                                   const std::function<void(size_t)>& fn) {
  ParallelForWorker(num_tasks, [&fn](size_t task, size_t) { fn(task); });
}

std::vector<uint64_t> WorkStealingPool::workers_per_node() const {
  std::vector<uint64_t> counts(node_workers_.size(), 0);
  for (size_t n = 0; n < node_workers_.size(); ++n) {
    counts[n] = node_workers_[n].size();
  }
  return counts;
}

PoolStats WorkStealingPool::stats() const {
  PoolStats s;
  s.parallel_jobs = parallel_jobs_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.tasks_stolen_remote =
      tasks_stolen_remote_.load(std::memory_order_relaxed);
  s.workers_pinned = workers_pinned_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dpbench
