#include "src/engine/thread_pool.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dpbench {

bool WorkStealingPool::PinSelfToCore(size_t self) {
#if defined(__linux__)
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(self % std::min<unsigned>(cores, CPU_SETSIZE), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)self;
  return false;
#endif
}

WorkStealingPool::WorkStealingPool(size_t num_threads, bool pin_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads),
      pin_threads_(pin_threads),
      queues_(num_threads_) {
  threads_.reserve(num_threads_ - 1);
  for (size_t t = 1; t < num_threads_; ++t) {
    threads_.emplace_back(&WorkStealingPool::WorkerLoop, this, t);
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealingPool::DrainTasks(size_t self) {
  size_t task;
  for (;;) {
    if (queues_[self].PopFront(&task)) {
      (*job_)(task, self);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Own deque drained: steal one task from the back of a victim.
    bool stole = false;
    for (size_t off = 1; off < num_threads_; ++off) {
      size_t victim = (self + off) % num_threads_;
      if (queues_[victim].PopBack(&task)) {
        stole = true;
        break;
      }
    }
    if (!stole) return;  // every deque empty: all tasks claimed
    (*job_)(task, self);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WorkStealingPool::WorkerLoop(size_t self) {
  if (pin_threads_ && PinSelfToCore(self)) {
    workers_pinned_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    lock.unlock();
    DrainTasks(self);
    lock.lock();
    ++workers_done_;
    if (workers_done_ == threads_.size()) cv_done_.notify_one();
  }
}

void WorkStealingPool::ParallelForWorker(size_t num_tasks,
                                         const WorkerFn& fn) {
  if (num_tasks == 0) return;
  parallel_jobs_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ == 1 || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i, 0);
    tasks_executed_.fetch_add(num_tasks, std::memory_order_relaxed);
    return;
  }

  // All workers are parked (the previous job waited for quiescence), so
  // the deques can be filled without holding their locks; publishing the
  // epoch under mu_ gives the fills a happens-before edge to every worker.
  size_t used = std::min(num_threads_, num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    queues_[i % used].tasks.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    workers_done_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();

  // The owner participates as worker 0, then waits until every spawned
  // worker has drained and parked — only then is it safe to reuse the
  // deques (and for the caller to read results produced by stolen tasks).
  DrainTasks(0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return workers_done_ == threads_.size(); });
  job_ = nullptr;
}

void WorkStealingPool::ParallelFor(size_t num_tasks,
                                   const std::function<void(size_t)>& fn) {
  ParallelForWorker(num_tasks, [&fn](size_t task, size_t) { fn(task); });
}

PoolStats WorkStealingPool::stats() const {
  PoolStats s;
  s.parallel_jobs = parallel_jobs_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.workers_pinned = workers_pinned_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dpbench
