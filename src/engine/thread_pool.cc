#include "src/engine/thread_pool.h"

#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace dpbench {

namespace {

// One worker's task deque. Owner pops from the front; thieves pop from the
// back. A plain mutex per deque is plenty: runner tasks are coarse
// (milliseconds to seconds), so contention on the queue lock is noise.
struct TaskDeque {
  std::deque<size_t> tasks;
  std::mutex mu;

  bool PopFront(size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.front();
    tasks.pop_front();
    return true;
  }

  bool PopBack(size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.back();
    tasks.pop_back();
    return true;
  }
};

}  // namespace

WorkStealingPool::WorkStealingPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {}

void WorkStealingPool::ParallelFor(
    size_t num_tasks, const std::function<void(size_t)>& fn) const {
  if (num_tasks == 0) return;
  if (num_threads_ == 1 || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }

  size_t workers = std::min(num_threads_, num_tasks);
  std::vector<TaskDeque> queues(workers);
  for (size_t i = 0; i < num_tasks; ++i) {
    queues[i % workers].tasks.push_back(i);
  }

  auto work = [&](size_t self) {
    size_t task;
    for (;;) {
      if (queues[self].PopFront(&task)) {
        fn(task);
        continue;
      }
      // Own deque drained: steal one task from the back of a victim.
      bool stole = false;
      for (size_t off = 1; off < workers; ++off) {
        size_t victim = (self + off) % workers;
        if (queues[victim].PopBack(&task)) {
          stole = true;
          break;
        }
      }
      if (!stole) return;  // every deque empty: all tasks claimed
      fn(task);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t t = 0; t < workers; ++t) threads.emplace_back(work, t);
  for (std::thread& t : threads) t.join();
}

}  // namespace dpbench
