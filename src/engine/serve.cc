#include "src/engine/serve.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "src/algorithms/mechanism.h"
#include "src/common/rng.h"
#include "src/data/datasets.h"
#include "src/data/sampler.h"
#include "src/histogram/data_vector.h"
#include "src/mechanisms/budget.h"
#include "src/workload/workload.h"

namespace dpbench {
namespace serve {

namespace {

constexpr char kKindQuery[] = "dpbench.s.query";
constexpr char kKindReply[] = "dpbench.s.reply";
constexpr char kKindStats[] = "dpbench.s.stats";
constexpr char kKindStatsReply[] = "dpbench.s.statsreply";
constexpr char kKindStop[] = "dpbench.s.stop";
constexpr char kKindAudit[] = "dpbench.s.audit";
constexpr char kKindAuditReply[] = "dpbench.s.auditreply";

constexpr char kSectionBody[] = "body";

/// Queries per request cap: a request is one budget charge, so the answer
/// count must stay bounded — a million rectangles is already far beyond
/// any sane client and protects the reply frame size.
constexpr size_t kMaxQueriesPerRequest = 1u << 20;

/// Planning workloads are canonical per domain (not per request), so the
/// plan cache is independent of which rectangles a request asks for. 2D
/// planning uses the benchmark's random-range workload at its paper size.
constexpr size_t kPlanningQueries2D = 2000;

std::string WrapBody(const std::string& kind, std::string record) {
  std::vector<wire::Section> sections;
  sections.push_back({kSectionBody, std::move(record)});
  return wire::WrapEnvelope(kind, std::move(sections));
}

Result<wire::Record> UnwrapBody(const std::string& bytes,
                                const std::string& expected_kind) {
  DPB_ASSIGN_OR_RETURN(wire::Envelope env, wire::UnwrapEnvelope(bytes));
  if (env.kind != expected_kind) {
    return Status::InvalidArgument("serve message is a '" + env.kind +
                                   "', expected '" + expected_kind + "'");
  }
  DPB_ASSIGN_OR_RETURN(std::string body, env.Take(kSectionBody));
  return wire::Record::Parse(body);
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------------

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk:
      return "ok";
    case ReplyStatus::kInvalidRequest:
      return "invalid-request";
    case ReplyStatus::kBudgetExhausted:
      return "budget-exhausted";
    case ReplyStatus::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string EncodeQuery(const QueryRequest& request) {
  wire::RecordWriter w;
  w.Str("user", request.user);
  w.Str("dataset", request.dataset);
  w.Str("algorithm", request.algorithm);
  w.F64("epsilon", request.epsilon);
  w.U64("scale", request.scale);
  w.U64("domain_size", request.domain_size);
  w.U64Vec("lo_row", request.lo_row);
  w.U64Vec("hi_row", request.hi_row);
  w.U64Vec("lo_col", request.lo_col);
  w.U64Vec("hi_col", request.hi_col);
  return WrapBody(kKindQuery, std::move(w).Finish());
}

Result<QueryRequest> DecodeQuery(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindQuery));
  QueryRequest q;
  DPB_ASSIGN_OR_RETURN(q.user, rec.Str("user"));
  DPB_ASSIGN_OR_RETURN(q.dataset, rec.Str("dataset"));
  DPB_ASSIGN_OR_RETURN(q.algorithm, rec.Str("algorithm"));
  DPB_ASSIGN_OR_RETURN(q.epsilon, rec.F64("epsilon"));
  DPB_ASSIGN_OR_RETURN(q.scale, rec.U64("scale"));
  DPB_ASSIGN_OR_RETURN(q.domain_size, rec.U64("domain_size"));
  DPB_ASSIGN_OR_RETURN(q.lo_row, rec.U64Vec("lo_row"));
  DPB_ASSIGN_OR_RETURN(q.hi_row, rec.U64Vec("hi_row"));
  DPB_ASSIGN_OR_RETURN(q.lo_col, rec.U64Vec("lo_col"));
  DPB_ASSIGN_OR_RETURN(q.hi_col, rec.U64Vec("hi_col"));
  return q;
}

std::string EncodeReply(const QueryResponse& response) {
  wire::RecordWriter w;
  w.U64("status", static_cast<uint64_t>(response.status));
  w.Str("message", response.message);
  w.F64("spent", response.spent);
  w.F64("remaining", response.remaining);
  w.U64("ledger_queries", response.ledger_queries);
  w.F64Vec("answers", response.answers);
  return WrapBody(kKindReply, std::move(w).Finish());
}

Result<QueryResponse> DecodeReply(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindReply));
  QueryResponse r;
  DPB_ASSIGN_OR_RETURN(uint64_t status, rec.U64("status"));
  if (status > static_cast<uint64_t>(ReplyStatus::kInternal)) {
    return Status::InvalidArgument("unknown reply status " +
                                   std::to_string(status));
  }
  r.status = static_cast<ReplyStatus>(status);
  DPB_ASSIGN_OR_RETURN(r.message, rec.Str("message"));
  DPB_ASSIGN_OR_RETURN(r.spent, rec.F64("spent"));
  DPB_ASSIGN_OR_RETURN(r.remaining, rec.F64("remaining"));
  DPB_ASSIGN_OR_RETURN(r.ledger_queries, rec.U64("ledger_queries"));
  DPB_ASSIGN_OR_RETURN(r.answers, rec.F64Vec("answers"));
  return r;
}

std::string EncodeStatsRequest() {
  wire::RecordWriter w;
  return WrapBody(kKindStats, std::move(w).Finish());
}

std::string EncodeStatsReply(const ServeStats& stats) {
  wire::RecordWriter w;
  w.U64("requests", stats.requests);
  w.U64("admitted", stats.admitted);
  w.U64("refused_budget", stats.refused_budget);
  w.U64("refused_invalid", stats.refused_invalid);
  w.U64("internal_errors", stats.internal_errors);
  w.U64("plan_cache_hits", stats.plan_cache_hits);
  w.U64("plan_cache_misses", stats.plan_cache_misses);
  w.U64("plan_cache_evictions", stats.plan_cache_evictions);
  w.U64("data_cache_hits", stats.data_cache_hits);
  w.U64("data_cache_misses", stats.data_cache_misses);
  w.U64("data_cache_evictions", stats.data_cache_evictions);
  w.U64("connections", stats.connections);
  w.U64("journal_appends", stats.journal_appends);
  w.U64("journal_replayed", stats.journal_replayed);
  w.U64("plans_hydrated", stats.plans_hydrated);
  return WrapBody(kKindStatsReply, std::move(w).Finish());
}

Result<ServeStats> DecodeStatsReply(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindStatsReply));
  ServeStats s;
  DPB_ASSIGN_OR_RETURN(s.requests, rec.U64("requests"));
  DPB_ASSIGN_OR_RETURN(s.admitted, rec.U64("admitted"));
  DPB_ASSIGN_OR_RETURN(s.refused_budget, rec.U64("refused_budget"));
  DPB_ASSIGN_OR_RETURN(s.refused_invalid, rec.U64("refused_invalid"));
  DPB_ASSIGN_OR_RETURN(s.internal_errors, rec.U64("internal_errors"));
  DPB_ASSIGN_OR_RETURN(s.plan_cache_hits, rec.U64("plan_cache_hits"));
  DPB_ASSIGN_OR_RETURN(s.plan_cache_misses, rec.U64("plan_cache_misses"));
  DPB_ASSIGN_OR_RETURN(s.plan_cache_evictions,
                       rec.U64("plan_cache_evictions"));
  DPB_ASSIGN_OR_RETURN(s.data_cache_hits, rec.U64("data_cache_hits"));
  DPB_ASSIGN_OR_RETURN(s.data_cache_misses, rec.U64("data_cache_misses"));
  DPB_ASSIGN_OR_RETURN(s.data_cache_evictions,
                       rec.U64("data_cache_evictions"));
  DPB_ASSIGN_OR_RETURN(s.connections, rec.U64("connections"));
  DPB_ASSIGN_OR_RETURN(s.journal_appends, rec.U64("journal_appends"));
  DPB_ASSIGN_OR_RETURN(s.journal_replayed, rec.U64("journal_replayed"));
  DPB_ASSIGN_OR_RETURN(s.plans_hydrated, rec.U64("plans_hydrated"));
  return s;
}

std::string EncodeStop() {
  wire::RecordWriter w;
  return WrapBody(kKindStop, std::move(w).Finish());
}

std::string EncodeAuditRequest(const AuditRequest& request) {
  wire::RecordWriter w;
  w.Str("user", request.user);
  w.Str("dataset", request.dataset);
  return WrapBody(kKindAudit, std::move(w).Finish());
}

Result<AuditRequest> DecodeAuditRequest(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindAudit));
  AuditRequest r;
  DPB_ASSIGN_OR_RETURN(r.user, rec.Str("user"));
  DPB_ASSIGN_OR_RETURN(r.dataset, rec.Str("dataset"));
  return r;
}

std::string EncodeAuditReply(const AuditReply& reply) {
  wire::RecordWriter w;
  w.U64("snapshot_seq", reply.snapshot_seq);
  w.U64("dropped_tail_bytes", reply.dropped_tail_bytes);
  // The records travel as concatenated journal frames: each is already
  // individually framed and checksummed, and the enclosing envelope
  // section checksums the lot.
  std::string frames;
  for (const JournalRecord& record : reply.records) {
    frames += EncodeJournalRecord(record);
  }
  w.Str("records", frames);
  return WrapBody(kKindAuditReply, std::move(w).Finish());
}

Result<AuditReply> DecodeAuditReply(const std::string& bytes) {
  DPB_ASSIGN_OR_RETURN(wire::Record rec, UnwrapBody(bytes, kKindAuditReply));
  AuditReply r;
  DPB_ASSIGN_OR_RETURN(r.snapshot_seq, rec.U64("snapshot_seq"));
  DPB_ASSIGN_OR_RETURN(r.dropped_tail_bytes, rec.U64("dropped_tail_bytes"));
  DPB_ASSIGN_OR_RETURN(std::string frames, rec.Str("records"));
  DPB_ASSIGN_OR_RETURN(Journal journal, DecodeJournal(frames));
  if (journal.dropped_tail_bytes != 0) {
    return Status::DataLoss("audit reply carries a torn journal record");
  }
  r.records = std::move(journal.records);
  return r;
}

Result<std::string> MessageKind(const std::string& bytes) {
  return wire::PeekKind(bytes);
}

// ---------------------------------------------------------------------------
// Budget accountant.
// ---------------------------------------------------------------------------

Status LedgerAccountant::Load(const std::vector<LedgerEntry>& entries) {
  std::map<LedgerKey, LedgerEntry> loaded;
  for (const LedgerEntry& e : entries) {
    if (!std::isfinite(e.budget) || !std::isfinite(e.spent)) {
      return Status::InvalidArgument(
          "ledger entry for user '" + e.user + "' dataset '" + e.dataset +
          "' has a non-finite budget or spent value");
    }
    auto [it, inserted] = loaded.emplace(LedgerKey{e.user, e.dataset}, e);
    if (!inserted) {
      return Status::InvalidArgument("duplicate ledger entry for user '" +
                                     e.user + "' dataset '" + e.dataset +
                                     "'");
    }
  }
  ledgers_ = std::move(loaded);
  return Status::OK();
}

std::vector<LedgerEntry> LedgerAccountant::Snapshot() const {
  std::vector<LedgerEntry> out;
  out.reserve(ledgers_.size());
  for (const auto& [key, entry] : ledgers_) out.push_back(entry);
  return out;
}

Result<LedgerEntry> LedgerAccountant::Charge(const LedgerKey& key,
                                             double epsilon) {
  DPB_RETURN_NOT_OK(ValidateEpsilon(epsilon));
  auto it = ledgers_.find(key);
  if (it == ledgers_.end()) {
    LedgerEntry fresh;
    fresh.user = key.user;
    fresh.dataset = key.dataset;
    fresh.budget = default_budget_;
    it = ledgers_.emplace(key, std::move(fresh)).first;
  }
  LedgerEntry& entry = it->second;
  // Strict comparison, no slack: floating-point rounding may under-grant
  // a hairline request but can never over-spend the ledger.
  double remaining = entry.budget - entry.spent;
  if (epsilon > remaining) {
    std::ostringstream os;
    os.precision(17);
    os << "budget exhausted for user '" << key.user << "' on dataset '"
       << key.dataset << "': requested epsilon " << epsilon
       << " exceeds remaining " << remaining << " (budget " << entry.budget
       << ", spent " << entry.spent << ")";
    return Status::FailedPrecondition(os.str());
  }
  entry.spent += epsilon;
  entry.queries += 1;
  return entry;
}

void LedgerAccountant::Restore(const LedgerKey& key,
                               const LedgerEntry& before, bool existed) {
  if (existed) {
    ledgers_[key] = before;
  } else {
    ledgers_.erase(key);
  }
}

Result<LedgerEntry> LedgerAccountant::Peek(const LedgerKey& key) const {
  auto it = ledgers_.find(key);
  if (it == ledgers_.end()) {
    return Status::NotFound("no ledger for user '" + key.user +
                            "' dataset '" + key.dataset + "'");
  }
  return it->second;
}

Status LedgerAccountant::Replay(const std::vector<JournalRecord>& records,
                                uint64_t snapshot_seq, uint64_t* applied) {
  uint64_t count = 0;
  for (const JournalRecord& r : records) {
    if (r.seq <= snapshot_seq) continue;  // already folded into the snapshot
    LedgerKey key{r.user, r.dataset};
    switch (r.outcome) {
      case JournalOutcome::kGrant: {
        auto it = ledgers_.find(key);
        if (it == ledgers_.end()) {
          LedgerEntry fresh;
          fresh.user = r.user;
          fresh.dataset = r.dataset;
          fresh.budget = r.budget;  // the budget the grant was made against
          it = ledgers_.emplace(key, std::move(fresh)).first;
        }
        LedgerEntry& entry = it->second;
        if (entry.queries != r.ordinal) {
          std::ostringstream os;
          os << "journal grant seq " << r.seq << " for user '" << r.user
             << "' dataset '" << r.dataset << "' is ordinal " << r.ordinal
             << " but the ledger has seen " << entry.queries
             << " queries (journal and snapshot are from different "
                "histories; refusing to replay)";
          return Status::InvalidArgument(os.str());
        }
        // Replay is the original charge re-run bit-exactly: the same
        // addition in the same order over the same snapshot.
        entry.spent += r.epsilon;
        entry.queries += 1;
        if (entry.spent != r.spent_after) {
          std::ostringstream os;
          os.precision(17);
          os << "journal grant seq " << r.seq << " for user '" << r.user
             << "' dataset '" << r.dataset << "' replays to spent "
             << entry.spent << " but recorded spent_after " << r.spent_after
             << " (journal and snapshot are from different histories; "
                "refusing to replay)";
          return Status::InvalidArgument(os.str());
        }
        break;
      }
      case JournalOutcome::kRefusal:
        // A refusal spends nothing, but a refusing Charge still creates
        // the ledger entry on first contact — mirror that side effect so
        // replay reproduces the accountant state bit-exactly.
        if (ledgers_.find(key) == ledgers_.end()) {
          LedgerEntry fresh;
          fresh.user = r.user;
          fresh.dataset = r.dataset;
          fresh.budget = r.budget;
          fresh.spent = r.spent_after;
          fresh.queries = r.ordinal;
          ledgers_.emplace(key, std::move(fresh));
        }
        break;
      case JournalOutcome::kRollback: {
        // The record carries the restored (before-charge) state.
        if (r.existed != 0) {
          auto it = ledgers_.find(key);
          if (it == ledgers_.end()) {
            std::ostringstream os;
            os << "journal rollback seq " << r.seq << " names user '"
               << r.user << "' dataset '" << r.dataset
               << "' but the ledger has no such entry (journal and snapshot "
                  "are from different histories; refusing to replay)";
            return Status::InvalidArgument(os.str());
          }
          it->second.budget = r.budget;
          it->second.spent = r.spent_after;
          it->second.queries = r.ordinal;
        } else {
          ledgers_.erase(key);  // the rolled-back grant was first contact
        }
        break;
      }
    }
    ++count;
  }
  if (applied != nullptr) *applied = count;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Server internals.
// ---------------------------------------------------------------------------

namespace {

/// A small LRU (front = most recent) for the hydrated-state caches. Not
/// internally synchronized; the server guards all three caches with one
/// mutex and builds expensive values outside it (a racing double-build
/// inserts twice, harmlessly — last writer wins).
template <typename V>
class Lru {
 public:
  explicit Lru(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool Get(const std::string& key, V* out) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    *out = it->second->second;
    return true;
  }

  /// Inserts (or refreshes) `key`; bumps *evictions when a victim falls
  /// off the cold end.
  void Put(const std::string& key, V value, std::atomic<uint64_t>* evictions) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      evictions->fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, V>> order_;
  std::map<std::string, typename std::list<std::pair<std::string, V>>::iterator>
      index_;
};

/// A cached plan keeps its mechanism and planning workload alive: plans
/// may reference both (the MechanismPlan lifetime contract).
struct PlanEntry {
  MechanismPtr mechanism;
  std::shared_ptr<const Workload> workload;
  PlanPtr plan;
};

using DataEntry = std::shared_ptr<const DataVector>;
using WorkloadEntry = std::shared_ptr<const Workload>;

}  // namespace

struct Server::Shared {
  explicit Shared(const ServerOptions& opts)
      : options(opts),
        accountant(opts.default_budget),
        plans(opts.max_plans),
        datasets(opts.max_datasets),
        workloads(opts.max_datasets) {}

  const ServerOptions options;

  std::atomic<bool> stop{false};

  // Accountant + its persistence are one critical section: the ledger file
  // on disk is always a snapshot the in-memory state actually had.
  std::mutex accountant_mu;
  LedgerAccountant accountant;
  // Journal state, also under accountant_mu: the last sequence number
  // assigned (numbering continues across restarts — it starts at the
  // larger of the snapshot fold point and the last intact journal
  // record), the boot snapshot's fold point, and the torn tail the boot
  // decode discarded (both reported by audit).
  uint64_t next_seq = 0;
  uint64_t snapshot_seq = 0;
  uint64_t journal_dropped_tail = 0;

  std::mutex cache_mu;
  Lru<PlanEntry> plans;
  Lru<DataEntry> datasets;
  Lru<WorkloadEntry> workloads;

  // Pooled per-connection arenas, bounded by max_scratch: a connection
  // beyond the pool bound gets a transient arena that dies with it.
  std::mutex scratch_mu;
  std::vector<std::unique_ptr<ExecScratch>> scratch_pool;
  size_t scratch_created = 0;

  struct {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> refused_budget{0};
    std::atomic<uint64_t> refused_invalid{0};
    std::atomic<uint64_t> internal_errors{0};
    std::atomic<uint64_t> plan_cache_hits{0};
    std::atomic<uint64_t> plan_cache_misses{0};
    std::atomic<uint64_t> plan_cache_evictions{0};
    std::atomic<uint64_t> data_cache_hits{0};
    std::atomic<uint64_t> data_cache_misses{0};
    std::atomic<uint64_t> data_cache_evictions{0};
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> journal_appends{0};
    std::atomic<uint64_t> journal_replayed{0};
    std::atomic<uint64_t> plans_hydrated{0};
  } counters;

  ServeStats CollectStats() const {
    ServeStats s;
    s.requests = counters.requests.load(std::memory_order_relaxed);
    s.admitted = counters.admitted.load(std::memory_order_relaxed);
    s.refused_budget = counters.refused_budget.load(std::memory_order_relaxed);
    s.refused_invalid =
        counters.refused_invalid.load(std::memory_order_relaxed);
    s.internal_errors =
        counters.internal_errors.load(std::memory_order_relaxed);
    s.plan_cache_hits =
        counters.plan_cache_hits.load(std::memory_order_relaxed);
    s.plan_cache_misses =
        counters.plan_cache_misses.load(std::memory_order_relaxed);
    s.plan_cache_evictions =
        counters.plan_cache_evictions.load(std::memory_order_relaxed);
    s.data_cache_hits =
        counters.data_cache_hits.load(std::memory_order_relaxed);
    s.data_cache_misses =
        counters.data_cache_misses.load(std::memory_order_relaxed);
    s.data_cache_evictions =
        counters.data_cache_evictions.load(std::memory_order_relaxed);
    s.connections = counters.connections.load(std::memory_order_relaxed);
    s.journal_appends =
        counters.journal_appends.load(std::memory_order_relaxed);
    s.journal_replayed =
        counters.journal_replayed.load(std::memory_order_relaxed);
    s.plans_hydrated = counters.plans_hydrated.load(std::memory_order_relaxed);
    return s;
  }
};

namespace {

/// Per-connection workspace: one pooled scratch arena plus reusable
/// estimate/prefix buffers, so the steady-state request path allocates
/// nothing.
struct Workspace {
  std::unique_ptr<ExecScratch> scratch;
  DataVector est;
  std::vector<double> cum;
};

std::unique_ptr<ExecScratch> AcquireScratch(Server::Shared* s) {
  std::lock_guard<std::mutex> lock(s->scratch_mu);
  if (!s->scratch_pool.empty()) {
    auto scratch = std::move(s->scratch_pool.back());
    s->scratch_pool.pop_back();
    return scratch;
  }
  ++s->scratch_created;
  return std::make_unique<ExecScratch>();
}

void ReleaseScratch(Server::Shared* s, std::unique_ptr<ExecScratch> scratch) {
  std::lock_guard<std::mutex> lock(s->scratch_mu);
  if (s->scratch_pool.size() < s->options.max_scratch) {
    s->scratch_pool.push_back(std::move(scratch));
  }
  // else: over the bound, let it free — the pool never grows past
  // max_scratch no matter how many connections spike at once.
}

/// Writes the current ledger snapshot with write-then-rename atomicity.
/// Caller holds accountant_mu. The snapshot carries the journal watermark
/// forward (next_seq), so a later journal-mode boot never replays records
/// this snapshot already accounts for.
Status PersistLedger(Server::Shared* s) {
  if (s->options.ledger_path.empty()) return Status::OK();
  std::string bytes = EncodeLedgerFile(s->accountant.Snapshot(), s->next_seq);
  std::string tmp = s->options.ledger_path + ".tmp";
  DPB_RETURN_NOT_OK(WriteFileBytes(tmp, bytes));
  if (std::rename(tmp.c_str(), s->options.ledger_path.c_str()) != 0) {
    return Status::Internal("rename of ledger file '" + tmp + "' -> '" +
                            s->options.ledger_path + "' failed");
  }
  return Status::OK();
}

/// Appends one admission decision to the charge journal. Caller holds
/// accountant_mu (sequence assignment and the file append must be one
/// atomic step, or two decisions could journal out of order).
Status AppendJournal(Server::Shared* s, JournalOutcome outcome,
                     const LedgerKey& key, double epsilon,
                     uint64_t ordinal, double budget, double spent_after,
                     bool existed) {
  JournalRecord record;
  record.seq = ++s->next_seq;
  record.outcome = outcome;
  record.user = key.user;
  record.dataset = key.dataset;
  record.epsilon = epsilon;
  record.ordinal = ordinal;
  record.budget = budget;
  record.spent_after = spent_after;
  record.existed = existed ? 1 : 0;
  DPB_RETURN_NOT_OK(AppendFileBytes(s->options.journal_path,
                                    EncodeJournalRecord(record)));
  s->counters.journal_appends.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

/// Structural validation — everything checkable without touching caches
/// or the ledger. Returns InvalidArgument with a client-worthy message.
Status ValidateRequest(const QueryRequest& q) {
  if (q.user.empty()) {
    return Status::InvalidArgument("request user must be non-empty");
  }
  if (q.dataset.empty()) {
    return Status::InvalidArgument("request dataset must be non-empty");
  }
  if (q.algorithm.empty()) {
    return Status::InvalidArgument("request algorithm must be non-empty");
  }
  DPB_RETURN_NOT_OK(ValidateEpsilon(q.epsilon));
  if (q.scale == 0) {
    return Status::InvalidArgument("request scale must be positive");
  }
  if (q.domain_size == 0) {
    return Status::InvalidArgument("request domain_size must be positive");
  }
  size_t n = q.lo_row.size();
  if (n == 0) {
    return Status::InvalidArgument(
        "request carries no query ranges (at least one required)");
  }
  if (n > kMaxQueriesPerRequest) {
    return Status::InvalidArgument(
        "request carries " + std::to_string(n) + " query ranges; limit is " +
        std::to_string(kMaxQueriesPerRequest));
  }
  if (q.hi_row.size() != n) {
    return Status::InvalidArgument("lo_row/hi_row length mismatch");
  }
  if (q.lo_col.size() != q.hi_col.size()) {
    return Status::InvalidArgument("lo_col/hi_col length mismatch");
  }
  if (!q.lo_col.empty() && q.lo_col.size() != n) {
    return Status::InvalidArgument(
        "lo_col/hi_col must be empty (1D) or match lo_row's length (2D)");
  }
  return Status::OK();
}

/// Range validation against the resolved dataset geometry.
Status ValidateRanges(const QueryRequest& q, const Domain& domain) {
  size_t dims = domain.num_dims();
  bool has_cols = !q.lo_col.empty();
  if (dims == 1 && has_cols) {
    return Status::InvalidArgument("dataset '" + q.dataset +
                                   "' is 1D but the request carries column "
                                   "ranges");
  }
  if (dims == 2 && !has_cols) {
    return Status::InvalidArgument("dataset '" + q.dataset +
                                   "' is 2D but the request carries no "
                                   "column ranges");
  }
  size_t rows = domain.size(0);
  size_t cols = dims == 2 ? domain.size(1) : 1;
  for (size_t i = 0; i < q.lo_row.size(); ++i) {
    if (q.lo_row[i] > q.hi_row[i] || q.hi_row[i] >= rows) {
      return Status::InvalidArgument(
          "query " + std::to_string(i) + " row range [" +
          std::to_string(q.lo_row[i]) + ", " + std::to_string(q.hi_row[i]) +
          "] is invalid for domain rows " + std::to_string(rows));
    }
    if (dims == 2 && (q.lo_col[i] > q.hi_col[i] || q.hi_col[i] >= cols)) {
      return Status::InvalidArgument(
          "query " + std::to_string(i) + " column range [" +
          std::to_string(q.lo_col[i]) + ", " + std::to_string(q.hi_col[i]) +
          "] is invalid for domain columns " + std::to_string(cols));
    }
  }
  return Status::OK();
}

/// Resolves the hydrated data sample for (dataset, domain, scale) through
/// the LRU. The sample is derived exactly like the runner's first data
/// sample for the same (seed, dataset, domain, scale), so serve answers
/// are reproducible against batch runs.
Result<DataEntry> ResolveData(Server::Shared* s, const QueryRequest& q) {
  std::ostringstream key;
  key << q.dataset << "|" << q.domain_size << "|" << q.scale;
  {
    std::lock_guard<std::mutex> lock(s->cache_mu);
    DataEntry cached;
    if (s->datasets.Get(key.str(), &cached)) {
      s->counters.data_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }
  s->counters.data_cache_misses.fetch_add(1, std::memory_order_relaxed);
  DPB_ASSIGN_OR_RETURN(
      DataVector shape,
      DatasetRegistry::ShapeAtDomain(q.dataset,
                                     static_cast<size_t>(q.domain_size)));
  std::ostringstream label;
  label << "data/" << q.dataset << "/" << q.domain_size << "/" << q.scale;
  Rng data_rng(StreamSeed(s->options.seed, label.str()));
  DPB_ASSIGN_OR_RETURN(DataVector sample,
                       SampleAtScale(shape, q.scale, &data_rng));
  auto entry = std::make_shared<const DataVector>(std::move(sample));
  {
    std::lock_guard<std::mutex> lock(s->cache_mu);
    s->datasets.Put(key.str(), entry, &s->counters.data_cache_evictions);
  }
  return entry;
}

/// Resolves the canonical planning workload for a domain through the LRU.
Result<WorkloadEntry> ResolveWorkload(Server::Shared* s,
                                      const Domain& domain) {
  std::string key = domain.ToString();
  {
    std::lock_guard<std::mutex> lock(s->cache_mu);
    WorkloadEntry cached;
    if (s->workloads.Get(key, &cached)) return cached;
  }
  std::shared_ptr<const Workload> built;
  if (domain.num_dims() == 1) {
    built = std::make_shared<const Workload>(
        Workload::Prefix1D(domain.size(0)));
  } else {
    built = std::make_shared<const Workload>(Workload::RandomRange(
        domain, kPlanningQueries2D, s->options.seed));
  }
  {
    std::lock_guard<std::mutex> lock(s->cache_mu);
    // Workload evictions ride the data-cache counter: both caches hold
    // hydrated per-dataset state under the same max_datasets bound.
    s->workloads.Put(key, built, &s->counters.data_cache_evictions);
  }
  return built;
}

/// Resolves the cached plan for (algorithm, domain, epsilon[, scale]).
/// The key matches the runner's plan-cache key so behavior and accounting
/// line up with the batch engine.
Result<PlanEntry> ResolvePlan(Server::Shared* s, const QueryRequest& q,
                              const Domain& domain) {
  DPB_ASSIGN_OR_RETURN(MechanismPtr mech, MechanismRegistry::Get(q.algorithm));
  if (!mech->SupportsDims(domain.num_dims())) {
    return Status::InvalidArgument(
        "algorithm '" + q.algorithm + "' does not support " +
        std::to_string(domain.num_dims()) + "D domains");
  }
  std::ostringstream key;
  key.precision(17);
  key << q.algorithm << "|" << domain.ToString() << "|eps=" << q.epsilon;
  if (mech->uses_side_info()) {
    key << "|scale=" << q.scale;
  }
  {
    std::lock_guard<std::mutex> lock(s->cache_mu);
    PlanEntry cached;
    if (s->plans.Get(key.str(), &cached)) {
      s->counters.plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }
  s->counters.plan_cache_misses.fetch_add(1, std::memory_order_relaxed);
  DPB_ASSIGN_OR_RETURN(WorkloadEntry workload, ResolveWorkload(s, domain));
  SideInfo side_info;
  side_info.true_scale = static_cast<double>(q.scale);
  PlanContext ctx{domain, *workload, q.epsilon, side_info};
  DPB_ASSIGN_OR_RETURN(PlanPtr plan, mech->Plan(ctx));
  PlanEntry entry{std::move(mech), std::move(workload), std::move(plan)};
  {
    std::lock_guard<std::mutex> lock(s->cache_mu);
    s->plans.Put(key.str(), entry, &s->counters.plan_cache_evictions);
  }
  return entry;
}

QueryResponse Refuse(ReplyStatus status, const std::string& message) {
  QueryResponse r;
  r.status = status;
  r.message = message;
  return r;
}

/// The full request pipeline: validate → resolve (no charge on any
/// failure so far) → charge + persist → execute → answer. Stats counters
/// are bumped here so every exit path is counted exactly once.
QueryResponse HandleQuery(Server::Shared* s, const QueryRequest& q,
                          Workspace* ws) {
  s->counters.requests.fetch_add(1, std::memory_order_relaxed);

  Status valid = ValidateRequest(q);
  if (!valid.ok()) {
    s->counters.refused_invalid.fetch_add(1, std::memory_order_relaxed);
    return Refuse(ReplyStatus::kInvalidRequest, valid.message());
  }

  // Resolve data and plan before charging: a request that cannot be
  // answered must not cost the user budget.
  auto data = ResolveData(s, q);
  if (!data.ok()) {
    s->counters.refused_invalid.fetch_add(1, std::memory_order_relaxed);
    return Refuse(ReplyStatus::kInvalidRequest, data.status().message());
  }
  const Domain& domain = (*data)->domain();
  Status ranges = ValidateRanges(q, domain);
  if (!ranges.ok()) {
    s->counters.refused_invalid.fetch_add(1, std::memory_order_relaxed);
    return Refuse(ReplyStatus::kInvalidRequest, ranges.message());
  }
  auto plan = ResolvePlan(s, q, domain);
  if (!plan.ok()) {
    s->counters.refused_invalid.fetch_add(1, std::memory_order_relaxed);
    return Refuse(ReplyStatus::kInvalidRequest, plan.status().message());
  }

  // Admission: charge, then make the decision durable before drawing any
  // noise. With a journal, durability is one O(1) append (grant, refusal,
  // or — on append failure — rollback); without one, it is the PR-8
  // snapshot rewrite. Either way the rule is the same: no answer is ever
  // computed for a charge that is not durable, so a crash at any instant
  // leaves the durable record at-or-ahead of the answers emitted.
  const bool journaling = !s->options.journal_path.empty();
  LedgerKey key{q.user, q.dataset};
  LedgerEntry charged;
  {
    std::lock_guard<std::mutex> lock(s->accountant_mu);
    auto before = s->accountant.Peek(key);
    bool existed = before.ok();
    auto result = s->accountant.Charge(key, q.epsilon);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kFailedPrecondition) {
        if (journaling) {
          // Refusals are part of the audit trail but change no ledger
          // state; losing one cannot misaccount budget, so the append is
          // best-effort. (A refusing Charge still creates the entry on
          // first contact, so the re-Peek sees the granted budget.)
          auto now = s->accountant.Peek(key);
          LedgerEntry current = now.ok() ? *now : LedgerEntry{};
          (void)AppendJournal(s, JournalOutcome::kRefusal, key, q.epsilon,
                              current.queries, current.budget, current.spent,
                              existed);
        }
        s->counters.refused_budget.fetch_add(1, std::memory_order_relaxed);
        return Refuse(ReplyStatus::kBudgetExhausted,
                      result.status().message());
      }
      s->counters.refused_invalid.fetch_add(1, std::memory_order_relaxed);
      return Refuse(ReplyStatus::kInvalidRequest, result.status().message());
    }
    charged = *result;
    if (journaling) {
      CrashIfRequested(s->options.fault, "after_charge_before_journal");
      Status appended =
          AppendJournal(s, JournalOutcome::kGrant, key, q.epsilon,
                        charged.queries - 1, charged.budget, charged.spent,
                        existed);
      if (!appended.ok()) {
        // The grant never became durable: undo it in memory and document
        // the reversal. The rollback append is best-effort — if the disk
        // is refusing appends it will fail too, which is safe: replay of
        // a journal without the grant never applies the charge at all.
        LedgerEntry restored = existed ? *before : LedgerEntry{};
        s->accountant.Restore(key, restored, existed);
        (void)AppendJournal(s, JournalOutcome::kRollback, key, q.epsilon,
                            restored.queries, restored.budget, restored.spent,
                            existed);
        s->counters.internal_errors.fetch_add(1, std::memory_order_relaxed);
        return Refuse(ReplyStatus::kInternal,
                      "journal append failed: " + appended.message());
      }
      CrashIfRequested(s->options.fault, "after_journal_before_persist");
    } else {
      Status persisted = PersistLedger(s);
      if (!persisted.ok()) {
        s->accountant.Restore(key, existed ? *before : LedgerEntry{},
                              existed);
        s->counters.internal_errors.fetch_add(1, std::memory_order_relaxed);
        return Refuse(ReplyStatus::kInternal,
                      "ledger persistence failed: " + persisted.message());
      }
    }
  }

  // Noise stream: salted with the persisted query ordinal, so no two
  // admitted requests — across connections, users, or daemon restarts —
  // ever reuse a stream (reuse would let a client average the noise away).
  uint64_t ordinal = charged.queries - 1;
  uint64_t stream_seed = SeedMixer(s->options.seed)
                             .Mix(std::string("serve"))
                             .Mix(q.user)
                             .Mix(q.dataset)
                             .Mix(q.algorithm)
                             .Mix(q.scale)
                             .Mix(q.domain_size)
                             .MixDouble(q.epsilon)
                             .Mix(ordinal)
                             .seed();
  Rng rng(stream_seed);
  ExecContext ctx{**data, &rng, ws->scratch.get()};
  Status executed = plan->plan->ExecuteInto(ctx, &ws->est);
  if (!executed.ok()) {
    // Post-charge failure: the budget stays spent (privacy-conservative —
    // the noisy measurement may have been partially drawn).
    s->counters.internal_errors.fetch_add(1, std::memory_order_relaxed);
    QueryResponse r = Refuse(ReplyStatus::kInternal, executed.message());
    r.spent = charged.spent;
    r.remaining = charged.budget - charged.spent;
    r.ledger_queries = charged.queries;
    return r;
  }

  // Answer every requested rectangle from one prefix-sum pass over the
  // private estimate.
  ComputePrefixSums(ws->est, &ws->cum);
  QueryResponse r;
  r.status = ReplyStatus::kOk;
  r.spent = charged.spent;
  r.remaining = charged.budget - charged.spent;
  r.ledger_queries = charged.queries;
  r.answers.resize(q.lo_row.size());
  if (domain.num_dims() == 1) {
    for (size_t i = 0; i < q.lo_row.size(); ++i) {
      r.answers[i] = ws->cum[q.hi_row[i] + 1] - ws->cum[q.lo_row[i]];
    }
  } else {
    size_t cols = domain.size(1);
    for (size_t i = 0; i < q.lo_row.size(); ++i) {
      r.answers[i] = CumRangeSum2D(ws->cum, cols, q.lo_row[i], q.lo_col[i],
                                   q.hi_row[i], q.hi_col[i]);
    }
  }
  s->counters.admitted.fetch_add(1, std::memory_order_relaxed);
  return r;
}

/// Reconstructs the spend history for an audit request: the boot
/// snapshot's fold point plus every intact journal record, filtered. The
/// journal is re-read under accountant_mu so no append lands mid-read
/// (appends are whole-frame, but quiescence keeps the answer exact).
Result<AuditReply> BuildAudit(Server::Shared* s, const AuditRequest& req) {
  AuditReply reply;
  Journal journal;
  {
    std::lock_guard<std::mutex> lock(s->accountant_mu);
    reply.snapshot_seq = s->snapshot_seq;
    reply.dropped_tail_bytes = s->journal_dropped_tail;
    if (!s->options.journal_path.empty()) {
      auto bytes = ReadFileBytes(s->options.journal_path);
      if (bytes.ok()) {
        DPB_ASSIGN_OR_RETURN(journal, DecodeJournal(*bytes));
      } else if (bytes.status().code() != StatusCode::kNotFound) {
        return bytes.status();
      }
    }
  }
  reply.dropped_tail_bytes += journal.dropped_tail_bytes;
  for (JournalRecord& r : journal.records) {
    if (!req.user.empty() && r.user != req.user) continue;
    if (!req.dataset.empty() && r.dataset != req.dataset) continue;
    reply.records.push_back(std::move(r));
  }
  return reply;
}

/// One connection's serving loop: frames in, frames out, one reply per
/// request. Protocol violations and transport failures end the
/// connection; the daemon itself keeps serving.
void ServeConnection(net::Socket sock, std::shared_ptr<Server::Shared> s) {
  Workspace ws;
  ws.scratch = AcquireScratch(s.get());
  while (!s->stop.load(std::memory_order_relaxed)) {
    auto frame = sock.RecvFrame(s->options.poll_ms);
    if (!frame.ok()) break;  // peer closed or broke framing
    if (frame->timed_out) continue;  // re-check stop, keep waiting
    auto kind = wire::PeekKind(frame->bytes);
    if (!kind.ok()) break;
    if (*kind == kKindQuery) {
      auto query = DecodeQuery(frame->bytes);
      QueryResponse reply;
      if (query.ok()) {
        reply = HandleQuery(s.get(), *query, &ws);
      } else {
        s->counters.requests.fetch_add(1, std::memory_order_relaxed);
        s->counters.refused_invalid.fetch_add(1, std::memory_order_relaxed);
        reply = Refuse(ReplyStatus::kInvalidRequest, query.status().message());
      }
      if (!sock.SendFrame(EncodeReply(reply)).ok()) break;
    } else if (*kind == kKindStats) {
      if (!sock.SendFrame(EncodeStatsReply(s->CollectStats())).ok()) break;
    } else if (*kind == kKindAudit) {
      auto req = DecodeAuditRequest(frame->bytes);
      if (!req.ok()) break;
      auto reply = BuildAudit(s.get(), *req);
      if (!reply.ok()) break;  // journal unreadable mid-run: drop, not lie
      if (!sock.SendFrame(EncodeAuditReply(*reply)).ok()) break;
    } else if (*kind == kKindStop) {
      s->stop.store(true, std::memory_order_relaxed);
      (void)sock.SendFrame(EncodeStop());  // best-effort ack
      break;
    } else {
      break;  // unknown message: protocol skew, drop the connection
    }
  }
  ReleaseScratch(s.get(), std::move(ws.scratch));
}

/// Rebuilds one cached plan from a plan-cache file entry. The key is the
/// cache key both the runner and this server use —
/// algorithm|domain|eps=E[|scale=N] — so the parse here is the inverse of
/// ResolvePlan's key build, and the hydrated entry is inserted under the
/// file's exact key string (a later request computes the same string and
/// hits). The file's workload identity must match this server's planning
/// conventions; anything else fails Create() loudly rather than serving
/// answers from a mis-budgeted plan.
Status HydrateCachedPlan(Server::Shared* s, const std::string& key,
                         const PlanPayload& payload,
                         const PlanCacheIdentity& identity) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t bar = key.find('|', start);
    parts.push_back(key.substr(start, bar == std::string::npos
                                          ? std::string::npos
                                          : bar - start));
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  if (parts.size() < 3 || parts.size() > 4 || parts[0].empty()) {
    return Status::InvalidArgument(
        "plan-cache key '" + key +
        "' does not parse as algorithm|domain|eps=...[|scale=...]");
  }
  const std::string& algo = parts[0];

  std::vector<size_t> sizes;
  {
    size_t pos = 0;
    while (pos <= parts[1].size()) {
      size_t x = parts[1].find('x', pos);
      std::string dim = parts[1].substr(
          pos, x == std::string::npos ? std::string::npos : x - pos);
      char* end = nullptr;
      unsigned long long v = std::strtoull(dim.c_str(), &end, 10);
      if (dim.empty() || end == nullptr || *end != '\0' || v == 0) {
        return Status::InvalidArgument("plan-cache key '" + key +
                                       "' has an unparseable domain '" +
                                       parts[1] + "'");
      }
      sizes.push_back(static_cast<size_t>(v));
      if (x == std::string::npos) break;
      pos = x + 1;
    }
  }
  if (sizes.empty() || sizes.size() > 2) {
    return Status::InvalidArgument("plan-cache key '" + key +
                                   "' names a " +
                                   std::to_string(sizes.size()) +
                                   "D domain; this server serves 1D and 2D");
  }
  Domain domain = sizes.size() == 1 ? Domain::D1(sizes[0])
                                    : Domain::D2(sizes[0], sizes[1]);

  if (parts[2].rfind("eps=", 0) != 0) {
    return Status::InvalidArgument("plan-cache key '" + key +
                                   "' is missing its eps= part");
  }
  std::string eps_text = parts[2].substr(4);
  char* eps_end = nullptr;
  double epsilon = std::strtod(eps_text.c_str(), &eps_end);
  if (eps_text.empty() || eps_end == nullptr || *eps_end != '\0') {
    return Status::InvalidArgument("plan-cache key '" + key +
                                   "' has an unparseable epsilon '" +
                                   eps_text + "'");
  }
  DPB_RETURN_NOT_OK(ValidateEpsilon(epsilon));

  bool has_scale = parts.size() == 4;
  uint64_t scale = 0;
  if (has_scale) {
    if (parts[3].rfind("scale=", 0) != 0) {
      return Status::InvalidArgument("plan-cache key '" + key +
                                     "' has an unrecognized part '" +
                                     parts[3] + "'");
    }
    std::string scale_text = parts[3].substr(6);
    char* end = nullptr;
    unsigned long long v = std::strtoull(scale_text.c_str(), &end, 10);
    if (scale_text.empty() || end == nullptr || *end != '\0' || v == 0) {
      return Status::InvalidArgument("plan-cache key '" + key +
                                     "' has an unparseable scale '" +
                                     scale_text + "'");
    }
    scale = v;
  }

  DPB_ASSIGN_OR_RETURN(MechanismPtr mech, MechanismRegistry::Get(algo));
  if (!mech->SupportsDims(domain.num_dims())) {
    return Status::InvalidArgument(
        "plan-cache key '" + key + "' pairs algorithm '" + algo + "' with a " +
        std::to_string(domain.num_dims()) + "D domain it does not support");
  }
  if (mech->uses_side_info() != has_scale) {
    return Status::InvalidArgument(
        "plan-cache key '" + key + "' " +
        (has_scale ? "carries a scale part but algorithm '" + algo +
                         "' does not use side info"
                   : "lacks the scale part algorithm '" + algo +
                         "' keys its plans by"));
  }

  // Workload-identity gate: this server plans 1D domains against the
  // prefix workload and 2D domains against the paper-size random-range
  // workload seeded by its own master seed. A cache planned against
  // anything else would hydrate mis-budgeted plans.
  if (domain.num_dims() == 1) {
    if (identity.workload != WorkloadKind::kPrefix1D) {
      return Status::FailedPrecondition(
          "plan-cache file was planned against a non-prefix workload; this "
          "server answers 1D domains from prefix plans — refusing to "
          "hydrate key '" + key + "'");
    }
  } else {
    if (identity.workload != WorkloadKind::kRandomRange2D ||
        identity.random_queries != kPlanningQueries2D ||
        identity.workload_seed != s->options.seed) {
      return Status::FailedPrecondition(
          "plan-cache file's 2D workload identity does not match this "
          "server's planning convention (random-range, " +
          std::to_string(kPlanningQueries2D) + " queries, seed " +
          std::to_string(s->options.seed) + ") — refusing to hydrate key '" +
          key + "'");
    }
  }

  DPB_ASSIGN_OR_RETURN(WorkloadEntry workload, ResolveWorkload(s, domain));
  SideInfo side_info;
  if (has_scale) side_info.true_scale = static_cast<double>(scale);
  PlanContext ctx{domain, *workload, epsilon, side_info};
  DPB_ASSIGN_OR_RETURN(PlanPtr plan, mech->HydratePlan(ctx, payload));
  PlanEntry entry{std::move(mech), std::move(workload), std::move(plan)};
  std::lock_guard<std::mutex> lock(s->cache_mu);
  s->plans.Put(key, std::move(entry), &s->counters.plan_cache_evictions);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

Result<Server> Server::Create(const ServerOptions& options) {
  DPB_RETURN_NOT_OK(ValidateEpsilon(options.default_budget));
  Server server;
  server.options_ = options;
  server.shared_ = std::make_shared<Shared>(options);
  Shared* shared = server.shared_.get();
  if (!options.ledger_path.empty()) {
    auto bytes = ReadFileBytes(options.ledger_path);
    if (bytes.ok()) {
      DPB_ASSIGN_OR_RETURN(LedgerFile file, DecodeLedgerFile(*bytes));
      DPB_RETURN_NOT_OK(shared->accountant.Load(file.entries));
      shared->snapshot_seq = file.journal_seq;
      shared->next_seq = file.journal_seq;
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      // A present-but-unreadable (or corrupt) ledger must fail loudly:
      // starting fresh would silently resurrect spent budget.
      return bytes.status();
    }
  }
  if (!options.journal_path.empty()) {
    auto bytes = ReadFileBytes(options.journal_path);
    if (bytes.ok()) {
      DPB_ASSIGN_OR_RETURN(Journal journal, DecodeJournal(*bytes));
      uint64_t applied = 0;
      DPB_RETURN_NOT_OK(shared->accountant.Replay(
          journal.records, shared->snapshot_seq, &applied));
      shared->counters.journal_replayed.store(applied,
                                              std::memory_order_relaxed);
      shared->journal_dropped_tail = journal.dropped_tail_bytes;
      if (!journal.records.empty()) {
        shared->next_seq =
            std::max(shared->next_seq, journal.records.back().seq);
      }
      if (journal.dropped_tail_bytes > 0) {
        // A torn tail is exactly what a kill mid-append leaves. It must
        // come off the file before we append again — new records landing
        // after the garbage would corrupt the journal mid-file.
        uint64_t keep = bytes->size() - journal.dropped_tail_bytes;
        if (::truncate(options.journal_path.c_str(),
                       static_cast<off_t>(keep)) != 0) {
          return Status::Internal(
              "could not truncate torn tail (" +
              std::to_string(journal.dropped_tail_bytes) + " bytes) off '" +
              options.journal_path + "'");
        }
        std::fprintf(stderr,
                     "dpbench_serve: discarded %llu torn tail bytes from "
                     "'%s' (interrupted append; the decision it described "
                     "never became durable)\n",
                     static_cast<unsigned long long>(
                         journal.dropped_tail_bytes),
                     options.journal_path.c_str());
      }
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      // Same rule as the ledger: an unreadable journal must never decay
      // into a silent fresh start.
      return bytes.status();
    }
  }
  if (!options.load_plans_path.empty()) {
    DPB_ASSIGN_OR_RETURN(std::string bytes,
                         ReadFileBytes(options.load_plans_path));
    PlanCacheIdentity identity;
    DPB_ASSIGN_OR_RETURN(PlanStore store,
                         DecodePlanCacheFileRaw(bytes, &identity));
    for (const auto& [key, payload] : store.plans) {
      DPB_RETURN_NOT_OK(HydrateCachedPlan(shared, key, payload, identity));
      shared->counters.plans_hydrated.fetch_add(1, std::memory_order_relaxed);
    }
  }
  DPB_ASSIGN_OR_RETURN(server.listener_, net::Listener::Bind(options.port));
  return server;
}

Status Server::Serve() {
  std::vector<std::thread> connections;
  Status end = Status::OK();
  while (!shared_->stop.load(std::memory_order_relaxed)) {
    auto sock = listener_.Accept(options_.poll_ms);
    if (!sock.ok()) {
      end = sock.status();
      break;
    }
    if (!sock->valid()) continue;  // poll slice expired, re-check stop
    shared_->counters.connections.fetch_add(1, std::memory_order_relaxed);
    connections.emplace_back(ServeConnection, std::move(*sock), shared_);
  }
  shared_->stop.store(true, std::memory_order_relaxed);
  listener_.Close();
  for (std::thread& t : connections) t.join();
  return end;
}

void Server::Stop() {
  shared_->stop.store(true, std::memory_order_relaxed);
}

ServeStats Server::stats() const { return shared_->CollectStats(); }

// ---------------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------------

Result<CompactionSummary> CompactJournal(const std::string& ledger_path,
                                         const std::string& journal_path,
                                         double default_budget,
                                         const FaultSpec& fault) {
  if (ledger_path.empty() || journal_path.empty()) {
    return Status::InvalidArgument(
        "compaction needs both a ledger path and a journal path");
  }
  DPB_RETURN_NOT_OK(ValidateEpsilon(default_budget));

  LedgerAccountant accountant(default_budget);
  uint64_t snapshot_seq = 0;
  auto snapshot = ReadFileBytes(ledger_path);
  if (snapshot.ok()) {
    DPB_ASSIGN_OR_RETURN(LedgerFile file, DecodeLedgerFile(*snapshot));
    DPB_RETURN_NOT_OK(accountant.Load(file.entries));
    snapshot_seq = file.journal_seq;
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  Journal journal;
  auto jbytes = ReadFileBytes(journal_path);
  if (jbytes.ok()) {
    DPB_ASSIGN_OR_RETURN(journal, DecodeJournal(*jbytes));
  } else if (jbytes.status().code() != StatusCode::kNotFound) {
    return jbytes.status();
  }

  CompactionSummary summary;
  DPB_RETURN_NOT_OK(accountant.Replay(journal.records, snapshot_seq,
                                      &summary.folded_records));
  summary.journal_seq = snapshot_seq;
  if (!journal.records.empty()) {
    summary.journal_seq =
        std::max(summary.journal_seq, journal.records.back().seq);
  }
  summary.entries = accountant.size();

  // Fold order is what makes every crash window safe: (1) the new
  // snapshot lands complete-or-not-at-all via tmp + rename; (2) only
  // after it is live is the journal truncated. A crash before the rename
  // leaves the old pair untouched; one between rename and truncation
  // leaves records the snapshot already folded, which the next replay
  // skips by sequence.
  std::string bytes =
      EncodeLedgerFile(accountant.Snapshot(), summary.journal_seq);
  std::string tmp = ledger_path + ".tmp";
  DPB_RETURN_NOT_OK(WriteFileBytes(tmp, bytes));
  CrashIfRequested(fault, "mid_compaction");
  if (std::rename(tmp.c_str(), ledger_path.c_str()) != 0) {
    return Status::Internal("rename of compacted ledger '" + tmp + "' -> '" +
                            ledger_path + "' failed");
  }
  DPB_RETURN_NOT_OK(WriteFileBytes(journal_path, ""));
  return summary;
}

}  // namespace serve
}  // namespace dpbench
