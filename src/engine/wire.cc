#include "src/engine/wire.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "src/common/crc32c.h"

namespace dpbench {
namespace wire {

namespace {

constexpr char kMagic[4] = {'D', 'P', 'B', 'S'};

Status Truncated(const std::string& what) {
  return Status::InvalidArgument("truncated serialized data (reading " +
                                 what + ")");
}

void AppendU64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Bounds-checked little-endian cursor over an immutable byte string.
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

  Result<uint64_t> U64(const std::string& what) {
    if (remaining() < 8) return Truncated(what);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<uint32_t> U32(const std::string& what) {
    if (remaining() < 4) return Truncated(what);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint8_t> U8(const std::string& what) {
    if (remaining() < 1) return Truncated(what);
    return static_cast<uint8_t>(static_cast<unsigned char>(data_[pos_++]));
  }

  Result<std::string> Str(const std::string& what) {
    DPB_ASSIGN_OR_RETURN(uint64_t len, U64(what + " length"));
    return Bytes(len, what);
  }

  Result<std::string> Bytes(uint64_t len, const std::string& what) {
    if (remaining() < len) return Truncated(what);
    std::string s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  Status Skip(uint64_t len, const std::string& what) {
    if (remaining() < len) return Truncated(what);
    pos_ += len;
    return Status::OK();
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

// Shared envelope-header walk: magic, version, kind. Leaves the cursor at
// the section count.
Result<std::string> ReadEnvelopeHead(const std::string& bytes, Cursor* c) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument(
        "not a DPBench serialized file (bad magic)");
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(
                   static_cast<unsigned char>(bytes[4 + i]))
               << (8 * i);
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "serialized format version skew: file has v" +
        std::to_string(version) + ", this build reads v" +
        std::to_string(kFormatVersion) +
        (version < kFormatVersion
             ? " (v2 added section checksums; re-encode with a current "
               "writer)"
             : ""));
  }
  // The cursor starts at 0; consume magic + version, then the kind.
  DPB_ASSIGN_OR_RETURN(uint64_t magic_and_version,
                       c->U64("envelope header"));
  (void)magic_and_version;  // validated above byte-wise
  return c->Str("envelope kind");
}

}  // namespace

const char* FieldTypeName(uint8_t type) {
  switch (type) {
    case kU64: return "u64";
    case kF64: return "f64";
    case kStr: return "string";
    case kU64Vec: return "u64 vector";
    case kF64Vec: return "f64 vector";
    case kStrVec: return "string vector";
    case kRec: return "record";
    case kRecVec: return "record vector";
  }
  return "unknown";
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// RecordWriter.
// ---------------------------------------------------------------------------

void RecordWriter::U64(const std::string& name, uint64_t v) {
  Header(name, kU64);
  RawU64(v);
}
void RecordWriter::F64(const std::string& name, double v) {
  Header(name, kF64);
  RawU64(DoubleBits(v));
}
void RecordWriter::Str(const std::string& name, const std::string& v) {
  Header(name, kStr);
  RawStr(v);
}
void RecordWriter::U64Vec(const std::string& name,
                          const std::vector<uint64_t>& v) {
  Header(name, kU64Vec);
  RawU64(v.size());
  for (uint64_t x : v) RawU64(x);
}
void RecordWriter::F64Vec(const std::string& name,
                          const std::vector<double>& v) {
  Header(name, kF64Vec);
  RawU64(v.size());
  for (double x : v) RawU64(DoubleBits(x));
}
void RecordWriter::StrVec(const std::string& name,
                          const std::vector<std::string>& v) {
  Header(name, kStrVec);
  RawU64(v.size());
  for (const std::string& s : v) RawStr(s);
}
void RecordWriter::Rec(const std::string& name,
                       const std::string& record_bytes) {
  Header(name, kRec);
  RawStr(record_bytes);
}
void RecordWriter::RecVec(const std::string& name,
                          const std::vector<std::string>& records) {
  Header(name, kRecVec);
  RawU64(records.size());
  for (const std::string& r : records) RawStr(r);
}

std::string RecordWriter::Finish() && {
  std::string out;
  out.reserve(8 + body_.size());
  AppendU64(&out, fields_);
  out += body_;
  return out;
}

void RecordWriter::RawU64(uint64_t v) { AppendU64(&body_, v); }
void RecordWriter::RawStr(const std::string& s) {
  RawU64(s.size());
  body_ += s;
}
void RecordWriter::Header(const std::string& name, FieldType type) {
  ++fields_;
  RawStr(name);
  body_.push_back(static_cast<char>(type));
}

// ---------------------------------------------------------------------------
// Record parsing.
// ---------------------------------------------------------------------------

Result<Record> Record::Parse(const std::string& bytes) {
  Record rec;
  Cursor c(bytes);
  DPB_ASSIGN_OR_RETURN(uint64_t count, c.U64("field count"));
  // Every field is at least name-length + type byte: 9 bytes.
  if (count > bytes.size() / 9 + 1) {
    return Status::InvalidArgument(
        "serialized record claims an implausible field count");
  }
  for (uint64_t f = 0; f < count; ++f) {
    DPB_ASSIGN_OR_RETURN(std::string name, c.Str("field name"));
    DPB_ASSIGN_OR_RETURN(uint8_t type, c.U8("field type of " + name));
    FieldValue value;
    value.type = type;
    switch (type) {
      case kU64: {
        DPB_ASSIGN_OR_RETURN(value.u64, c.U64(name));
        break;
      }
      case kF64: {
        DPB_ASSIGN_OR_RETURN(value.u64, c.U64(name));
        break;
      }
      case kStr:
      case kRec: {
        DPB_ASSIGN_OR_RETURN(value.str, c.Str(name));
        break;
      }
      case kU64Vec:
      case kF64Vec: {
        DPB_ASSIGN_OR_RETURN(uint64_t n, c.U64(name + " count"));
        if (c.remaining() < n * 8 || n > c.remaining()) {
          return Truncated(name);
        }
        value.u64_vec.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          DPB_ASSIGN_OR_RETURN(uint64_t x, c.U64(name));
          value.u64_vec.push_back(x);
        }
        break;
      }
      case kStrVec:
      case kRecVec: {
        DPB_ASSIGN_OR_RETURN(uint64_t n, c.U64(name + " count"));
        if (c.remaining() < n * 8 || n > c.remaining()) {
          return Truncated(name);
        }
        value.str_vec.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          DPB_ASSIGN_OR_RETURN(std::string s, c.Str(name));
          value.str_vec.push_back(std::move(s));
        }
        break;
      }
      default:
        return Status::InvalidArgument(
            "serialized record has unknown field type for '" + name + "'");
    }
    rec.fields_.emplace(std::move(name), std::move(value));
  }
  if (!c.done()) {
    return Status::InvalidArgument(
        "serialized record has trailing bytes (corrupt or mis-framed)");
  }
  return rec;
}

Result<const FieldValue*> Record::Find(const std::string& name,
                                       uint8_t type) const {
  auto it = fields_.find(name);
  if (it == fields_.end()) {
    return Status::InvalidArgument("serialized record missing field '" +
                                   name + "'");
  }
  if (it->second.type != type) {
    return Status::InvalidArgument(
        "serialized field '" + name + "' has type " +
        FieldTypeName(it->second.type) + ", expected " +
        FieldTypeName(type));
  }
  return &it->second;
}

Result<uint64_t> Record::U64(const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kU64));
  return v->u64;
}
Result<double> Record::F64(const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kF64));
  return DoubleFromBits(v->u64);
}
Result<std::string> Record::Str(const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kStr));
  return v->str;
}
Result<std::vector<uint64_t>> Record::U64Vec(const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kU64Vec));
  return v->u64_vec;
}
Result<std::vector<double>> Record::F64Vec(const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kF64Vec));
  std::vector<double> out(v->u64_vec.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = DoubleFromBits(v->u64_vec[i]);
  }
  return out;
}
Result<std::vector<std::string>> Record::StrVec(
    const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kStrVec));
  return v->str_vec;
}
Result<std::string> Record::Rec(const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kRec));
  return v->str;
}
Result<std::vector<std::string>> Record::RecVec(
    const std::string& name) const {
  DPB_ASSIGN_OR_RETURN(const FieldValue* v, Find(name, kRecVec));
  return v->str_vec;
}
Result<std::vector<std::string>> Record::TakeRecVec(
    const std::string& name) {
  auto it = fields_.find(name);
  if (it == fields_.end()) {
    return Status::InvalidArgument("serialized record missing field '" +
                                   name + "'");
  }
  if (it->second.type != kRecVec) {
    return Status::InvalidArgument(
        "serialized field '" + name + "' has type " +
        FieldTypeName(it->second.type) + ", expected " +
        FieldTypeName(kRecVec));
  }
  return std::move(it->second.str_vec);
}

// ---------------------------------------------------------------------------
// Envelope.
// ---------------------------------------------------------------------------

Result<const std::string*> Envelope::Find(const std::string& name) const {
  for (const Section& s : sections) {
    if (s.name == name) return &s.bytes;
  }
  return Status::InvalidArgument("serialized '" + kind +
                                 "' envelope has no '" + name +
                                 "' section");
}

Result<std::string> Envelope::Take(const std::string& name) {
  for (Section& s : sections) {
    if (s.name == name) return std::move(s.bytes);
  }
  return Status::InvalidArgument("serialized '" + kind +
                                 "' envelope has no '" + name +
                                 "' section");
}

std::string WrapEnvelope(const std::string& kind,
                         std::vector<Section> sections) {
  std::string out;
  size_t payload_total = 0;
  for (const Section& s : sections) {
    payload_total += s.name.size() + s.bytes.size() + 20;
  }
  out.reserve(4 + 4 + 8 + kind.size() + 8 + payload_total);
  out.append(kMagic, 4);
  AppendU32(&out, kFormatVersion);
  AppendU64(&out, kind.size());
  out += kind;
  AppendU64(&out, sections.size());
  for (const Section& s : sections) {
    AppendU64(&out, s.name.size());
    out += s.name;
    AppendU64(&out, s.bytes.size());
    AppendU32(&out, Crc32c(s.bytes));
    out += s.bytes;
  }
  return out;
}

Result<Envelope> UnwrapEnvelope(const std::string& bytes) {
  Cursor c(bytes);
  Envelope env;
  DPB_ASSIGN_OR_RETURN(env.kind, ReadEnvelopeHead(bytes, &c));
  DPB_ASSIGN_OR_RETURN(uint64_t count, c.U64("section count"));
  // Every section costs at least its three fixed-width header fields, so
  // a hostile count is rejected before any allocation.
  if (count > c.remaining() / 20 + 1) {
    return Status::InvalidArgument(
        "serialized envelope claims an implausible section count");
  }
  env.sections.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Section s;
    DPB_ASSIGN_OR_RETURN(s.name, c.Str("section name"));
    DPB_ASSIGN_OR_RETURN(uint64_t len,
                         c.U64("section '" + s.name + "' length"));
    DPB_ASSIGN_OR_RETURN(uint32_t stored_crc,
                         c.U32("section '" + s.name + "' crc"));
    DPB_ASSIGN_OR_RETURN(s.bytes,
                         c.Bytes(len, "section '" + s.name + "' payload"));
    uint32_t computed = Crc32c(s.bytes);
    if (computed != stored_crc) {
      char hex[64];
      std::snprintf(hex, sizeof(hex), "(stored 0x%08x, computed 0x%08x)",
                    stored_crc, computed);
      return Status::DataLoss("section '" + s.name + "' of '" + env.kind +
                              "' failed its CRC32C check " + hex +
                              " — the file is corrupt");
    }
    env.sections.push_back(std::move(s));
  }
  if (!c.done()) {
    return Status::InvalidArgument(
        "serialized envelope has trailing bytes (corrupt or mis-framed)");
  }
  return env;
}

Result<std::string> PeekKind(const std::string& bytes) {
  Cursor c(bytes);
  return ReadEnvelopeHead(bytes, &c);
}

Result<std::vector<SectionSpan>> EnvelopeLayout(const std::string& bytes) {
  Cursor c(bytes);
  DPB_ASSIGN_OR_RETURN(std::string kind, ReadEnvelopeHead(bytes, &c));
  (void)kind;
  DPB_ASSIGN_OR_RETURN(uint64_t count, c.U64("section count"));
  if (count > c.remaining() / 20 + 1) {
    return Status::InvalidArgument(
        "serialized envelope claims an implausible section count");
  }
  std::vector<SectionSpan> spans;
  spans.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SectionSpan span;
    DPB_ASSIGN_OR_RETURN(span.name, c.Str("section name"));
    DPB_ASSIGN_OR_RETURN(uint64_t len,
                         c.U64("section '" + span.name + "' length"));
    DPB_ASSIGN_OR_RETURN(uint32_t crc,
                         c.U32("section '" + span.name + "' crc"));
    (void)crc;
    span.offset = c.pos();
    span.length = len;
    DPB_RETURN_NOT_OK(
        c.Skip(len, "section '" + span.name + "' payload"));
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace wire
}  // namespace dpbench
