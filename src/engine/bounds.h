// Public (data-independent) error bounds.
//
// The paper's §8 highlights that data-independent algorithms admit *public*
// error predictions — a user can know the error before running them —
// while data-dependent algorithms do not, which is a deployment obstacle.
// This module provides closed-form expected scaled errors for the
// data-independent suite on the benchmark workloads; bench_ablation_bounds
// validates the predictions against measurements.
#ifndef DPBENCH_ENGINE_BOUNDS_H_
#define DPBENCH_ENGINE_BOUNDS_H_

#include "src/common/status.h"
#include "src/workload/workload.h"

namespace dpbench {

/// Expected scaled L2-per-query error of IDENTITY on a workload:
/// each query q accumulates |q| independent Laplace(1/eps) variances, so
/// E||Wx - Wx_hat||^2 = sum_q |q| * 2/eps^2 and the scaled error estimate
/// is sqrt of that / (scale * |W|). (sqrt-of-mean, a slight upper bias vs
/// the mean-of-sqrt actually reported; within a few percent for large q.)
Result<double> IdentityExpectedError(const Workload& w, double epsilon,
                                     double scale);

/// Expected scaled error of UNIFORM on a *known shape*: the bias term
/// ||W(p - u)||_2 * scale dominates, plus the scale-estimate noise.
/// Requires the shape only — callers use public/synthetic shapes.
Result<double> UniformExpectedError(const Workload& w, double epsilon,
                                    double scale,
                                    const std::vector<double>& shape);

/// Expected scaled error of the b-ary hierarchical strategy with uniform
/// budget and GLS inference, computed exactly via the matrix-mechanism
/// formula (O(n^3); intended for n <= ~512).
Result<double> HierarchicalExpectedError(const Workload& w, double epsilon,
                                         double scale, size_t branching);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_BOUNDS_H_
