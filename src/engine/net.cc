#include "src/engine/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace dpbench {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// One bounded poll for readability/writability. Returns +1 ready, 0
// timeout, -1 error (errno set). EINTR counts as a timeout slice — the
// callers' outer loops re-check their own deadlines.
int PollOne(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  int rc = ::poll(&p, 1, timeout_ms);
  if (rc < 0 && errno == EINTR) return 0;
  return rc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), rx_(std::move(other.rx_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rx_ = std::move(other.rx_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

Status Socket::SendFrame(const std::string& payload) {
  if (!valid()) return Status::Unavailable("send on closed socket");
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the 1 GiB frame limit");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char head[4] = {
      static_cast<unsigned char>(len),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 24),
  };
  std::string buf(reinterpret_cast<char*>(head), 4);
  buf += payload;
  size_t sent = 0;
  while (sent < buf.size()) {
    ssize_t n =
        ::send(fd_, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("send failed"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Socket::RecvFrame(int timeout_ms) {
  if (!valid()) return Status::Unavailable("recv on closed socket");
  // Deadline accounting without a wall clock: each poll consumes its own
  // timeout from the remaining budget. timeout_ms < 0 waits forever.
  int remaining = timeout_ms;
  for (;;) {
    // A complete frame may already be buffered from a prior timed-out
    // call that read the prefix but not the payload.
    if (rx_.size() >= 4) {
      uint32_t len = static_cast<uint8_t>(rx_[0]) |
                     (static_cast<uint32_t>(static_cast<uint8_t>(rx_[1]))
                      << 8) |
                     (static_cast<uint32_t>(static_cast<uint8_t>(rx_[2]))
                      << 16) |
                     (static_cast<uint32_t>(static_cast<uint8_t>(rx_[3]))
                      << 24);
      if (len > kMaxFrameBytes) {
        return Status::InvalidArgument(
            "frame length prefix of " + std::to_string(len) +
            " bytes exceeds the 1 GiB frame limit (framing desync?)");
      }
      if (rx_.size() >= 4 + static_cast<size_t>(len)) {
        Frame f;
        f.bytes = rx_.substr(4, len);
        rx_.erase(0, 4 + static_cast<size_t>(len));
        return f;
      }
    }
    int slice = remaining;
    int rc = PollOne(fd_, POLLIN, slice);
    if (rc < 0) return Status::Unavailable(Errno("poll failed"));
    if (rc == 0) {
      Frame f;
      f.timed_out = true;
      return f;
    }
    char chunk[64 * 1024];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("recv failed"));
    }
    if (n == 0) {
      return Status::Unavailable("peer closed the connection" +
                                 std::string(rx_.empty() ? "" : " mid-frame"));
    }
    rx_.append(chunk, static_cast<size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Result<Listener> Listener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket failed"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return Status::Unavailable(Errno("bind to 127.0.0.1:" +
                                     std::to_string(port) + " failed"));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return Status::Unavailable(Errno("listen failed"));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) < 0) {
    ::close(fd);
    return Status::Unavailable(Errno("getsockname failed"));
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Result<Socket> Listener::Accept(int timeout_ms) {
  if (!valid()) return Status::Unavailable("accept on closed listener");
  int rc = PollOne(fd_, POLLIN, timeout_ms);
  if (rc < 0) return Status::Unavailable(Errno("poll failed"));
  if (rc == 0) return Socket();  // deadline expired, no connection
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Socket();
    return Status::Unavailable(Errno("accept failed"));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

// ---------------------------------------------------------------------------
// Connect
// ---------------------------------------------------------------------------

Result<Socket> Connect(uint16_t port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket failed"));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Non-blocking connect so the wait is bounded by poll, then back to
  // blocking mode for the frame IO.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Status::Unavailable(Errno("connect to 127.0.0.1:" +
                                     std::to_string(port) + " failed"));
  }
  if (rc < 0) {
    int ready = PollOne(fd, POLLOUT, timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      return Status::Unavailable("connect to 127.0.0.1:" +
                                 std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      ::close(fd);
      return Status::Unavailable("connect to 127.0.0.1:" +
                                 std::to_string(port) +
                                 " failed: " + std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace net
}  // namespace dpbench
