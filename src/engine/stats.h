// Statistical machinery for DPBench's measurement standards (paper §5.3):
// trial summaries (mean, 95th percentile), Welch's unpaired t-test, and the
// Bonferroni-corrected competitiveness determination used by Tables 3a/3b.
#ifndef DPBENCH_ENGINE_STATS_H_
#define DPBENCH_ENGINE_STATS_H_

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dpbench {

/// Summary of repeated error measurements of one algorithm configuration.
struct ErrorSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double p95 = 0.0;  ///< 95th percentile error ("risk-averse" measure)
  size_t trials = 0;
};

/// Computes the summary from raw per-trial errors.
Result<ErrorSummary> Summarize(const std::vector<double>& errors);

/// O(1)-memory trial summary for paper-scale runs (millions of trials per
/// grid): Welford's algorithm for mean/variance plus the P-squared
/// streaming estimator (Jain & Chlamtac, CACM'85) for the 95th percentile.
///
/// Mean and stddev agree with the exact batch Summarize() to floating-
/// point accumulation accuracy (~1e-15 relative). The p95 is exact while
/// fewer than kExactWindow observations have arrived (they are kept in a
/// fixed-size window and the batch percentile is computed from it) and
/// switches to the P-squared marker estimate from then on.
class StreamingSummary {
 public:
  /// Observations kept for the exact small-sample percentile fallback.
  static constexpr size_t kExactWindow = 50;

  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< unbiased (n-1); 0 for n < 2
  double stddev() const;
  double p95() const;

  /// The summary of everything Add()ed so far; InvalidArgument when no
  /// trials were observed (mirroring Summarize on an empty vector).
  Result<ErrorSummary> Finalize() const;

  /// Complete snapshot of the accumulator, exposed so mid-stream state can
  /// be serialized (engine/serialize) and later resumed: an accumulator
  /// restored with FromState and fed the remaining observations produces
  /// bit-identical results to one that saw the whole stream.
  struct State {
    uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    std::array<double, kExactWindow> window{};
    std::array<double, 5> q{};
    std::array<double, 5> pos{};
    std::array<double, 5> des{};
  };

  State state() const;
  static StreamingSummary FromState(const State& s);

 private:
  void AddP2(double x);

  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations (Welford)

  std::array<double, kExactWindow> window_{};  // first kExactWindow values

  // P-squared state: 5 markers tracking {min, p/2, p, (1+p)/2, max}.
  std::array<double, 5> q_{};   // marker heights
  std::array<double, 5> pos_{}; // actual marker positions (1-based)
  std::array<double, 5> des_{}; // desired marker positions
};

/// Welch's unpaired two-sample t-test. Returns the two-sided p-value for
/// the null hypothesis that both samples have equal means.
Result<double> WelchTTestPValue(const std::vector<double>& xs,
                                const std::vector<double>& ys);

/// Determines the competitive set (paper §5.3): the algorithm with lowest
/// mean error plus every algorithm whose mean is not significantly higher
/// (Welch t-test at alpha = `alpha` / (num_algorithms - 1), Bonferroni).
/// Input: per-algorithm raw trial errors. Output: competitive names.
Result<std::vector<std::string>> CompetitiveSet(
    const std::map<std::string, std::vector<double>>& errors_by_algorithm,
    double alpha = 0.05);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_STATS_H_
