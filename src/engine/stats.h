// Statistical machinery for DPBench's measurement standards (paper §5.3):
// trial summaries (mean, 95th percentile), Welch's unpaired t-test, and the
// Bonferroni-corrected competitiveness determination used by Tables 3a/3b.
#ifndef DPBENCH_ENGINE_STATS_H_
#define DPBENCH_ENGINE_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dpbench {

/// Summary of repeated error measurements of one algorithm configuration.
struct ErrorSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double p95 = 0.0;  ///< 95th percentile error ("risk-averse" measure)
  size_t trials = 0;
};

/// Computes the summary from raw per-trial errors.
Result<ErrorSummary> Summarize(const std::vector<double>& errors);

/// Welch's unpaired two-sample t-test. Returns the two-sided p-value for
/// the null hypothesis that both samples have equal means.
Result<double> WelchTTestPValue(const std::vector<double>& xs,
                                const std::vector<double>& ys);

/// Determines the competitive set (paper §5.3): the algorithm with lowest
/// mean error plus every algorithm whose mean is not significantly higher
/// (Welch t-test at alpha = `alpha` / (num_algorithms - 1), Bonferroni).
/// Input: per-algorithm raw trial errors. Output: competitive names.
Result<std::vector<std::string>> CompetitiveSet(
    const std::map<std::string, std::vector<double>>& errors_by_algorithm,
    double alpha = 0.05);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_STATS_H_
