// The DPBench experiment runner: the loop over
// {algorithm x dataset x scale x domain x epsilon x trials} that produces
// the paper's figures and tables.
//
// For each configuration the runner draws `data_samples` fresh data vectors
// from the data generator G and executes each algorithm `runs_per_sample`
// times per vector (paper §6.1 uses 5 x 10).
//
// Execution is a plan-once / execute-many pipeline: data-independent
// mechanism state (strategy trees, measurement matrices, budget splits) is
// planned once per (algorithm, domain, workload, epsilon) and cached, then
// every trial of every cell sharing that configuration executes the cached
// plan against its data sample. Cells run on a work-stealing thread pool.
#ifndef DPBENCH_ENGINE_RUNNER_H_
#define DPBENCH_ENGINE_RUNNER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/algorithms/mechanism.h"
#include "src/common/status.h"
#include "src/engine/stats.h"
#include "src/workload/workload.h"

namespace dpbench {

/// Which workload the benchmark instantiates (paper §6.2).
enum class WorkloadKind {
  kPrefix1D,        ///< Prefix workload: [0, i] for all i
  kRandomRange2D,   ///< 2000 random range queries
  kIdentity,        ///< per-cell queries (used for domain-size studies)
};

/// Full grid specification for one experiment.
struct ExperimentConfig {
  std::vector<std::string> algorithms;
  std::vector<std::string> datasets;
  std::vector<uint64_t> scales;
  std::vector<size_t> domain_sizes;  ///< per-dimension size (e.g. 4096, 128)
  std::vector<double> epsilons;
  WorkloadKind workload = WorkloadKind::kPrefix1D;
  size_t random_queries = 2000;   ///< for kRandomRange2D
  size_t data_samples = 5;        ///< data vectors drawn from G
  size_t runs_per_sample = 10;    ///< algorithm executions per vector
  uint64_t seed = 20160626;       ///< master seed (SIGMOD'16 vintage)
  bool provide_true_scale = true; ///< expose scale as side info (paper §6.4)
  size_t threads = 1;             ///< worker threads (cells are independent)
  /// Pin the pool's spawned workers to cores (pthread_setaffinity_np,
  /// Linux, best-effort) so persistent workers keep cache/NUMA locality
  /// across phases on large multi-socket grids. Off by default; never
  /// affects results (execution-only, excluded from shard-config
  /// identity). RunDiagnostics::pool_workers_pinned reports how many
  /// workers the affinity call actually stuck.
  bool pin_threads = false;
  /// When false, per-trial errors are folded into a StreamingSummary and
  /// CellResult::errors stays empty: memory per cell is O(1) in the trial
  /// count (the paper-scale mode). Mean/stddev then agree with the exact
  /// path to accumulation accuracy and p95 is the P-squared estimate (exact
  /// below StreamingSummary::kExactWindow trials). Raw-error consumers
  /// (GroupBySetting/CompetitiveSet) need the default `true`.
  bool retain_raw_errors = true;
  /// Deterministic grid partitioning for multi-process runs: this process
  /// executes only the cells whose canonical grid index i satisfies
  /// i % shard_count == shard_index (a strided split, so uneven grids stay
  /// balanced). Cells are enumerated in a stable canonical order and every
  /// random stream is derived from (seed, cell identity), so the union of
  /// any shard partition is bit-identical to the monolithic run
  /// (shard_count=1). Merge shard outputs with engine/serialize's
  /// MergeShards or the dpbench_merge tool.
  size_t shard_index = 0;
  size_t shard_count = 1;
};

/// Identifier of one grid cell.
struct ConfigKey {
  std::string algorithm;
  std::string dataset;
  uint64_t scale = 0;
  size_t domain_size = 0;
  double epsilon = 0.0;

  bool operator<(const ConfigKey& other) const;
  std::string ToString() const;
};

/// Result of one grid cell: raw per-trial errors plus the summary.
/// `errors` is empty when the run used retain_raw_errors=false.
/// `grid_index` is the cell's position in the canonical full-grid
/// enumeration (identical across shard assignments; shard merge sorts by
/// it to reproduce the monolithic result order).
struct CellResult {
  ConfigKey key;
  size_t grid_index = 0;
  std::vector<double> errors;
  ErrorSummary summary;
};

/// A grid combination the runner did not execute (e.g. a 1D-only algorithm
/// on a 2D dataset). One record per (algorithm, dataset, domain_size);
/// scales and epsilons are orthogonal to the skip reason.
struct SkippedCombo {
  std::string algorithm;
  std::string dataset;
  size_t domain_size = 0;
  size_t dims = 0;
  std::string reason;
};

/// Where the time went in one Runner::Run invocation, plus everything that
/// was skipped. Optional output — pass to Run() when you care.
struct RunDiagnostics {
  std::vector<SkippedCombo> skipped;
  size_t cells = 0;            ///< grid cells executed (this shard)
  size_t grid_cells = 0;       ///< non-skipped cells in the *full* grid
  size_t trials = 0;           ///< total mechanism executions
  size_t plans_built = 0;      ///< unique plans constructed by planning
  size_t plans_hydrated = 0;   ///< plans restored from a serialized cache
  size_t plan_cache_hits = 0;  ///< cell-plan lookups served from cache
  double plan_seconds = 0.0;     ///< wall time building plans
  double execute_seconds = 0.0;  ///< wall time executing cells
  double trials_per_second = 0.0;  ///< trials / execute_seconds
  /// Pool utilization over this run (persistent-pool counters).
  uint64_t pool_parallel_jobs = 0;   ///< ParallelFor phases served
  uint64_t pool_tasks_executed = 0;  ///< plan + cell tasks run on the pool
  uint64_t pool_tasks_stolen = 0;    ///< tasks balanced via work stealing
  uint64_t pool_workers_pinned = 0;  ///< workers with core affinity applied
  /// NUMA placement over this run: the node count the pool planned
  /// against, workers per node (pool node order), steals that crossed a
  /// node boundary (placement violated to balance the tail — locality
  /// cost, never a correctness event), and the analytic memory traffic
  /// per trial (8 bytes per Philox draw + one estimate write + one
  /// workload read per domain cell). On single-node machines numa_nodes
  /// is 1 and pool_tasks_stolen_remote is 0.
  size_t numa_nodes = 0;
  std::vector<uint64_t> node_workers;
  uint64_t pool_tasks_stolen_remote = 0;
  double bytes_per_trial = 0.0;
  /// Lockstep execution: the ISA tier the dispatcher selected for this
  /// run ("scalar"/"sse2"/"avx2"; "mixed" after merging shards that
  /// disagree), its lane width, and how many trials ran through the
  /// lane-batched ExecuteMany path vs. the scalar loop (remainders and
  /// data-dependent plans). lockstep_trials + scalar_trials == trials.
  std::string isa_tier;
  size_t lane_width = 0;
  uint64_t lockstep_trials = 0;
  uint64_t scalar_trials = 0;
};

/// A set of serialized mechanism plans keyed by the runner's plan-cache
/// key. Passed into Runner::Run to hydrate plans instead of planning
/// (sharded/repeated runs), or filled by it to persist the plans it built.
struct PlanStore {
  std::map<std::string, PlanPayload> plans;
};

/// Runs the grid. `progress` (optional) is invoked after each cell.
class Runner {
 public:
  using ProgressFn = std::function<void(const CellResult&)>;

  /// Executes all configurations; failures on individual cells abort with
  /// the offending status (no partial silent results).
  ///
  /// Results are bit-identical regardless of `config.threads`, of the
  /// *order* of the algorithm/dataset lists, and of the shard assignment:
  /// every cell's randomness is derived from a hash of (seed, cell key)
  /// via CellStreamSeed (full-precision epsilon), the data samples from
  /// (seed, dataset, domain, scale), and plans are deterministic
  /// (planning never draws randomness).
  ///
  /// `hydrate_plans` (optional): plans found here (by plan-cache key) are
  /// rehydrated through Mechanism::HydratePlan instead of planned; a
  /// present-but-invalid payload aborts the run (a wrong cache must fail
  /// loudly). `export_plans` (optional): receives the serializable payload
  /// of every precomputed plan this run used, keyed for later hydration.
  static Result<std::vector<CellResult>> Run(
      const ExperimentConfig& config, ProgressFn progress = nullptr,
      RunDiagnostics* diagnostics = nullptr,
      const PlanStore* hydrate_plans = nullptr,
      PlanStore* export_plans = nullptr);

  /// Groups cell results by (dataset, scale, domain, eps), mapping
  /// algorithm name to raw errors — the input shape CompetitiveSet needs.
  /// This overload copies every error vector; prefer the rvalue overload
  /// when the results are not needed afterwards.
  static std::map<std::string, std::map<std::string, std::vector<double>>>
  GroupBySetting(const std::vector<CellResult>& results);

  /// Moving overload: steals each cell's error vector instead of copying,
  /// so competitive-set analysis does not double paper-scale memory.
  static std::map<std::string, std::map<std::string, std::vector<double>>>
  GroupBySetting(std::vector<CellResult>&& results);
};

/// Builds the benchmark workload for a domain.
Workload MakeWorkload(WorkloadKind kind, const Domain& domain,
                      size_t random_queries, uint64_t seed);

/// Seed of a grid cell's random stream: a hash of the master seed and the
/// cell's structured identity. The epsilon is mixed by bit pattern, so
/// near-equal epsilons from generated sweeps never collide onto one stream
/// (a formatted-label seed would collapse them at print precision).
/// Exposed so sharded workers and tests can reproduce any single cell.
uint64_t CellStreamSeed(uint64_t master_seed, const ConfigKey& key);

}  // namespace dpbench

#endif  // DPBENCH_ENGINE_RUNNER_H_
