#include "src/common/rng.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/logging.h"

namespace dpbench {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

SeedMixer::SeedMixer(uint64_t master) : h_(kFnvOffset ^ master) {
  h_ *= kFnvPrime;
}

SeedMixer& SeedMixer::Mix(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xffULL;
    h_ *= kFnvPrime;
  }
  return *this;
}

SeedMixer& SeedMixer::Mix(const std::string& s) {
  for (char c : s) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= kFnvPrime;
  }
  // Fold the length in as a delimiter so adjacent string fields cannot
  // collide by re-splitting the same concatenation ("AB","C" vs "A","BC").
  return Mix(static_cast<uint64_t>(s.size()));
}

SeedMixer& SeedMixer::MixDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(bits);
}

uint64_t StreamSeed(uint64_t master, const std::string& label) {
  return SeedMixer(master).Mix(label).seed();
}

double Rng::Uniform() {
  // Explicit 53-bit mantissa scaling: exact values in [0, 1) with the full
  // double resolution, independent of the standard library's
  // implementation-defined uniform_real_distribution (which also costs
  // ~2x more per draw — this is the innermost operation of every noisy
  // trial). Same mt19937_64 stream consumption: one 64-bit draw.
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

uint64_t Rng::UniformInt(uint64_t n) {
  DPB_CHECK_GT(n, 0u);
  return std::uniform_int_distribution<uint64_t>(0, n - 1)(gen_);
}

double Rng::Laplace(double scale) {
  DPB_CHECK(std::isfinite(scale) && scale > 0.0);
  // Inverse CDF: u in (-1/2, 1/2), x = -scale * sgn(u) * ln(1 - 2|u|).
  // ln is computed as log(1 - mag) rather than log1p(-mag): identical to
  // double precision for this use (mag is a random magnitude, not a tiny
  // increment) and about 2x faster in glibc — this is the innermost call
  // of every noisy trial, drawn O(domain) times per execution.
  double u = Uniform() - 0.5;
  double sign = (u < 0) ? -1.0 : 1.0;
  double mag = std::min(std::abs(u) * 2.0,
                        1.0 - std::numeric_limits<double>::epsilon());
  return -scale * sign * std::log(1.0 - mag);
}

double Rng::Gumbel() {
  double u = Uniform();
  // Guard against log(0).
  u = std::max(u, std::numeric_limits<double>::min());
  return -std::log(-std::log(u));
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(gen_);
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  return std::binomial_distribution<uint64_t>(n, p)(gen_);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  DPB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DPB_CHECK_GE(w, 0.0);
    total += w;
  }
  DPB_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Floating point slack: last positive bin.
}

std::vector<uint64_t> Rng::Multinomial(uint64_t trials,
                                       const std::vector<double>& probs) {
  DPB_CHECK(!probs.empty());
  double total = 0.0;
  for (double p : probs) {
    DPB_CHECK_GE(p, 0.0);
    total += p;
  }
  std::vector<uint64_t> counts(probs.size(), 0);
  if (total <= 0.0) {
    // All-zero shape: put everything in bin 0 deterministically would skew;
    // treat as uniform.
    double uniform = 1.0 / static_cast<double>(probs.size());
    double remaining_p = 1.0;
    uint64_t remaining_n = trials;
    for (size_t i = 0; i + 1 < probs.size() && remaining_n > 0; ++i) {
      double p = uniform / remaining_p;
      uint64_t c = Binomial(remaining_n, p);
      counts[i] = c;
      remaining_n -= c;
      remaining_p -= uniform;
    }
    counts.back() += remaining_n;
    return counts;
  }
  // Conditional binomial chain: bin i gets Binomial(remaining, p_i / rest).
  double remaining_p = total;
  uint64_t remaining_n = trials;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (remaining_n == 0) break;
    if (i + 1 == probs.size()) {
      counts[i] = remaining_n;
      remaining_n = 0;
      break;
    }
    double p = (remaining_p > 0.0) ? probs[i] / remaining_p : 0.0;
    p = std::min(1.0, std::max(0.0, p));
    uint64_t c = Binomial(remaining_n, p);
    counts[i] = c;
    remaining_n -= c;
    remaining_p -= probs[i];
  }
  return counts;
}

Rng Rng::Fork() {
  return Rng(gen_());
}

}  // namespace dpbench
