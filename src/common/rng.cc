#include "src/common/rng.h"

// This file is compiled with -ffp-contract=off (see CMakeLists.txt): the
// FastLog polynomial and the Laplace transform must evaluate as written,
// without the compiler fusing multiply+add into FMAs, so the noise stream
// is bit-identical across optimization levels, auto-vectorized and scalar
// code paths, and toolchains.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/lockstep.h"
#include "src/common/logging.h"
#include "src/common/rng_transform.h"

namespace dpbench {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// The transform bodies (FastLogImpl, LaplaceFromDraw, ...) live in
// src/common/rng_transform.h so the ISA-dispatched lockstep fill kernels
// compile the identical source; this file keeps the scalar entry points.
using rng_transform::kPhiloxM0;
using rng_transform::kPhiloxM1;
using rng_transform::kPhiloxW0;
using rng_transform::kPhiloxW1;
using rng_transform::FastLogImpl;
using rng_transform::LaplaceFromDraw;
using rng_transform::UniformFromDraw;
using rng_transform::kFillChunk;

}  // namespace

SeedMixer::SeedMixer(uint64_t master) : h_(kFnvOffset ^ master) {
  h_ *= kFnvPrime;
}

SeedMixer& SeedMixer::Mix(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xffULL;
    h_ *= kFnvPrime;
  }
  return *this;
}

SeedMixer& SeedMixer::Mix(const std::string& s) {
  for (char c : s) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= kFnvPrime;
  }
  // Fold the length in as a delimiter so adjacent string fields cannot
  // collide by re-splitting the same concatenation ("AB","C" vs "A","BC").
  return Mix(static_cast<uint64_t>(s.size()));
}

SeedMixer& SeedMixer::MixDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(bits);
}

uint64_t StreamSeed(uint64_t master, const std::string& label) {
  return SeedMixer(master).Mix(label).seed();
}

void Philox4x32::BlockRaw(const uint32_t ctr[4], const uint32_t key[2],
                          uint32_t out[4]) {
  uint32_t c0 = ctr[0], c1 = ctr[1], c2 = ctr[2], c3 = ctr[3];
  uint32_t k0 = key[0], k1 = key[1];
  for (int round = 0;; ++round) {
    // One Philox S-box: two 32x32 -> 64 multiplies, then a word shuffle
    // xored with the counter and the (round-bumped) key.
    uint64_t p0 = kPhiloxM0 * c0;
    uint64_t p1 = kPhiloxM1 * c2;
    uint32_t hi0 = static_cast<uint32_t>(p0 >> 32);
    uint32_t lo0 = static_cast<uint32_t>(p0);
    uint32_t hi1 = static_cast<uint32_t>(p1 >> 32);
    uint32_t lo1 = static_cast<uint32_t>(p1);
    c0 = hi1 ^ c1 ^ k0;
    c1 = lo1;
    c2 = hi0 ^ c3 ^ k1;
    c3 = lo0;
    if (round == 9) break;
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
}

void Philox4x32::Block(uint64_t key, uint64_t block, uint64_t out[2]) {
  uint32_t ctr[4] = {static_cast<uint32_t>(block),
                     static_cast<uint32_t>(block >> 32), 0, 0};
  uint32_t k[2] = {static_cast<uint32_t>(key),
                   static_cast<uint32_t>(key >> 32)};
  uint32_t o[4];
  BlockRaw(ctr, k, o);
  out[0] = o[0] | (static_cast<uint64_t>(o[1]) << 32);
  out[1] = o[2] | (static_cast<uint64_t>(o[3]) << 32);
}

Philox4x32::result_type Philox4x32::operator()() {
  uint64_t block = pos_ >> 1;
  if (!have_block_ || cached_block_ != block) {
    Block(key_, block, buf_);
    cached_block_ = block;
    have_block_ = true;
  }
  return buf_[pos_++ & 1];
}

void Philox4x32::FillRaw(uint64_t* out, size_t n) {
  size_t i = 0;
  if (n == 0) return;
  if (pos_ & 1) {
    // Mid-block: emit the second half of the current block first (through
    // the cache, so it is not recomputed if a scalar draw just made it).
    out[i++] = (*this)();
  }
  while (n - i >= 2) {
    Block(key_, pos_ >> 1, out + i);
    pos_ += 2;
    i += 2;
  }
  if (i < n) {
    // Trailing lone draw: cache the block so the next draw's second half
    // does not recompute it.
    uint64_t block = pos_ >> 1;
    Block(key_, block, buf_);
    cached_block_ = block;
    have_block_ = true;
    out[i] = buf_[0];
    ++pos_;
  }
}

void Philox4x32::FillRawAt(uint64_t pos, uint64_t* out, size_t n) const {
  size_t i = 0;
  if (n == 0) return;
  if (pos & 1) {
    // Mid-block start: emit the second half of the straddled block.
    uint64_t b[2];
    Block(key_, pos >> 1, b);
    out[i++] = b[1];
    ++pos;
  }
  while (n - i >= 2) {
    Block(key_, pos >> 1, out + i);
    pos += 2;
    i += 2;
  }
  if (i < n) {
    uint64_t b[2];
    Block(key_, pos >> 1, b);
    out[i] = b[0];
  }
}

double FastLog(double x) {
  DPB_CHECK(std::isnormal(x) && x > 0.0);
  return FastLogImpl(x);
}

double Rng::Uniform() {
  // Explicit 53-bit mantissa scaling: exact values in [0, 1) with the full
  // double resolution, independent of the standard library's
  // implementation-defined uniform_real_distribution. One 64-bit draw.
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  // The affine map can round up to hi when Uniform() is close to 1; clamp
  // to the largest double below hi to keep the half-open contract.
  double r = lo + Uniform() * (hi - lo);
  return r < hi ? r : std::nextafter(hi, lo);
}

uint64_t Rng::UniformInt(uint64_t n) {
  DPB_CHECK_GT(n, 0u);
  // Lemire's multiply-shift: map a 64-bit draw onto [0, n) through the
  // high word of a 128-bit product, rejecting the sliver of draws that
  // would bias low values. Exact, and unlike
  // std::uniform_int_distribution not implementation-defined.
  unsigned __int128 product =
      static_cast<unsigned __int128>(gen_()) * n;
  uint64_t low = static_cast<uint64_t>(product);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;  // (2^64 - n) mod n
    while (low < threshold) {
      product = static_cast<unsigned __int128>(gen_()) * n;
      low = static_cast<uint64_t>(product);
    }
  }
  return static_cast<uint64_t>(product >> 64);
}

double Rng::Laplace(double scale) {
  DPB_CHECK(std::isfinite(scale) && scale > 0.0);
  return LaplaceFromDraw(gen_(), scale);
}

void Rng::FillUniform(double* out, size_t n) {
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = UniformFromDraw(raw[j]);
    }
    i += chunk;
  }
}

void Rng::FillLaplace(double* out, size_t n, double scale) {
  DPB_CHECK(std::isfinite(scale) && scale > 0.0);
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = LaplaceFromDraw(raw[j], scale);
    }
    i += chunk;
  }
}

void Rng::FillLaplace(double* out, const double* scales, size_t n) {
  // Same per-draw validation as the scalar path, hoisted out of the
  // transform loop so it stays branch-free.
  for (size_t k = 0; k < n; ++k) {
    DPB_CHECK(std::isfinite(scales[k]) && scales[k] > 0.0);
  }
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    const double* sc = scales + i;
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = LaplaceFromDraw(raw[j], sc[j]);
    }
    i += chunk;
  }
}

// The lane-strided fills route through the dispatched lockstep kernel
// table: the kernel bodies (lockstep_kernels.inc) compile the same
// rng_transform.h source as this file, but at the active tier's ISA, so
// noise generation for a lockstep batch runs at AVX2 width on AVX2
// machines while staying byte-identical to the scalar fills (integer
// Philox blocks; contract-off IEEE transforms). The generator only lends
// its (key, position) and skips past the consumed draws — its block cache
// is untouched, exactly like the FillRawAt-based path these replaced.

void Rng::FillUniformLanes(double* out, size_t n, size_t lanes) {
  DPB_CHECK_GE(lanes, 1u);
  lockstep::Active().fill_uniform_lanes(gen_.key(), gen_.position(), out, n,
                                        lanes);
  gen_.Skip(static_cast<uint64_t>(lanes) * n);
}

void Rng::FillLaplaceLanes(double* out, size_t n, double scale,
                           size_t lanes) {
  DPB_CHECK(std::isfinite(scale) && scale > 0.0);
  DPB_CHECK_GE(lanes, 1u);
  lockstep::Active().fill_laplace_lanes(gen_.key(), gen_.position(), out, n,
                                        scale, lanes);
  gen_.Skip(static_cast<uint64_t>(lanes) * n);
}

void Rng::FillLaplaceLanes(double* out, const double* scales, size_t n,
                           size_t lanes) {
  DPB_CHECK_GE(lanes, 1u);
  for (size_t k = 0; k < n; ++k) {
    DPB_CHECK(std::isfinite(scales[k]) && scales[k] > 0.0);
  }
  lockstep::Active().fill_laplace_lanes_scales(gen_.key(), gen_.position(),
                                               out, scales, n, lanes);
  gen_.Skip(static_cast<uint64_t>(lanes) * n);
}

double Rng::Gumbel() {
  double u = Uniform();
  // Guard against log(0).
  u = std::max(u, std::numeric_limits<double>::min());
  return -std::log(-std::log(u));
}

void Rng::FillGumbel(double* out, size_t n) {
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    // Two passes with one FastLogImpl each: a single loop with both logs
    // defeats GCC's if-conversion (the blend inside FastLogImpl is only
    // if-converted once per body), leaving the whole transform scalar.
    // The midpoint uniform u = (k + 0.5) * 2^-53 is strictly inside
    // (0, 1), so no log(0) guard (another conditional) is needed, and
    // both log arguments stay positive normals: -log(u) lies in
    // [2^-54, 37.4].
    for (size_t j = 0; j < chunk; ++j) {
      double u =
          (static_cast<double>(raw[j] >> 11) + 0.5) * 0x1.0p-53;
      o[j] = -FastLogImpl(u);
    }
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = -FastLogImpl(o[j]);
    }
    i += chunk;
  }
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(gen_);
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  return std::binomial_distribution<uint64_t>(n, p)(gen_);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  DPB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DPB_CHECK_GE(w, 0.0);
    total += w;
  }
  DPB_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Floating point slack: last positive bin.
}

std::vector<uint64_t> Rng::Multinomial(uint64_t trials,
                                       const std::vector<double>& probs) {
  DPB_CHECK(!probs.empty());
  double total = 0.0;
  for (double p : probs) {
    DPB_CHECK_GE(p, 0.0);
    total += p;
  }
  std::vector<uint64_t> counts(probs.size(), 0);
  if (total <= 0.0) {
    // All-zero shape: put everything in bin 0 deterministically would skew;
    // treat as uniform.
    double uniform = 1.0 / static_cast<double>(probs.size());
    double remaining_p = 1.0;
    uint64_t remaining_n = trials;
    for (size_t i = 0; i + 1 < probs.size() && remaining_n > 0; ++i) {
      double p = uniform / remaining_p;
      uint64_t c = Binomial(remaining_n, p);
      counts[i] = c;
      remaining_n -= c;
      remaining_p -= uniform;
    }
    counts.back() += remaining_n;
    return counts;
  }
  // Conditional binomial chain: bin i gets Binomial(remaining, p_i / rest).
  double remaining_p = total;
  uint64_t remaining_n = trials;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (remaining_n == 0) break;
    if (i + 1 == probs.size()) {
      counts[i] = remaining_n;
      remaining_n = 0;
      break;
    }
    double p = (remaining_p > 0.0) ? probs[i] / remaining_p : 0.0;
    p = std::min(1.0, std::max(0.0, p));
    uint64_t c = Binomial(remaining_n, p);
    counts[i] = c;
    remaining_n -= c;
    remaining_p -= probs[i];
  }
  return counts;
}

Rng Rng::Fork() {
  return Rng(gen_());
}

}  // namespace dpbench
