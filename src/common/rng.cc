#include "src/common/rng.h"

// This file is compiled with -ffp-contract=off (see CMakeLists.txt): the
// FastLog polynomial and the Laplace transform must evaluate as written,
// without the compiler fusing multiply+add into FMAs, so the noise stream
// is bit-identical across optimization levels, auto-vectorized and scalar
// code paths, and toolchains.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/logging.h"

namespace dpbench {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Philox4x32 round constants (Random123's PHILOX_M4x32_* / PHILOX_W32_*).
constexpr uint64_t kPhiloxM0 = 0xD2511F53ULL;
constexpr uint64_t kPhiloxM1 = 0xCD9E8D57ULL;
constexpr uint32_t kPhiloxW0 = 0x9E3779B9U;
constexpr uint32_t kPhiloxW1 = 0xBB67AE85U;

inline uint64_t BitsOf(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

inline double DoubleOf(uint64_t bits) {
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

constexpr double kLn2 = 0.6931471805599453;         // round(ln 2)
constexpr double kSqrt2 = 1.4142135623730951;       // round(sqrt 2)

// log(x) for positive normal x: decompose x = m * 2^e with m in
// [1/sqrt2, sqrt2), then log(m) = 2 artanh(s) with s = (m-1)/(m+1),
// |s| <= sqrt2-1 / sqrt2+1 = 0.1716, via the odd series
// 2s (1 + s^2/3 + s^4/5 + ... + s^14/15). Truncation error is below
// 1e-13 relative; every operation is a plain IEEE double op, so a loop
// over this inline body auto-vectorizes and gives bit-identical results
// lane-for-lane with the scalar evaluation.
inline double FastLogImpl(double x) {
  uint64_t bits = BitsOf(x);
  // Exponent as a double via an int32 conversion (packed-vectorizable on
  // SSE2, unlike int64 -> double).
  double e = static_cast<double>(static_cast<int32_t>(bits >> 52)) - 1023.0;
  double m = DoubleOf((bits & 0x000FFFFFFFFFFFFFULL) |
                      0x3FF0000000000000ULL);  // mantissa in [1, 2)
  // Shift m into [1/sqrt2, sqrt2) so the series argument stays small.
  // The select is a single arithmetic blend — m - shift*(0.5*m) is
  // exactly 0.5*m or m since halving is exact — because a shared boolean
  // feeding two conditional moves defeats GCC's loop if-conversion and
  // would leave the whole transform scalar.
  double shift = (m > kSqrt2) ? 1.0 : 0.0;
  e += shift;
  m = m - shift * (0.5 * m);
  double s = (m - 1.0) / (m + 1.0);
  double z = s * s;
  double p = 1.0 / 15.0;
  p = p * z + 1.0 / 13.0;
  p = p * z + 1.0 / 11.0;
  p = p * z + 1.0 / 9.0;
  p = p * z + 1.0 / 7.0;
  p = p * z + 1.0 / 5.0;
  p = p * z + 1.0 / 3.0;
  p = p * z + 1.0;
  return e * kLn2 + 2.0 * s * p;
}

// Laplace(0, scale) from one raw 64-bit draw; shared by the scalar and
// block paths so they are bit-identical by construction. The top 52 bits
// build u in (0, 1] directly in the mantissa (2 - [1,2) avoids an
// unvectorizable uint64 -> double conversion and log(0)), bit 0 flips the
// sign of the non-positive scale * log(u) through the IEEE sign bit —
// no branches, no libm.
inline double LaplaceFromDraw(uint64_t r, double scale) {
  double u = 2.0 - DoubleOf(0x3FF0000000000000ULL | (r >> 12));  // (0, 1]
  double v = scale * FastLogImpl(u);                             // <= 0
  return DoubleOf(BitsOf(v) ^ ((r & 1) << 63));
}

// Fill granularity: raw counter output is staged through a fixed stack
// chunk (2 KiB) so fills of any length stay allocation-free and the
// transform runs over a cache-hot contiguous buffer.
constexpr size_t kFillChunk = 256;

}  // namespace

SeedMixer::SeedMixer(uint64_t master) : h_(kFnvOffset ^ master) {
  h_ *= kFnvPrime;
}

SeedMixer& SeedMixer::Mix(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xffULL;
    h_ *= kFnvPrime;
  }
  return *this;
}

SeedMixer& SeedMixer::Mix(const std::string& s) {
  for (char c : s) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= kFnvPrime;
  }
  // Fold the length in as a delimiter so adjacent string fields cannot
  // collide by re-splitting the same concatenation ("AB","C" vs "A","BC").
  return Mix(static_cast<uint64_t>(s.size()));
}

SeedMixer& SeedMixer::MixDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(bits);
}

uint64_t StreamSeed(uint64_t master, const std::string& label) {
  return SeedMixer(master).Mix(label).seed();
}

void Philox4x32::BlockRaw(const uint32_t ctr[4], const uint32_t key[2],
                          uint32_t out[4]) {
  uint32_t c0 = ctr[0], c1 = ctr[1], c2 = ctr[2], c3 = ctr[3];
  uint32_t k0 = key[0], k1 = key[1];
  for (int round = 0;; ++round) {
    // One Philox S-box: two 32x32 -> 64 multiplies, then a word shuffle
    // xored with the counter and the (round-bumped) key.
    uint64_t p0 = kPhiloxM0 * c0;
    uint64_t p1 = kPhiloxM1 * c2;
    uint32_t hi0 = static_cast<uint32_t>(p0 >> 32);
    uint32_t lo0 = static_cast<uint32_t>(p0);
    uint32_t hi1 = static_cast<uint32_t>(p1 >> 32);
    uint32_t lo1 = static_cast<uint32_t>(p1);
    c0 = hi1 ^ c1 ^ k0;
    c1 = lo1;
    c2 = hi0 ^ c3 ^ k1;
    c3 = lo0;
    if (round == 9) break;
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  out[0] = c0;
  out[1] = c1;
  out[2] = c2;
  out[3] = c3;
}

void Philox4x32::Block(uint64_t key, uint64_t block, uint64_t out[2]) {
  uint32_t ctr[4] = {static_cast<uint32_t>(block),
                     static_cast<uint32_t>(block >> 32), 0, 0};
  uint32_t k[2] = {static_cast<uint32_t>(key),
                   static_cast<uint32_t>(key >> 32)};
  uint32_t o[4];
  BlockRaw(ctr, k, o);
  out[0] = o[0] | (static_cast<uint64_t>(o[1]) << 32);
  out[1] = o[2] | (static_cast<uint64_t>(o[3]) << 32);
}

Philox4x32::result_type Philox4x32::operator()() {
  uint64_t block = pos_ >> 1;
  if (!have_block_ || cached_block_ != block) {
    Block(key_, block, buf_);
    cached_block_ = block;
    have_block_ = true;
  }
  return buf_[pos_++ & 1];
}

void Philox4x32::FillRaw(uint64_t* out, size_t n) {
  size_t i = 0;
  if (n == 0) return;
  if (pos_ & 1) {
    // Mid-block: emit the second half of the current block first (through
    // the cache, so it is not recomputed if a scalar draw just made it).
    out[i++] = (*this)();
  }
  while (n - i >= 2) {
    Block(key_, pos_ >> 1, out + i);
    pos_ += 2;
    i += 2;
  }
  if (i < n) {
    // Trailing lone draw: cache the block so the next draw's second half
    // does not recompute it.
    uint64_t block = pos_ >> 1;
    Block(key_, block, buf_);
    cached_block_ = block;
    have_block_ = true;
    out[i] = buf_[0];
    ++pos_;
  }
}

double FastLog(double x) {
  DPB_CHECK(std::isnormal(x) && x > 0.0);
  return FastLogImpl(x);
}

double Rng::Uniform() {
  // Explicit 53-bit mantissa scaling: exact values in [0, 1) with the full
  // double resolution, independent of the standard library's
  // implementation-defined uniform_real_distribution. One 64-bit draw.
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  // The affine map can round up to hi when Uniform() is close to 1; clamp
  // to the largest double below hi to keep the half-open contract.
  double r = lo + Uniform() * (hi - lo);
  return r < hi ? r : std::nextafter(hi, lo);
}

uint64_t Rng::UniformInt(uint64_t n) {
  DPB_CHECK_GT(n, 0u);
  // Lemire's multiply-shift: map a 64-bit draw onto [0, n) through the
  // high word of a 128-bit product, rejecting the sliver of draws that
  // would bias low values. Exact, and unlike
  // std::uniform_int_distribution not implementation-defined.
  unsigned __int128 product =
      static_cast<unsigned __int128>(gen_()) * n;
  uint64_t low = static_cast<uint64_t>(product);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;  // (2^64 - n) mod n
    while (low < threshold) {
      product = static_cast<unsigned __int128>(gen_()) * n;
      low = static_cast<uint64_t>(product);
    }
  }
  return static_cast<uint64_t>(product >> 64);
}

double Rng::Laplace(double scale) {
  DPB_CHECK(std::isfinite(scale) && scale > 0.0);
  return LaplaceFromDraw(gen_(), scale);
}

void Rng::FillUniform(double* out, size_t n) {
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = static_cast<double>(raw[j] >> 11) * 0x1.0p-53;
    }
    i += chunk;
  }
}

void Rng::FillLaplace(double* out, size_t n, double scale) {
  DPB_CHECK(std::isfinite(scale) && scale > 0.0);
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = LaplaceFromDraw(raw[j], scale);
    }
    i += chunk;
  }
}

void Rng::FillLaplace(double* out, const double* scales, size_t n) {
  // Same per-draw validation as the scalar path, hoisted out of the
  // transform loop so it stays branch-free.
  for (size_t k = 0; k < n; ++k) {
    DPB_CHECK(std::isfinite(scales[k]) && scales[k] > 0.0);
  }
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    const double* sc = scales + i;
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = LaplaceFromDraw(raw[j], sc[j]);
    }
    i += chunk;
  }
}

double Rng::Gumbel() {
  double u = Uniform();
  // Guard against log(0).
  u = std::max(u, std::numeric_limits<double>::min());
  return -std::log(-std::log(u));
}

void Rng::FillGumbel(double* out, size_t n) {
  uint64_t raw[kFillChunk];
  size_t i = 0;
  while (i < n) {
    size_t chunk = std::min(n - i, kFillChunk);
    gen_.FillRaw(raw, chunk);
    double* o = out + i;
    // Two passes with one FastLogImpl each: a single loop with both logs
    // defeats GCC's if-conversion (the blend inside FastLogImpl is only
    // if-converted once per body), leaving the whole transform scalar.
    // The midpoint uniform u = (k + 0.5) * 2^-53 is strictly inside
    // (0, 1), so no log(0) guard (another conditional) is needed, and
    // both log arguments stay positive normals: -log(u) lies in
    // [2^-54, 37.4].
    for (size_t j = 0; j < chunk; ++j) {
      double u =
          (static_cast<double>(raw[j] >> 11) + 0.5) * 0x1.0p-53;
      o[j] = -FastLogImpl(u);
    }
    for (size_t j = 0; j < chunk; ++j) {
      o[j] = -FastLogImpl(o[j]);
    }
    i += chunk;
  }
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(gen_);
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  return std::binomial_distribution<uint64_t>(n, p)(gen_);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  DPB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DPB_CHECK_GE(w, 0.0);
    total += w;
  }
  DPB_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Floating point slack: last positive bin.
}

std::vector<uint64_t> Rng::Multinomial(uint64_t trials,
                                       const std::vector<double>& probs) {
  DPB_CHECK(!probs.empty());
  double total = 0.0;
  for (double p : probs) {
    DPB_CHECK_GE(p, 0.0);
    total += p;
  }
  std::vector<uint64_t> counts(probs.size(), 0);
  if (total <= 0.0) {
    // All-zero shape: put everything in bin 0 deterministically would skew;
    // treat as uniform.
    double uniform = 1.0 / static_cast<double>(probs.size());
    double remaining_p = 1.0;
    uint64_t remaining_n = trials;
    for (size_t i = 0; i + 1 < probs.size() && remaining_n > 0; ++i) {
      double p = uniform / remaining_p;
      uint64_t c = Binomial(remaining_n, p);
      counts[i] = c;
      remaining_n -= c;
      remaining_p -= uniform;
    }
    counts.back() += remaining_n;
    return counts;
  }
  // Conditional binomial chain: bin i gets Binomial(remaining, p_i / rest).
  double remaining_p = total;
  uint64_t remaining_n = trials;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (remaining_n == 0) break;
    if (i + 1 == probs.size()) {
      counts[i] = remaining_n;
      remaining_n = 0;
      break;
    }
    double p = (remaining_p > 0.0) ? probs[i] / remaining_p : 0.0;
    p = std::min(1.0, std::max(0.0, p));
    uint64_t c = Binomial(remaining_n, p);
    counts[i] = c;
    remaining_n -= c;
    remaining_p -= probs[i];
  }
  return counts;
}

Rng Rng::Fork() {
  return Rng(gen_());
}

}  // namespace dpbench
