// Status / Result<T> error-handling primitives, in the style used by
// RocksDB and Arrow: recoverable failures travel as values, not exceptions.
#ifndef DPBENCH_COMMON_STATUS_H_
#define DPBENCH_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dpbench {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kNotSupported,
  kDataLoss,     ///< stored bytes failed an integrity check (checksum)
  kUnavailable,  ///< transient transport failure (timeout, peer gone) — retryable
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success/error value. `Status::OK()` carries no
/// allocation; error statuses carry a code and message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T> holds either a value or an error Status (never both).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status out of the current function.
#define DPB_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::dpbench::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result-returning expression, assigning the value on success
/// and returning the error otherwise.
#define DPB_ASSIGN_OR_RETURN(lhs, expr)        \
  auto DPB_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!DPB_CONCAT_(_res_, __LINE__).ok())      \
    return DPB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(DPB_CONCAT_(_res_, __LINE__)).value()

#define DPB_CONCAT_INNER_(a, b) a##b
#define DPB_CONCAT_(a, b) DPB_CONCAT_INNER_(a, b)

}  // namespace dpbench

#endif  // DPBENCH_COMMON_STATUS_H_
