// Seeded random number generation for all DP mechanisms and samplers.
//
// Every randomized component in the library draws from an explicitly passed
// Rng so that experiments are reproducible given a seed (DPBench principle:
// results must be re-runnable).
//
// The engine is *counter-based* (Philox4x32-10): the stream is a pure
// function of (seed, draw index), with no sequential generator state to
// thread through. That buys two properties the experiment engine depends
// on:
//   - block fills and scalar draws read the same stream — FillUniform /
//     FillLaplace produce byte-identical values to the equivalent sequence
//     of Uniform() / Laplace() calls, at any call granularity — so the
//     batched trial hot path and the one-off call sites cannot drift;
//   - any stream position is addressable directly, so per-cell streams in
//     sharded runs stay bit-identical across thread counts and shard
//     partitions by construction.
#ifndef DPBENCH_COMMON_RNG_H_
#define DPBENCH_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace dpbench {

/// Deterministic seed derivation for labelled sub-experiments: an FNV-1a
/// accumulator over a master seed and a sequence of typed fields. Every
/// independent random stream in the experiment engine derives its seed
/// through a mixer so that results depend only on *what* is being run
/// (the master seed plus the identifying fields), never on grid iteration
/// order, shard assignment, or thread scheduling.
///
/// Doubles are mixed by bit pattern, so two fields that differ anywhere in
/// the significand produce different seeds — unlike formatted-string labels,
/// which collapse near-equal values at their print precision.
class SeedMixer {
 public:
  explicit SeedMixer(uint64_t master);

  SeedMixer& Mix(uint64_t v);
  /// Mixes the bytes followed by the length, so adjacent string fields
  /// are delimited ("AB"+"C" and "A"+"BC" produce different seeds).
  SeedMixer& Mix(const std::string& s);
  SeedMixer& MixDouble(double v);  ///< by bit pattern (full precision)

  uint64_t seed() const { return h_; }

 private:
  uint64_t h_;
};

/// Seed for a labelled stream: SeedMixer over the master seed and `label`.
/// (The historical string-label form; structured field mixing via SeedMixer
/// is preferred for new streams with numeric identity.)
uint64_t StreamSeed(uint64_t master, const std::string& label);

/// Counter-based PRNG: Philox4x32 with 10 rounds (Salmon et al., "Parallel
/// Random Numbers: As Easy as 1, 2, 3", SC'11), bit-compatible with
/// Random123's philox4x32-10 for a 64-bit key in the low two key words and
/// a 64-bit counter in the low two counter words. Draw i is 64-bit half
/// (i & 1) of the 128-bit block obtained by encrypting counter (i >> 1)
/// under the key, so the stream is a pure function of (key, position).
///
/// Satisfies UniformRandomBitGenerator, so the standard distributions the
/// non-hot paths still use (normal, binomial) plug in unchanged.
class Philox4x32 {
 public:
  using result_type = uint64_t;

  explicit Philox4x32(uint64_t key = 0) : key_(key) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64-bit draw at the current stream position.
  result_type operator()();

  /// Writes the next `n` 64-bit draws — exactly the values `n` successive
  /// operator() calls would produce, regardless of how draws before or
  /// after this call were grouped.
  void FillRaw(uint64_t* out, size_t n);

  /// Writes the `n` draws at absolute stream positions [pos, pos + n)
  /// without touching the generator's own position or block cache — the
  /// random-access form of FillRaw that the lane-strided fills use to
  /// produce several trials' stream segments from one generator.
  void FillRawAt(uint64_t pos, uint64_t* out, size_t n) const;

  /// Advances the stream position by `draws` without generating output,
  /// as if that many draws had been consumed.
  void Skip(uint64_t draws) { pos_ += draws; }

  /// The 128-bit output block for (key, block index), as two 64-bit words
  /// (out[0] = words 0:1, out[1] = words 2:3).
  static void Block(uint64_t key, uint64_t block, uint64_t out[2]);

  /// The raw Random123-convention form: full 4x32 counter and 2x32 key
  /// words. Exposed so known-answer tests can pin the permutation against
  /// the published philox4x32-10 test vectors.
  static void BlockRaw(const uint32_t ctr[4], const uint32_t key[2],
                       uint32_t out[4]);

  uint64_t key() const { return key_; }
  uint64_t position() const { return pos_; }

 private:
  uint64_t key_;
  uint64_t pos_ = 0;          // index of the next draw
  uint64_t cached_block_ = 0; // block index held in buf_ (if have_block_)
  bool have_block_ = false;
  uint64_t buf_[2] = {0, 0};
};

/// Deterministic natural log for *positive normal* doubles: exponent
/// extraction plus an atanh-series polynomial on the mantissa, built from
/// plain IEEE double multiplies/adds/divides only (no libm call), so a
/// contiguous-buffer transform over it auto-vectorizes and the result is
/// reproducible across standard libraries. Relative accuracy vs a
/// correctly rounded log is ~1e-13 (checked in rng_test), which is far
/// below the statistical resolution of any noise draw. Denormal, zero,
/// negative, and non-finite inputs are caller bugs (checked).
double FastLog(double x);

/// A seeded random source with the distributions DPBench needs:
/// uniform, Laplace, Gumbel (for the exponential mechanism), discrete,
/// binomial, and multinomial sampling — plus block-fill forms of the
/// trial-loop-hot draws (uniform, Laplace) that generate in chunks with a
/// branch-light vectorizable transform. Fills consume the same stream as
/// the scalar draws: mixing granularities never changes the values.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi): lo + Uniform() * (hi - lo), clamped below
  /// hi (explicit 53-bit scaling; no implementation-defined distribution).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n) via Lemire's multiply-shift rejection —
  /// exact and toolchain-independent, unlike
  /// std::uniform_int_distribution. Consumes one draw, plus more only on
  /// rejection (probability < n / 2^64).
  uint64_t UniformInt(uint64_t n);

  /// Laplace(0, scale) sample. scale must be > 0; scale == +inf yields
  /// ±inf and is a caller bug (checked). The sample spends one 64-bit
  /// draw: the top 52 bits give a uniform u in (0, 1], bit 0 gives the
  /// sign, and the magnitude is scale * -log(u) (FastLog).
  double Laplace(double scale);

  /// Writes n uniforms in [0, 1) — byte-identical to n Uniform() calls.
  void FillUniform(double* out, size_t n);

  /// Writes n Laplace(0, scale) samples — byte-identical to n
  /// Laplace(scale) calls. The inner loop transforms a contiguous block
  /// of counter output with no branches or libm calls, so it vectorizes.
  void FillLaplace(double* out, size_t n, double scale);

  /// Per-measurement-scale form for tree schedules: out[i] ~
  /// Laplace(0, scales[i]) — byte-identical to calling Laplace(scales[i])
  /// in index order. Every scales[i] must be positive and finite.
  void FillLaplace(double* out, const double* scales, size_t n);

  /// Lane-strided fills for trial-lockstep execution: one call consumes
  /// exactly the draws of `lanes` successive scalar fills of length n, and
  /// lane l's values are byte-identical to the l-th of those scalar fills
  /// (lane l reads stream positions [base + l*n, base + (l+1)*n), where
  /// base is the position on entry). Output is lane-major:
  /// out[j * lanes + l] is draw j of lane l; out must hold n * lanes
  /// doubles. lanes must be >= 1; lanes == 1 degenerates to the scalar
  /// fill.
  void FillUniformLanes(double* out, size_t n, size_t lanes);

  /// Lane-strided FillLaplace(out, n, scale); same stream contract as
  /// FillUniformLanes.
  void FillLaplaceLanes(double* out, size_t n, double scale, size_t lanes);

  /// Lane-strided per-scale FillLaplace: draw j of every lane uses
  /// scales[j]. Same stream contract as FillUniformLanes.
  void FillLaplaceLanes(double* out, const double* scales, size_t n,
                        size_t lanes);

  /// Standard Gumbel(0,1) sample, used by the Gumbel-max trick.
  double Gumbel();

  /// Writes n standard Gumbel(0,1) samples through the deterministic
  /// FastLog transform -FastLog(-FastLog(u)) with the midpoint uniform
  /// u = (k + 0.5) * 2^-53 (strictly inside (0,1), so the transform needs
  /// no log(0) guard and stays branch-free and auto-vectorizable, like
  /// the Laplace fills). Consumes exactly the stream positions of n
  /// Uniform() draws. The values differ from n scalar Gumbel() calls (the
  /// midpoint offset plus FastLog vs libm log): the exponential mechanism
  /// draws its per-candidate noise through this fill, a documented
  /// value-family change of the selection streams when it was
  /// introduced.
  void FillGumbel(double* out, size_t n);

  /// Standard normal sample.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Binomial(n, p) sample. Uses std::binomial_distribution.
  uint64_t Binomial(uint64_t n, double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with positive sum.
  size_t Discrete(const std::vector<double>& weights);

  /// Draws a multinomial sample: distributes `trials` items over bins with
  /// probabilities proportional to `probs` (need not be normalized).
  /// Runs in O(#bins) using the conditional-binomial method, so it is
  /// efficient even at scale 10^8.
  std::vector<uint64_t> Multinomial(uint64_t trials,
                                    const std::vector<double>& probs);

  /// Creates an independent child generator; handy for parallel trials.
  Rng Fork();

  Philox4x32& generator() { return gen_; }

 private:
  Philox4x32 gen_;
};

}  // namespace dpbench

#endif  // DPBENCH_COMMON_RNG_H_
