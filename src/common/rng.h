// Seeded random number generation for all DP mechanisms and samplers.
//
// Every randomized component in the library draws from an explicitly passed
// Rng so that experiments are reproducible given a seed (DPBench principle:
// results must be re-runnable).
#ifndef DPBENCH_COMMON_RNG_H_
#define DPBENCH_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace dpbench {

/// Deterministic seed derivation for labelled sub-experiments: an FNV-1a
/// accumulator over a master seed and a sequence of typed fields. Every
/// independent random stream in the experiment engine derives its seed
/// through a mixer so that results depend only on *what* is being run
/// (the master seed plus the identifying fields), never on grid iteration
/// order, shard assignment, or thread scheduling.
///
/// Doubles are mixed by bit pattern, so two fields that differ anywhere in
/// the significand produce different seeds — unlike formatted-string labels,
/// which collapse near-equal values at their print precision.
class SeedMixer {
 public:
  explicit SeedMixer(uint64_t master);

  SeedMixer& Mix(uint64_t v);
  /// Mixes the bytes followed by the length, so adjacent string fields
  /// are delimited ("AB"+"C" and "A"+"BC" produce different seeds).
  SeedMixer& Mix(const std::string& s);
  SeedMixer& MixDouble(double v);  ///< by bit pattern (full precision)

  uint64_t seed() const { return h_; }

 private:
  uint64_t h_;
};

/// Seed for a labelled stream: SeedMixer over the master seed and `label`.
/// (The historical string-label form; structured field mixing via SeedMixer
/// is preferred for new streams with numeric identity.)
uint64_t StreamSeed(uint64_t master, const std::string& label);

/// A seeded random source with the distributions DPBench needs:
/// uniform, Laplace, Gumbel (for the exponential mechanism), discrete,
/// binomial, and multinomial sampling.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n);

  /// Laplace(0, scale) sample via inverse CDF. scale must be > 0;
  /// scale == +inf yields ±inf and is a caller bug (checked).
  double Laplace(double scale);

  /// Standard Gumbel(0,1) sample, used by the Gumbel-max trick.
  double Gumbel();

  /// Standard normal sample.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Binomial(n, p) sample. Uses std::binomial_distribution.
  uint64_t Binomial(uint64_t n, double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with positive sum.
  size_t Discrete(const std::vector<double>& weights);

  /// Draws a multinomial sample: distributes `trials` items over bins with
  /// probabilities proportional to `probs` (need not be normalized).
  /// Runs in O(#bins) using the conditional-binomial method, so it is
  /// efficient even at scale 10^8.
  std::vector<uint64_t> Multinomial(uint64_t trials,
                                    const std::vector<double>& probs);

  /// Creates an independent child generator; handy for parallel trials.
  Rng Fork();

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace dpbench

#endif  // DPBENCH_COMMON_RNG_H_
