#include "src/common/fft.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/math.h"

namespace dpbench {

void Fft(std::vector<std::complex<double>>* a, bool inverse) {
  size_t n = a->size();
  DPB_CHECK(IsPowerOfTwo(n));
  auto& v = *a;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(v[i], v[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * M_PI / static_cast<double>(len) *
                   (inverse ? 1.0 : -1.0);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        std::complex<double> u = v[i + j];
        std::complex<double> t = v[i + j + len / 2] * w;
        v[i + j] = u + t;
        v[i + j + len / 2] = u - t;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : v) x /= static_cast<double>(n);
  }
}

void OrthonormalDftInto(const std::vector<double>& x,
                        std::vector<std::complex<double>>* f) {
  size_t n = x.size();
  DPB_CHECK(IsPowerOfTwo(n));
  f->assign(n, std::complex<double>());
  std::vector<std::complex<double>>& a = *f;
  for (size_t i = 0; i < n; ++i) a[i] = x[i];
  Fft(&a, /*inverse=*/false);
  double norm = 1.0 / std::sqrt(static_cast<double>(n));
  for (auto& c : a) c *= norm;
}

std::vector<std::complex<double>> OrthonormalDft(
    const std::vector<double>& x) {
  std::vector<std::complex<double>> a;
  OrthonormalDftInto(x, &a);
  return a;
}

void OrthonormalIdftRealInto(std::vector<std::complex<double>>* f,
                             std::vector<double>* out) {
  size_t n = f->size();
  DPB_CHECK(IsPowerOfTwo(n));
  std::vector<std::complex<double>>& a = *f;
  double norm = std::sqrt(static_cast<double>(n));
  for (auto& c : a) c *= norm;
  Fft(&a, /*inverse=*/true);
  out->resize(n);
  for (size_t i = 0; i < n; ++i) (*out)[i] = a[i].real();
}

std::vector<double> OrthonormalIdftReal(
    const std::vector<std::complex<double>>& f) {
  std::vector<std::complex<double>> a = f;
  std::vector<double> out;
  OrthonormalIdftRealInto(&a, &out);
  return out;
}

}  // namespace dpbench
