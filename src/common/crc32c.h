// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum behind the
// self-verifying serialized files. Chosen over CRC32 (IEEE) for its
// strictly better error-detection properties at these block sizes and its
// ubiquity in storage systems (iSCSI, ext4, LevelDB), so the on-disk
// format stays verifiable by standard tooling.
//
// Software slicing-by-4 implementation: deterministic on every platform
// and toolchain (no ISA dispatch — a checksum that depends on the reader's
// CPU would defeat the point of a portable file format), ~1 GB/s, which is
// far above the serialize layer's encode throughput.
#ifndef DPBENCH_COMMON_CRC32C_H_
#define DPBENCH_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dpbench {

/// CRC32C of `n` bytes. `seed` chains incremental computation: pass the
/// previous call's return value to continue a running checksum (the
/// seeding/finalization inversion is handled internally, so
/// Crc32c(ab) == Crc32c(b, len_b, Crc32c(a, len_a)).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(const std::string& bytes, uint32_t seed = 0) {
  return Crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace dpbench

#endif  // DPBENCH_COMMON_CRC32C_H_
