#include "src/common/crc32c.h"

namespace dpbench {

namespace {

// Reflected form of the Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // t[0] is the classic byte-at-a-time table; t[1..3] extend it so four
  // input bytes fold in one step (slicing-by-4).
  uint32_t t[4][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const Tables& tb = tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace dpbench
