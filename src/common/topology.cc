#include "src/common/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#define DPBENCH_HAVE_DIRENT 1
#endif

namespace dpbench {
namespace topology {

size_t Topology::total_cpus() const {
  size_t n = 0;
  for (const NumaNode& node : nodes) n += node.cpus.size();
  return n;
}

Result<std::vector<int>> ParseCpuList(const std::string& text) {
  // Strip trailing newline/whitespace (sysfs files end with '\n').
  std::string trimmed = text;
  while (!trimmed.empty() &&
         std::isspace(static_cast<unsigned char>(trimmed.back()))) {
    trimmed.pop_back();
  }
  std::vector<int> cpus;
  if (trimmed.empty()) return cpus;  // node with no online CPUs

  auto parse_int = [](const std::string& tok, long* out) {
    if (tok.empty() || tok.size() > 9) return false;
    for (char c : tok) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    *out = std::strtol(tok.c_str(), nullptr, 10);
    return true;
  };

  std::istringstream in(trimmed);
  std::string token;
  while (std::getline(in, token, ',')) {
    size_t dash = token.find('-');
    long lo = 0, hi = 0;
    if (dash == std::string::npos) {
      if (!parse_int(token, &lo)) {
        return Status::InvalidArgument("cpulist token '" + token +
                                       "' is not a CPU id or range");
      }
      hi = lo;
    } else {
      if (!parse_int(token.substr(0, dash), &lo) ||
          !parse_int(token.substr(dash + 1), &hi) || hi < lo) {
        return Status::InvalidArgument("cpulist token '" + token +
                                       "' is not a valid range");
      }
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology SingleNode(size_t cpu_count) {
  if (cpu_count == 0) cpu_count = 1;
  Topology topo;
  topo.synthetic = true;
  NumaNode node;
  node.id = 0;
  node.cpus.reserve(cpu_count);
  for (size_t c = 0; c < cpu_count; ++c) {
    node.cpus.push_back(static_cast<int>(c));
  }
  topo.nodes.push_back(std::move(node));
  return topo;
}

Result<Topology> DetectFrom(const std::string& sys_node_dir) {
#if defined(DPBENCH_HAVE_DIRENT)
  DIR* dir = opendir(sys_node_dir.c_str());
  if (dir == nullptr) {
    return Status::NotFound("no NUMA node directory at " + sys_node_dir);
  }
  std::vector<int> node_ids;
  while (dirent* entry = readdir(dir)) {
    const char* name = entry->d_name;
    if (std::strncmp(name, "node", 4) != 0 || name[4] == '\0') continue;
    bool numeric = true;
    for (const char* p = name + 4; *p != '\0'; ++p) {
      if (!std::isdigit(static_cast<unsigned char>(*p))) {
        numeric = false;
        break;
      }
    }
    if (!numeric) continue;
    node_ids.push_back(std::atoi(name + 4));
  }
  closedir(dir);
  // Sysfs iteration order is arbitrary; the topology must be
  // deterministic for a given machine.
  std::sort(node_ids.begin(), node_ids.end());

  Topology topo;
  for (int id : node_ids) {
    std::string path =
        sys_node_dir + "/node" + std::to_string(id) + "/cpulist";
    std::ifstream file(path);
    if (!file) continue;  // a node dir without cpulist: not a CPU node
    std::stringstream contents;
    contents << file.rdbuf();
    auto cpus = ParseCpuList(contents.str());
    if (!cpus.ok()) {
      return Status::InvalidArgument("malformed " + path + ": " +
                                     cpus.status().message());
    }
    if (cpus->empty()) continue;  // memory-only node / all CPUs offline
    NumaNode node;
    node.id = id;
    node.cpus = std::move(cpus).value();
    topo.nodes.push_back(std::move(node));
  }
  if (topo.nodes.empty()) {
    return Status::NotFound("no NUMA node with online CPUs under " +
                            sys_node_dir);
  }
  return topo;
#else
  return Status::NotFound("sysfs topology unavailable on this platform: " +
                          sys_node_dir);
#endif
}

namespace {

// Test override storage. A mutex-guarded copy (not an atomic pointer
// swap) is fine: ForceForTesting is documented as between-runs only.
std::mutex g_force_mu;
Topology* g_forced = nullptr;

Topology ResolveTopology() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const char* env = std::getenv("DPBENCH_NUMA");
  if (env != nullptr && env[0] != '\0') {
    if (std::strcmp(env, "single") == 0) return SingleNode(hw);
    if (std::strcmp(env, "auto") != 0) {
      std::fprintf(stderr,
                   "DPBENCH_NUMA=%s not recognized (want auto|single); "
                   "using autodetection\n",
                   env);
    }
  }
  auto detected = DetectFrom("/sys/devices/system/node");
  if (detected.ok()) return std::move(detected).value();
  if (detected.status().code() == StatusCode::kInvalidArgument) {
    // A malformed live sysfs is worth a warning, but a benchmark run
    // must not die over placement metadata — fall back to flat.
    std::fprintf(stderr, "NUMA detection failed (%s); using one node\n",
                 detected.status().message().c_str());
  }
  return SingleNode(hw);
}

}  // namespace

const Topology& Detect() {
  {
    std::lock_guard<std::mutex> lock(g_force_mu);
    if (g_forced != nullptr) return *g_forced;
  }
  static const Topology resolved = ResolveTopology();
  return resolved;
}

void ForceForTesting(const Topology& topo) {
  std::lock_guard<std::mutex> lock(g_force_mu);
  delete g_forced;
  g_forced = new Topology(topo);
}

void ResetForTesting() {
  std::lock_guard<std::mutex> lock(g_force_mu);
  delete g_forced;
  g_forced = nullptr;
}

}  // namespace topology
}  // namespace dpbench
