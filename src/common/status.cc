#include "src/common/status.h"

namespace dpbench {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace dpbench
