// Baseline-ISA build of the lockstep kernels (SSE2 on x86-64). Compiled
// with -ffp-contract=off like the avx2 build, so both are bit-identical.
#include <cstddef>

#include "src/common/lockstep.h"
#include "src/common/rng_transform.h"

namespace dpbench {
namespace lockstep {
namespace {
#include "src/common/lockstep_kernels.inc"
}  // namespace

const Kernels& BaseKernels() {
  static const Kernels k = {AddSharedNoise, ScatterMeasurements, HaarInverse,
                            GlsInfer,       Prefix1D,            Prefix2D,
                            EvalCorners2,   EvalCorners4,        SpreadDivided,
                            FillUniformLanes, FillLaplaceLanes,
                            FillLaplaceLanesScales, PhiloxBlocks,
                            PhiloxBlocksNarrow};
  return k;
}

}  // namespace lockstep
}  // namespace dpbench
