// Iterative radix-2 FFT used by EFPA's Fourier perturbation.
#ifndef DPBENCH_COMMON_FFT_H_
#define DPBENCH_COMMON_FFT_H_

#include <complex>
#include <vector>

namespace dpbench {

/// In-place radix-2 Cooley-Tukey FFT; `a.size()` must be a power of two.
/// `inverse` applies the inverse transform including the 1/n factor.
void Fft(std::vector<std::complex<double>>* a, bool inverse);

/// Orthonormal DFT of a real vector (length padded internally to a power
/// of two by the caller): F_k = (1/sqrt(n)) * sum_j x_j e^{-2*pi*i*jk/n}.
std::vector<std::complex<double>> OrthonormalDft(
    const std::vector<double>& x);

/// Inverse of OrthonormalDft; returns the real part.
std::vector<double> OrthonormalIdftReal(
    const std::vector<std::complex<double>>& f);

/// Allocation-free form of OrthonormalDft: builds the spectrum in *f,
/// reusing its capacity. Values are bit-identical to OrthonormalDft.
void OrthonormalDftInto(const std::vector<double>& x,
                        std::vector<std::complex<double>>* f);

/// Allocation-free form of OrthonormalIdftReal: transforms *f in place
/// (destroying it) and writes the real parts into *out, reusing its
/// capacity. Values are bit-identical to OrthonormalIdftReal.
void OrthonormalIdftRealInto(std::vector<std::complex<double>>* f,
                             std::vector<double>* out);

}  // namespace dpbench

#endif  // DPBENCH_COMMON_FFT_H_
