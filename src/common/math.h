// Small numerical helpers shared across modules: summary statistics,
// percentiles, special functions needed by the Student-t CDF, and
// log-domain utilities for the exponential mechanism.
#ifndef DPBENCH_COMMON_MATH_H_
#define DPBENCH_COMMON_MATH_H_

#include <cstddef>
#include <vector>

namespace dpbench {

/// Arithmetic mean; returns 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (divides by n-1); returns 0 for n < 2.
double SampleVariance(const std::vector<double>& xs);

/// Sample standard deviation.
double SampleStddev(const std::vector<double>& xs);

/// Linear-interpolation percentile, p in [0, 100]. Input need not be sorted.
double Percentile(std::vector<double> xs, double p);

/// Geometric mean of strictly positive values; returns 0 for empty input.
double GeometricMean(const std::vector<double>& xs);

/// log(sum_i exp(xs[i])) computed stably.
double LogSumExp(const std::vector<double>& xs);

/// Regularized incomplete beta function I_x(a, b), computed with the
/// continued-fraction expansion (Numerical Recipes style). Used for the
/// Student-t CDF in Welch's t-test.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// L1 norm, L2 norm, dot product.
double NormL1(const std::vector<double>& xs);
double NormL2(const std::vector<double>& xs);

/// True iff n is a power of two (n >= 1).
bool IsPowerOfTwo(size_t n);

/// floor(log2(n)) for n >= 1.
int FloorLog2(size_t n);

/// Smallest power of two >= n.
size_t NextPowerOfTwo(size_t n);

}  // namespace dpbench

#endif  // DPBENCH_COMMON_MATH_H_
