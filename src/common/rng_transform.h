// Inline bodies of the counter-RNG hot path, shared between rng.cc and the
// ISA-retargeted lockstep kernel builds (lockstep_base.cc / lockstep_avx2.cc).
//
// rng.cc used to own these in its anonymous namespace; they live here so the
// lane-strided fills can compile the *same* source at the dispatched ISA
// (e.g. -mavx2) and stay byte-identical to the scalar draws:
//   - Philox block generation is pure integer arithmetic, exact on every
//     tier;
//   - the uniform/Laplace transforms are plain IEEE double ops and every
//     including translation unit is built with -ffp-contract=off and no
//     -mfma (see CMakeLists.txt), so no tier fuses multiply+add.
// Changing any body here changes the noise stream for the whole library —
// the known-answer and fill-equivalence tests in tests/common/rng_test.cc
// pin the current values.
#ifndef DPBENCH_COMMON_RNG_TRANSFORM_H_
#define DPBENCH_COMMON_RNG_TRANSFORM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace dpbench {
namespace rng_transform {

// Philox4x32 round constants (Random123's PHILOX_M4x32_* / PHILOX_W32_*).
constexpr uint64_t kPhiloxM0 = 0xD2511F53ULL;
constexpr uint64_t kPhiloxM1 = 0xCD9E8D57ULL;
constexpr uint32_t kPhiloxW0 = 0x9E3779B9U;
constexpr uint32_t kPhiloxW1 = 0xBB67AE85U;

inline uint64_t BitsOf(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

inline double DoubleOf(uint64_t bits) {
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

constexpr double kLn2 = 0.6931471805599453;    // round(ln 2)
constexpr double kSqrt2 = 1.4142135623730951;  // round(sqrt 2)

// log(x) for positive normal x: decompose x = m * 2^e with m in
// [1/sqrt2, sqrt2), then log(m) = 2 artanh(s) with s = (m-1)/(m+1),
// |s| <= sqrt2-1 / sqrt2+1 = 0.1716, via the odd series
// 2s (1 + s^2/3 + s^4/5 + ... + s^14/15). Truncation error is below
// 1e-13 relative; every operation is a plain IEEE double op, so a loop
// over this inline body auto-vectorizes and gives bit-identical results
// lane-for-lane with the scalar evaluation.
inline double FastLogImpl(double x) {
  uint64_t bits = BitsOf(x);
  // Exponent as a double via an int32 conversion (packed-vectorizable on
  // SSE2, unlike int64 -> double).
  double e = static_cast<double>(static_cast<int32_t>(bits >> 52)) - 1023.0;
  double m = DoubleOf((bits & 0x000FFFFFFFFFFFFFULL) |
                      0x3FF0000000000000ULL);  // mantissa in [1, 2)
  // Shift m into [1/sqrt2, sqrt2) so the series argument stays small.
  // The select is a single arithmetic blend — m - shift*(0.5*m) is
  // exactly 0.5*m or m since halving is exact — because a shared boolean
  // feeding two conditional moves defeats GCC's loop if-conversion and
  // would leave the whole transform scalar.
  double shift = (m > kSqrt2) ? 1.0 : 0.0;
  e += shift;
  m = m - shift * (0.5 * m);
  double s = (m - 1.0) / (m + 1.0);
  double z = s * s;
  double p = 1.0 / 15.0;
  p = p * z + 1.0 / 13.0;
  p = p * z + 1.0 / 11.0;
  p = p * z + 1.0 / 9.0;
  p = p * z + 1.0 / 7.0;
  p = p * z + 1.0 / 5.0;
  p = p * z + 1.0 / 3.0;
  p = p * z + 1.0;
  return e * kLn2 + 2.0 * s * p;
}

// Uniform in [0, 1) from one raw draw: explicit 53-bit mantissa scaling,
// shared by Rng::Uniform, the block fills, and the lane-fill kernels.
inline double UniformFromDraw(uint64_t r) {
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

// Laplace(0, scale) from one raw 64-bit draw; shared by the scalar and
// block paths so they are bit-identical by construction. The top 52 bits
// build u in (0, 1] directly in the mantissa (2 - [1,2) avoids an
// unvectorizable uint64 -> double conversion and log(0)), bit 0 flips the
// sign of the non-positive scale * log(u) through the IEEE sign bit —
// no branches, no libm.
inline double LaplaceFromDraw(uint64_t r, double scale) {
  double u = 2.0 - DoubleOf(0x3FF0000000000000ULL | (r >> 12));  // (0, 1]
  double v = scale * FastLogImpl(u);                             // <= 0
  return DoubleOf(BitsOf(v) ^ ((r & 1) << 63));
}

// Fill granularity: raw counter output is staged through a fixed stack
// chunk (2 KiB) so fills of any length stay allocation-free and the
// transform runs over a cache-hot contiguous buffer.
constexpr size_t kFillChunk = 256;

// One Philox S-box round — identical arithmetic to Philox4x32::BlockRaw's
// loop body, kept as a tiny inline so the flat block loop below can unroll
// all ten rounds into a straight-line body.
inline void PhiloxRound(uint32_t& c0, uint32_t& c1, uint32_t& c2,
                        uint32_t& c3, uint32_t k0, uint32_t k1) {
  // Widening 32x32 -> 64 multiplies (both operands uint32), not uint64 *
  // uint32: the vectorizer recognizes the widening form and emits one
  // packed multiply per operand pair instead of emulating a full 64-bit
  // multiply. Same exact products either way (they fit in 64 bits).
  const uint64_t p0 =
      static_cast<uint64_t>(static_cast<uint32_t>(kPhiloxM0)) * c0;
  const uint64_t p1 =
      static_cast<uint64_t>(static_cast<uint32_t>(kPhiloxM1)) * c2;
  const uint32_t hi0 = static_cast<uint32_t>(p0 >> 32);
  const uint32_t lo0 = static_cast<uint32_t>(p0);
  const uint32_t hi1 = static_cast<uint32_t>(p1 >> 32);
  const uint32_t lo1 = static_cast<uint32_t>(p1);
  c0 = hi1 ^ c1 ^ k0;
  c1 = lo1;
  c2 = hi0 ^ c3 ^ k1;
  c3 = lo0;
}

// `nblocks` consecutive 128-bit Philox blocks starting at `block0`, two
// 64-bit words per block (word order identical to Philox4x32::Block). The
// round loop is fully unrolled so the *block* loop is the only loop — the
// blocks are independent, so an ISA-retargeted build vectorizes block
// generation across them. Integer-only: exact on every tier.
inline void PhiloxBlocksFlat(uint64_t key, uint64_t block0, size_t nblocks,
                             uint64_t* out) {
  const uint32_t kk0 = static_cast<uint32_t>(key);
  const uint32_t kk1 = static_cast<uint32_t>(key >> 32);
  for (size_t i = 0; i < nblocks; ++i) {
    const uint64_t blk = block0 + i;
    uint32_t c0 = static_cast<uint32_t>(blk);
    uint32_t c1 = static_cast<uint32_t>(blk >> 32);
    uint32_t c2 = 0;
    uint32_t c3 = 0;
    uint32_t k0 = kk0;
    uint32_t k1 = kk1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    k0 += kPhiloxW0; k1 += kPhiloxW1;
    PhiloxRound(c0, c1, c2, c3, k0, k1);
    out[2 * i] = c0 | (static_cast<uint64_t>(c1) << 32);
    out[2 * i + 1] = c2 | (static_cast<uint64_t>(c3) << 32);
  }
}

#if defined(__AVX2__)
// Hand-vectorized block generation for AVX2-compiled translation units:
// four blocks per iteration, every counter/key word held in the low half
// of a 64-bit lane. GCC's auto-vectorization of PhiloxBlocksFlat spends
// more time repacking between 32- and 64-bit lane layouts than
// multiplying (~2x slower than this); keeping the u64-lane layout
// end-to-end leaves one vpmuludq per S-box multiply and shuffles only at
// the final word interleave. Pure integer — bit-identical to the flat
// loop (the tests compare kernel fills against scalar fills on every
// tier), which still handles the < 4-block tail.
inline void PhiloxBlocksAvx2Narrow(uint64_t key, uint64_t block0,
                                   size_t nblocks, uint64_t* out) {
  const __m256i mask = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i m0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM0));
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM1));
  const __m256i w0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW0));
  const __m256i w1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW1));
  const __m256i k0_init =
      _mm256_set1_epi64x(static_cast<long long>(key & 0xFFFFFFFFULL));
  const __m256i k1_init = _mm256_set1_epi64x(static_cast<long long>(key >> 32));
  size_t i = 0;
  for (; i + 4 <= nblocks; i += 4) {
    const __m256i blk = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(block0 + i)),
        _mm256_set_epi64x(3, 2, 1, 0));
    __m256i c0 = _mm256_and_si256(blk, mask);
    __m256i c1 = _mm256_srli_epi64(blk, 32);
    __m256i c2 = _mm256_setzero_si256();
    __m256i c3 = _mm256_setzero_si256();
    __m256i k0 = k0_init;
    __m256i k1 = k1_init;
    for (int round = 0;; ++round) {
      const __m256i p0 = _mm256_mul_epu32(m0, c0);
      const __m256i p1 = _mm256_mul_epu32(m1, c2);
      // xor of sub-2^32 values stays below 2^32: no re-masking of c0/c2.
      c0 = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p1, 32), c1),
                            k0);
      c1 = _mm256_and_si256(p1, mask);
      c2 = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p0, 32), c3),
                            k1);
      c3 = _mm256_and_si256(p0, mask);
      if (round == 9) break;
      // The key bump wraps at 32 bits in the scalar code; emulate with a
      // mask since the lanes are 64-bit.
      k0 = _mm256_and_si256(_mm256_add_epi64(k0, w0), mask);
      k1 = _mm256_and_si256(_mm256_add_epi64(k1, w1), mask);
    }
    // Interleave the four blocks' (w01, w23) word pairs into block order.
    const __m256i w01 = _mm256_or_si256(c0, _mm256_slli_epi64(c1, 32));
    const __m256i w23 = _mm256_or_si256(c2, _mm256_slli_epi64(c3, 32));
    const __m256i lo = _mm256_unpacklo_epi64(w01, w23);
    const __m256i hi = _mm256_unpackhi_epi64(w01, w23);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * i),
                        _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * i + 4),
                        _mm256_permute2x128_si256(lo, hi, 0x31));
  }
  if (i < nblocks) PhiloxBlocksFlat(key, block0 + i, nblocks - i, out + 2 * i);
}

// Eight blocks per iteration: two independent four-block chains (blocks
// i..i+3 and i+4..i+7) interleaved through the round loop. One chain's
// ten rounds are a pure dependency ladder — each vpmuludq waits on the
// previous round's xor — so a single chain leaves the vector multiplier
// idle most cycles. The second chain has no data dependence on the first
// and shares the same round keys (the bump is computed once per round),
// filling those idle issue slots (~7% measured on AVX2). Blocks are
// consumed in the same order and each chain is the Narrow loop verbatim,
// so output bits are unchanged.
inline void PhiloxBlocksAvx2(uint64_t key, uint64_t block0, size_t nblocks,
                             uint64_t* out) {
  const __m256i mask = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i m0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM0));
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM1));
  const __m256i w0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW0));
  const __m256i w1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxW1));
  const __m256i k0_init =
      _mm256_set1_epi64x(static_cast<long long>(key & 0xFFFFFFFFULL));
  const __m256i k1_init = _mm256_set1_epi64x(static_cast<long long>(key >> 32));
  size_t i = 0;
  for (; i + 8 <= nblocks; i += 8) {
    const __m256i lanes = _mm256_set_epi64x(3, 2, 1, 0);
    const __m256i blka = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(block0 + i)), lanes);
    const __m256i blkb = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(block0 + i + 4)), lanes);
    __m256i a0 = _mm256_and_si256(blka, mask);
    __m256i a1 = _mm256_srli_epi64(blka, 32);
    __m256i a2 = _mm256_setzero_si256();
    __m256i a3 = _mm256_setzero_si256();
    __m256i b0 = _mm256_and_si256(blkb, mask);
    __m256i b1 = _mm256_srli_epi64(blkb, 32);
    __m256i b2 = _mm256_setzero_si256();
    __m256i b3 = _mm256_setzero_si256();
    __m256i k0 = k0_init;
    __m256i k1 = k1_init;
    for (int round = 0;; ++round) {
      const __m256i pa0 = _mm256_mul_epu32(m0, a0);
      const __m256i pa1 = _mm256_mul_epu32(m1, a2);
      const __m256i pb0 = _mm256_mul_epu32(m0, b0);
      const __m256i pb1 = _mm256_mul_epu32(m1, b2);
      a0 = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_srli_epi64(pa1, 32), a1), k0);
      a1 = _mm256_and_si256(pa1, mask);
      a2 = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_srli_epi64(pa0, 32), a3), k1);
      a3 = _mm256_and_si256(pa0, mask);
      b0 = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_srli_epi64(pb1, 32), b1), k0);
      b1 = _mm256_and_si256(pb1, mask);
      b2 = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_srli_epi64(pb0, 32), b3), k1);
      b3 = _mm256_and_si256(pb0, mask);
      if (round == 9) break;
      k0 = _mm256_and_si256(_mm256_add_epi64(k0, w0), mask);
      k1 = _mm256_and_si256(_mm256_add_epi64(k1, w1), mask);
    }
    const __m256i wa01 = _mm256_or_si256(a0, _mm256_slli_epi64(a1, 32));
    const __m256i wa23 = _mm256_or_si256(a2, _mm256_slli_epi64(a3, 32));
    const __m256i la = _mm256_unpacklo_epi64(wa01, wa23);
    const __m256i ha = _mm256_unpackhi_epi64(wa01, wa23);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * i),
                        _mm256_permute2x128_si256(la, ha, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * i + 4),
                        _mm256_permute2x128_si256(la, ha, 0x31));
    const __m256i wb01 = _mm256_or_si256(b0, _mm256_slli_epi64(b1, 32));
    const __m256i wb23 = _mm256_or_si256(b2, _mm256_slli_epi64(b3, 32));
    const __m256i lb = _mm256_unpacklo_epi64(wb01, wb23);
    const __m256i hb = _mm256_unpackhi_epi64(wb01, wb23);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * i + 8),
                        _mm256_permute2x128_si256(lb, hb, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * i + 12),
                        _mm256_permute2x128_si256(lb, hb, 0x31));
  }
  if (i < nblocks) {
    PhiloxBlocksAvx2Narrow(key, block0 + i, nblocks - i, out + 2 * i);
  }
}
#endif  // defined(__AVX2__)

// Bulk block generation at the best width the including translation unit
// was compiled for. Every variant produces identical bits; only the
// instruction mix differs.
inline void PhiloxBlocksBulk(uint64_t key, uint64_t block0, size_t nblocks,
                             uint64_t* out) {
#if defined(__AVX2__)
  PhiloxBlocksAvx2(key, block0, nblocks, out);
#else
  PhiloxBlocksFlat(key, block0, nblocks, out);
#endif
}

// Free-function form of Philox4x32::FillRawAt: the `n` draws at absolute
// stream positions [pos, pos + n), with the whole-block middle generated
// in bulk at the compiled ISA width. Draw ordering — mid-block head takes
// the straddled block's second word, trailing lone draw takes its block's
// first word — matches the member function exactly.
inline void PhiloxFillAt(uint64_t key, uint64_t pos, uint64_t* out,
                         size_t n) {
  size_t i = 0;
  if (n == 0) return;
  if (pos & 1) {
    uint64_t b[2];
    PhiloxBlocksFlat(key, pos >> 1, 1, b);
    out[i++] = b[1];
    ++pos;
  }
  const size_t nblocks = (n - i) / 2;
  PhiloxBlocksBulk(key, pos >> 1, nblocks, out + i);
  i += 2 * nblocks;
  pos += 2 * nblocks;
  if (i < n) {
    uint64_t b[2];
    PhiloxBlocksFlat(key, pos >> 1, 1, b);
    out[i] = b[0];
  }
}

}  // namespace rng_transform
}  // namespace dpbench

#endif  // DPBENCH_COMMON_RNG_TRANSFORM_H_
