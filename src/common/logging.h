// Minimal CHECK macros for invariants that indicate programmer error.
// Recoverable conditions use Status instead (see status.h).
#ifndef DPBENCH_COMMON_LOGGING_H_
#define DPBENCH_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define DPB_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                 \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#define DPB_CHECK_GE(a, b) DPB_CHECK((a) >= (b))
#define DPB_CHECK_GT(a, b) DPB_CHECK((a) > (b))
#define DPB_CHECK_LE(a, b) DPB_CHECK((a) <= (b))
#define DPB_CHECK_LT(a, b) DPB_CHECK((a) < (b))
#define DPB_CHECK_EQ(a, b) DPB_CHECK((a) == (b))
#define DPB_CHECK_NE(a, b) DPB_CHECK((a) != (b))

#endif  // DPBENCH_COMMON_LOGGING_H_
