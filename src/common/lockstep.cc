#include "src/common/lockstep.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpbench {
namespace lockstep {

// Defined in lockstep_base.cc / lockstep_avx2.cc.
const Kernels& BaseKernels();
const Kernels& Avx2Kernels();

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// -1 = no test override.
std::atomic<int> g_forced{-1};

IsaTier BestSupportedTier() {
  return CpuHasAvx2() ? IsaTier::kAvx2 : IsaTier::kSse2;
}

IsaTier ResolveTier() {
  const char* env = std::getenv("DPBENCH_FORCE_ISA");
  if (env == nullptr || env[0] == '\0') return BestSupportedTier();
  IsaTier forced;
  if (std::strcmp(env, "scalar") == 0) {
    forced = IsaTier::kScalar;
  } else if (std::strcmp(env, "sse2") == 0) {
    forced = IsaTier::kSse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    forced = IsaTier::kAvx2;
  } else {
    std::fprintf(stderr,
                 "DPBENCH_FORCE_ISA=%s not recognized (want scalar|sse2|avx2);"
                 " using autodetection\n",
                 env);
    return BestSupportedTier();
  }
  if (!TierAvailable(forced)) {
    std::fprintf(stderr,
                 "DPBENCH_FORCE_ISA=%s not supported by this CPU; using %s\n",
                 env, TierName(BestSupportedTier()));
    return BestSupportedTier();
  }
  return forced;
}

}  // namespace

const char* TierName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse2:
      return "sse2";
    case IsaTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool TierAvailable(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
    case IsaTier::kSse2:
      return true;
    case IsaTier::kAvx2:
      return CpuHasAvx2();
  }
  return false;
}

size_t LaneWidth(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return 1;
    case IsaTier::kSse2:
      return 4;
    case IsaTier::kAvx2:
      return 8;
  }
  return 1;
}

const Kernels& KernelsFor(IsaTier tier) {
  return tier == IsaTier::kAvx2 ? Avx2Kernels() : BaseKernels();
}

IsaTier ActiveTier() {
  int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<IsaTier>(forced);
  static const IsaTier resolved = ResolveTier();
  return resolved;
}

void ForceTierForTesting(IsaTier tier) {
  g_forced.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void ResetTierForTesting() {
  g_forced.store(-1, std::memory_order_relaxed);
}

}  // namespace lockstep
}  // namespace dpbench
