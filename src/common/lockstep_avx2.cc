// AVX2 build of the lockstep kernels: same source as lockstep_base.cc,
// compiled with -mavx2 (when the compiler supports it) and
// -ffp-contract=off / no -mfma, so the wider codegen produces exactly the
// same bits — only throughput differs. The dispatcher never selects this
// build on CPUs without AVX2.
#include <cstddef>

#include "src/common/lockstep.h"
#include "src/common/rng_transform.h"

namespace dpbench {
namespace lockstep {
namespace {
#include "src/common/lockstep_kernels.inc"
}  // namespace

const Kernels& Avx2Kernels() {
  static const Kernels k = {AddSharedNoise, ScatterMeasurements, HaarInverse,
                            GlsInfer,       Prefix1D,            Prefix2D,
                            EvalCorners2,   EvalCorners4,        SpreadDivided,
                            FillUniformLanes, FillLaplaceLanes,
                            FillLaplaceLanesScales, PhiloxBlocks,
                            PhiloxBlocksNarrow};
  return k;
}

}  // namespace lockstep
}  // namespace dpbench
