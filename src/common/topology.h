// NUMA/core topology discovery for the execution layer.
//
// The runner's per-trial cost has shrunk to the point that thread
// placement and memory locality, not instruction throughput, decide
// multi-socket performance. This module answers one question for the
// thread pool and the runner: which CPUs belong to which NUMA node?
//
// Discovery parses /sys/devices/system/node/node*/cpulist (Linux). On
// machines without that tree — non-Linux, containers with a masked
// /sys, single-node desktops — detection falls back to one synthetic
// node covering every hardware thread, which reproduces the pre-NUMA
// flat behavior exactly (worker w pins to core w mod cores, one steal
// ring, no placement grouping).
//
// Placement never affects results: every cell's random stream is a pure
// function of (seed, cell identity) via CellStreamSeed, so any topology
// — detected, forced single-node, or a synthetic multi-node test
// fixture — produces byte-identical output. CI gates this with cmp.
//
// Env override: DPBENCH_NUMA=single forces the synthetic single-node
// fallback (the CI determinism gate uses it); DPBENCH_NUMA=auto (or
// unset) detects. Anything else warns once on stderr and detects.
#ifndef DPBENCH_COMMON_TOPOLOGY_H_
#define DPBENCH_COMMON_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dpbench {
namespace topology {

/// One NUMA node: its sysfs id and the online CPUs it owns (sorted,
/// unique). CPU ids need not be contiguous — offline CPUs leave holes.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine layout the pool plans against. `nodes` is never empty and
/// is sorted by node id; nodes whose cpulist is empty (memory-only nodes,
/// all CPUs offline) are dropped at detection.
struct Topology {
  std::vector<NumaNode> nodes;
  /// True when this is the deterministic single-node fallback (no sysfs
  /// node tree, non-Linux, or DPBENCH_NUMA=single) rather than a
  /// detected layout.
  bool synthetic = false;

  size_t num_nodes() const { return nodes.size(); }
  size_t total_cpus() const;
};

/// Parses a sysfs cpulist ("0-3,8,10-11") into a sorted, deduplicated CPU
/// id list. An empty (or whitespace-only) list is valid and yields an
/// empty vector — that is how sysfs describes a node with no online
/// CPUs. Malformed input (non-numeric tokens, reversed or empty ranges)
/// is InvalidArgument naming the offending token: a wrong parse must
/// never silently become a wrong placement.
Result<std::vector<int>> ParseCpuList(const std::string& text);

/// The synthetic single-node topology: node 0 owning CPUs [0, cpu_count).
/// cpu_count == 0 is treated as 1.
Topology SingleNode(size_t cpu_count);

/// Reads node*/cpulist entries under `sys_node_dir` (normally
/// /sys/devices/system/node; tests point it at golden fixtures).
/// NotFound when the directory is missing or holds no node with online
/// CPUs (the caller falls back to SingleNode); InvalidArgument when a
/// cpulist file is malformed — loud, not a silent single-node fallback.
Result<Topology> DetectFrom(const std::string& sys_node_dir);

/// The process-wide topology: DetectFrom("/sys/devices/system/node") with
/// a SingleNode(hardware_concurrency) fallback, honoring DPBENCH_NUMA
/// (see file comment). Resolved once and cached; a malformed live sysfs
/// warns on stderr and falls back rather than aborting the run.
const Topology& Detect();

/// Test hooks: pin Detect()'s answer (bypassing sysfs and env) or reset
/// to the default resolution. Not thread-safe against a concurrent run;
/// flip only between runs — same contract as lockstep::ForceTierForTesting.
void ForceForTesting(const Topology& topo);
void ResetForTesting();

}  // namespace topology
}  // namespace dpbench

#endif  // DPBENCH_COMMON_TOPOLOGY_H_
