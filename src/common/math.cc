#include "src/common/math.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "src/common/logging.h"

namespace dpbench {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double SampleStddev(const std::vector<double>& xs) {
  return std::sqrt(SampleVariance(xs));
}

double Percentile(std::vector<double> xs, double p) {
  DPB_CHECK(!xs.empty());
  DPB_CHECK(p >= 0.0 && p <= 100.0);
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  // O(n) selection instead of a full sort: the lo-th order statistic via
  // nth_element, and the (lo+1)-th as the minimum of the remaining tail.
  // Same values — hence bit-identical interpolation — as the sorted path.
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(lo),
                   xs.end());
  double v_lo = xs[lo];
  double v_hi =
      hi > lo ? *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                                  xs.end())
              : v_lo;
  return v_lo * (1.0 - frac) + v_hi * frac;
}

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    DPB_CHECK_GT(x, 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double LogSumExp(const std::vector<double>& xs) {
  DPB_CHECK(!xs.empty());
  double mx = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(mx)) return mx;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - mx);
  return mx + std::log(s);
}

namespace {

// Continued-fraction evaluation for the incomplete beta function.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  DPB_CHECK(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  double front = std::exp(ln_beta + a * std::log(x) + b * std::log1p(-x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  DPB_CHECK_GT(df, 0.0);
  if (!std::isfinite(t)) return t > 0 ? 1.0 : 0.0;
  double x = df / (df + t * t);
  double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return (t > 0) ? 1.0 - p : p;
}

double NormL1(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += std::abs(x);
  return s;
}

double NormL2(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s);
}

bool IsPowerOfTwo(size_t n) {
  return n >= 1 && (n & (n - 1)) == 0;
}

int FloorLog2(size_t n) {
  DPB_CHECK_GE(n, 1u);
  int l = 0;
  while (n > 1) {
    n >>= 1;
    ++l;
  }
  return l;
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace dpbench
