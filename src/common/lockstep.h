// Trial-lockstep SoA kernels with runtime ISA dispatch.
//
// ExecuteMany() runs several trials of one cached plan in lockstep: every
// per-trial buffer becomes lane-major (element i of lane l lives at
// buf[i * lanes + l]), so the per-element loops vectorize across the
// *independent* lane dimension while each lane's scalar operation order is
// preserved exactly. That is what makes the lockstep path bit-identical to
// the scalar trial loop: no reduction is reassociated, no operation
// reordered — lanes are simply packed side by side.
//
// The kernels are compiled twice from one source (lockstep_kernels.inc):
// once at the build's baseline ISA (SSE2 on x86-64) and once with -mavx2.
// Both translation units are built with -ffp-contract=off and without
// -mfma, so no tier fuses multiply+add and every tier produces the same
// bits — the dispatcher picks width, never values. Tier selection is
// automatic (CPUID) with a DPBENCH_FORCE_ISA=scalar|sse2|avx2 env
// override; AVX-512 machines run the avx2 tier.
#ifndef DPBENCH_COMMON_LOCKSTEP_H_
#define DPBENCH_COMMON_LOCKSTEP_H_

#include <cstddef>
#include <cstdint>

namespace dpbench {
namespace lockstep {

/// Upper bound on lanes per ExecuteMany batch (the kernels keep per-lane
/// accumulators in fixed stack arrays of this size).
inline constexpr size_t kMaxLanes = 8;

/// Codegen tiers, ordered by preference. The tier decides the runner's
/// batch width and which kernel build the calls route to; it never
/// changes results.
enum class IsaTier {
  kScalar = 0,  ///< no lockstep batching (width 1)
  kSse2 = 1,    ///< baseline build, 4 trials per batch
  kAvx2 = 2,    ///< -mavx2 build, 8 trials per batch
};

/// SoA kernel table. All buffers are lane-major unless noted; `lanes` must
/// be in [1, kMaxLanes]. Each kernel mirrors one scalar loop from the
/// execution path, with the lane loop innermost.
struct Kernels {
  /// dst[i*L+l] = shared[i] + noise[i*L+l] (shared truth + per-lane noise).
  void (*add_shared_noise)(const double* shared, const double* noise,
                           double* dst, size_t n, size_t lanes);
  /// y[nodes[k]*L+l] = truth[k] + noise[k*L+l] — the tree measurement
  /// scatter (truth is per-measurement, not lane-major).
  void (*scatter_measurements)(const double* truth, const double* noise,
                               const size_t* nodes, size_t m, size_t lanes,
                               double* y);
  /// Lane-major inverse Haar wavelet transform (wavelet::HaarInverseInPlace
  /// with coef and out separated); n must be a power of two.
  void (*haar_inverse)(const double* coef, double* out, size_t n,
                       size_t lanes);
  /// Lane-major PlannedTreeGls::InferNodesInto: bottom-up z pass over the
  /// reversed BFS `order`, then top-down residual distribution. z and est
  /// must be zero-filled by the caller (num_nodes * lanes each).
  void (*gls_infer)(size_t num_nodes, const size_t* order,
                    const size_t* child_start, const size_t* children,
                    const double* a, const double* b, const double* r,
                    size_t root, const double* y, size_t lanes, double* z,
                    double* est);
  /// Lane-major 1D prefix sums: cum[(i+1)*L+l] = cum[i*L+l] + x[i*L+l],
  /// cum row 0 zero-filled by the kernel. cum holds (n+1)*lanes doubles.
  void (*prefix_1d)(const double* x, size_t n, size_t lanes, double* cum);
  /// Lane-major 2D inclusion-exclusion prefix table, mirroring
  /// PrefixSums' construction; cum holds (rows+1)*(cols+1)*lanes doubles
  /// and must be zero-filled by the caller (border rows stay zero).
  void (*prefix_2d)(const double* x, size_t rows, size_t cols, size_t lanes,
                    double* cum);
  /// 1D workload corners: out[i*L+l] = cum[idx[2i]*L+l] - cum[idx[2i+1]*L+l].
  void (*eval_corners2)(const double* cum, const size_t* idx, size_t q,
                        size_t lanes, double* out);
  /// 2D workload corners (+ - - + per query, 4 indices each).
  void (*eval_corners4)(const double* cum, const size_t* idx, size_t q,
                        size_t lanes, double* out);
  /// Uniform expansion: per lane q[l] = vals[l] / divisor (computed once),
  /// then dst[c*L+l] = q[l] for c in [0, cells) — the leaf/grid-cell
  /// spread, bit-identical to dividing in every cell since the quotient is
  /// deterministic.
  void (*spread_divided)(const double* vals, double divisor, double* dst,
                         size_t cells, size_t lanes);
  /// Lane-strided noise fills — the bodies behind Rng::Fill*Lanes. Lane l
  /// reads Philox stream positions [base + l*n, base + (l+1)*n) under
  /// `key`; transformed draws land lane-major in out (n * lanes doubles).
  /// Dispatching these puts Philox block generation and the uniform /
  /// Laplace transform — the bulk of a data-independent trial's cost — on
  /// the active tier's ISA. Block generation is pure integer (exact
  /// everywhere) and the transforms are contract-off IEEE ops, so every
  /// tier's fill stays byte-identical to the scalar Rng draws.
  void (*fill_uniform_lanes)(uint64_t key, uint64_t base, double* out,
                             size_t n, size_t lanes);
  void (*fill_laplace_lanes)(uint64_t key, uint64_t base, double* out,
                             size_t n, double scale, size_t lanes);
  /// Per-draw-scale form: draw j of every lane uses scales[j] (tree
  /// measurement schedules). Scales are validated by the caller.
  void (*fill_laplace_lanes_scales)(uint64_t key, uint64_t base, double* out,
                                    const double* scales, size_t n,
                                    size_t lanes);
  /// Raw Philox block generation at this tier's width: `nblocks`
  /// consecutive 128-bit blocks (two u64 words each) starting at block0.
  /// `philox_blocks` is what the fills above stage through (on the AVX2
  /// tier: two independent 4-block chains per iteration, interleaved to
  /// hide the round dependency ladder); `philox_blocks_narrow` is the
  /// single-chain variant kept as the ILP speedup baseline for
  /// bench_noise. Every tier/variant produces identical bits.
  void (*philox_blocks)(uint64_t key, uint64_t block0, size_t nblocks,
                        uint64_t* out);
  void (*philox_blocks_narrow)(uint64_t key, uint64_t block0, size_t nblocks,
                               uint64_t* out);
};

/// Human-readable tier name ("scalar" / "sse2" / "avx2").
const char* TierName(IsaTier tier);

/// True if the CPU can run `tier`. kScalar/kSse2 are always available on
/// the baseline build; kAvx2 requires CPU support.
bool TierAvailable(IsaTier tier);

/// Trials per lockstep batch for a tier: 1 / 4 / 8.
size_t LaneWidth(IsaTier tier);

/// The kernel build a tier routes to (scalar and sse2 share the baseline
/// build; avx2 uses the -mavx2 build). All builds are bit-identical.
const Kernels& KernelsFor(IsaTier tier);

/// The dispatched tier: DPBENCH_FORCE_ISA if set and available (an
/// unavailable or unrecognized value warns once on stderr and falls back),
/// else the best CPU-supported tier. Cached after the first call.
IsaTier ActiveTier();

inline size_t ActiveLaneWidth() { return LaneWidth(ActiveTier()); }
inline const Kernels& Active() { return KernelsFor(ActiveTier()); }

/// Test hook: pin the active tier (bypassing env and autodetection) or
/// reset to the default resolution. Not thread-safe against a concurrent
/// Run(); flip it only between runs.
void ForceTierForTesting(IsaTier tier);
void ResetTierForTesting();

}  // namespace lockstep
}  // namespace dpbench

#endif  // DPBENCH_COMMON_LOCKSTEP_H_
