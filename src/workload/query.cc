#include "src/workload/query.h"

#include "src/common/logging.h"

namespace dpbench {

size_t RangeQuery::NumCells() const {
  size_t n = 1;
  for (size_t j = 0; j < lo.size(); ++j) {
    DPB_CHECK_LE(lo[j], hi[j]);
    n *= hi[j] - lo[j] + 1;
  }
  return n;
}

Status RangeQuery::Validate(const Domain& domain) const {
  if (lo.size() != domain.num_dims() || hi.size() != domain.num_dims()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  for (size_t j = 0; j < lo.size(); ++j) {
    if (lo[j] > hi[j]) {
      return Status::InvalidArgument("query lower bound exceeds upper bound");
    }
    if (hi[j] >= domain.size(j)) {
      return Status::OutOfRange("query exceeds domain");
    }
  }
  return Status::OK();
}

double RangeQuery::Evaluate(const DataVector& x) const {
  return x.RangeSum(lo, hi);
}

}  // namespace dpbench
