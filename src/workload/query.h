// Range queries: axis-aligned hyper-rectangles with inclusive bounds.
#ifndef DPBENCH_WORKLOAD_QUERY_H_
#define DPBENCH_WORKLOAD_QUERY_H_

#include <vector>

#include "src/common/status.h"
#include "src/histogram/data_vector.h"

namespace dpbench {

/// A counting range query: SELECT COUNT(*) WHERE lo_j <= B_j <= hi_j.
/// Bounds are cell indices, inclusive on both ends.
struct RangeQuery {
  std::vector<size_t> lo;
  std::vector<size_t> hi;

  RangeQuery() = default;
  RangeQuery(std::vector<size_t> l, std::vector<size_t> h)
      : lo(std::move(l)), hi(std::move(h)) {}

  /// 1D convenience constructor.
  static RangeQuery D1(size_t lo, size_t hi) { return RangeQuery({lo}, {hi}); }

  /// 2D convenience constructor.
  static RangeQuery D2(size_t rlo, size_t rhi, size_t clo, size_t chi) {
    return RangeQuery({rlo, clo}, {rhi, chi});
  }

  size_t num_dims() const { return lo.size(); }

  /// Number of cells covered.
  size_t NumCells() const;

  /// Validates bounds against a domain.
  Status Validate(const Domain& domain) const;

  /// True answer on x (direct summation; use PrefixSums for bulk evaluation).
  double Evaluate(const DataVector& x) const;

  bool operator==(const RangeQuery& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

}  // namespace dpbench

#endif  // DPBENCH_WORKLOAD_QUERY_H_
