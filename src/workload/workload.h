// Workloads W: sets of range queries, with the standard constructions the
// paper evaluates (Prefix for 1D, random ranges for 2D, Identity, Total,
// AllRange) and fast bulk evaluation via prefix sums.
#ifndef DPBENCH_WORKLOAD_WORKLOAD_H_
#define DPBENCH_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/workload/query.h"

namespace dpbench {

/// An ordered set of range queries over a fixed domain.
class Workload {
 public:
  Workload() = default;
  Workload(Domain domain, std::vector<RangeQuery> queries, std::string name)
      : domain_(std::move(domain)),
        queries_(std::move(queries)),
        name_(std::move(name)) {}

  /// Prefix workload (1D): queries [0, i] for every i in [0, n).
  /// Any 1D range query is the difference of two Prefix answers (paper §6.2).
  static Workload Prefix1D(size_t n);

  /// Identity workload: one singleton query per cell.
  static Workload Identity(const Domain& domain);

  /// The single total query covering the whole domain.
  static Workload Total(const Domain& domain);

  /// `count` uniformly random range queries (any dimensionality); the paper
  /// uses 2000 random range queries as the 2D workload.
  static Workload RandomRange(const Domain& domain, size_t count,
                              uint64_t seed);

  /// All O(n^2) 1D ranges; use only for small domains/tests.
  static Workload AllRange1D(size_t n);

  /// All 1D ranges of a fixed width w: [i, i+w-1] for i in [0, n-w].
  /// Useful for studying how error scales with query width.
  static Workload FixedWidth1D(size_t n, size_t width);

  const Domain& domain() const { return domain_; }
  const std::vector<RangeQuery>& queries() const { return queries_; }
  size_t size() const { return queries_.size(); }
  const std::string& name() const { return name_; }

  /// Evaluates all queries against x (the vector Wx). Uses prefix sums:
  /// O(n + q) for 1D, O(n + q) for 2D.
  std::vector<double> Evaluate(const DataVector& x) const;

  Status Validate() const;

 private:
  Domain domain_;
  std::vector<RangeQuery> queries_;
  std::string name_;
};

}  // namespace dpbench

#endif  // DPBENCH_WORKLOAD_WORKLOAD_H_
