// Workloads W: sets of range queries, with the standard constructions the
// paper evaluates (Prefix for 1D, random ranges for 2D, Identity, Total,
// AllRange) and fast bulk evaluation via prefix sums.
//
// Construction precomputes an *evaluation plan* — each query's corner
// indices into the prefix-sum table — so evaluating a workload against a
// data vector is one O(n) prefix-sum pass plus a handful of flat lookups
// per query, with no per-query index arithmetic on vectors. The plan is
// immutable and shared across copies of the workload.
#ifndef DPBENCH_WORKLOAD_WORKLOAD_H_
#define DPBENCH_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/workload/query.h"

namespace dpbench {

/// An ordered set of range queries over a fixed domain.
class Workload {
 public:
  Workload() = default;
  Workload(Domain domain, std::vector<RangeQuery> queries, std::string name)
      : domain_(std::move(domain)),
        queries_(std::move(queries)),
        name_(std::move(name)) {
    BuildEvalPlan();
  }

  /// Prefix workload (1D): queries [0, i] for every i in [0, n).
  /// Any 1D range query is the difference of two Prefix answers (paper §6.2).
  static Workload Prefix1D(size_t n);

  /// Identity workload: one singleton query per cell.
  static Workload Identity(const Domain& domain);

  /// The single total query covering the whole domain.
  static Workload Total(const Domain& domain);

  /// `count` uniformly random range queries (any dimensionality); the paper
  /// uses 2000 random range queries as the 2D workload.
  static Workload RandomRange(const Domain& domain, size_t count,
                              uint64_t seed);

  /// All O(n^2) 1D ranges; use only for small domains/tests.
  static Workload AllRange1D(size_t n);

  /// All 1D ranges of a fixed width w: [i, i+w-1] for i in [0, n-w].
  /// Useful for studying how error scales with query width.
  static Workload FixedWidth1D(size_t n, size_t width);

  const Domain& domain() const { return domain_; }
  const std::vector<RangeQuery>& queries() const { return queries_; }
  size_t size() const { return queries_.size(); }
  const std::string& name() const { return name_; }

  /// Evaluates all queries against x (the vector Wx). Uses prefix sums:
  /// O(n + q) for 1D, O(n + q) for 2D.
  std::vector<double> Evaluate(const DataVector& x) const;

  /// Evaluate() into a caller-owned buffer, reusing its capacity.
  void EvaluateInto(const DataVector& x, std::vector<double>* out) const;

  /// Fully allocation-free form: the prefix-sum table is built in
  /// *cum_scratch (reusing its capacity) instead of a fresh PrefixSums.
  /// This is the variant the experiment engine's trial loop uses with its
  /// per-thread scratch arena. Results are bit-identical to Evaluate().
  void EvaluateInto(const DataVector& x, std::vector<double>* cum_scratch,
                    std::vector<double>* out) const;

  /// Batched evaluation of many data vectors (e.g. the per-cell data
  /// samples, or repeated trial estimates) against the same workload.
  std::vector<std::vector<double>> EvaluateAll(
      const std::vector<DataVector>& xs) const;

  /// Lane-major lockstep evaluation for trial batches: est_lanes holds
  /// `lanes` estimates on this workload's domain (cell i of lane l at
  /// [i * lanes + l]); *out receives size() * lanes answers (query q of
  /// lane l at [q * lanes + l]). Lane l is bit-identical to EvaluateInto
  /// on lane l's estimate: the lane prefix table mirrors
  /// ComputePrefixSums per lane and the corner lookups use the same
  /// evaluation plan. Requires the precomputed plan (1D/2D domains with
  /// queries) and lanes in [1, lockstep::kMaxLanes].
  void EvaluateMany(const double* est_lanes, size_t lanes,
                    std::vector<double>* cum_scratch,
                    std::vector<double>* out) const;

  /// Whether EvaluateMany is available (1D/2D domains; dims > 2 fall back
  /// to direct per-query evaluation, which has no lane form).
  bool has_eval_plan() const { return eval_plan_ != nullptr; }

  Status Validate() const;

 private:
  // Precomputed corner terms into PrefixSums::raw(): 2 indices per query
  // in 1D (plus, minus), 4 in 2D (plus, minus, minus, plus). Empty for
  // dims > 2 (falls back to direct per-query evaluation).
  struct EvalPlan {
    size_t terms_per_query = 0;
    std::vector<size_t> corner_idx;
  };

  void BuildEvalPlan();

  Domain domain_;
  std::vector<RangeQuery> queries_;
  std::string name_;
  std::shared_ptr<const EvalPlan> eval_plan_;  // immutable, shared by copies
};

}  // namespace dpbench

#endif  // DPBENCH_WORKLOAD_WORKLOAD_H_
