#include "src/workload/workload.h"

#include <algorithm>

#include "src/common/logging.h"

namespace dpbench {

Workload Workload::Prefix1D(size_t n) {
  std::vector<RangeQuery> qs;
  qs.reserve(n);
  for (size_t i = 0; i < n; ++i) qs.push_back(RangeQuery::D1(0, i));
  return Workload(Domain::D1(n), std::move(qs), "prefix");
}

Workload Workload::Identity(const Domain& domain) {
  std::vector<RangeQuery> qs;
  size_t n = domain.TotalCells();
  qs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> idx = domain.Unflatten(i);
    qs.emplace_back(idx, idx);
  }
  return Workload(domain, std::move(qs), "identity");
}

Workload Workload::Total(const Domain& domain) {
  std::vector<size_t> lo(domain.num_dims(), 0);
  std::vector<size_t> hi(domain.num_dims());
  for (size_t j = 0; j < domain.num_dims(); ++j) hi[j] = domain.size(j) - 1;
  return Workload(domain, {RangeQuery(lo, hi)}, "total");
}

Workload Workload::RandomRange(const Domain& domain, size_t count,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> qs;
  qs.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    std::vector<size_t> lo(domain.num_dims()), hi(domain.num_dims());
    for (size_t j = 0; j < domain.num_dims(); ++j) {
      size_t a = rng.UniformInt(domain.size(j));
      size_t b = rng.UniformInt(domain.size(j));
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    qs.emplace_back(std::move(lo), std::move(hi));
  }
  return Workload(domain, std::move(qs), "random-range");
}

Workload Workload::AllRange1D(size_t n) {
  std::vector<RangeQuery> qs;
  qs.reserve(n * (n + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) qs.push_back(RangeQuery::D1(i, j));
  }
  return Workload(Domain::D1(n), std::move(qs), "all-range");
}

Workload Workload::FixedWidth1D(size_t n, size_t width) {
  DPB_CHECK_GE(width, 1u);
  DPB_CHECK_LE(width, n);
  std::vector<RangeQuery> qs;
  qs.reserve(n - width + 1);
  for (size_t i = 0; i + width <= n; ++i) {
    qs.push_back(RangeQuery::D1(i, i + width - 1));
  }
  return Workload(Domain::D1(n), std::move(qs),
                  "width-" + std::to_string(width));
}

std::vector<double> Workload::Evaluate(const DataVector& x) const {
  DPB_CHECK(x.domain() == domain_);
  std::vector<double> y(queries_.size());
  if (domain_.num_dims() <= 2) {
    PrefixSums ps(x);
    for (size_t i = 0; i < queries_.size(); ++i) {
      y[i] = ps.RangeSum(queries_[i].lo, queries_[i].hi);
    }
  } else {
    for (size_t i = 0; i < queries_.size(); ++i) {
      y[i] = queries_[i].Evaluate(x);
    }
  }
  return y;
}

Status Workload::Validate() const {
  for (const RangeQuery& q : queries_) {
    DPB_RETURN_NOT_OK(q.Validate(domain_));
  }
  return Status::OK();
}

}  // namespace dpbench
