#include "src/workload/workload.h"

#include <algorithm>

#include "src/common/lockstep.h"
#include "src/common/logging.h"

namespace dpbench {

Workload Workload::Prefix1D(size_t n) {
  std::vector<RangeQuery> qs;
  qs.reserve(n);
  for (size_t i = 0; i < n; ++i) qs.push_back(RangeQuery::D1(0, i));
  return Workload(Domain::D1(n), std::move(qs), "prefix");
}

Workload Workload::Identity(const Domain& domain) {
  std::vector<RangeQuery> qs;
  size_t n = domain.TotalCells();
  qs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> idx = domain.Unflatten(i);
    qs.emplace_back(idx, idx);
  }
  return Workload(domain, std::move(qs), "identity");
}

Workload Workload::Total(const Domain& domain) {
  std::vector<size_t> lo(domain.num_dims(), 0);
  std::vector<size_t> hi(domain.num_dims());
  for (size_t j = 0; j < domain.num_dims(); ++j) hi[j] = domain.size(j) - 1;
  return Workload(domain, {RangeQuery(lo, hi)}, "total");
}

Workload Workload::RandomRange(const Domain& domain, size_t count,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> qs;
  qs.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    std::vector<size_t> lo(domain.num_dims()), hi(domain.num_dims());
    for (size_t j = 0; j < domain.num_dims(); ++j) {
      size_t a = rng.UniformInt(domain.size(j));
      size_t b = rng.UniformInt(domain.size(j));
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    qs.emplace_back(std::move(lo), std::move(hi));
  }
  return Workload(domain, std::move(qs), "random-range");
}

Workload Workload::AllRange1D(size_t n) {
  std::vector<RangeQuery> qs;
  qs.reserve(n * (n + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) qs.push_back(RangeQuery::D1(i, j));
  }
  return Workload(Domain::D1(n), std::move(qs), "all-range");
}

Workload Workload::FixedWidth1D(size_t n, size_t width) {
  DPB_CHECK_GE(width, 1u);
  DPB_CHECK_LE(width, n);
  std::vector<RangeQuery> qs;
  qs.reserve(n - width + 1);
  for (size_t i = 0; i + width <= n; ++i) {
    qs.push_back(RangeQuery::D1(i, i + width - 1));
  }
  return Workload(Domain::D1(n), std::move(qs),
                  "width-" + std::to_string(width));
}

void Workload::BuildEvalPlan() {
  if (domain_.num_dims() > 2 || queries_.empty()) return;
  auto plan = std::make_shared<EvalPlan>();
  if (domain_.num_dims() == 1) {
    plan->terms_per_query = 2;
    plan->corner_idx.reserve(2 * queries_.size());
    for (const RangeQuery& q : queries_) {
      plan->corner_idx.push_back(q.hi[0] + 1);  // +cum[hi+1]
      plan->corner_idx.push_back(q.lo[0]);      // -cum[lo]
    }
  } else {
    size_t stride = domain_.size(1) + 1;  // cum is (n1+1) x (n2+1) row-major
    plan->terms_per_query = 4;
    plan->corner_idx.reserve(4 * queries_.size());
    for (const RangeQuery& q : queries_) {
      size_t r0 = q.lo[0], r1 = q.hi[0] + 1;
      size_t c0 = q.lo[1], c1 = q.hi[1] + 1;
      plan->corner_idx.push_back(r1 * stride + c1);  // +
      plan->corner_idx.push_back(r0 * stride + c1);  // -
      plan->corner_idx.push_back(r1 * stride + c0);  // -
      plan->corner_idx.push_back(r0 * stride + c0);  // +
    }
  }
  eval_plan_ = std::move(plan);
}

void Workload::EvaluateInto(const DataVector& x,
                            std::vector<double>* out) const {
  std::vector<double> cum;
  EvaluateInto(x, &cum, out);
}

void Workload::EvaluateInto(const DataVector& x,
                            std::vector<double>* cum_scratch,
                            std::vector<double>* out) const {
  DPB_CHECK(x.domain() == domain_);
  out->resize(queries_.size());
  if (eval_plan_ != nullptr) {
    ComputePrefixSums(x, cum_scratch);
    const std::vector<double>& cum = *cum_scratch;
    const std::vector<size_t>& idx = eval_plan_->corner_idx;
    if (eval_plan_->terms_per_query == 2) {
      for (size_t i = 0; i < queries_.size(); ++i) {
        (*out)[i] = cum[idx[2 * i]] - cum[idx[2 * i + 1]];
      }
    } else {
      for (size_t i = 0; i < queries_.size(); ++i) {
        (*out)[i] = cum[idx[4 * i]] - cum[idx[4 * i + 1]] -
                    cum[idx[4 * i + 2]] + cum[idx[4 * i + 3]];
      }
    }
    return;
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    (*out)[i] = queries_[i].Evaluate(x);
  }
}

void Workload::EvaluateMany(const double* est_lanes, size_t lanes,
                            std::vector<double>* cum_scratch,
                            std::vector<double>* out) const {
  DPB_CHECK(eval_plan_ != nullptr);
  DPB_CHECK_GE(lanes, 1u);
  DPB_CHECK_LE(lanes, lockstep::kMaxLanes);
  const lockstep::Kernels& kernels = lockstep::Active();
  const std::vector<size_t>& idx = eval_plan_->corner_idx;
  const size_t q = queries_.size();
  out->resize(q * lanes);
  if (eval_plan_->terms_per_query == 2) {
    const size_t n = domain_.size(0);
    cum_scratch->resize((n + 1) * lanes);
    kernels.prefix_1d(est_lanes, n, lanes, cum_scratch->data());
    kernels.eval_corners2(cum_scratch->data(), idx.data(), q, lanes,
                          out->data());
  } else {
    const size_t rows = domain_.size(0), cols = domain_.size(1);
    cum_scratch->assign((rows + 1) * (cols + 1) * lanes, 0.0);
    kernels.prefix_2d(est_lanes, rows, cols, lanes, cum_scratch->data());
    kernels.eval_corners4(cum_scratch->data(), idx.data(), q, lanes,
                          out->data());
  }
}

std::vector<double> Workload::Evaluate(const DataVector& x) const {
  std::vector<double> y;
  EvaluateInto(x, &y);
  return y;
}

std::vector<std::vector<double>> Workload::EvaluateAll(
    const std::vector<DataVector>& xs) const {
  std::vector<std::vector<double>> ys;
  ys.reserve(xs.size());
  for (const DataVector& x : xs) {
    ys.emplace_back();
    EvaluateInto(x, &ys.back());
  }
  return ys;
}

Status Workload::Validate() const {
  for (const RangeQuery& q : queries_) {
    DPB_RETURN_NOT_OK(q.Validate(domain_));
  }
  return Status::OK();
}

}  // namespace dpbench
