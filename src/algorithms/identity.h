// IDENTITY (Dwork et al.): the Laplace mechanism applied to every cell.
// The data-independent baseline every published algorithm must beat.
#ifndef DPBENCH_ALGORITHMS_IDENTITY_H_
#define DPBENCH_ALGORITHMS_IDENTITY_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class IdentityMechanism : public Mechanism {
 public:
  std::string name() const override { return "IDENTITY"; }
  bool SupportsDims(size_t) const override { return true; }
  bool data_independent() const override { return true; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;
  Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                              const PlanPayload& payload) const override;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_IDENTITY_H_
