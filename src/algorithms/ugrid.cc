#include "src/algorithms/ugrid.h"

#include <algorithm>
#include <cmath>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

size_t UGridMechanism::GridSize(double scale, double epsilon, double c) {
  double m = std::sqrt(std::max(scale, 0.0) * epsilon / c);
  return std::max<size_t>(10, static_cast<size_t>(std::lround(m)));
}

Result<DataVector> UGridMechanism::Run(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  size_t rows = domain.size(0), cols = domain.size(1);

  BudgetAccountant budget(ctx.epsilon);
  double scale;
  if (ctx.side_info.true_scale.has_value()) {
    scale = *ctx.side_info.true_scale;
  } else {
    double rho_total = 0.05 * ctx.epsilon;
    DPB_RETURN_NOT_OK(budget.Spend(rho_total, "scale-estimate"));
    DPB_ASSIGN_OR_RETURN(
        scale, LaplaceMechanismScalar(ctx.data.Scale(), 1.0, rho_total,
                                      ctx.rng));
    scale = std::max(scale, 1.0);
  }
  double eps = budget.remaining();
  DPB_RETURN_NOT_OK(budget.Spend(eps, "grid-counts"));

  size_t m = GridSize(scale, eps, c_);
  m = std::min({m, rows, cols});
  m = std::max<size_t>(m, 1);

  // Equi-width m x m grid; grid cell (gr, gc) covers row range
  // [gr*rows/m, (gr+1)*rows/m) and analogously for columns.
  auto row_lo = [&](size_t g) { return g * rows / m; };
  auto col_lo = [&](size_t g) { return g * cols / m; };
  PrefixSums ps(ctx.data);
  DataVector out(domain);
  for (size_t gr = 0; gr < m; ++gr) {
    size_t r0 = row_lo(gr), r1 = row_lo(gr + 1) - 1;
    for (size_t gc = 0; gc < m; ++gc) {
      size_t c0 = col_lo(gc), c1 = col_lo(gc + 1) - 1;
      double truth = ps.RangeSum({r0, c0}, {r1, c1});
      double noisy = truth + ctx.rng->Laplace(1.0 / eps);
      double area = static_cast<double>((r1 - r0 + 1) * (c1 - c0 + 1));
      for (size_t r = r0; r <= r1; ++r) {
        for (size_t c = c0; c <= c1; ++c) {
          out[r * cols + c] = noisy / area;
        }
      }
    }
  }
  return out;
}

}  // namespace dpbench
