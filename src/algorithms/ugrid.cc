#include "src/algorithms/ugrid.h"

#include <algorithm>
#include <cmath>

#include "src/common/lockstep.h"
#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

size_t UGridMechanism::GridSize(double scale, double epsilon, double c) {
  double m = std::sqrt(std::max(scale, 0.0) * epsilon / c);
  return std::max<size_t>(10, static_cast<size_t>(std::lround(m)));
}

namespace {

// When the true scale is public side information (the benchmark default,
// Table 1), the grid resolution m is data-independent and is chosen at
// plan time. Without it, resolution selection spends budget on a private
// scale estimate and must defer to execution (m_ unset).
class UGridPlan : public MechanismPlan {
 public:
  UGridPlan(std::string name, Domain domain, double epsilon, double c,
            std::optional<size_t> m)
      : MechanismPlan(std::move(name), std::move(domain)),
        epsilon_(epsilon),
        c_(c),
        m_(m) {}

  bool precomputed() const override { return m_.has_value(); }

  Result<PlanPayload> SerializePayload() const override {
    if (!m_.has_value()) {
      // Without public scale the resolution is chosen at execution time
      // with a private estimate — there is nothing plan-time to persist.
      return Status::NotSupported(
          mechanism_name() + ": plan without public scale has no payload");
    }
    PlanPayload p;
    p.mechanism = mechanism_name();
    p.kind = "ugrid";
    p.reals["epsilon"] = epsilon_;
    p.reals["c"] = c_;
    p.ints["m"] = *m_;
    return p;
  }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    size_t rows = domain().size(0), cols = domain().size(1);

    size_t m;
    double eps;
    if (m_.has_value()) {
      m = *m_;
      eps = epsilon_;  // full budget goes to grid counts
    } else {
      BudgetAccountant budget(epsilon_);
      double rho_total = 0.05 * epsilon_;
      DPB_RETURN_NOT_OK(budget.Spend(rho_total, "scale-estimate"));
      DPB_ASSIGN_OR_RETURN(
          double scale, LaplaceMechanismScalar(ctx.data.Scale(), 1.0,
                                               rho_total, ctx.rng));
      scale = std::max(scale, 1.0);
      eps = budget.remaining();
      DPB_RETURN_NOT_OK(budget.Spend(eps, "grid-counts"));
      m = UGridMechanism::GridSize(scale, eps, c_);
      m = std::min({m, rows, cols});
      m = std::max<size_t>(m, 1);
    }

    // Equi-width m x m grid; grid cell (gr, gc) covers row range
    // [gr*rows/m, (gr+1)*rows/m) and analogously for columns. The grid
    // counts come from the scratch prefix-sum table, and the noise is
    // block-filled for all m*m measurements up front (row-major — the
    // same draw order as the per-cell scalar loop), so the planned path
    // is allocation-free in the steady state.
    auto row_lo = [&](size_t g) { return g * rows / m; };
    auto col_lo = [&](size_t g) { return g * cols / m; };
    ComputePrefixSums(ctx.data, &s.prefix);
    const std::vector<double>& cum = s.prefix;
    const size_t stride = cols + 1;
    std::vector<double>& noise = s.noise;
    noise.resize(m * m);
    ctx.rng->FillLaplace(noise.data(), m * m, 1.0 / eps);
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    for (size_t gr = 0; gr < m; ++gr) {
      size_t r0 = row_lo(gr), r1 = row_lo(gr + 1) - 1;
      for (size_t gc = 0; gc < m; ++gc) {
        size_t c0 = col_lo(gc), c1 = col_lo(gc + 1) - 1;
        double truth = cum[(r1 + 1) * stride + (c1 + 1)] -
                       cum[r0 * stride + (c1 + 1)] -
                       cum[(r1 + 1) * stride + c0] + cum[r0 * stride + c0];
        double noisy = truth + noise[gr * m + gc];
        double area = static_cast<double>((r1 - r0 + 1) * (c1 - c0 + 1));
        for (size_t r = r0; r <= r1; ++r) {
          for (size_t c = c0; c <= c1; ++c) {
            cells[r * cols + c] = noisy / area;
          }
        }
      }
    }
    return Status::OK();
  }

  /// Lockstep only with a public-scale plan: the private-scale path draws
  /// a data-dependent resolution estimate per trial, so its control flow
  /// can diverge across lanes.
  bool SupportsLockstep() const override { return m_.has_value(); }

  Status ExecuteMany(const ExecContext& ctx, size_t lanes,
                     std::vector<double>* est_lanes) const override {
    if (!m_.has_value()) {
      return MechanismPlan::ExecuteMany(ctx, lanes, est_lanes);
    }
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    DPB_RETURN_NOT_OK(CheckLanes(lanes));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    const lockstep::Kernels& kernels = lockstep::Active();
    const size_t rows = domain().size(0), cols = domain().size(1);
    const size_t m = *m_;
    const double eps = epsilon_;
    auto row_lo = [&](size_t g) { return g * rows / m; };
    auto col_lo = [&](size_t g) { return g * cols / m; };
    // Grid-count truths are data-only and shared across lanes.
    ComputePrefixSums(ctx.data, &s.prefix);
    const std::vector<double>& cum = s.prefix;
    const size_t stride = cols + 1;
    s.lane.noise.resize(m * m * lanes);
    ctx.rng->FillLaplaceLanes(s.lane.noise.data(), m * m, 1.0 / eps, lanes);
    est_lanes->resize(rows * cols * lanes);
    double noisy[lockstep::kMaxLanes];
    for (size_t gr = 0; gr < m; ++gr) {
      size_t r0 = row_lo(gr), r1 = row_lo(gr + 1) - 1;
      for (size_t gc = 0; gc < m; ++gc) {
        size_t c0 = col_lo(gc), c1 = col_lo(gc + 1) - 1;
        double truth = cum[(r1 + 1) * stride + (c1 + 1)] -
                       cum[r0 * stride + (c1 + 1)] -
                       cum[(r1 + 1) * stride + c0] + cum[r0 * stride + c0];
        const double* nz = s.lane.noise.data() + (gr * m + gc) * lanes;
        for (size_t l = 0; l < lanes; ++l) noisy[l] = truth + nz[l];
        double area = static_cast<double>((r1 - r0 + 1) * (c1 - c0 + 1));
        const size_t width = c1 - c0 + 1;
        for (size_t r = r0; r <= r1; ++r) {
          kernels.spread_divided(noisy, area,
                                 est_lanes->data() + (r * cols + c0) * lanes,
                                 width, lanes);
        }
      }
    }
    return Status::OK();
  }

 private:
  double epsilon_;
  double c_;
  std::optional<size_t> m_;
};

}  // namespace

Result<PlanPtr> UGridMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  std::optional<size_t> m;
  if (ctx.side_info.true_scale.has_value()) {
    size_t rows = ctx.domain.size(0), cols = ctx.domain.size(1);
    size_t res = GridSize(*ctx.side_info.true_scale, ctx.epsilon, c_);
    res = std::min({res, rows, cols});
    res = std::max<size_t>(res, 1);
    m = res;
  }
  return PlanPtr(new UGridPlan(name(), ctx.domain, ctx.epsilon, c_, m));
}

Result<PlanPtr> UGridMechanism::HydratePlan(const PlanContext& ctx,
                                            const PlanPayload& payload) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  DPB_RETURN_NOT_OK(payload.CheckHeader(name(), "ugrid", ctx.epsilon));
  DPB_ASSIGN_OR_RETURN(double c, payload.Real("c"));
  DPB_ASSIGN_OR_RETURN(uint64_t m, payload.Int("m"));
  // The resolution is a pure function of (scale, epsilon, c, domain), so
  // validate by exact equality against what Plan() would choose — a
  // merely-in-range m would silently run a different grid.
  if (!(c == c_)) {
    return Status::InvalidArgument(
        name() + ": ugrid payload was built with a different c parameter");
  }
  if (!ctx.side_info.true_scale.has_value()) {
    return Status::InvalidArgument(
        name() +
        ": ugrid payload has a planned resolution but the context has no "
        "public scale");
  }
  size_t rows = ctx.domain.size(0), cols = ctx.domain.size(1);
  size_t expect = GridSize(*ctx.side_info.true_scale, ctx.epsilon, c_);
  expect = std::min({expect, rows, cols});
  expect = std::max<size_t>(expect, 1);
  if (m != expect) {
    return Status::InvalidArgument(
        name() + ": ugrid payload resolution does not match this context");
  }
  return PlanPtr(new UGridPlan(name(), ctx.domain, ctx.epsilon, c_,
                               static_cast<size_t>(m)));
}

}  // namespace dpbench
