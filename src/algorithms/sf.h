// SF — StructureFirst (Xu, Zhang, Xiao, Yang, Yu, Winslett VLDBJ'13).
//
// Fixes the number of buckets k = ceil(n/10) up front, selects the k-1
// bucket boundaries with the exponential mechanism (score = reduction in
// sum-of-squared-error, sensitivity bounded via the public count cap F,
// which is derived from the dataset scale — side information per Table 1),
// then spends the remaining budget measuring the buckets. Following the
// consistent variant (Sec 6.2 of the original; paper Theorem 7), each
// bucket's interior is measured with a small hierarchical histogram, which
// restores consistency.
#ifndef DPBENCH_ALGORITHMS_SF_H_
#define DPBENCH_ALGORITHMS_SF_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class SfMechanism : public Mechanism {
 public:
  /// rho: budget share for structure selection. k defaults to ceil(n/10)
  /// (the authors' recommendation, adopted per paper §6.4); pass k > 0 to
  /// override.
  explicit SfMechanism(double rho = 0.5, size_t k = 0)
      : rho_(rho), k_override_(k) {}

  std::string name() const override { return "SF"; }
  bool SupportsDims(size_t dims) const override { return dims == 1; }
  bool uses_side_info() const override { return true; }

  /// Structured plan: bucket count, budget schedule, and (with side-info
  /// scale) the score sensitivity hoisted; the split search runs on
  /// scratch prefix-sum tables with block-uniform selection, and the
  /// within-bucket hierarchies use the flat allocation-free tree pipeline.
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;

 protected:
  Result<DataVector> RunImpl(const RunContext& ctx) const override;

 public:

 private:
  double rho_;
  size_t k_override_;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_SF_H_
