// The common interface all differentially private algorithms implement,
// plus a registry for lookup by name (Table 1 of the paper).
//
// Contract: every algorithm is exposed through a *plan-once / execute-many*
// pipeline. Plan() consumes only data-independent inputs — (domain,
// workload, epsilon, side info) — and produces an immutable MechanismPlan
// holding all state derivable without looking at the data: strategy trees,
// measurement matrices, budget allocations, transform layouts. Execute()
// consumes (data, rng) and performs the noisy measurement + inference.
// Run() is a thin Plan+Execute wrapper kept for call-site compatibility:
// it consumes a true data vector and a privacy budget epsilon and returns
// an *estimated data vector* on the same domain. Workload answers are
// obtained by evaluating W against the estimate, which makes algorithm
// comparison uniform (every algorithm in the paper is of this form).
// Budget is tracked through BudgetAccountant so end-to-end privacy
// (Principle 5) is enforced mechanically.
//
// Data-dependent algorithms (DAWA, MWEM, ...) cannot precompute their
// *measurements*, but plenty of their per-trial work is data-independent:
// workload query layouts, partition cost-table geometry, grid/tree
// layouts, budget splits, Fourier coefficient orderings. Each of them
// overrides Plan() with a structured plan hoisting that state out of the
// trial loop and executing through the same scratch-arena ExecuteInto
// pipeline as the data-independent family. They keep RunImpl() as the
// one-shot reference implementation: ReferencePlan() wraps it in the
// legacy pass-through plan, which the converted pipelines are verified
// against draw-for-draw. Data-dependent plans hold only state derivable
// from the PlanContext, so the runner's in-process plan cache (keyed by
// algorithm/domain/epsilon[/scale]) can share them across datasets and
// samples like any other plan — but they never serialize into
// cross-process plan caches (SerializePayload stays NotSupported), since
// re-planning them is cheap and their execution remains data-dependent.
#ifndef DPBENCH_ALGORITHMS_MECHANISM_H_
#define DPBENCH_ALGORITHMS_MECHANISM_H_

#include <complex>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/algorithms/tree_inference.h"
#include "src/common/lockstep.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/histogram/data_vector.h"
#include "src/workload/workload.h"

namespace dpbench {

/// Public knowledge about the input that some published algorithms assume
/// (Principle 7). MWEM, UGRID, AGRID and SF consume the true scale; starred
/// variants estimate it privately instead.
struct SideInfo {
  std::optional<double> true_scale;
};

/// Everything a mechanism needs for one run.
struct RunContext {
  const DataVector& data;      ///< true histogram x
  const Workload& workload;    ///< workload W (workload-aware algorithms use it)
  double epsilon = 0.1;        ///< total privacy budget
  Rng* rng = nullptr;          ///< randomness source (seeded by caller)
  SideInfo side_info;          ///< optional public side information
};

/// Data-independent inputs available at planning time. The workload is
/// referenced, not copied: it must outlive any plan built from this
/// context (the experiment engine guarantees this by owning workloads for
/// the whole run).
struct PlanContext {
  const Domain& domain;        ///< geometry of the data vector
  const Workload& workload;    ///< workload W
  double epsilon = 0.1;        ///< total privacy budget
  SideInfo side_info;          ///< optional public side information
};

/// Reusable buffer arena for the execute hot path. The experiment engine
/// owns one ExecScratch per worker thread and threads it through
/// ExecContext so the execute-many trial loop performs zero per-trial heap
/// allocations in the steady state: buffers are assign()ed (reusing
/// capacity) instead of freshly constructed. The buffers carry no state
/// between trials — every use fully overwrites what it reads — so results
/// are bit-identical with or without scratch.
///
/// A scratch belongs to exactly one thread at a time. The named buffers
/// are a convention, not a contract; a plan may use any of them for any
/// purpose as long as nested plan execution (e.g. GREEDY_H-2D delegating
/// to its linearized 1D plan) does not clobber a buffer the outer plan
/// still reads.
struct ExecScratch {
  std::vector<double> prefix;    ///< prefix sums / padded input / work space
  std::vector<double> y;         ///< per-node measurements / padded 2D grid
  std::vector<double> z;         ///< GLS bottom-up pass / column gather
  std::vector<double> node_est;  ///< GLS node estimates / column scatter
  std::vector<double> coef;      ///< wavelet coefficients / 2D transform grid
  std::vector<double> noise;     ///< block-filled Laplace noise (Rng fills)
  DataVector linear;             ///< Hilbert-linearized input (GREEDY_H 2D)
  DataVector linear_est;         ///< estimate on the linearized domain

  // --- data-dependent execution (MWEM/DAWA/AHP/PHP/SF/EFPA/DPCUBE/
  // AGRID/HYBRIDTREE). As above, names are a convention: any plan may use
  // any buffer as long as nested execution does not clobber live state.
  std::vector<double> scores;    ///< exponential-mechanism scores
  std::vector<double> unif;      ///< uniform block for Gumbel-max selection
  std::vector<double> truth;     ///< true workload answers / bucket totals
  std::vector<double> answers;   ///< per-round answers / bucket estimates
  std::vector<double> avg;       ///< MWEM iterate average / padded input
  std::vector<double> noisy;     ///< noisy data view (DAWA/AHP/DPCUBE)
  std::vector<double> prefix_sq; ///< prefix sums of squares (SF)
  std::vector<double> cost;      ///< interval cost table / tail energies
  std::vector<double> dp;        ///< DAWA least-cost DP values
  std::vector<size_t> order;     ///< sort permutation / candidate positions
  std::vector<size_t> starts;    ///< partition bucket starts
  std::vector<size_t> ends;      ///< partition bucket ends (exclusive)
  std::vector<size_t> back;      ///< DP backpointers / split cut positions
  std::vector<size_t> bucket_of; ///< cell -> bucket map / split bucket ids
  std::vector<size_t> range_lo;  ///< mapped workload range lows
  std::vector<size_t> range_hi;  ///< mapped workload range highs
  std::vector<std::complex<double>> freq;  ///< EFPA spectrum
  std::vector<std::complex<double>> kept;  ///< EFPA retained coefficients
  /// (key, index) pairs for sorts whose comparator reads only the key:
  /// sorting pairs is cache-friendlier than an index sort chasing the key
  /// array, and the comparison oracle — hence the permutation, including
  /// tie placement — is identical (AHP's noisy-count ordering).
  std::vector<std::pair<double, size_t>> keyed;
  DataVector synth;              ///< MWEM synthetic estimate
  FlatTreeScratch tree;          ///< dynamic measurement-tree workspace

  /// Lane-major buffers for trial-lockstep execution (ExecuteMany):
  /// element i of lane l lives at buf[i * lanes + l]. Disjoint from the
  /// scalar buffers above so a lockstep batch and the shared (lane-less)
  /// precomputation can coexist; the same clobbering convention applies to
  /// nested plan execution.
  struct LaneArena {
    std::vector<double> noise;     ///< lane-strided Rng fills
    std::vector<double> y;         ///< per-node measurements / padded grid
    std::vector<double> z;         ///< GLS bottom-up pass / column scatter
    std::vector<double> node_est;  ///< GLS node estimates
    std::vector<double> coef;      ///< wavelet coefficients
    std::vector<double> work;      ///< inverse-transform work space
    std::vector<double> colw;      ///< column gather (2D wavelet)
    std::vector<double> truth;     ///< shared per-measurement truths (no lanes)
    std::vector<double> linear;    ///< linearized estimates (GREEDY_H 2D)
    DataVector tmp;                ///< scalar slot for the fallback path
  };
  LaneArena lane;
};

/// Data-dependent inputs consumed at execution time.
struct ExecContext {
  const DataVector& data;        ///< true histogram x
  Rng* rng = nullptr;            ///< randomness source (seeded by caller)
  ExecScratch* scratch = nullptr;  ///< optional per-thread buffer arena
};

/// The serializable essence of a precomputed plan: everything a worker in
/// another process needs to rebuild the plan without re-planning — tree
/// schedules, budget splits, GLS coefficients, Hilbert permutations,
/// cached matrix factors. The representation is a small set of named,
/// typed fields so the wire format (engine/serialize) stays self-
/// describing and mechanism-agnostic; `kind` tags the field schema each
/// plan family uses and `mechanism` names the producer, both validated on
/// hydration. All values round-trip bit-exactly.
struct PlanPayload {
  std::string mechanism;  ///< producing mechanism's canonical name
  std::string kind;       ///< payload schema tag (e.g. "range_tree")
  std::map<std::string, uint64_t> ints;
  std::map<std::string, double> reals;
  std::map<std::string, std::vector<uint64_t>> int_vecs;
  std::map<std::string, std::vector<double>> real_vecs;

  bool operator==(const PlanPayload& other) const {
    return mechanism == other.mechanism && kind == other.kind &&
           ints == other.ints && reals == other.reals &&
           int_vecs == other.int_vecs && real_vecs == other.real_vecs;
  }

  /// Field accessors for hydration: NotFound with the field name when the
  /// payload lacks it (so a wrong/stale cache fails with a precise error).
  Result<uint64_t> Int(const std::string& name) const;
  Result<double> Real(const std::string& name) const;
  Result<std::vector<uint64_t>> IntVec(const std::string& name) const;
  Result<std::vector<double>> RealVec(const std::string& name) const;

  /// Validates the (mechanism, kind) pair and that `epsilon` (when the
  /// payload carries the "epsilon" field — every builtin payload does)
  /// matches the plan context bit-exactly: a cache built for a different
  /// budget must never silently supply a wrong noise scale.
  Status CheckHeader(const std::string& mechanism_name,
                     const std::string& expected_kind, double epsilon) const;
};

/// An immutable, reusable execution plan produced by Mechanism::Plan().
/// Plans are safe to share across threads: Execute() is const and keeps
/// all mutable state on the stack. A plan may retain references to the
/// mechanism and workload it was built from; both must outlive the plan.
class MechanismPlan {
 public:
  MechanismPlan(std::string mechanism_name, Domain domain)
      : mechanism_name_(std::move(mechanism_name)),
        domain_(std::move(domain)) {}
  virtual ~MechanismPlan() = default;

  /// Executes the planned mechanism on a concrete data vector under the
  /// planned epsilon-DP budget; returns the estimate x-hat.
  virtual Result<DataVector> Execute(const ExecContext& ctx) const = 0;

  /// Executes into *out, reusing its storage when it is already a vector
  /// on the planned domain — the allocation-free form the experiment
  /// engine's trial loop uses together with ExecContext::scratch. The
  /// default delegates to Execute(); hot plans override it (and implement
  /// Execute() as a thin allocate-and-delegate wrapper). Results are
  /// bit-identical to Execute() on the same rng stream.
  virtual Status ExecuteInto(const ExecContext& ctx, DataVector* out) const;

  /// True if the plan holds real precomputed state; false for the default
  /// pass-through plan of data-dependent algorithms (useful for cache
  /// accounting — caching a pass-through plan saves nothing).
  virtual bool precomputed() const { return true; }

  /// True if ExecuteMany() runs trials in SoA lockstep (a lane-major
  /// override) rather than the scalar fallback loop. Only plans whose
  /// per-trial control flow is data-independent — so lanes can never
  /// diverge — return true; the runner batches trials through ExecuteMany
  /// only for these.
  virtual bool SupportsLockstep() const { return false; }

  /// Executes `lanes` consecutive trials and writes their estimates
  /// lane-major into *est_lanes (cell i of trial l at [i * lanes + l];
  /// resized to TotalCells() * lanes). Stream contract: consumes exactly
  /// the draws of `lanes` successive ExecuteInto() calls, and lane l is
  /// bit-identical to the l-th of those calls. The default loops
  /// ExecuteInto() scalar (valid for every plan); lockstep overrides
  /// require 1 <= lanes <= lockstep::kMaxLanes.
  virtual Status ExecuteMany(const ExecContext& ctx, size_t lanes,
                             std::vector<double>* est_lanes) const;

  /// Extracts the serializable payload of this plan. Default: NotSupported
  /// (pass-through plans and plans without serialization hooks). Plans
  /// that override it guarantee Mechanism::HydratePlan() on the payload
  /// reproduces a plan with bit-identical execution behavior.
  virtual Result<PlanPayload> SerializePayload() const;

  /// Name of the mechanism that produced this plan.
  const std::string& mechanism_name() const { return mechanism_name_; }

  /// Domain the plan was built for; Execute() rejects other domains.
  const Domain& domain() const { return domain_; }

 protected:
  /// Validates execution preconditions (rng present, data on the planned
  /// domain). Call first in Execute() implementations.
  Status CheckExec(const ExecContext& ctx) const;

  /// Ensures *out is a vector on the planned domain. When it already is
  /// (every trial after a cell's first), the existing buffer is reused and
  /// nothing is allocated; ExecuteInto overrides must then overwrite every
  /// cell.
  void PrepareOut(DataVector* out) const;

  /// Validates a lockstep lane count: 1 <= lanes <= lockstep::kMaxLanes.
  /// Call first in ExecuteMany() overrides (after CheckExec).
  Status CheckLanes(size_t lanes) const;

 private:
  std::string mechanism_name_;
  Domain domain_;
};

using PlanPtr = std::shared_ptr<const MechanismPlan>;

class PassThroughPlan;

/// Base class for all algorithms in the benchmark.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Canonical name, matching Table 1 (e.g. "DAWA", "MWEM*").
  virtual std::string name() const = 0;

  /// True if the algorithm supports inputs with `dims` dimensions.
  virtual bool SupportsDims(size_t dims) const = 0;

  /// True if error is identical for all datasets on a given domain
  /// (paper §3.1's data-independence).
  virtual bool data_independent() const { return false; }

  /// True if the algorithm reads SideInfo (Table 1 "Side info" column).
  virtual bool uses_side_info() const { return false; }

  /// Builds a reusable plan from data-independent inputs. The default
  /// returns a pass-through plan that defers everything to RunImpl();
  /// data-independent algorithms override this with real precomputation.
  /// The mechanism and ctx.workload must outlive the returned plan.
  virtual Result<PlanPtr> Plan(const PlanContext& ctx) const;

  /// Rebuilds a plan from a serialized payload instead of planning — the
  /// plan-cache load path of sharded/repeated runs. The returned plan
  /// executes bit-identically to the plan the payload was extracted from
  /// (hence to a fresh Plan() on the same context). Fails with
  /// NotSupported when the mechanism has no serializable plan, and with
  /// InvalidArgument when the payload does not match this mechanism or
  /// context (wrong producer, kind, epsilon, or geometry).
  virtual Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                                      const PlanPayload& payload) const;

  /// Builds the legacy pass-through plan (defer everything to RunImpl),
  /// regardless of any structured Plan() override. This is the reference
  /// implementation the converted data-dependent ExecuteInto pipelines
  /// are verified against draw-for-draw, and the fallback structured
  /// plans return for geometries they do not cover (e.g. MWEM/DPCUBE
  /// beyond 2D). Fails for mechanisms without a RunImpl.
  Result<PlanPtr> ReferencePlan(const PlanContext& ctx) const;

  /// Executes the algorithm under epsilon-DP; returns the estimate x-hat.
  /// Thin wrapper: builds a plan and executes it once.
  Result<DataVector> Run(const RunContext& ctx) const;

 protected:
  /// One-shot implementation hook for data-dependent algorithms (all work
  /// happens with the data in hand). Mechanisms that override Plan() do
  /// not implement this.
  virtual Result<DataVector> RunImpl(const RunContext& ctx) const;

  /// Validates common preconditions (positive epsilon, rng present,
  /// dimensionality supported). Call first in RunImpl() implementations.
  Status CheckContext(const RunContext& ctx) const;

  /// Validates planning preconditions (positive epsilon, non-empty domain
  /// of a supported dimensionality). Call first in Plan() overrides.
  Status CheckPlanContext(const PlanContext& ctx) const;

  friend class PassThroughPlan;
};

using MechanismPtr = std::shared_ptr<const Mechanism>;

/// Registry of the benchmark's algorithm suite (M in the 9-tuple).
class MechanismRegistry {
 public:
  /// All registered algorithm names, in Table 1 order.
  static std::vector<std::string> Names();

  /// Names of algorithms applicable to `dims`-dimensional data.
  static std::vector<std::string> NamesForDims(size_t dims);

  /// Lookup by canonical name.
  static Result<MechanismPtr> Get(const std::string& name);
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_MECHANISM_H_
