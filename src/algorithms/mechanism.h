// The common interface all differentially private algorithms implement,
// plus a registry for lookup by name (Table 1 of the paper).
//
// Contract: Run() consumes a true data vector and a privacy budget epsilon
// and returns an *estimated data vector* on the same domain. Workload
// answers are obtained by evaluating W against the estimate, which makes
// algorithm comparison uniform (every algorithm in the paper is of this
// form). Budget is tracked through BudgetAccountant so end-to-end privacy
// (Principle 5) is enforced mechanically.
#ifndef DPBENCH_ALGORITHMS_MECHANISM_H_
#define DPBENCH_ALGORITHMS_MECHANISM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/histogram/data_vector.h"
#include "src/workload/workload.h"

namespace dpbench {

/// Public knowledge about the input that some published algorithms assume
/// (Principle 7). MWEM, UGRID, AGRID and SF consume the true scale; starred
/// variants estimate it privately instead.
struct SideInfo {
  std::optional<double> true_scale;
};

/// Everything a mechanism needs for one run.
struct RunContext {
  const DataVector& data;      ///< true histogram x
  const Workload& workload;    ///< workload W (workload-aware algorithms use it)
  double epsilon = 0.1;        ///< total privacy budget
  Rng* rng = nullptr;          ///< randomness source (seeded by caller)
  SideInfo side_info;          ///< optional public side information
};

/// Base class for all algorithms in the benchmark.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Canonical name, matching Table 1 (e.g. "DAWA", "MWEM*").
  virtual std::string name() const = 0;

  /// True if the algorithm supports inputs with `dims` dimensions.
  virtual bool SupportsDims(size_t dims) const = 0;

  /// True if error is identical for all datasets on a given domain
  /// (paper §3.1's data-independence).
  virtual bool data_independent() const { return false; }

  /// True if the algorithm reads SideInfo (Table 1 "Side info" column).
  virtual bool uses_side_info() const { return false; }

  /// Executes the algorithm under epsilon-DP; returns the estimate x-hat.
  virtual Result<DataVector> Run(const RunContext& ctx) const = 0;

 protected:
  /// Validates common preconditions (positive epsilon, rng present,
  /// dimensionality supported). Call first in Run() implementations.
  Status CheckContext(const RunContext& ctx) const;
};

using MechanismPtr = std::shared_ptr<const Mechanism>;

/// Registry of the benchmark's algorithm suite (M in the 9-tuple).
class MechanismRegistry {
 public:
  /// All registered algorithm names, in Table 1 order.
  static std::vector<std::string> Names();

  /// Names of algorithms applicable to `dims`-dimensional data.
  static std::vector<std::string> NamesForDims(size_t dims);

  /// Lookup by canonical name.
  static Result<MechanismPtr> Get(const std::string& name);
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_MECHANISM_H_
