#include "src/algorithms/privelet.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/math.h"

namespace dpbench {

namespace wavelet {

std::vector<double> HaarForward(const std::vector<double>& x) {
  DPB_CHECK(IsPowerOfTwo(x.size()));
  size_t n = x.size();
  std::vector<double> sums = x;
  std::vector<std::vector<double>> detail_levels;  // finest first
  while (sums.size() > 1) {
    size_t half = sums.size() / 2;
    std::vector<double> next(half), details(half);
    for (size_t i = 0; i < half; ++i) {
      next[i] = sums[2 * i] + sums[2 * i + 1];
      details[i] = sums[2 * i] - sums[2 * i + 1];
    }
    detail_levels.push_back(std::move(details));
    sums = std::move(next);
  }
  std::vector<double> coef;
  coef.reserve(n);
  coef.push_back(sums[0]);  // grand total
  for (auto it = detail_levels.rbegin(); it != detail_levels.rend(); ++it) {
    coef.insert(coef.end(), it->begin(), it->end());
  }
  return coef;
}

std::vector<double> HaarInverse(const std::vector<double>& coef) {
  DPB_CHECK(IsPowerOfTwo(coef.size()));
  size_t n = coef.size();
  std::vector<double> sums{coef[0]};
  size_t pos = 1;
  while (sums.size() < n) {
    size_t half = sums.size();
    std::vector<double> next(2 * half);
    for (size_t i = 0; i < half; ++i) {
      double d = coef[pos + i];
      next[2 * i] = (sums[i] + d) / 2.0;
      next[2 * i + 1] = (sums[i] - d) / 2.0;
    }
    pos += half;
    sums = std::move(next);
  }
  return sums;
}

}  // namespace wavelet

namespace {

// Pads to the next power of two with zero cells (padding is public: it
// depends only on the domain geometry).
std::vector<double> PadPow2(const std::vector<double>& x) {
  size_t n = NextPowerOfTwo(x.size());
  std::vector<double> out = x;
  out.resize(n, 0.0);
  return out;
}

}  // namespace

namespace {

// Plan-time state of the wavelet mechanism: padded transform geometry and
// the per-coefficient Laplace noise scale (the L1 sensitivity of the
// transform divided by epsilon). Both depend only on the domain.
class PriveletPlan : public MechanismPlan {
 public:
  PriveletPlan(std::string name, Domain domain, double noise_scale)
      : MechanismPlan(std::move(name), std::move(domain)),
        noise_scale_(noise_scale) {}

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    if (domain().num_dims() == 1) return Execute1D(ctx);
    return Execute2D(ctx);
  }

 private:
  Result<DataVector> Execute1D(const ExecContext& ctx) const {
    std::vector<double> padded = PadPow2(ctx.data.counts());
    std::vector<double> coef = wavelet::HaarForward(padded);
    for (double& c : coef) {
      c += ctx.rng->Laplace(noise_scale_);
    }
    std::vector<double> rec = wavelet::HaarInverse(coef);
    rec.resize(ctx.data.size());
    return DataVector(domain(), std::move(rec));
  }

  Result<DataVector> Execute2D(const ExecContext& ctx) const {
    // 2D separable transform: rows, then columns.
    size_t rows = domain().size(0), cols = domain().size(1);
    size_t prow = NextPowerOfTwo(rows), pcol = NextPowerOfTwo(cols);
    std::vector<std::vector<double>> grid(prow,
                                          std::vector<double>(pcol, 0.0));
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) grid[r][c] = ctx.data[r * cols + c];
    }
    for (size_t r = 0; r < prow; ++r) grid[r] = wavelet::HaarForward(grid[r]);
    for (size_t c = 0; c < pcol; ++c) {
      std::vector<double> col(prow);
      for (size_t r = 0; r < prow; ++r) col[r] = grid[r][c];
      col = wavelet::HaarForward(col);
      for (size_t r = 0; r < prow; ++r) grid[r][c] = col[r];
    }
    for (size_t r = 0; r < prow; ++r) {
      for (size_t c = 0; c < pcol; ++c) {
        grid[r][c] += ctx.rng->Laplace(noise_scale_);
      }
    }
    for (size_t c = 0; c < pcol; ++c) {
      std::vector<double> col(prow);
      for (size_t r = 0; r < prow; ++r) col[r] = grid[r][c];
      col = wavelet::HaarInverse(col);
      for (size_t r = 0; r < prow; ++r) grid[r][c] = col[r];
    }
    for (size_t r = 0; r < prow; ++r) grid[r] = wavelet::HaarInverse(grid[r]);

    DataVector out(domain());
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) out[r * cols + c] = grid[r][c];
    }
    return out;
  }

  double noise_scale_;
};

}  // namespace

Result<PlanPtr> PriveletMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  double sensitivity;
  if (ctx.domain.num_dims() == 1) {
    size_t padded = NextPowerOfTwo(ctx.domain.TotalCells());
    sensitivity = 1.0 + static_cast<double>(FloorLog2(padded));
  } else {
    size_t prow = NextPowerOfTwo(ctx.domain.size(0));
    size_t pcol = NextPowerOfTwo(ctx.domain.size(1));
    sensitivity = (1.0 + static_cast<double>(FloorLog2(prow))) *
                  (1.0 + static_cast<double>(FloorLog2(pcol)));
  }
  return PlanPtr(
      new PriveletPlan(name(), ctx.domain, sensitivity / ctx.epsilon));
}

}  // namespace dpbench
