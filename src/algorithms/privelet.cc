#include "src/algorithms/privelet.h"

#include <cmath>
#include <cstring>

#include "src/common/lockstep.h"
#include "src/common/logging.h"
#include "src/common/math.h"

namespace dpbench {

namespace wavelet {

void HaarForwardInPlace(double* work, double* coef, size_t n) {
  DPB_CHECK(IsPowerOfTwo(n));
  // Each pass halves the sum pyramid held in work[0..half*2) and emits its
  // detail coefficients at coef[half..2*half) — writing work[i] from
  // work[2i], work[2i+1] is safe because i <= 2i.
  for (size_t half = n / 2; half >= 1; half /= 2) {
    for (size_t i = 0; i < half; ++i) {
      double a = work[2 * i], b = work[2 * i + 1];
      work[i] = a + b;
      coef[half + i] = a - b;
    }
  }
  coef[0] = work[0];  // grand total
}

void HaarInverseInPlace(const double* coef, double* out, size_t n) {
  DPB_CHECK(IsPowerOfTwo(n));
  out[0] = coef[0];
  // Expand the sum pyramid inside `out`: iterating i downwards keeps the
  // not-yet-consumed sums (indices < i) intact while writing 2i, 2i+1.
  for (size_t half = 1; half < n; half *= 2) {
    for (size_t i = half; i-- > 0;) {
      double d = coef[half + i];
      double s = out[i];
      out[2 * i] = (s + d) / 2.0;
      out[2 * i + 1] = (s - d) / 2.0;
    }
  }
}

std::vector<double> HaarForward(const std::vector<double>& x) {
  DPB_CHECK(IsPowerOfTwo(x.size()));
  std::vector<double> work = x;
  std::vector<double> coef(x.size());
  HaarForwardInPlace(work.data(), coef.data(), x.size());
  return coef;
}

std::vector<double> HaarInverse(const std::vector<double>& coef) {
  DPB_CHECK(IsPowerOfTwo(coef.size()));
  std::vector<double> out(coef.size());
  HaarInverseInPlace(coef.data(), out.data(), coef.size());
  return out;
}

}  // namespace wavelet

namespace {

// Plan-time state of the wavelet mechanism: the padded transform layout
// (per-dimension power-of-two sizes, from which the in-place Haar level
// offsets follow) and the per-coefficient Laplace noise scale (the L1
// sensitivity of the transform divided by epsilon). All of it depends only
// on the domain, so execution is two in-place transform sweeps over
// scratch buffers — no per-level vector churn.
class PriveletPlan : public MechanismPlan {
 public:
  PriveletPlan(std::string name, Domain domain, size_t padded_rows,
               size_t padded_cols, double noise_scale, double epsilon)
      : MechanismPlan(std::move(name), std::move(domain)),
        padded_rows_(padded_rows),
        padded_cols_(padded_cols),
        noise_scale_(noise_scale),
        planned_epsilon_(epsilon) {}

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    if (domain().num_dims() == 1) return Execute1D(ctx, s, out);
    return Execute2D(ctx, s, out);
  }

  /// The transform layout and noise schedule are plan-time constants, so
  /// trials cannot diverge: lockstep-safe. The forward transform of the
  /// (shared) data runs once per batch; only the noisy coefficients and
  /// the inverse transform are per-lane.
  bool SupportsLockstep() const override { return true; }

  Status ExecuteMany(const ExecContext& ctx, size_t lanes,
                     std::vector<double>* est_lanes) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    DPB_RETURN_NOT_OK(CheckLanes(lanes));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    if (domain().num_dims() == 1) return ExecuteMany1D(ctx, s, lanes,
                                                       est_lanes);
    return ExecuteMany2D(ctx, s, lanes, est_lanes);
  }

  Result<PlanPayload> SerializePayload() const override {
    PlanPayload p;
    p.mechanism = mechanism_name();
    p.kind = "wavelet";
    p.ints["padded_rows"] = padded_rows_;
    p.ints["padded_cols"] = padded_cols_;
    p.reals["epsilon"] = planned_epsilon_;
    p.reals["noise_scale"] = noise_scale_;
    return p;
  }

 private:
  Status Execute1D(const ExecContext& ctx, ExecScratch& s,
                   DataVector* out) const {
    size_t n = padded_cols_;
    // Pad to the planned power of two (padding is public: it depends only
    // on the domain geometry), transform in place, perturb, invert.
    std::vector<double>& work = s.prefix;
    work.assign(n, 0.0);
    const std::vector<double>& counts = ctx.data.counts();
    for (size_t i = 0; i < counts.size(); ++i) work[i] = counts[i];
    std::vector<double>& coef = s.coef;
    coef.assign(n, 0.0);
    wavelet::HaarForwardInPlace(work.data(), coef.data(), n);
    // The forward transform collapsed `work` into a sum pyramid nothing
    // reads anymore, so it doubles as the noise block: one vectorized
    // fill for all n coefficients instead of n per-draw engine calls.
    ctx.rng->FillLaplace(work.data(), n, noise_scale_);
    for (size_t i = 0; i < n; ++i) coef[i] += work[i];
    wavelet::HaarInverseInPlace(coef.data(), work.data(), n);
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    for (size_t i = 0; i < cells.size(); ++i) cells[i] = work[i];
    return Status::OK();
  }

  Status Execute2D(const ExecContext& ctx, ExecScratch& s,
                   DataVector* out) const {
    // 2D separable transform: rows, then columns — all sweeps run over two
    // flat padded grids (data pyramid + coefficient grid) and two
    // column-gather buffers from the scratch arena.
    size_t rows = domain().size(0), cols = domain().size(1);
    size_t prow = padded_rows_, pcol = padded_cols_;
    std::vector<double>& grid = s.y;       // row pyramids, later row output
    std::vector<double>& coef = s.coef;    // transformed grid
    std::vector<double>& colw = s.z;       // column gather / work
    std::vector<double>& colc = s.node_est;  // column coefficients
    grid.assign(prow * pcol, 0.0);
    coef.assign(prow * pcol, 0.0);
    colw.assign(prow, 0.0);
    colc.assign(prow, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        grid[r * pcol + c] = ctx.data[r * cols + c];
      }
    }
    for (size_t r = 0; r < prow; ++r) {
      wavelet::HaarForwardInPlace(&grid[r * pcol], &coef[r * pcol], pcol);
    }
    for (size_t c = 0; c < pcol; ++c) {
      for (size_t r = 0; r < prow; ++r) colw[r] = coef[r * pcol + c];
      wavelet::HaarForwardInPlace(colw.data(), colc.data(), prow);
      for (size_t r = 0; r < prow; ++r) coef[r * pcol + c] = colc[r];
    }
    // After both forward passes `grid` holds only consumed row pyramids;
    // reuse it as the noise block for the whole padded coefficient grid
    // (row-major fill order — the same draw order as the scalar loop).
    ctx.rng->FillLaplace(grid.data(), prow * pcol, noise_scale_);
    for (size_t i = 0; i < prow * pcol; ++i) coef[i] += grid[i];
    for (size_t c = 0; c < pcol; ++c) {
      for (size_t r = 0; r < prow; ++r) colw[r] = coef[r * pcol + c];
      wavelet::HaarInverseInPlace(colw.data(), colc.data(), prow);
      for (size_t r = 0; r < prow; ++r) coef[r * pcol + c] = colc[r];
    }
    for (size_t r = 0; r < prow; ++r) {
      wavelet::HaarInverseInPlace(&coef[r * pcol], &grid[r * pcol], pcol);
    }
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        cells[r * cols + c] = grid[r * pcol + c];
      }
    }
    return Status::OK();
  }

  Status ExecuteMany1D(const ExecContext& ctx, ExecScratch& s, size_t lanes,
                       std::vector<double>* est_lanes) const {
    const lockstep::Kernels& kernels = lockstep::Active();
    const size_t n = padded_cols_;
    // Shared forward transform of the padded data — identical every
    // trial, so one pass serves all lanes.
    std::vector<double>& work = s.prefix;
    work.assign(n, 0.0);
    const std::vector<double>& counts = ctx.data.counts();
    for (size_t i = 0; i < counts.size(); ++i) work[i] = counts[i];
    std::vector<double>& coef = s.coef;
    coef.assign(n, 0.0);
    wavelet::HaarForwardInPlace(work.data(), coef.data(), n);
    // Per-lane noisy coefficients and inverse transform.
    s.lane.noise.resize(n * lanes);
    ctx.rng->FillLaplaceLanes(s.lane.noise.data(), n, noise_scale_, lanes);
    s.lane.coef.resize(n * lanes);
    kernels.add_shared_noise(coef.data(), s.lane.noise.data(),
                             s.lane.coef.data(), n, lanes);
    s.lane.work.resize(n * lanes);
    kernels.haar_inverse(s.lane.coef.data(), s.lane.work.data(), n, lanes);
    const size_t cells = domain().TotalCells();
    est_lanes->assign(s.lane.work.begin(),
                      s.lane.work.begin() + cells * lanes);
    return Status::OK();
  }

  Status ExecuteMany2D(const ExecContext& ctx, ExecScratch& s, size_t lanes,
                       std::vector<double>* est_lanes) const {
    const lockstep::Kernels& kernels = lockstep::Active();
    const size_t rows = domain().size(0), cols = domain().size(1);
    const size_t prow = padded_rows_, pcol = padded_cols_;
    // Shared separable forward transform (same buffers as Execute2D).
    std::vector<double>& grid = s.y;
    std::vector<double>& coef = s.coef;
    std::vector<double>& colw = s.z;
    std::vector<double>& colc = s.node_est;
    grid.assign(prow * pcol, 0.0);
    coef.assign(prow * pcol, 0.0);
    colw.assign(prow, 0.0);
    colc.assign(prow, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        grid[r * pcol + c] = ctx.data[r * cols + c];
      }
    }
    for (size_t r = 0; r < prow; ++r) {
      wavelet::HaarForwardInPlace(&grid[r * pcol], &coef[r * pcol], pcol);
    }
    for (size_t c = 0; c < pcol; ++c) {
      for (size_t r = 0; r < prow; ++r) colw[r] = coef[r * pcol + c];
      wavelet::HaarForwardInPlace(colw.data(), colc.data(), prow);
      for (size_t r = 0; r < prow; ++r) coef[r * pcol + c] = colc[r];
    }
    // Per-lane noise + inverse: columns first, then rows, mirroring the
    // scalar sweep order.
    const size_t padded = prow * pcol;
    s.lane.noise.resize(padded * lanes);
    ctx.rng->FillLaplaceLanes(s.lane.noise.data(), padded, noise_scale_,
                              lanes);
    s.lane.coef.resize(padded * lanes);
    kernels.add_shared_noise(coef.data(), s.lane.noise.data(),
                             s.lane.coef.data(), padded, lanes);
    s.lane.colw.resize(prow * lanes);
    s.lane.z.resize(prow * lanes);
    for (size_t c = 0; c < pcol; ++c) {
      for (size_t r = 0; r < prow; ++r) {
        std::memcpy(&s.lane.colw[r * lanes],
                    &s.lane.coef[(r * pcol + c) * lanes],
                    lanes * sizeof(double));
      }
      kernels.haar_inverse(s.lane.colw.data(), s.lane.z.data(), prow,
                           lanes);
      for (size_t r = 0; r < prow; ++r) {
        std::memcpy(&s.lane.coef[(r * pcol + c) * lanes],
                    &s.lane.z[r * lanes], lanes * sizeof(double));
      }
    }
    s.lane.work.resize(padded * lanes);
    for (size_t r = 0; r < prow; ++r) {
      kernels.haar_inverse(&s.lane.coef[r * pcol * lanes],
                           &s.lane.work[r * pcol * lanes], pcol, lanes);
    }
    est_lanes->resize(rows * cols * lanes);
    for (size_t r = 0; r < rows; ++r) {
      std::memcpy(&(*est_lanes)[r * cols * lanes],
                  &s.lane.work[r * pcol * lanes],
                  cols * lanes * sizeof(double));
    }
    return Status::OK();
  }

  size_t padded_rows_;  // 1 in 1D
  size_t padded_cols_;
  double noise_scale_;
  double planned_epsilon_;
};

}  // namespace

Result<PlanPtr> PriveletMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  double sensitivity;
  size_t prow, pcol;
  if (ctx.domain.num_dims() == 1) {
    prow = 1;
    pcol = NextPowerOfTwo(ctx.domain.TotalCells());
    sensitivity = 1.0 + static_cast<double>(FloorLog2(pcol));
  } else {
    prow = NextPowerOfTwo(ctx.domain.size(0));
    pcol = NextPowerOfTwo(ctx.domain.size(1));
    sensitivity = (1.0 + static_cast<double>(FloorLog2(prow))) *
                  (1.0 + static_cast<double>(FloorLog2(pcol)));
  }
  return PlanPtr(new PriveletPlan(name(), ctx.domain, prow, pcol,
                                  sensitivity / ctx.epsilon, ctx.epsilon));
}

Result<PlanPtr> PriveletMechanism::HydratePlan(
    const PlanContext& ctx, const PlanPayload& payload) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  DPB_RETURN_NOT_OK(payload.CheckHeader(name(), "wavelet", ctx.epsilon));
  DPB_ASSIGN_OR_RETURN(uint64_t prow, payload.Int("padded_rows"));
  DPB_ASSIGN_OR_RETURN(uint64_t pcol, payload.Int("padded_cols"));
  DPB_ASSIGN_OR_RETURN(double noise_scale, payload.Real("noise_scale"));
  // The layout is a pure function of the domain, so validate by exact
  // equality against what Plan() would compute — a merely-plausible
  // padding or noise scale would execute a *different* mechanism without
  // any error surfacing.
  size_t expect_prow, expect_pcol;
  double sensitivity;
  if (ctx.domain.num_dims() == 1) {
    expect_prow = 1;
    expect_pcol = NextPowerOfTwo(ctx.domain.TotalCells());
    sensitivity = 1.0 + static_cast<double>(FloorLog2(expect_pcol));
  } else {
    expect_prow = NextPowerOfTwo(ctx.domain.size(0));
    expect_pcol = NextPowerOfTwo(ctx.domain.size(1));
    sensitivity = (1.0 + static_cast<double>(FloorLog2(expect_prow))) *
                  (1.0 + static_cast<double>(FloorLog2(expect_pcol)));
  }
  if (prow != expect_prow || pcol != expect_pcol ||
      !(noise_scale == sensitivity / ctx.epsilon)) {
    return Status::InvalidArgument(
        name() + ": wavelet payload layout does not match this domain");
  }
  return PlanPtr(new PriveletPlan(name(), ctx.domain, expect_prow,
                                  expect_pcol, noise_scale, ctx.epsilon));
}

}  // namespace dpbench
