// DPCUBE (Xiao, Xiong, Fan, Goryczka, Li TDP'14): two-phase kd-tree
// partitioning.
//
// Phase 1 (budget rho*eps): noisy counts for every cell, then a standard
// (non-private, post-processing) kd-tree is built over the noisy counts,
// splitting regions until they look uniform or reach a minimum size.
// Phase 2 (budget (1-rho)*eps): fresh noisy counts for each leaf region;
// the two observations of each region are combined by inverse variance and
// spread uniformly across the leaf.
#ifndef DPBENCH_ALGORITHMS_DPCUBE_H_
#define DPBENCH_ALGORITHMS_DPCUBE_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class DpCubeMechanism : public Mechanism {
 public:
  /// Parameters follow Table 1: rho = 0.5, minimum partition size np = 10.
  explicit DpCubeMechanism(double rho = 0.5, size_t min_partition_cells = 10)
      : rho_(rho), min_cells_(min_partition_cells) {}

  std::string name() const override { return "DPCUBE"; }
  bool SupportsDims(size_t) const override { return true; }

  /// Structured plan (1D/2D): budget split and variances hoisted; the
  /// kd-tree build runs over flat region arrays in scratch and both
  /// measurement phases block-fill their Laplace draws. Falls back to the
  /// pass-through reference plan beyond 2D.
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;

 protected:
  Result<DataVector> RunImpl(const RunContext& ctx) const override;

 public:

 private:
  double rho_;
  size_t min_cells_;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_DPCUBE_H_
