#include "src/algorithms/sf.h"

#include <algorithm>
#include <cmath>

#include "src/algorithms/hier.h"
#include "src/algorithms/tree_inference.h"
#include "src/mechanisms/budget.h"
#include "src/mechanisms/exponential.h"

namespace dpbench {

namespace {

// Sum-of-squared-error of approximating counts[lo, hi) by their mean,
// in O(1) via prefix sums of x and x^2.
class SseCalculator {
 public:
  explicit SseCalculator(const std::vector<double>& counts)
      : sum_(counts.size() + 1, 0.0), sq_(counts.size() + 1, 0.0) {
    for (size_t i = 0; i < counts.size(); ++i) {
      sum_[i + 1] = sum_[i] + counts[i];
      sq_[i + 1] = sq_[i] + counts[i] * counts[i];
    }
  }
  double Sse(size_t lo, size_t hi) const {  // [lo, hi)
    double len = static_cast<double>(hi - lo);
    double s = sum_[hi] - sum_[lo];
    return (sq_[hi] - sq_[lo]) - s * s / len;
  }
  double Sum(size_t lo, size_t hi) const { return sum_[hi] - sum_[lo]; }

 private:
  std::vector<double> sum_, sq_;
};

}  // namespace

Result<DataVector> SfMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const std::vector<double>& counts = ctx.data.counts();
  const size_t n = counts.size();

  size_t k = k_override_ > 0 ? k_override_ : (n + 9) / 10;
  k = std::min(std::max<size_t>(k, 1), n);

  BudgetAccountant budget(ctx.epsilon);
  double eps1 = rho_ * ctx.epsilon;
  double eps2 = ctx.epsilon - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "structure"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "measure"));

  // F: public cap on bucket counts derived from the (side-information)
  // scale; bounds the SSE score sensitivity as 2F + 1.
  double scale = ctx.side_info.true_scale.value_or(ctx.data.Scale());
  double f_cap = std::max(1.0, scale / static_cast<double>(k));
  double sensitivity = 2.0 * f_cap + 1.0;

  SseCalculator sse(counts);
  std::vector<size_t> starts{0}, ends{n};
  double eps_iter =
      (k > 1) ? eps1 / static_cast<double>(k - 1) : eps1;

  for (size_t iter = 0; iter + 1 < k; ++iter) {
    std::vector<double> scores;
    std::vector<std::pair<size_t, size_t>> splits;
    for (size_t b = 0; b < ends.size(); ++b) {
      size_t lo = starts[b], hi = ends[b];
      if (hi - lo < 2) continue;
      double parent = sse.Sse(lo, hi);
      for (size_t cut = lo + 1; cut < hi; ++cut) {
        scores.push_back(parent - sse.Sse(lo, cut) - sse.Sse(cut, hi));
        splits.emplace_back(b, cut);
      }
    }
    if (splits.empty()) break;
    DPB_ASSIGN_OR_RETURN(
        size_t pick,
        ExponentialMechanism(scores, sensitivity, eps_iter, ctx.rng));
    auto [bucket, cut] = splits[pick];
    starts.insert(starts.begin() + bucket + 1, cut);
    ends.insert(ends.begin() + bucket, cut);
  }

  // Measure each bucket's interior with a small hierarchical histogram
  // (the consistent variant). Buckets are disjoint, so each uses the full
  // eps2 by parallel composition.
  DataVector out(ctx.data.domain());
  for (size_t b = 0; b < ends.size(); ++b) {
    size_t lo = starts[b], hi = ends[b];
    std::vector<double> bucket(counts.begin() + lo, counts.begin() + hi);
    RangeTree tree = RangeTree::Build(bucket.size(), 2);
    int levels = tree.num_levels();
    std::vector<double> eps(levels, eps2 / static_cast<double>(levels));
    DPB_ASSIGN_OR_RETURN(
        std::vector<double> est,
        hier_internal::MeasureAndInfer(tree, bucket, eps, ctx.rng));
    for (size_t i = lo; i < hi; ++i) out[i] = est[i - lo];
  }
  return out;
}

}  // namespace dpbench
