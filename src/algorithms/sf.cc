#include "src/algorithms/sf.h"

#include <algorithm>
#include <cmath>

#include "src/algorithms/hier.h"
#include "src/algorithms/tree_inference.h"
#include "src/mechanisms/budget.h"
#include "src/mechanisms/exponential.h"

namespace dpbench {

namespace {

// Sum-of-squared-error of approximating counts[lo, hi) by their mean,
// in O(1) via prefix sums of x and x^2.
class SseCalculator {
 public:
  explicit SseCalculator(const std::vector<double>& counts)
      : sum_(counts.size() + 1, 0.0), sq_(counts.size() + 1, 0.0) {
    for (size_t i = 0; i < counts.size(); ++i) {
      sum_[i + 1] = sum_[i] + counts[i];
      sq_[i + 1] = sq_[i] + counts[i] * counts[i];
    }
  }
  double Sse(size_t lo, size_t hi) const {  // [lo, hi)
    double len = static_cast<double>(hi - lo);
    double s = sum_[hi] - sum_[lo];
    return (sq_[hi] - sq_[lo]) - s * s / len;
  }
  double Sum(size_t lo, size_t hi) const { return sum_[hi] - sum_[lo]; }

 private:
  std::vector<double> sum_, sq_;
};

// Structured SF plan. Hoisted: the bucket count k, the budget schedule
// (eps1/eps2/eps_iter), and — when the scale is supplied as side
// information, the benchmark's Table 1 configuration — the SSE score
// sensitivity. Execution mirrors RunImpl draw-for-draw: identical
// prefix-sum SSE tables (built in scratch), the same split enumeration
// with block-uniform exponential-mechanism selection, and the flat
// allocation-free form of the within-bucket hierarchical measurement.
class SfPlan : public MechanismPlan {
 public:
  SfPlan(std::string name, const PlanContext& ctx, double rho,
         size_t k_override)
      : MechanismPlan(std::move(name), ctx.domain),
        side_info_(ctx.side_info) {
    const size_t n = ctx.domain.TotalCells();
    k_ = k_override > 0 ? k_override : (n + 9) / 10;
    k_ = std::min(std::max<size_t>(k_, 1), n);
    eps1_ = rho * ctx.epsilon;
    eps2_ = ctx.epsilon - eps1_;
    eps_iter_ = (k_ > 1) ? eps1_ / static_cast<double>(k_ - 1) : eps1_;
  }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    const std::vector<double>& counts = ctx.data.counts();
    const size_t n = counts.size();
    // Worst-case reserves: bucket boundaries move with the noisy split
    // choices, so candidate and tree sizes vary per trial.
    s.tree.Reserve(2 * n, n);
    s.scores.reserve(n);
    s.bucket_of.reserve(n);
    s.back.reserve(n);
    s.unif.reserve(n);

    // F: public cap on bucket counts derived from the (side-information)
    // scale; bounds the SSE score sensitivity as 2F + 1.
    double scale = side_info_.true_scale.value_or(ctx.data.Scale());
    double f_cap = std::max(1.0, scale / static_cast<double>(k_));
    double sensitivity = 2.0 * f_cap + 1.0;

    // Prefix sums of x and x^2 for O(1) SSE evaluation (SseCalculator).
    std::vector<double>& sum = s.prefix;
    std::vector<double>& sq = s.prefix_sq;
    sum.assign(n + 1, 0.0);
    sq.assign(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      sum[i + 1] = sum[i] + counts[i];
      sq[i + 1] = sq[i] + counts[i] * counts[i];
    }
    auto sse = [&](size_t lo, size_t hi) {  // [lo, hi)
      double len = static_cast<double>(hi - lo);
      double v = sum[hi] - sum[lo];
      return (sq[hi] - sq[lo]) - v * v / len;
    };

    std::vector<size_t>& starts = s.starts;
    std::vector<size_t>& ends = s.ends;
    starts.reserve(k_ + 1);
    ends.reserve(k_ + 1);
    starts.assign(1, 0);
    ends.assign(1, n);

    for (size_t iter = 0; iter + 1 < k_; ++iter) {
      s.scores.clear();
      s.bucket_of.clear();  // candidate bucket index
      s.back.clear();       // candidate cut position
      for (size_t b = 0; b < ends.size(); ++b) {
        size_t lo = starts[b], hi = ends[b];
        if (hi - lo < 2) continue;
        double parent = sse(lo, hi);
        for (size_t cut = lo + 1; cut < hi; ++cut) {
          s.scores.push_back(parent - sse(lo, cut) - sse(cut, hi));
          s.bucket_of.push_back(b);
          s.back.push_back(cut);
        }
      }
      if (s.scores.empty()) break;
      DPB_ASSIGN_OR_RETURN(
          size_t pick,
          ExponentialMechanismInto(s.scores.data(), s.scores.size(),
                                   sensitivity, eps_iter_, ctx.rng,
                                   &s.unif));
      size_t bucket = s.bucket_of[pick], cut = s.back[pick];
      starts.insert(starts.begin() + bucket + 1, cut);
      ends.insert(ends.begin() + bucket, cut);
    }

    // Measure each bucket's interior with a small hierarchical histogram
    // (the consistent variant). Buckets are disjoint, so each uses the
    // full eps2 by parallel composition.
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    for (size_t b = 0; b < ends.size(); ++b) {
      size_t lo = starts[b], hi = ends[b];
      hier_internal::FlatRangeTreeBuild(hi - lo, 2, &s.tree);
      int levels = s.tree.num_levels;
      s.tree.eps.assign(static_cast<size_t>(levels),
                        eps2_ / static_cast<double>(levels));
      DPB_RETURN_NOT_OK(hier_internal::FlatMeasureAndInfer(
          counts.data() + lo, hi - lo, s.tree.eps, ctx.rng, &s.tree,
          cells.data() + lo));
    }
    return Status::OK();
  }

 private:
  SideInfo side_info_;
  size_t k_;
  double eps1_, eps2_, eps_iter_;
};

}  // namespace

Result<PlanPtr> SfMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new SfPlan(name(), ctx, rho_, k_override_));
}

Result<DataVector> SfMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const std::vector<double>& counts = ctx.data.counts();
  const size_t n = counts.size();

  size_t k = k_override_ > 0 ? k_override_ : (n + 9) / 10;
  k = std::min(std::max<size_t>(k, 1), n);

  BudgetAccountant budget(ctx.epsilon);
  double eps1 = rho_ * ctx.epsilon;
  double eps2 = ctx.epsilon - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "structure"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "measure"));

  // F: public cap on bucket counts derived from the (side-information)
  // scale; bounds the SSE score sensitivity as 2F + 1.
  double scale = ctx.side_info.true_scale.value_or(ctx.data.Scale());
  double f_cap = std::max(1.0, scale / static_cast<double>(k));
  double sensitivity = 2.0 * f_cap + 1.0;

  SseCalculator sse(counts);
  std::vector<size_t> starts{0}, ends{n};
  double eps_iter =
      (k > 1) ? eps1 / static_cast<double>(k - 1) : eps1;

  for (size_t iter = 0; iter + 1 < k; ++iter) {
    std::vector<double> scores;
    std::vector<std::pair<size_t, size_t>> splits;
    for (size_t b = 0; b < ends.size(); ++b) {
      size_t lo = starts[b], hi = ends[b];
      if (hi - lo < 2) continue;
      double parent = sse.Sse(lo, hi);
      for (size_t cut = lo + 1; cut < hi; ++cut) {
        scores.push_back(parent - sse.Sse(lo, cut) - sse.Sse(cut, hi));
        splits.emplace_back(b, cut);
      }
    }
    if (splits.empty()) break;
    DPB_ASSIGN_OR_RETURN(
        size_t pick,
        ExponentialMechanism(scores, sensitivity, eps_iter, ctx.rng));
    auto [bucket, cut] = splits[pick];
    starts.insert(starts.begin() + bucket + 1, cut);
    ends.insert(ends.begin() + bucket, cut);
  }

  // Measure each bucket's interior with a small hierarchical histogram
  // (the consistent variant). Buckets are disjoint, so each uses the full
  // eps2 by parallel composition.
  DataVector out(ctx.data.domain());
  for (size_t b = 0; b < ends.size(); ++b) {
    size_t lo = starts[b], hi = ends[b];
    std::vector<double> bucket(counts.begin() + lo, counts.begin() + hi);
    RangeTree tree = RangeTree::Build(bucket.size(), 2);
    int levels = tree.num_levels();
    std::vector<double> eps(levels, eps2 / static_cast<double>(levels));
    DPB_ASSIGN_OR_RETURN(
        std::vector<double> est,
        hier_internal::MeasureAndInfer(tree, bucket, eps, ctx.rng));
    for (size_t i = lo; i < hi; ++i) out[i] = est[i - lo];
  }
  return out;
}

}  // namespace dpbench
