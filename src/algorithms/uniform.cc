#include "src/algorithms/uniform.h"

#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

class UniformPlan : public MechanismPlan {
 public:
  UniformPlan(std::string name, Domain domain, double epsilon)
      : MechanismPlan(std::move(name), std::move(domain)),
        epsilon_(epsilon) {}

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    DPB_ASSIGN_OR_RETURN(
        double total,
        LaplaceMechanismScalar(ctx.data.Scale(), /*sensitivity=*/1.0,
                               epsilon_, ctx.rng));
    size_t n = ctx.data.size();
    DataVector out(domain());
    double per_cell = total / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) out[i] = per_cell;
    return out;
  }

 private:
  double epsilon_;
};

}  // namespace

Result<PlanPtr> UniformMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new UniformPlan(name(), ctx.domain, ctx.epsilon));
}

}  // namespace dpbench
