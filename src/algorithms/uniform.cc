#include "src/algorithms/uniform.h"

#include "src/mechanisms/laplace.h"

namespace dpbench {

Result<DataVector> UniformMechanism::Run(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  DPB_ASSIGN_OR_RETURN(
      double total,
      LaplaceMechanismScalar(ctx.data.Scale(), /*sensitivity=*/1.0,
                             ctx.epsilon, ctx.rng));
  size_t n = ctx.data.size();
  DataVector out(ctx.data.domain());
  double per_cell = total / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) out[i] = per_cell;
  return out;
}

}  // namespace dpbench
