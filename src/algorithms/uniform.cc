#include "src/algorithms/uniform.h"

#include "src/common/lockstep.h"

namespace dpbench {

namespace {

class UniformPlan : public MechanismPlan {
 public:
  UniformPlan(std::string name, Domain domain, double epsilon)
      : MechanismPlan(std::move(name), std::move(domain)),
        epsilon_(epsilon) {}

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    // Single scalar measurement; epsilon > 0 was validated at plan time,
    // so draw the noise directly (no temporary vector).
    double total =
        ctx.data.Scale() + ctx.rng->Laplace(/*scale=*/1.0 / epsilon_);
    size_t n = ctx.data.size();
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    double per_cell = total / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) cells[i] = per_cell;
    return Status::OK();
  }

  bool SupportsLockstep() const override { return true; }

  Status ExecuteMany(const ExecContext& ctx, size_t lanes,
                     std::vector<double>* est_lanes) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    DPB_RETURN_NOT_OK(CheckLanes(lanes));
    // The total-count truth is data-only, hence identical across lanes;
    // each lane adds its own single Laplace draw (one draw per scalar
    // trial, so the lane stream segments line up).
    const double truth = ctx.data.Scale();
    double noise[lockstep::kMaxLanes];
    ctx.rng->FillLaplaceLanes(noise, 1, 1.0 / epsilon_, lanes);
    double totals[lockstep::kMaxLanes];
    for (size_t l = 0; l < lanes; ++l) totals[l] = truth + noise[l];
    const size_t n = ctx.data.size();
    est_lanes->resize(n * lanes);
    lockstep::Active().spread_divided(totals, static_cast<double>(n),
                                      est_lanes->data(), n, lanes);
    return Status::OK();
  }

  Result<PlanPayload> SerializePayload() const override {
    PlanPayload p;
    p.mechanism = mechanism_name();
    p.kind = "uniform";
    p.reals["epsilon"] = epsilon_;
    return p;
  }

 private:
  double epsilon_;
};

}  // namespace

Result<PlanPtr> UniformMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new UniformPlan(name(), ctx.domain, ctx.epsilon));
}

Result<PlanPtr> UniformMechanism::HydratePlan(
    const PlanContext& ctx, const PlanPayload& payload) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  DPB_RETURN_NOT_OK(payload.CheckHeader(name(), "uniform", ctx.epsilon));
  return PlanPtr(new UniformPlan(name(), ctx.domain, ctx.epsilon));
}

}  // namespace dpbench
