#include "src/algorithms/tree_inference.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "src/common/lockstep.h"
#include "src/common/logging.h"

namespace dpbench {

namespace {

struct Agg {
  double z = 0.0;                 // aggregated estimate of the node's value
  double s = kUnmeasured;         // variance of z
};

}  // namespace

Result<std::vector<double>> TreeGlsInfer(
    const std::vector<MeasurementNode>& nodes, size_t root) {
  if (root >= nodes.size()) {
    return Status::InvalidArgument("root out of range");
  }
  const size_t n = nodes.size();
  // Topological order (parents before children) via BFS from the root.
  std::vector<size_t> order;
  order.reserve(n);
  std::deque<size_t> queue{root};
  while (!queue.empty()) {
    size_t v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (size_t c : nodes[v].children) {
      if (c >= nodes.size()) {
        return Status::InvalidArgument("child index out of range");
      }
      queue.push_back(c);
    }
  }

  // Bottom-up pass: aggregate subtree estimates.
  std::vector<Agg> agg(n);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    size_t v = *it;
    const MeasurementNode& node = nodes[v];
    double own_y = node.y;
    double own_s = node.variance;
    if (node.children.empty()) {
      agg[v] = {std::isinf(own_s) ? 0.0 : own_y, own_s};
      continue;
    }
    double zc = 0.0, sc = 0.0;
    bool child_inf = false;
    for (size_t c : node.children) {
      if (std::isinf(agg[c].s)) {
        child_inf = true;
      } else {
        zc += agg[c].z;
        sc += agg[c].s;
      }
    }
    if (child_inf) {
      // Children sum is uninformative; fall back to the own measurement.
      agg[v] = {std::isinf(own_s) ? 0.0 : own_y, own_s};
      continue;
    }
    if (std::isinf(own_s)) {
      agg[v] = {zc, sc};
    } else if (sc <= 0.0) {
      // Children exact: they dominate.
      agg[v] = {zc, 0.0};
    } else {
      double w_own = 1.0 / own_s;
      double w_kids = 1.0 / sc;
      agg[v] = {(own_y * w_own + zc * w_kids) / (w_own + w_kids),
                1.0 / (w_own + w_kids)};
    }
  }

  // Top-down pass: enforce consistency, distributing residuals.
  std::vector<double> est(n, 0.0);
  est[root] = std::isinf(agg[root].s) ? agg[root].z : agg[root].z;
  for (size_t v : order) {
    const MeasurementNode& node = nodes[v];
    if (node.children.empty()) continue;
    double child_sum = 0.0;
    double var_sum = 0.0;
    size_t num_inf = 0;
    for (size_t c : node.children) {
      child_sum += agg[c].z;
      if (std::isinf(agg[c].s)) {
        ++num_inf;
      } else {
        var_sum += agg[c].s;
      }
    }
    double residual = est[v] - child_sum;
    for (size_t c : node.children) {
      if (num_inf > 0) {
        // Residual absorbed entirely (and equally) by unconstrained children.
        est[c] = agg[c].z + (std::isinf(agg[c].s)
                                 ? residual / static_cast<double>(num_inf)
                                 : 0.0);
      } else if (var_sum <= 0.0) {
        // All children exact; split residual equally (residual ~ 0).
        est[c] = agg[c].z +
                 residual / static_cast<double>(node.children.size());
      } else {
        est[c] = agg[c].z + residual * (agg[c].s / var_sum);
      }
    }
  }
  return est;
}

void FlatTreeGlsInfer(size_t num_nodes, const size_t* first_child,
                      const size_t* child_count, const double* y,
                      const double* variance, std::vector<double>* z_buf,
                      std::vector<double>* s_buf,
                      std::vector<double>* est_buf) {
  const size_t n = num_nodes;
  DPB_CHECK_GE(n, 1u);
  z_buf->assign(n, 0.0);
  s_buf->assign(n, kUnmeasured);
  est_buf->assign(n, 0.0);
  std::vector<double>& z = *z_buf;
  std::vector<double>& s = *s_buf;
  std::vector<double>& est = *est_buf;

  // Bottom-up pass: aggregate subtree estimates. BFS order == index order
  // for these trees, so reverse index order visits children before
  // parents; every branch mirrors TreeGlsInfer's Agg recursion.
  for (size_t v = n; v-- > 0;) {
    double own_y = y[v];
    double own_s = variance[v];
    size_t begin = first_child[v], end = begin + child_count[v];
    if (begin == end) {
      z[v] = std::isinf(own_s) ? 0.0 : own_y;
      s[v] = own_s;
      continue;
    }
    double zc = 0.0, sc = 0.0;
    bool child_inf = false;
    for (size_t c = begin; c < end; ++c) {
      if (std::isinf(s[c])) {
        child_inf = true;
      } else {
        zc += z[c];
        sc += s[c];
      }
    }
    if (child_inf) {
      // Children sum is uninformative; fall back to the own measurement.
      z[v] = std::isinf(own_s) ? 0.0 : own_y;
      s[v] = own_s;
      continue;
    }
    if (std::isinf(own_s)) {
      z[v] = zc;
      s[v] = sc;
    } else if (sc <= 0.0) {
      // Children exact: they dominate.
      z[v] = zc;
      s[v] = 0.0;
    } else {
      double w_own = 1.0 / own_s;
      double w_kids = 1.0 / sc;
      z[v] = (own_y * w_own + zc * w_kids) / (w_own + w_kids);
      s[v] = 1.0 / (w_own + w_kids);
    }
  }

  // Top-down pass: enforce consistency, distributing residuals.
  est[0] = z[0];
  for (size_t v = 0; v < n; ++v) {
    size_t begin = first_child[v], end = begin + child_count[v];
    if (begin == end) continue;
    double child_sum = 0.0;
    double var_sum = 0.0;
    size_t num_inf = 0;
    for (size_t c = begin; c < end; ++c) {
      child_sum += z[c];
      if (std::isinf(s[c])) {
        ++num_inf;
      } else {
        var_sum += s[c];
      }
    }
    double residual = est[v] - child_sum;
    for (size_t c = begin; c < end; ++c) {
      if (num_inf > 0) {
        // Residual absorbed entirely (and equally) by unconstrained
        // children.
        est[c] = z[c] + (std::isinf(s[c])
                             ? residual / static_cast<double>(num_inf)
                             : 0.0);
      } else if (var_sum <= 0.0) {
        // All children exact; split residual equally (residual ~ 0).
        est[c] = z[c] + residual / static_cast<double>(end - begin);
      } else {
        est[c] = z[c] + residual * (s[c] / var_sum);
      }
    }
  }
}

Result<PlannedTreeGls> PlannedTreeGls::Build(
    const std::vector<MeasurementNode>& nodes, size_t root) {
  if (root >= nodes.size()) {
    return Status::InvalidArgument("root out of range");
  }
  const size_t n = nodes.size();
  PlannedTreeGls plan;
  plan.root_ = root;
  plan.order_.reserve(n);
  std::deque<size_t> queue{root};
  while (!queue.empty()) {
    size_t v = queue.front();
    queue.pop_front();
    plan.order_.push_back(v);
    for (size_t c : nodes[v].children) {
      if (c >= nodes.size()) {
        return Status::InvalidArgument("child index out of range");
      }
      queue.push_back(c);
    }
  }
  plan.child_start_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    plan.child_start_[v + 1] = plan.child_start_[v] + nodes[v].children.size();
  }
  plan.children_.reserve(plan.child_start_[n]);
  for (size_t v = 0; v < n; ++v) {
    plan.children_.insert(plan.children_.end(), nodes[v].children.begin(),
                          nodes[v].children.end());
  }

  // Bottom-up structure analysis, mirroring TreeGlsInfer but tracking only
  // variances; the data-dependent z recursion is captured in (a, b).
  std::vector<double> s(n, kUnmeasured);  // aggregated subtree variance
  plan.a_.assign(n, 0.0);
  plan.b_.assign(n, 0.0);
  for (auto it = plan.order_.rbegin(); it != plan.order_.rend(); ++it) {
    size_t v = *it;
    double own_s = nodes[v].variance;
    bool own_measured = !std::isinf(own_s);
    if (nodes[v].children.empty()) {
      plan.a_[v] = own_measured ? 1.0 : 0.0;
      s[v] = own_s;
      continue;
    }
    double sc = 0.0;
    bool child_inf = false;
    for (size_t c : nodes[v].children) {
      if (std::isinf(s[c])) {
        child_inf = true;
      } else {
        sc += s[c];
      }
    }
    if (child_inf) {
      // Children sum is uninformative; fall back to the own measurement.
      plan.a_[v] = own_measured ? 1.0 : 0.0;
      s[v] = own_s;
    } else if (!own_measured) {
      plan.b_[v] = 1.0;
      s[v] = sc;
    } else if (sc <= 0.0) {
      // Children exact: they dominate.
      plan.b_[v] = 1.0;
      s[v] = 0.0;
    } else {
      double w_own = 1.0 / own_s;
      double w_kids = 1.0 / sc;
      plan.a_[v] = w_own / (w_own + w_kids);
      plan.b_[v] = w_kids / (w_own + w_kids);
      s[v] = 1.0 / (w_own + w_kids);
    }
  }

  // Top-down residual shares per child, resolving TreeGlsInfer's three
  // distribution modes into one coefficient.
  plan.r_.assign(n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    const std::vector<size_t>& kids = nodes[v].children;
    if (kids.empty()) continue;
    double var_sum = 0.0;
    size_t num_inf = 0;
    for (size_t c : kids) {
      if (std::isinf(s[c])) {
        ++num_inf;
      } else {
        var_sum += s[c];
      }
    }
    for (size_t c : kids) {
      if (num_inf > 0) {
        plan.r_[c] = std::isinf(s[c])
                         ? 1.0 / static_cast<double>(num_inf)
                         : 0.0;
      } else if (var_sum <= 0.0) {
        plan.r_[c] = 1.0 / static_cast<double>(kids.size());
      } else {
        plan.r_[c] = s[c] / var_sum;
      }
    }
  }
  return plan;
}

PlannedTreeGls::Coefficients PlannedTreeGls::coefficients() const {
  Coefficients c;
  c.order.assign(order_.begin(), order_.end());
  c.child_start.assign(child_start_.begin(), child_start_.end());
  c.children.assign(children_.begin(), children_.end());
  c.a = a_;
  c.b = b_;
  c.r = r_;
  c.root = root_;
  return c;
}

Result<PlannedTreeGls> PlannedTreeGls::FromCoefficients(Coefficients c) {
  const size_t n = c.a.size();
  if (c.b.size() != n || c.r.size() != n || c.order.size() != n ||
      c.child_start.size() != n + 1) {
    return Status::InvalidArgument(
        "GLS coefficients: inconsistent array arities");
  }
  if (n == 0) {
    return Status::InvalidArgument("GLS coefficients: empty solver");
  }
  if (c.root >= n) {
    return Status::InvalidArgument("GLS coefficients: root out of range");
  }
  if (c.child_start[0] != 0 ||
      c.child_start[n] != c.children.size()) {
    return Status::InvalidArgument(
        "GLS coefficients: CSR offsets do not span the child array");
  }
  for (size_t v = 0; v < n; ++v) {
    if (c.child_start[v + 1] < c.child_start[v]) {
      return Status::InvalidArgument(
          "GLS coefficients: CSR offsets not monotone");
    }
    if (c.order[v] >= n) {
      return Status::InvalidArgument(
          "GLS coefficients: traversal order index out of range");
    }
  }
  for (uint64_t child : c.children) {
    if (child >= n) {
      return Status::InvalidArgument(
          "GLS coefficients: child index out of range");
    }
  }
  PlannedTreeGls plan;
  // Index arrays need the u64 -> size_t element conversion; the double
  // arrays are adopted as-is.
  plan.order_.assign(c.order.begin(), c.order.end());
  plan.child_start_.assign(c.child_start.begin(), c.child_start.end());
  plan.children_.assign(c.children.begin(), c.children.end());
  plan.a_ = std::move(c.a);
  plan.b_ = std::move(c.b);
  plan.r_ = std::move(c.r);
  plan.root_ = static_cast<size_t>(c.root);
  return plan;
}

std::vector<double> PlannedTreeGls::InferNodes(
    const std::vector<double>& y) const {
  std::vector<double> z, est;
  InferNodesInto(y, &z, &est);
  return est;
}

void PlannedTreeGls::InferNodesInto(const std::vector<double>& y,
                                    std::vector<double>* z_buf,
                                    std::vector<double>* est_buf) const {
  const size_t n = a_.size();
  DPB_CHECK_EQ(y.size(), n);
  z_buf->assign(n, 0.0);
  est_buf->assign(n, 0.0);
  std::vector<double>& z = *z_buf;
  std::vector<double>& est = *est_buf;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    size_t v = *it;
    double zc = 0.0;
    for (size_t k = child_start_[v]; k < child_start_[v + 1]; ++k) {
      zc += z[children_[k]];
    }
    z[v] = a_[v] * y[v] + b_[v] * zc;
  }
  est[root_] = z[root_];
  for (size_t v : order_) {
    size_t begin = child_start_[v], end = child_start_[v + 1];
    if (begin == end) continue;
    double child_sum = 0.0;
    for (size_t k = begin; k < end; ++k) child_sum += z[children_[k]];
    double residual = est[v] - child_sum;
    for (size_t k = begin; k < end; ++k) {
      size_t c = children_[k];
      est[c] = z[c] + residual * r_[c];
    }
  }
}

void PlannedTreeGls::InferNodesMany(const double* y_lanes, size_t lanes,
                                    std::vector<double>* z_buf,
                                    std::vector<double>* est_buf) const {
  const size_t n = a_.size();
  DPB_CHECK_GE(lanes, 1u);
  DPB_CHECK_LE(lanes, lockstep::kMaxLanes);
  z_buf->assign(n * lanes, 0.0);
  est_buf->assign(n * lanes, 0.0);
  lockstep::Active().gls_infer(n, order_.data(), child_start_.data(),
                               children_.data(), a_.data(), b_.data(),
                               r_.data(), root_, y_lanes, lanes,
                               z_buf->data(), est_buf->data());
}

RangeTree RangeTree::Build(size_t n, size_t branching) {
  DPB_CHECK_GE(n, 1u);
  DPB_CHECK_GE(branching, 2u);
  RangeTree tree;
  tree.n_ = n;
  tree.branching_ = branching;
  tree.nodes_.push_back({0, n - 1, kNoParent, {}, 0});
  // BFS expansion.
  for (size_t v = 0; v < tree.nodes_.size(); ++v) {
    size_t lo = tree.nodes_[v].lo, hi = tree.nodes_[v].hi;
    int level = tree.nodes_[v].level;
    size_t len = hi - lo + 1;
    if (len == 1) continue;
    size_t parts = std::min(branching, len);
    size_t base = len / parts, extra = len % parts;
    size_t start = lo;
    for (size_t p = 0; p < parts; ++p) {
      size_t plen = base + (p < extra ? 1 : 0);
      size_t child = tree.nodes_.size();
      tree.nodes_[v].children.push_back(child);
      tree.nodes_.push_back({start, start + plen - 1, v, {}, level + 1});
      start += plen;
    }
  }
  int max_level = 0;
  for (const Node& node : tree.nodes_) {
    max_level = std::max(max_level, node.level);
  }
  tree.num_levels_ = max_level + 1;
  tree.by_level_.assign(tree.num_levels_, {});
  for (size_t i = 0; i < tree.nodes_.size(); ++i) {
    tree.by_level_[tree.nodes_[i].level].push_back(i);
  }
  return tree;
}

std::vector<size_t> RangeTree::Decompose(size_t lo, size_t hi) const {
  DPB_CHECK_LE(lo, hi);
  DPB_CHECK_LT(hi, n_);
  std::vector<size_t> out;
  std::deque<size_t> queue{root()};
  while (!queue.empty()) {
    size_t v = queue.front();
    queue.pop_front();
    const Node& node = nodes_[v];
    if (node.lo >= lo && node.hi <= hi) {
      out.push_back(v);
      continue;
    }
    if (node.hi < lo || node.lo > hi) continue;
    for (size_t c : node.children) queue.push_back(c);
  }
  return out;
}

Result<std::vector<double>> RangeTree::Infer(
    const std::vector<double>& y, const std::vector<double>& variance) const {
  if (y.size() != nodes_.size() || variance.size() != nodes_.size()) {
    return Status::InvalidArgument("measurement arity mismatch");
  }
  std::vector<MeasurementNode> mnodes(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    mnodes[i].children = nodes_[i].children;
    mnodes[i].y = y[i];
    mnodes[i].variance = variance[i];
  }
  DPB_ASSIGN_OR_RETURN(std::vector<double> node_est,
                       TreeGlsInfer(mnodes, root()));
  std::vector<double> cells(n_, 0.0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].children.empty()) {
      size_t len = nodes_[i].hi - nodes_[i].lo + 1;
      for (size_t c = nodes_[i].lo; c <= nodes_[i].hi; ++c) {
        cells[c] = node_est[i] / static_cast<double>(len);
      }
    }
  }
  return cells;
}

}  // namespace dpbench
