// QUADTREE (Cormode, Procopiuc, Shen, Srivastava, Yu ICDE'12): a quadtree
// of fixed maximum height with geometric budget allocation and consistency
// post-processing (GLS).
//
// The partition structure is fixed (rho = 0), so no budget is spent
// selecting it. If the domain is deeper than the height cap, leaves
// aggregate multiple cells and the estimate is biased — the paper proves
// QUADTREE inconsistent on sufficiently large domains (Theorem 5). At the
// benchmark's 2D domain sizes (<= 256x256, depth 8 <= 10) leaves are single
// cells and the algorithm is effectively data-independent (paper §7.2).
#ifndef DPBENCH_ALGORITHMS_QUADTREE_H_
#define DPBENCH_ALGORITHMS_QUADTREE_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class QuadTreeMechanism : public Mechanism {
 public:
  /// Table 1 parameter c = 10: the maximum tree height.
  explicit QuadTreeMechanism(size_t max_height = 10)
      : max_height_(max_height) {}

  std::string name() const override { return "QUADTREE"; }
  bool SupportsDims(size_t dims) const override { return dims == 2; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;
  Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                              const PlanPayload& payload) const override;

 private:
  size_t max_height_;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_QUADTREE_H_
