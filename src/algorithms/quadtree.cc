#include "src/algorithms/quadtree.h"

#include <cmath>
#include <utility>

#include "src/algorithms/grid_tree_plan.h"

namespace dpbench {

Result<PlanPtr> QuadTreeMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  size_t rows = ctx.domain.size(0), cols = ctx.domain.size(1);
  using grid_internal::GridRect;

  // Build the quadtree to the height cap (or single cells).
  std::vector<GridRect> nodes;
  nodes.push_back({0, rows - 1, 0, cols - 1, {}, 0});
  int depth = 0;
  for (size_t v = 0; v < nodes.size(); ++v) {
    GridRect node = nodes[v];
    depth = std::max(depth, node.level);
    if (static_cast<size_t>(node.level) + 1 >= max_height_) continue;
    size_t h = node.r1 - node.r0 + 1, w = node.c1 - node.c0 + 1;
    if (h == 1 && w == 1) continue;
    size_t rmid = node.r0 + (h - 1) / 2;
    size_t cmid = node.c0 + (w - 1) / 2;
    // Quadrants; degenerate (1-wide) sides split into fewer children.
    for (int qr = 0; qr < 2; ++qr) {
      size_t r0 = qr == 0 ? node.r0 : rmid + 1;
      size_t r1 = qr == 0 ? rmid : node.r1;
      if (qr == 1 && rmid + 1 > node.r1) continue;
      for (int qc = 0; qc < 2; ++qc) {
        size_t c0 = qc == 0 ? node.c0 : cmid + 1;
        size_t c1 = qc == 0 ? cmid : node.c1;
        if (qc == 1 && cmid + 1 > node.c1) continue;
        size_t child = nodes.size();
        nodes[v].children.push_back(child);
        nodes.push_back({r0, r1, c0, c1, {}, node.level + 1});
      }
    }
  }
  int levels = depth + 1;

  // Geometric budget allocation: deeper levels receive more budget
  // (eps_l proportional to 2^(l/3), Cormode et al.).
  std::vector<double> weight(levels);
  double total_w = 0.0;
  for (int l = 0; l < levels; ++l) {
    weight[l] = std::pow(2.0, static_cast<double>(l) / 3.0);
    total_w += weight[l];
  }
  std::vector<double> eps(levels);
  for (int l = 0; l < levels; ++l) {
    eps[l] = ctx.epsilon * weight[l] / total_w;
  }

  return PlanPtr(new grid_internal::GridTreePlan(
      name(), ctx.domain, std::move(nodes), std::move(eps), ctx.epsilon));
}

Result<PlanPtr> QuadTreeMechanism::HydratePlan(
    const PlanContext& ctx, const PlanPayload& payload) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  DPB_RETURN_NOT_OK(payload.CheckHeader(name(), "grid_tree", ctx.epsilon));
  return grid_internal::GridTreePlan::FromPayload(name(), ctx.domain,
                                                  ctx.epsilon, payload);
}

}  // namespace dpbench
