#include "src/algorithms/matrix_mechanism.h"

#include <cmath>

#include "src/algorithms/privelet.h"
#include "src/algorithms/tree_inference.h"
#include "src/common/logging.h"
#include "src/common/math.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace strategies {

Matrix IdentityStrategy(size_t n) { return Matrix::Identity(n); }

Matrix HierarchicalStrategy(size_t n, size_t branching) {
  RangeTree tree = RangeTree::Build(n, branching);
  Matrix s(tree.num_nodes(), n);
  for (size_t v = 0; v < tree.num_nodes(); ++v) {
    for (size_t c = tree.node(v).lo; c <= tree.node(v).hi; ++c) {
      s.at(v, c) = 1.0;
    }
  }
  return s;
}

Matrix WaveletStrategy(size_t n) {
  DPB_CHECK(IsPowerOfTwo(n));
  // Rows are the unnormalized Haar analysis vectors; obtain them by
  // transforming the standard basis.
  Matrix s(n, n);
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> basis(n, 0.0);
    basis[j] = 1.0;
    std::vector<double> coef = wavelet::HaarForward(basis);
    for (size_t i = 0; i < n; ++i) s.at(i, j) = coef[i];
  }
  return s;
}

}  // namespace strategies

Result<DataVector> MatrixMechanism::Run(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  if (strategy_.cols() != ctx.data.size()) {
    return Status::InvalidArgument(name_ + ": strategy arity mismatch");
  }
  double sensitivity = strategy_.MaxColumnL1();
  DPB_ASSIGN_OR_RETURN(std::vector<double> answers,
                       strategy_.Apply(ctx.data.counts()));
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> noisy,
      LaplaceMechanism(answers, sensitivity, ctx.epsilon, ctx.rng));
  DPB_ASSIGN_OR_RETURN(std::vector<double> est,
                       LeastSquares(strategy_, noisy));
  return DataVector(ctx.data.domain(), std::move(est));
}

Result<double> MatrixMechanism::ExpectedSquaredError(const Workload& w,
                                                     double epsilon) const {
  const size_t n = strategy_.cols();
  if (w.domain().TotalCells() != n) {
    return Status::InvalidArgument("workload arity mismatch");
  }
  // Build the workload matrix W (q x n).
  Matrix wm(w.size(), n);
  for (size_t q = 0; q < w.size(); ++q) {
    const RangeQuery& query = w.queries()[q];
    for (size_t c = query.lo[0]; c <= query.hi[0]; ++c) wm.at(q, c) = 1.0;
  }
  // M = W (S^T S)^{-1} S^T; E error^2 = 2 (Delta/eps)^2 ||M||_F^2.
  Matrix st = strategy_.Transpose();
  DPB_ASSIGN_OR_RETURN(Matrix gram, st.Multiply(strategy_));
  // Solve gram * G = W^T column by column: G = gram^{-1} W^T (n x q).
  Matrix g(n, w.size());
  for (size_t q = 0; q < w.size(); ++q) {
    std::vector<double> col(n);
    for (size_t c = 0; c < n; ++c) col[c] = wm.at(q, c);
    DPB_ASSIGN_OR_RETURN(std::vector<double> sol, SolveSpd(gram, col));
    for (size_t c = 0; c < n; ++c) g.at(c, q) = sol[c];
  }
  // M^T = S gram^{-1} W^T = strategy * G (m x q).
  DPB_ASSIGN_OR_RETURN(Matrix mt, strategy_.Multiply(g));
  double frob2 = 0.0;
  for (double v : mt.data()) frob2 += v * v;
  double delta = strategy_.MaxColumnL1();
  double scale = delta / epsilon;
  return 2.0 * scale * scale * frob2;
}

}  // namespace dpbench
