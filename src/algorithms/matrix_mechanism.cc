#include "src/algorithms/matrix_mechanism.h"

#include <cmath>

#include "src/algorithms/privelet.h"
#include "src/algorithms/tree_inference.h"
#include "src/common/logging.h"
#include "src/common/math.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace strategies {

Matrix IdentityStrategy(size_t n) { return Matrix::Identity(n); }

Matrix HierarchicalStrategy(size_t n, size_t branching) {
  RangeTree tree = RangeTree::Build(n, branching);
  Matrix s(tree.num_nodes(), n);
  for (size_t v = 0; v < tree.num_nodes(); ++v) {
    for (size_t c = tree.node(v).lo; c <= tree.node(v).hi; ++c) {
      s.at(v, c) = 1.0;
    }
  }
  return s;
}

Matrix WaveletStrategy(size_t n) {
  DPB_CHECK(IsPowerOfTwo(n));
  // Rows are the unnormalized Haar analysis vectors; obtain them by
  // transforming the standard basis.
  Matrix s(n, n);
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> basis(n, 0.0);
    basis[j] = 1.0;
    std::vector<double> coef = wavelet::HaarForward(basis);
    for (size_t i = 0; i < n; ++i) s.at(i, j) = coef[i];
  }
  return s;
}

}  // namespace strategies

namespace {

// Plan-time state of the generic matrix mechanism: the strategy's L1
// sensitivity and the Cholesky factor of its Gram matrix S^T S. The O(n^3)
// factorization happens once; each execution is two O(mn) products, one
// noise pass and an O(n^2) triangular solve.
class MatrixMechanismPlan : public MechanismPlan {
 public:
  MatrixMechanismPlan(std::string name, Domain domain,
                      const Matrix* strategy, Matrix strategy_transpose,
                      double sensitivity, Matrix gram_cholesky,
                      double epsilon)
      : MechanismPlan(std::move(name), std::move(domain)),
        strategy_(strategy),
        strategy_transpose_(std::move(strategy_transpose)),
        sensitivity_(sensitivity),
        gram_cholesky_(std::move(gram_cholesky)),
        epsilon_(epsilon) {}

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    DPB_ASSIGN_OR_RETURN(std::vector<double> answers,
                         strategy_->Apply(ctx.data.counts()));
    DPB_ASSIGN_OR_RETURN(
        std::vector<double> noisy,
        LaplaceMechanism(answers, sensitivity_, epsilon_, ctx.rng));
    // Least squares through the cached factorization: solve
    // (S^T S) x = S^T y, with S^T materialized at plan time so the hot
    // per-trial product streams row-major memory.
    DPB_ASSIGN_OR_RETURN(std::vector<double> rhs,
                         strategy_transpose_.Apply(noisy));
    DPB_ASSIGN_OR_RETURN(std::vector<double> est,
                         CholeskySolve(gram_cholesky_, rhs));
    return DataVector(domain(), std::move(est));
  }

  Result<PlanPayload> SerializePayload() const override {
    PlanPayload p;
    p.mechanism = mechanism_name();
    p.kind = "matrix";
    p.reals["epsilon"] = epsilon_;
    p.reals["sensitivity"] = sensitivity_;
    p.ints["strategy_rows"] = strategy_->rows();
    p.ints["strategy_cols"] = strategy_->cols();
    // Only the O(n^3) factorization is worth persisting; the transpose is
    // O(mn) to rebuild from the mechanism-owned strategy and hydration
    // recomputes it (which also revalidates against the live strategy).
    p.real_vecs["gram_cholesky"] = gram_cholesky_.data();
    return p;
  }

 private:
  const Matrix* strategy_;  // owned by the mechanism, which outlives us
  Matrix strategy_transpose_;
  double sensitivity_;
  Matrix gram_cholesky_;
  double epsilon_;
};

}  // namespace

Result<PlanPtr> MatrixMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  if (strategy_.cols() != ctx.domain.TotalCells()) {
    return Status::InvalidArgument(name_ + ": strategy arity mismatch");
  }
  double sensitivity = strategy_.MaxColumnL1();
  Matrix st = strategy_.Transpose();
  DPB_ASSIGN_OR_RETURN(Matrix gram, st.Multiply(strategy_));
  DPB_ASSIGN_OR_RETURN(Matrix l, Cholesky(gram));
  return PlanPtr(new MatrixMechanismPlan(name(), ctx.domain, &strategy_,
                                         std::move(st), sensitivity,
                                         std::move(l), ctx.epsilon));
}

Result<PlanPtr> MatrixMechanism::HydratePlan(
    const PlanContext& ctx, const PlanPayload& payload) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  DPB_RETURN_NOT_OK(payload.CheckHeader(name(), "matrix", ctx.epsilon));
  const size_t m = strategy_.rows(), n = strategy_.cols();
  if (n != ctx.domain.TotalCells()) {
    return Status::InvalidArgument(name_ + ": strategy arity mismatch");
  }
  DPB_ASSIGN_OR_RETURN(uint64_t rows, payload.Int("strategy_rows"));
  DPB_ASSIGN_OR_RETURN(uint64_t cols, payload.Int("strategy_cols"));
  DPB_ASSIGN_OR_RETURN(double sensitivity, payload.Real("sensitivity"));
  DPB_ASSIGN_OR_RETURN(std::vector<double> chol_data,
                       payload.RealVec("gram_cholesky"));
  if (rows != m || cols != n || chol_data.size() != n * n) {
    return Status::InvalidArgument(
        name_ + ": matrix payload does not match this strategy's shape");
  }
  // Everything cheap is recomputed from the live strategy and validated
  // bit-exactly, so a payload from a build whose strategy changed under
  // the same name fails loudly; only the O(n^3) Cholesky factor is
  // trusted from the cache.
  if (!(sensitivity == strategy_.MaxColumnL1())) {
    return Status::InvalidArgument(
        name_ +
        ": matrix payload sensitivity does not match this strategy");
  }
  return PlanPtr(new MatrixMechanismPlan(
      name(), ctx.domain, &strategy_, strategy_.Transpose(), sensitivity,
      Matrix(n, n, std::move(chol_data)), ctx.epsilon));
}

Result<double> MatrixMechanism::ExpectedSquaredError(const Workload& w,
                                                     double epsilon) const {
  const size_t n = strategy_.cols();
  if (w.domain().TotalCells() != n) {
    return Status::InvalidArgument("workload arity mismatch");
  }
  // Build the workload matrix W (q x n).
  Matrix wm(w.size(), n);
  for (size_t q = 0; q < w.size(); ++q) {
    const RangeQuery& query = w.queries()[q];
    for (size_t c = query.lo[0]; c <= query.hi[0]; ++c) wm.at(q, c) = 1.0;
  }
  // M = W (S^T S)^{-1} S^T; E error^2 = 2 (Delta/eps)^2 ||M||_F^2.
  Matrix st = strategy_.Transpose();
  DPB_ASSIGN_OR_RETURN(Matrix gram, st.Multiply(strategy_));
  // Solve gram * G = W^T column by column: G = gram^{-1} W^T (n x q).
  Matrix g(n, w.size());
  for (size_t q = 0; q < w.size(); ++q) {
    std::vector<double> col(n);
    for (size_t c = 0; c < n; ++c) col[c] = wm.at(q, c);
    DPB_ASSIGN_OR_RETURN(std::vector<double> sol, SolveSpd(gram, col));
    for (size_t c = 0; c < n; ++c) g.at(c, q) = sol[c];
  }
  // M^T = S gram^{-1} W^T = strategy * G (m x q).
  DPB_ASSIGN_OR_RETURN(Matrix mt, strategy_.Multiply(g));
  double frob2 = 0.0;
  for (double v : mt.data()) frob2 += v * v;
  double delta = strategy_.MaxColumnL1();
  double scale = delta / epsilon;
  return 2.0 * scale * scale * frob2;
}

}  // namespace dpbench
