#include "src/algorithms/hb.h"

#include <cmath>
#include <memory>
#include <utility>

#include "src/algorithms/grid_tree_plan.h"
#include "src/algorithms/hier.h"
#include "src/algorithms/tree_inference.h"
#include "src/common/logging.h"

namespace dpbench {

namespace {

using grid_internal::GridRect;

// Height (number of levels below the root inclusive of leaves) of a b-ary
// hierarchy over n cells.
int HeightFor(size_t n, size_t b) {
  int h = 0;
  size_t cover = 1;
  while (cover < n) {
    cover *= b;
    ++h;
  }
  return std::max(h, 1);
}

// 2D grid hierarchy: nodes are rectangles; each split divides both sides
// into up to b parts. Leaves are single cells.
void BuildGridTree(size_t rows, size_t cols, size_t b,
                   std::vector<GridRect>* nodes) {
  nodes->push_back({0, rows - 1, 0, cols - 1, {}, 0});
  for (size_t v = 0; v < nodes->size(); ++v) {
    GridRect node = (*nodes)[v];
    size_t h = node.r1 - node.r0 + 1, w = node.c1 - node.c0 + 1;
    if (h == 1 && w == 1) continue;
    size_t rparts = std::min(b, h), cparts = std::min(b, w);
    size_t rbase = h / rparts, rextra = h % rparts;
    size_t cbase = w / cparts, cextra = w % cparts;
    size_t rstart = node.r0;
    for (size_t rp = 0; rp < rparts; ++rp) {
      size_t rlen = rbase + (rp < rextra ? 1 : 0);
      size_t cstart = node.c0;
      for (size_t cp = 0; cp < cparts; ++cp) {
        size_t clen = cbase + (cp < cextra ? 1 : 0);
        size_t child = nodes->size();
        (*nodes)[v].children.push_back(child);
        nodes->push_back({rstart, rstart + rlen - 1, cstart,
                          cstart + clen - 1, {}, node.level + 1});
        cstart += clen;
      }
      rstart += rlen;
    }
  }
}

}  // namespace

size_t HbMechanism::ChooseBranching1D(size_t n) {
  size_t best_b = 2;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t b = 2; b <= std::min<size_t>(n, 1024); ++b) {
    double h = HeightFor(n, b) + 1;  // levels including root
    double cost = static_cast<double>(b - 1) * h * h * h;
    if (cost < best_cost) {
      best_cost = cost;
      best_b = b;
    }
  }
  return best_b;
}

size_t HbMechanism::ChooseBranching2D(size_t side) {
  size_t best_b = 2;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t b = 2; b <= std::min<size_t>(side, 64); ++b) {
    double h = HeightFor(side, b) + 1;
    // Each dimension contributes (b-1)h strips; squared for 2D ranges.
    double strips = static_cast<double>(b - 1) * h;
    double cost = strips * strips * h;
    if (cost < best_cost) {
      best_cost = cost;
      best_b = b;
    }
  }
  return best_b;
}

Result<PlanPtr> HbMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));

  if (ctx.domain.num_dims() == 1) {
    size_t n = ctx.domain.TotalCells();
    size_t b = ChooseBranching1D(n);
    auto tree = std::make_shared<const RangeTree>(RangeTree::Build(n, b));
    int levels = tree->num_levels();
    std::vector<double> eps(levels,
                            ctx.epsilon / static_cast<double>(levels));
    return PlanPtr(new hier_internal::RangeTreePlan(
        name(), ctx.domain, std::move(tree), std::move(eps), ctx.epsilon));
  }

  // 2D grid hierarchy with uniform budget per level.
  size_t rows = ctx.domain.size(0), cols = ctx.domain.size(1);
  size_t b = ChooseBranching2D(std::max(rows, cols));
  std::vector<GridRect> grid_nodes;
  BuildGridTree(rows, cols, b, &grid_nodes);
  int levels = 0;
  for (const GridRect& node : grid_nodes) {
    levels = std::max(levels, node.level + 1);
  }
  std::vector<double> eps(levels,
                          ctx.epsilon / static_cast<double>(levels));
  return PlanPtr(new grid_internal::GridTreePlan(
      name(), ctx.domain, std::move(grid_nodes), std::move(eps),
      ctx.epsilon));
}

Result<PlanPtr> HbMechanism::HydratePlan(const PlanContext& ctx,
                                         const PlanPayload& payload) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  if (ctx.domain.num_dims() == 1) {
    return hier_internal::HydrateRangeTreePlan(name(), ctx, payload);
  }
  DPB_RETURN_NOT_OK(payload.CheckHeader(name(), "grid_tree", ctx.epsilon));
  return grid_internal::GridTreePlan::FromPayload(name(), ctx.domain,
                                                  ctx.epsilon, payload);
}

}  // namespace dpbench
