// EFPA (Ács, Castelluccia, Chen ICDM'12): Enhanced Fourier Perturbation.
//
// Takes the orthonormal DFT of the 1D data vector, privately chooses how
// many leading coefficients k to keep (exponential mechanism with the
// expected-reconstruction-error score: tail energy dropped plus Laplace
// noise added to the retained coefficients), perturbs the k retained
// complex coefficients, zeroes the rest and inverts. Consistent: as
// eps -> inf the mechanism keeps all coefficients and noise vanishes
// (paper Theorem 2).
#ifndef DPBENCH_ALGORITHMS_EFPA_H_
#define DPBENCH_ALGORITHMS_EFPA_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class EfpaMechanism : public Mechanism {
 public:
  std::string name() const override { return "EFPA"; }
  bool SupportsDims(size_t dims) const override { return dims == 1; }

  /// Structured plan: the frequency ordering, per-k noise scales, and
  /// per-k noise-energy terms of the selection score are functions of the
  /// (padded) domain size alone and are hoisted; execution runs the FFTs
  /// and coefficient perturbation in scratch with one Laplace block.
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;

 protected:
  Result<DataVector> RunImpl(const RunContext& ctx) const override;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_EFPA_H_
