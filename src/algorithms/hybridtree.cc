#include "src/algorithms/hybridtree.h"

#include <algorithm>
#include <cmath>

#include "src/algorithms/tree_inference.h"
#include "src/mechanisms/budget.h"
#include "src/mechanisms/exponential.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

struct HNode {
  size_t r0, r1, c0, c1;  // inclusive
  std::vector<size_t> children;
  int level;
  bool kd;  // node split privately (kd phase) vs fixed quadtree phase
};

// Structured HYBRIDTREE plan. Hoisted: the budget split, the per-kd-level
// epsilon, and the geometric level weights 2^(l/3) up to the height cap.
// The tree build — private kd splits on top, fixed quadrants below —
// appends nodes to flat scratch arrays in the same order as the legacy
// HNode vector (BFS, children consecutive), so the flat GLS applies.
// Execution mirrors RunImpl draw-for-draw: block-uniform split selection
// per kd node and one per-scale Laplace block for all node counts,
// against a scratch prefix-sum table matching PrefixSums::RangeSum.
class HybridTreePlan : public MechanismPlan {
 public:
  HybridTreePlan(std::string name, const PlanContext& ctx, size_t kd_levels,
                 size_t max_height, double rho)
      : MechanismPlan(std::move(name), ctx.domain),
        kd_levels_(kd_levels),
        max_height_(max_height),
        rows_(ctx.domain.size(0)),
        cols_(ctx.domain.size(1)) {
    eps_kd_ = rho * ctx.epsilon;
    eps_counts_ = ctx.epsilon - eps_kd_;
    eps_per_kd_level_ =
        eps_kd_ / static_cast<double>(std::max<size_t>(kd_levels_, 1));
    // Geometric budget allocation weights over levels for the counts; the
    // realized depth (hence the normalizer) is data-dependent. The root
    // level always exists even under a zero height cap.
    weight_.resize(std::max<size_t>(max_height_, 1));
    for (size_t l = 0; l < weight_.size(); ++l) {
      weight_[l] = std::pow(2.0, static_cast<double>(l) / 3.0);
    }
  }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    // Worst-case reserves: the kd cuts move per trial, so node counts and
    // candidate-cut sets vary (leaves partition the grid, hence < 2n
    // nodes; a cut search scans at most the longer side).
    const size_t cells_total = rows_ * cols_;
    s.tree.Reserve(2 * cells_total, cells_total);
    size_t max_cuts = std::max(rows_, cols_);
    s.scores.reserve(max_cuts);
    s.order.reserve(max_cuts);
    s.unif.reserve(max_cuts);

    ComputePrefixSums(ctx.data, &s.prefix);
    const std::vector<double>& cum = s.prefix;
    auto range_sum = [&](size_t r0, size_t c0, size_t r1, size_t c1) {
      return CumRangeSum2D(cum, cols_, r0, c0, r1, c1);
    };

    FlatTreeScratch& t = s.tree;
    t.lo.assign(1, 0);
    t.hi.assign(1, rows_ - 1);
    t.lo2.assign(1, 0);
    t.hi2.assign(1, cols_ - 1);
    t.first_child.assign(1, 0);
    t.child_count.assign(1, 0);
    t.level.assign(1, 0);
    t.flag.assign(1, 1);  // kd phase
    int depth = 0;
    for (size_t v = 0; v < t.lo.size(); ++v) {
      size_t r0 = t.lo[v], r1 = t.hi[v];
      size_t c0 = t.lo2[v], c1 = t.hi2[v];
      int level = t.level[v];
      bool kd = t.flag[v] != 0;
      depth = std::max(depth, level);
      if (static_cast<size_t>(level) + 1 >= max_height_) continue;
      size_t h = r1 - r0 + 1, w = c1 - c0 + 1;
      if (h == 1 && w == 1) continue;

      if (kd && static_cast<size_t>(level) < kd_levels_) {
        // kd phase: split the wider side at a privately chosen position.
        // Score favors balanced mass: -|left count - right count|,
        // sensitivity 1.
        bool split_rows = h >= w && h > 1;
        size_t lo = split_rows ? r0 : c0;
        size_t hi = split_rows ? r1 : c1;
        s.scores.clear();
        s.order.clear();  // candidate cut positions
        for (size_t cut = lo; cut < hi; ++cut) {
          double left = split_rows ? range_sum(r0, c0, cut, c1)
                                   : range_sum(r0, c0, r1, cut);
          double total = range_sum(r0, c0, r1, c1);
          s.scores.push_back(-std::abs(2.0 * left - total));
          s.order.push_back(cut);
        }
        DPB_ASSIGN_OR_RETURN(
            size_t pick,
            ExponentialMechanismInto(s.scores.data(), s.scores.size(), 1.0,
                                     eps_per_kd_level_, ctx.rng, &s.unif));
        size_t cut = s.order[pick];
        size_t li = t.lo.size();
        t.first_child[v] = li;
        t.child_count[v] = 2;
        for (int child = 0; child < 2; ++child) {
          t.lo.push_back(split_rows && child == 1 ? cut + 1 : r0);
          t.hi.push_back(split_rows && child == 0 ? cut : r1);
          t.lo2.push_back(!split_rows && child == 1 ? cut + 1 : c0);
          t.hi2.push_back(!split_rows && child == 0 ? cut : c1);
          t.first_child.push_back(0);
          t.child_count.push_back(0);
          t.level.push_back(level + 1);
          t.flag.push_back(1);
        }
        continue;
      }

      // Quadtree phase: fixed quadrant split.
      size_t rmid = r0 + (h - 1) / 2;
      size_t cmid = c0 + (w - 1) / 2;
      t.first_child[v] = t.lo.size();
      for (int qr = 0; qr < 2; ++qr) {
        if (qr == 1 && rmid + 1 > r1) continue;
        for (int qc = 0; qc < 2; ++qc) {
          if (qc == 1 && cmid + 1 > c1) continue;
          t.lo.push_back(qr == 0 ? r0 : rmid + 1);
          t.hi.push_back(qr == 0 ? rmid : r1);
          t.lo2.push_back(qc == 0 ? c0 : cmid + 1);
          t.hi2.push_back(qc == 0 ? cmid : c1);
          t.first_child.push_back(0);
          t.child_count.push_back(0);
          t.level.push_back(level + 1);
          t.flag.push_back(0);
          ++t.child_count[v];
        }
      }
    }
    const size_t num_nodes = t.lo.size();
    int levels = depth + 1;

    // Geometric budget allocation over the realized levels.
    double total_w = 0.0;
    for (int l = 0; l < levels; ++l) {
      total_w += weight_[static_cast<size_t>(l)];
    }
    t.y.resize(num_nodes);
    t.variance.resize(num_nodes);
    t.meas_scale.resize(num_nodes);
    for (size_t v = 0; v < num_nodes; ++v) {
      double e =
          eps_counts_ * weight_[static_cast<size_t>(t.level[v])] / total_w;
      t.y[v] = range_sum(t.lo[v], t.lo2[v], t.hi[v], t.hi2[v]);
      t.meas_scale[v] = 1.0 / e;
      t.variance[v] = LaplaceVariance(1.0, e);
    }
    t.noise.resize(num_nodes);
    ctx.rng->FillLaplace(t.noise.data(), t.meas_scale.data(), num_nodes);
    for (size_t v = 0; v < num_nodes; ++v) t.y[v] += t.noise[v];
    FlatTreeGlsInfer(num_nodes, t.first_child.data(), t.child_count.data(),
                     t.y.data(), t.variance.data(), &t.z, &t.s,
                     &t.node_est);

    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    for (size_t v = 0; v < num_nodes; ++v) {
      if (t.child_count[v] != 0) continue;
      double area = static_cast<double>((t.hi[v] - t.lo[v] + 1) *
                                        (t.hi2[v] - t.lo2[v] + 1));
      for (size_t r = t.lo[v]; r <= t.hi[v]; ++r) {
        for (size_t c = t.lo2[v]; c <= t.hi2[v]; ++c) {
          cells[r * cols_ + c] = t.node_est[v] / area;
        }
      }
    }
    return Status::OK();
  }

 private:
  size_t kd_levels_, max_height_;
  size_t rows_, cols_;
  double eps_kd_, eps_counts_, eps_per_kd_level_;
  std::vector<double> weight_;
};

}  // namespace

Result<PlanPtr> HybridTreeMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new HybridTreePlan(name(), ctx, kd_levels_, max_height_,
                                    rho_));
}

Result<DataVector> HybridTreeMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  size_t rows = domain.size(0), cols = domain.size(1);
  PrefixSums ps(ctx.data);

  BudgetAccountant budget(ctx.epsilon);
  double eps_kd = rho_ * ctx.epsilon;
  double eps_counts = ctx.epsilon - eps_kd;
  DPB_RETURN_NOT_OK(budget.Spend(eps_kd, "kd-splits"));
  DPB_RETURN_NOT_OK(budget.Spend(eps_counts, "counts"));
  double eps_per_kd_level =
      eps_kd / static_cast<double>(std::max<size_t>(kd_levels_, 1));

  std::vector<HNode> nodes;
  nodes.push_back({0, rows - 1, 0, cols - 1, {}, 0, true});
  int depth = 0;
  for (size_t v = 0; v < nodes.size(); ++v) {
    HNode node = nodes[v];
    depth = std::max(depth, node.level);
    if (static_cast<size_t>(node.level) + 1 >= max_height_) continue;
    size_t h = node.r1 - node.r0 + 1, w = node.c1 - node.c0 + 1;
    if (h == 1 && w == 1) continue;

    if (node.kd && static_cast<size_t>(node.level) < kd_levels_) {
      // kd phase: split the wider side at a privately chosen position.
      // Score favors balanced mass: -|left count - right count|,
      // sensitivity 1.
      bool split_rows = h >= w && h > 1;
      size_t lo = split_rows ? node.r0 : node.c0;
      size_t hi = split_rows ? node.r1 : node.c1;
      std::vector<double> scores;
      std::vector<size_t> cuts;
      for (size_t cut = lo; cut < hi; ++cut) {
        double left =
            split_rows
                ? ps.RangeSum({node.r0, node.c0}, {cut, node.c1})
                : ps.RangeSum({node.r0, node.c0}, {node.r1, cut});
        double total = ps.RangeSum({node.r0, node.c0}, {node.r1, node.c1});
        scores.push_back(-std::abs(2.0 * left - total));
        cuts.push_back(cut);
      }
      DPB_ASSIGN_OR_RETURN(
          size_t pick,
          ExponentialMechanism(scores, 1.0, eps_per_kd_level, ctx.rng));
      size_t cut = cuts[pick];
      HNode left = node, right = node;
      left.level = right.level = node.level + 1;
      left.kd = right.kd = true;
      if (split_rows) {
        left.r1 = cut;
        right.r0 = cut + 1;
      } else {
        left.c1 = cut;
        right.c0 = cut + 1;
      }
      size_t li = nodes.size();
      nodes[v].children = {li, li + 1};
      nodes.push_back(left);
      nodes.push_back(right);
      continue;
    }

    // Quadtree phase: fixed quadrant split.
    size_t rmid = node.r0 + (h - 1) / 2;
    size_t cmid = node.c0 + (w - 1) / 2;
    for (int qr = 0; qr < 2; ++qr) {
      if (qr == 1 && rmid + 1 > node.r1) continue;
      for (int qc = 0; qc < 2; ++qc) {
        if (qc == 1 && cmid + 1 > node.c1) continue;
        HNode child = node;
        child.level = node.level + 1;
        child.kd = false;
        child.r0 = qr == 0 ? node.r0 : rmid + 1;
        child.r1 = qr == 0 ? rmid : node.r1;
        child.c0 = qc == 0 ? node.c0 : cmid + 1;
        child.c1 = qc == 0 ? cmid : node.c1;
        nodes[v].children.push_back(nodes.size());
        nodes.push_back(child);
      }
    }
  }
  int levels = depth + 1;

  // Geometric budget allocation over levels for the counts.
  std::vector<double> weight(levels);
  double total_w = 0.0;
  for (int l = 0; l < levels; ++l) {
    weight[l] = std::pow(2.0, static_cast<double>(l) / 3.0);
    total_w += weight[l];
  }
  std::vector<MeasurementNode> mnodes(nodes.size());
  for (size_t v = 0; v < nodes.size(); ++v) {
    const HNode& node = nodes[v];
    mnodes[v].children = node.children;
    double e = eps_counts * weight[node.level] / total_w;
    double truth = ps.RangeSum({node.r0, node.c0}, {node.r1, node.c1});
    mnodes[v].y = truth + ctx.rng->Laplace(1.0 / e);
    mnodes[v].variance = LaplaceVariance(1.0, e);
  }
  DPB_ASSIGN_OR_RETURN(std::vector<double> est, TreeGlsInfer(mnodes, 0));

  DataVector out(domain);
  for (size_t v = 0; v < nodes.size(); ++v) {
    const HNode& node = nodes[v];
    if (!node.children.empty()) continue;
    double area = static_cast<double>((node.r1 - node.r0 + 1) *
                                      (node.c1 - node.c0 + 1));
    for (size_t r = node.r0; r <= node.r1; ++r) {
      for (size_t c = node.c0; c <= node.c1; ++c) {
        out[r * cols + c] = est[v] / area;
      }
    }
  }
  return out;
}

}  // namespace dpbench
