#include "src/algorithms/hybridtree.h"

#include <cmath>

#include "src/algorithms/tree_inference.h"
#include "src/mechanisms/budget.h"
#include "src/mechanisms/exponential.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

struct HNode {
  size_t r0, r1, c0, c1;  // inclusive
  std::vector<size_t> children;
  int level;
  bool kd;  // node split privately (kd phase) vs fixed quadtree phase
};

}  // namespace

Result<DataVector> HybridTreeMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  size_t rows = domain.size(0), cols = domain.size(1);
  PrefixSums ps(ctx.data);

  BudgetAccountant budget(ctx.epsilon);
  double eps_kd = rho_ * ctx.epsilon;
  double eps_counts = ctx.epsilon - eps_kd;
  DPB_RETURN_NOT_OK(budget.Spend(eps_kd, "kd-splits"));
  DPB_RETURN_NOT_OK(budget.Spend(eps_counts, "counts"));
  double eps_per_kd_level =
      eps_kd / static_cast<double>(std::max<size_t>(kd_levels_, 1));

  std::vector<HNode> nodes;
  nodes.push_back({0, rows - 1, 0, cols - 1, {}, 0, true});
  int depth = 0;
  for (size_t v = 0; v < nodes.size(); ++v) {
    HNode node = nodes[v];
    depth = std::max(depth, node.level);
    if (static_cast<size_t>(node.level) + 1 >= max_height_) continue;
    size_t h = node.r1 - node.r0 + 1, w = node.c1 - node.c0 + 1;
    if (h == 1 && w == 1) continue;

    if (node.kd && static_cast<size_t>(node.level) < kd_levels_) {
      // kd phase: split the wider side at a privately chosen position.
      // Score favors balanced mass: -|left count - right count|,
      // sensitivity 1.
      bool split_rows = h >= w && h > 1;
      size_t lo = split_rows ? node.r0 : node.c0;
      size_t hi = split_rows ? node.r1 : node.c1;
      std::vector<double> scores;
      std::vector<size_t> cuts;
      for (size_t cut = lo; cut < hi; ++cut) {
        double left =
            split_rows
                ? ps.RangeSum({node.r0, node.c0}, {cut, node.c1})
                : ps.RangeSum({node.r0, node.c0}, {node.r1, cut});
        double total = ps.RangeSum({node.r0, node.c0}, {node.r1, node.c1});
        scores.push_back(-std::abs(2.0 * left - total));
        cuts.push_back(cut);
      }
      DPB_ASSIGN_OR_RETURN(
          size_t pick,
          ExponentialMechanism(scores, 1.0, eps_per_kd_level, ctx.rng));
      size_t cut = cuts[pick];
      HNode left = node, right = node;
      left.level = right.level = node.level + 1;
      left.kd = right.kd = true;
      if (split_rows) {
        left.r1 = cut;
        right.r0 = cut + 1;
      } else {
        left.c1 = cut;
        right.c0 = cut + 1;
      }
      size_t li = nodes.size();
      nodes[v].children = {li, li + 1};
      nodes.push_back(left);
      nodes.push_back(right);
      continue;
    }

    // Quadtree phase: fixed quadrant split.
    size_t rmid = node.r0 + (h - 1) / 2;
    size_t cmid = node.c0 + (w - 1) / 2;
    for (int qr = 0; qr < 2; ++qr) {
      if (qr == 1 && rmid + 1 > node.r1) continue;
      for (int qc = 0; qc < 2; ++qc) {
        if (qc == 1 && cmid + 1 > node.c1) continue;
        HNode child = node;
        child.level = node.level + 1;
        child.kd = false;
        child.r0 = qr == 0 ? node.r0 : rmid + 1;
        child.r1 = qr == 0 ? rmid : node.r1;
        child.c0 = qc == 0 ? node.c0 : cmid + 1;
        child.c1 = qc == 0 ? cmid : node.c1;
        nodes[v].children.push_back(nodes.size());
        nodes.push_back(child);
      }
    }
  }
  int levels = depth + 1;

  // Geometric budget allocation over levels for the counts.
  std::vector<double> weight(levels);
  double total_w = 0.0;
  for (int l = 0; l < levels; ++l) {
    weight[l] = std::pow(2.0, static_cast<double>(l) / 3.0);
    total_w += weight[l];
  }
  std::vector<MeasurementNode> mnodes(nodes.size());
  for (size_t v = 0; v < nodes.size(); ++v) {
    const HNode& node = nodes[v];
    mnodes[v].children = node.children;
    double e = eps_counts * weight[node.level] / total_w;
    double truth = ps.RangeSum({node.r0, node.c0}, {node.r1, node.c1});
    mnodes[v].y = truth + ctx.rng->Laplace(1.0 / e);
    mnodes[v].variance = LaplaceVariance(1.0, e);
  }
  DPB_ASSIGN_OR_RETURN(std::vector<double> est, TreeGlsInfer(mnodes, 0));

  DataVector out(domain);
  for (size_t v = 0; v < nodes.size(); ++v) {
    const HNode& node = nodes[v];
    if (!node.children.empty()) continue;
    double area = static_cast<double>((node.r1 - node.r0 + 1) *
                                      (node.c1 - node.c0 + 1));
    for (size_t r = node.r0; r <= node.r1; ++r) {
      for (size_t c = node.c0; c <= node.c1; ++c) {
        out[r * cols + c] = est[v] / area;
      }
    }
  }
  return out;
}

}  // namespace dpbench
