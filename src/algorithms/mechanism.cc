#include "src/algorithms/mechanism.h"

#include "src/algorithms/agrid.h"
#include "src/algorithms/ahp.h"
#include "src/algorithms/dawa.h"
#include "src/algorithms/dpcube.h"
#include "src/algorithms/efpa.h"
#include "src/algorithms/greedy_h.h"
#include "src/algorithms/hb.h"
#include "src/algorithms/hier.h"
#include "src/algorithms/hybridtree.h"
#include "src/algorithms/identity.h"
#include "src/algorithms/mwem.h"
#include "src/algorithms/php.h"
#include "src/algorithms/privelet.h"
#include "src/algorithms/quadtree.h"
#include "src/algorithms/sf.h"
#include "src/algorithms/ugrid.h"
#include "src/algorithms/uniform.h"

namespace dpbench {

Status Mechanism::CheckContext(const RunContext& ctx) const {
  if (ctx.rng == nullptr) {
    return Status::InvalidArgument(name() + ": rng must be provided");
  }
  if (ctx.epsilon <= 0.0) {
    return Status::InvalidArgument(name() + ": epsilon must be > 0");
  }
  if (ctx.data.size() == 0) {
    return Status::InvalidArgument(name() + ": empty data vector");
  }
  if (!SupportsDims(ctx.data.domain().num_dims())) {
    return Status::NotSupported(
        name() + " does not support " +
        std::to_string(ctx.data.domain().num_dims()) + "-dimensional data");
  }
  return Status::OK();
}

namespace {

// Table 1 order: data-independent block, then data-dependent block.
const std::vector<MechanismPtr>& AllMechanisms() {
  static const std::vector<MechanismPtr>* mechs = [] {
    auto* v = new std::vector<MechanismPtr>{
        std::make_shared<IdentityMechanism>(),
        std::make_shared<PriveletMechanism>(),
        std::make_shared<HierMechanism>(),
        std::make_shared<HbMechanism>(),
        std::make_shared<GreedyHMechanism>(),
        std::make_shared<UniformMechanism>(),
        std::make_shared<MwemMechanism>(/*tuned=*/false),
        std::make_shared<MwemMechanism>(/*tuned=*/true),
        std::make_shared<AhpMechanism>(/*tuned=*/false),
        std::make_shared<AhpMechanism>(/*tuned=*/true),
        std::make_shared<DpCubeMechanism>(),
        std::make_shared<DawaMechanism>(),
        std::make_shared<QuadTreeMechanism>(),
        std::make_shared<HybridTreeMechanism>(),
        std::make_shared<UGridMechanism>(),
        std::make_shared<AGridMechanism>(),
        std::make_shared<PhpMechanism>(),
        std::make_shared<EfpaMechanism>(),
        std::make_shared<SfMechanism>(),
    };
    return v;
  }();
  return *mechs;
}

}  // namespace

std::vector<std::string> MechanismRegistry::Names() {
  std::vector<std::string> names;
  for (const MechanismPtr& m : AllMechanisms()) names.push_back(m->name());
  return names;
}

std::vector<std::string> MechanismRegistry::NamesForDims(size_t dims) {
  std::vector<std::string> names;
  for (const MechanismPtr& m : AllMechanisms()) {
    if (m->SupportsDims(dims)) names.push_back(m->name());
  }
  return names;
}

Result<MechanismPtr> MechanismRegistry::Get(const std::string& name) {
  for (const MechanismPtr& m : AllMechanisms()) {
    if (m->name() == name) return m;
  }
  return Status::NotFound("unknown mechanism: " + name);
}

}  // namespace dpbench
