#include "src/algorithms/mechanism.h"

#include "src/algorithms/agrid.h"
#include "src/algorithms/ahp.h"
#include "src/algorithms/dawa.h"
#include "src/algorithms/dpcube.h"
#include "src/algorithms/efpa.h"
#include "src/algorithms/greedy_h.h"
#include "src/algorithms/hb.h"
#include "src/algorithms/hier.h"
#include "src/algorithms/hybridtree.h"
#include "src/algorithms/identity.h"
#include "src/algorithms/mwem.h"
#include "src/algorithms/php.h"
#include "src/algorithms/privelet.h"
#include "src/algorithms/quadtree.h"
#include "src/algorithms/sf.h"
#include "src/algorithms/ugrid.h"
#include "src/algorithms/uniform.h"

namespace dpbench {

Result<uint64_t> PlanPayload::Int(const std::string& name) const {
  auto it = ints.find(name);
  if (it == ints.end()) {
    return Status::NotFound("plan payload missing int field '" + name + "'");
  }
  return it->second;
}

Result<double> PlanPayload::Real(const std::string& name) const {
  auto it = reals.find(name);
  if (it == reals.end()) {
    return Status::NotFound("plan payload missing real field '" + name +
                            "'");
  }
  return it->second;
}

Result<std::vector<uint64_t>> PlanPayload::IntVec(
    const std::string& name) const {
  auto it = int_vecs.find(name);
  if (it == int_vecs.end()) {
    return Status::NotFound("plan payload missing int-vector field '" +
                            name + "'");
  }
  return it->second;
}

Result<std::vector<double>> PlanPayload::RealVec(
    const std::string& name) const {
  auto it = real_vecs.find(name);
  if (it == real_vecs.end()) {
    return Status::NotFound("plan payload missing real-vector field '" +
                            name + "'");
  }
  return it->second;
}

Status PlanPayload::CheckHeader(const std::string& mechanism_name,
                                const std::string& expected_kind,
                                double epsilon) const {
  if (mechanism != mechanism_name) {
    return Status::InvalidArgument("plan payload was produced by '" +
                                   mechanism + "', not '" + mechanism_name +
                                   "'");
  }
  if (kind != expected_kind) {
    return Status::InvalidArgument("plan payload kind '" + kind +
                                   "' does not match expected '" +
                                   expected_kind + "'");
  }
  DPB_ASSIGN_OR_RETURN(double payload_eps, Real("epsilon"));
  // Bit-exact: a cache entry for a different budget must never be used.
  if (!(payload_eps == epsilon)) {
    return Status::InvalidArgument(
        mechanism_name + ": plan payload epsilon does not match context");
  }
  return Status::OK();
}

Result<PlanPayload> MechanismPlan::SerializePayload() const {
  return Status::NotSupported(mechanism_name_ +
                              ": plan is not serializable");
}

Result<PlanPtr> Mechanism::HydratePlan(const PlanContext&,
                                       const PlanPayload&) const {
  return Status::NotSupported(name() +
                              ": mechanism has no serializable plan");
}

Status MechanismPlan::CheckExec(const ExecContext& ctx) const {
  if (ctx.rng == nullptr) {
    return Status::InvalidArgument(mechanism_name_ +
                                   ": rng must be provided");
  }
  if (ctx.data.size() == 0) {
    return Status::InvalidArgument(mechanism_name_ + ": empty data vector");
  }
  if (ctx.data.domain() != domain_) {
    return Status::InvalidArgument(
        mechanism_name_ + ": data domain " + ctx.data.domain().ToString() +
        " does not match planned domain " + domain_.ToString());
  }
  return Status::OK();
}

Status MechanismPlan::ExecuteInto(const ExecContext& ctx,
                                  DataVector* out) const {
  DPB_ASSIGN_OR_RETURN(DataVector est, Execute(ctx));
  *out = std::move(est);
  return Status::OK();
}

void MechanismPlan::PrepareOut(DataVector* out) const {
  if (out->domain() != domain_) *out = DataVector(domain_);
}

Status MechanismPlan::CheckLanes(size_t lanes) const {
  if (lanes < 1 || lanes > lockstep::kMaxLanes) {
    return Status::InvalidArgument(mechanism_name_ +
                                   ": lockstep lane count out of range");
  }
  return Status::OK();
}

Status MechanismPlan::ExecuteMany(const ExecContext& ctx, size_t lanes,
                                  std::vector<double>* est_lanes) const {
  if (lanes < 1) {
    return Status::InvalidArgument(mechanism_name_ +
                                   ": lockstep lane count out of range");
  }
  DPB_RETURN_NOT_OK(CheckExec(ctx));
  ExecScratch local_scratch;
  ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local_scratch;
  const size_t n = domain().TotalCells();
  est_lanes->resize(n * lanes);
  for (size_t l = 0; l < lanes; ++l) {
    ExecContext sub{ctx.data, ctx.rng, &s};
    DPB_RETURN_NOT_OK(ExecuteInto(sub, &s.lane.tmp));
    const std::vector<double>& cells = s.lane.tmp.counts();
    for (size_t i = 0; i < n; ++i) {
      (*est_lanes)[i * lanes + l] = cells[i];
    }
  }
  return Status::OK();
}

/// Default plan for data-dependent algorithms: captures the plan-time
/// inputs and defers all work to RunImpl() at execution time.
class PassThroughPlan : public MechanismPlan {
 public:
  PassThroughPlan(const Mechanism* mech, const PlanContext& ctx)
      : MechanismPlan(mech->name(), ctx.domain),
        mech_(mech),
        workload_(&ctx.workload),
        epsilon_(ctx.epsilon),
        side_info_(ctx.side_info) {}

  bool precomputed() const override { return false; }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    RunContext rctx{ctx.data, *workload_, epsilon_, ctx.rng, side_info_};
    return mech_->RunImpl(rctx);
  }

 private:
  const Mechanism* mech_;
  const Workload* workload_;
  double epsilon_;
  SideInfo side_info_;
};

Result<PlanPtr> Mechanism::ReferencePlan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new PassThroughPlan(this, ctx));
}

Result<PlanPtr> Mechanism::Plan(const PlanContext& ctx) const {
  return ReferencePlan(ctx);
}

Result<DataVector> Mechanism::Run(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  PlanContext pctx{ctx.data.domain(), ctx.workload, ctx.epsilon,
                   ctx.side_info};
  DPB_ASSIGN_OR_RETURN(PlanPtr plan, Plan(pctx));
  ExecContext ectx{ctx.data, ctx.rng};
  return plan->Execute(ectx);
}

Result<DataVector> Mechanism::RunImpl(const RunContext&) const {
  return Status::Internal(name() +
                          ": RunImpl not implemented (plan-based mechanism)");
}

Status Mechanism::CheckContext(const RunContext& ctx) const {
  if (ctx.rng == nullptr) {
    return Status::InvalidArgument(name() + ": rng must be provided");
  }
  if (ctx.epsilon <= 0.0) {
    return Status::InvalidArgument(name() + ": epsilon must be > 0");
  }
  if (ctx.data.size() == 0) {
    return Status::InvalidArgument(name() + ": empty data vector");
  }
  if (!SupportsDims(ctx.data.domain().num_dims())) {
    return Status::NotSupported(
        name() + " does not support " +
        std::to_string(ctx.data.domain().num_dims()) + "-dimensional data");
  }
  return Status::OK();
}

Status Mechanism::CheckPlanContext(const PlanContext& ctx) const {
  if (ctx.epsilon <= 0.0) {
    return Status::InvalidArgument(name() + ": epsilon must be > 0");
  }
  if (ctx.domain.TotalCells() == 0) {
    return Status::InvalidArgument(name() + ": empty domain");
  }
  if (!SupportsDims(ctx.domain.num_dims())) {
    return Status::NotSupported(
        name() + " does not support " +
        std::to_string(ctx.domain.num_dims()) + "-dimensional data");
  }
  return Status::OK();
}

namespace {

// Table 1 order: data-independent block, then data-dependent block.
const std::vector<MechanismPtr>& AllMechanisms() {
  static const std::vector<MechanismPtr>* mechs = [] {
    auto* v = new std::vector<MechanismPtr>{
        std::make_shared<IdentityMechanism>(),
        std::make_shared<PriveletMechanism>(),
        std::make_shared<HierMechanism>(),
        std::make_shared<HbMechanism>(),
        std::make_shared<GreedyHMechanism>(),
        std::make_shared<UniformMechanism>(),
        std::make_shared<MwemMechanism>(/*tuned=*/false),
        std::make_shared<MwemMechanism>(/*tuned=*/true),
        std::make_shared<AhpMechanism>(/*tuned=*/false),
        std::make_shared<AhpMechanism>(/*tuned=*/true),
        std::make_shared<DpCubeMechanism>(),
        std::make_shared<DawaMechanism>(),
        std::make_shared<QuadTreeMechanism>(),
        std::make_shared<HybridTreeMechanism>(),
        std::make_shared<UGridMechanism>(),
        std::make_shared<AGridMechanism>(),
        std::make_shared<PhpMechanism>(),
        std::make_shared<EfpaMechanism>(),
        std::make_shared<SfMechanism>(),
    };
    return v;
  }();
  return *mechs;
}

}  // namespace

std::vector<std::string> MechanismRegistry::Names() {
  std::vector<std::string> names;
  for (const MechanismPtr& m : AllMechanisms()) names.push_back(m->name());
  return names;
}

std::vector<std::string> MechanismRegistry::NamesForDims(size_t dims) {
  std::vector<std::string> names;
  for (const MechanismPtr& m : AllMechanisms()) {
    if (m->SupportsDims(dims)) names.push_back(m->name());
  }
  return names;
}

Result<MechanismPtr> MechanismRegistry::Get(const std::string& name) {
  for (const MechanismPtr& m : AllMechanisms()) {
    if (m->name() == name) return m;
  }
  return Status::NotFound("unknown mechanism: " + name);
}

}  // namespace dpbench
