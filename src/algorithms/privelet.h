// PRIVELET (Xiao, Wang, Gehrke ICDE'10): perturb the Haar wavelet transform
// of the data vector.
//
// We use the unnormalized Haar basis in which the first coefficient is the
// grand total and each detail coefficient is (sum of left half) - (sum of
// right half) of a dyadic node. A single record contributes +-1 to exactly
// 1 + log2(n) coefficients, so the transform's L1 sensitivity is
// 1 + log2(n); in the multi-dimensional (separable) transform sensitivities
// multiply across dimensions.
#ifndef DPBENCH_ALGORITHMS_PRIVELET_H_
#define DPBENCH_ALGORITHMS_PRIVELET_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class PriveletMechanism : public Mechanism {
 public:
  std::string name() const override { return "PRIVELET"; }
  bool SupportsDims(size_t dims) const override {
    return dims == 1 || dims == 2;
  }
  bool data_independent() const override { return true; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;
  Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                              const PlanPayload& payload) const override;
};

namespace wavelet {

/// Forward unnormalized Haar transform; input length must be a power of two.
/// Layout: [total, detail(root), details(level 2, left to right), ...].
std::vector<double> HaarForward(const std::vector<double>& x);

/// Exact inverse of HaarForward.
std::vector<double> HaarInverse(const std::vector<double>& coef);

/// In-place planned forms used by the allocation-free execute path. Both
/// produce bit-identical values to the vector forms above (same arithmetic
/// in the same order); they differ only in storage discipline. `n` must be
/// a power of two and `work`/`coef`/`out` must be distinct length-n spans.
///
/// Forward: reads work[0..n) (clobbering it as the sum pyramid collapses)
/// and writes the coefficient layout into coef[0..n). The detail
/// coefficients of the pass producing `half` outputs land at
/// coef[half..2*half) — a binary-heap layout, which is the "level layout"
/// a PRIVELET plan precomputes once from its padded domain size.
void HaarForwardInPlace(double* work, double* coef, size_t n);

/// Inverse: reads coef[0..n) and writes the reconstruction into out[0..n),
/// expanding the sum pyramid inside `out` itself.
void HaarInverseInPlace(const double* coef, double* out, size_t n);

}  // namespace wavelet

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_PRIVELET_H_
