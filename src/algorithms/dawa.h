// DAWA (Li, Hay, Miklau PVLDB'14): Data- and Workload-Aware algorithm.
//
// Stage 1 (budget rho*eps): compute a least-cost partition of the 1D domain
// by dynamic programming over interval costs evaluated on a noisy view of
// the data (one Laplace(1/eps1) draw per cell, parallel composition), with
// a bias correction for the deviation the noise itself contributes.
// Candidate intervals are restricted to aligned power-of-two lengths (the
// paper's O(n log n) candidate set); the cost of a bucket is its corrected
// L1 deviation from the bucket mean plus the expected noise of one bucket
// measurement.
//
// Stage 2 (budget (1-rho)*eps): measure the bucket histogram with GREEDY_H
// (workload-aware hierarchical strategy) and spread bucket estimates
// uniformly across their cells.
//
// 2D inputs are Hilbert-linearized first (paper App. B).
#ifndef DPBENCH_ALGORITHMS_DAWA_H_
#define DPBENCH_ALGORITHMS_DAWA_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class DawaMechanism : public Mechanism {
 public:
  /// Parameters follow Table 1: rho = 0.25, branching b = 2.
  explicit DawaMechanism(double rho = 0.25, size_t branching = 2)
      : rho_(rho), branching_(branching) {}

  std::string name() const override { return "DAWA"; }
  bool SupportsDims(size_t dims) const override {
    return dims == 1 || dims == 2;
  }

  /// Structured plan: stage-1 cost-table geometry, budget split, Hilbert
  /// permutation (2D), and the workload's flattened query bounds hoisted;
  /// execution block-fills the noisy view and runs stage 2 through the
  /// flat allocation-free range-tree pipeline. Falls back to the
  /// pass-through reference plan on 2D domains the Hilbert curve rejects.
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;

 protected:
  Result<DataVector> RunImpl(const RunContext& ctx) const override;

 public:

 private:
  double rho_;
  size_t branching_;
};

namespace dawa_internal {

/// Computes the least-cost partition of `counts` by DP over noisy
/// dyadic-length interval costs. Returns bucket end positions (exclusive):
/// buckets are [ends[i-1], ends[i]). `bucket_noise_cost` is the penalty per
/// bucket (expected absolute measurement error in stage 2); `eps1 <= 0`
/// disables noise (used in tests to verify the DP).
std::vector<size_t> LeastCostPartition(const std::vector<double>& counts,
                                       double eps1, double bucket_noise_cost,
                                       Rng* rng);

}  // namespace dawa_internal

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_DAWA_H_
