#include "src/algorithms/ahp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

// Structured AHP plan. The pipeline is dimension-agnostic (cells are
// treated as a flat vector), so one plan covers every dimensionality.
// Execution mirrors RunImpl draw-for-draw: the AHP* scale-estimate draw,
// the block-filled noisy counts, std::sort on the same keys, the same
// greedy clustering (clusters are contiguous ranges of the sorted order,
// so boundaries replace the per-cluster vectors), and one Laplace block
// for the cluster measurements.
class AhpPlan : public MechanismPlan {
 public:
  AhpPlan(std::string name, const PlanContext& ctx, bool tuned, double rho,
          double eta)
      : MechanismPlan(std::move(name), ctx.domain),
        epsilon_(ctx.epsilon),
        tuned_(tuned),
        rho_(rho),
        eta_(eta) {}

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    const size_t n = ctx.data.size();

    double rho = rho_, eta = eta_;
    double eps_work = epsilon_;
    if (tuned_) {
      // AHP*: estimate scale with 5% of the budget to select parameters.
      double rho_total = 0.05 * epsilon_;
      double noisy_scale =
          ctx.data.Scale() + ctx.rng->Laplace(1.0 / rho_total);
      noisy_scale = std::max(noisy_scale, 1.0);
      std::tie(rho, eta) = AhpMechanism::TunedParams(epsilon_ * noisy_scale);
      eps_work = epsilon_ - rho_total;
    }
    double eps1 = rho * eps_work;
    double eps2 = eps_work - eps1;
    if (eps1 <= 0.0 || eps2 <= 0.0) {
      // Same failure the legacy path reports from its Laplace calls.
      return Status::InvalidArgument(
          "LaplaceMechanism: epsilon must be > 0");
    }

    // Step 1: noisy counts, thresholding, sort, greedy clustering. The
    // value + threshold passes are fused into the fill consumption.
    std::vector<double>& noisy = s.noisy;
    noisy.resize(n);
    ctx.rng->FillLaplace(noisy.data(), n, 1.0 / eps1);
    double threshold =
        eta *
        std::sqrt(std::log(static_cast<double>(std::max<size_t>(n, 2)))) /
        eps1;
    size_t survivors = 0;
    {
      const std::vector<double>& counts = ctx.data.counts();
      for (size_t i = 0; i < n; ++i) {
        double v = noisy[i] + counts[i];
        v = v < threshold ? 0.0 : v;
        noisy[i] = v;
        survivors += (v != 0.0);
      }
    }
    // The sort order is the deterministic total order (value descending,
    // index ascending on ties) the legacy path uses. Thresholding zeroed
    // every sub-threshold cell and kept values are >= threshold > 0, so
    // the zeros are exactly the tail of that order, already in index
    // order: sort only the (value, index) pairs of the survivors and
    // place the zeros behind them — equal to sorting all n cells, at a
    // fraction of the comparisons (the sort dominated the converted
    // trial).
    std::vector<std::pair<double, size_t>>& keyed = s.keyed;
    keyed.resize(n);
    {
      size_t sp = 0, zp = survivors;
      for (size_t i = 0; i < n; ++i) {
        double v = noisy[i];
        keyed[v != 0.0 ? sp : zp] = {v, i};
        sp += (v != 0.0);
        zp += (v == 0.0);
      }
    }
    std::sort(keyed.begin(), keyed.begin() + survivors,
              [](const std::pair<double, size_t>& a,
                 const std::pair<double, size_t>& b) {
                return a.first > b.first ||
                       (a.first == b.first && a.second < b.second);
              });

    // Greedy clustering over the sorted sequence: extend the current
    // cluster while the next value stays within the noise tolerance of the
    // cluster mean; otherwise close it. A cluster is always a contiguous
    // rank range, so only the (exclusive) end ranks are recorded.
    double tolerance = 2.0 / eps2;
    std::vector<size_t>& ends = s.ends;
    ends.clear();
    ends.reserve(n);
    double cur_sum = 0.0;
    size_t cur_start = 0;
    for (size_t rank = 0; rank < n; ++rank) {
      double v = keyed[rank].first;
      if (rank == cur_start) {
        cur_sum = v;
        continue;
      }
      double mean = cur_sum / static_cast<double>(rank - cur_start);
      if (std::abs(v - mean) <= tolerance) {
        cur_sum += v;
      } else {
        ends.push_back(rank);
        cur_start = rank;
        cur_sum = v;
      }
    }
    if (n > 0) ends.push_back(n);

    // Step 2: fresh Laplace per cluster total, spread uniformly.
    const size_t num_clusters = ends.size();
    s.noise.reserve(n);
    s.noise.resize(num_clusters);
    ctx.rng->FillLaplace(s.noise.data(), num_clusters, 1.0 / eps2);
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    size_t start = 0;
    for (size_t b = 0; b < num_clusters; ++b) {
      double truth = 0.0;
      for (size_t r = start; r < ends[b]; ++r) {
        truth += ctx.data[keyed[r].second];
      }
      double measured = s.noise[b] + truth;
      double per_cell =
          measured / static_cast<double>(ends[b] - start);
      for (size_t r = start; r < ends[b]; ++r) {
        cells[keyed[r].second] = per_cell;
      }
      start = ends[b];
    }
    return Status::OK();
  }

 private:
  double epsilon_;
  bool tuned_;
  double rho_;
  double eta_;
};

}  // namespace

Result<PlanPtr> AhpMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new AhpPlan(name(), ctx, tuned_, rho_, eta_));
}

std::pair<double, double> AhpMechanism::TunedParams(
    double eps_scale_product) {
  // Low signal: spend more on clustering and threshold aggressively (noise
  // dominates); high signal: spend more on counting and keep fine structure.
  const double p = eps_scale_product;
  if (p < 500) return {0.7, 2.0};
  if (p < 5e4) return {0.5, 1.5};
  if (p < 5e6) return {0.3, 1.0};
  return {0.15, 0.5};
}

Result<DataVector> AhpMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  const size_t n = ctx.data.size();

  double rho = rho_, eta = eta_;
  BudgetAccountant budget(ctx.epsilon);
  if (tuned_) {
    // AHP*: estimate scale with 5% of the budget to select parameters.
    double rho_total = 0.05 * ctx.epsilon;
    DPB_RETURN_NOT_OK(budget.Spend(rho_total, "scale-estimate"));
    DPB_ASSIGN_OR_RETURN(
        double noisy_scale,
        LaplaceMechanismScalar(ctx.data.Scale(), 1.0, rho_total, ctx.rng));
    noisy_scale = std::max(noisy_scale, 1.0);
    std::tie(rho, eta) = TunedParams(ctx.epsilon * noisy_scale);
  }
  double eps1 = rho * budget.remaining();
  double eps2 = budget.remaining() - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "partition"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "measure"));

  // Step 1: noisy counts, thresholding, sort, greedy clustering.
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> noisy,
      LaplaceMechanism(ctx.data.counts(), 1.0, eps1, ctx.rng));
  double threshold =
      eta * std::sqrt(std::log(static_cast<double>(std::max<size_t>(n, 2)))) /
      eps1;
  for (double& v : noisy) {
    if (v < threshold) v = 0.0;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Deterministic total order: value descending, index ascending on ties
  // (the thresholding step mass-produces exact-zero ties, and an
  // implementation-defined tie order would make the result depend on the
  // sort algorithm).
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return noisy[a] > noisy[b] || (noisy[a] == noisy[b] && a < b);
  });

  // Greedy clustering over the sorted sequence: extend the current cluster
  // while the next value stays within the noise tolerance of the cluster
  // mean; otherwise close it. Zeroed cells inevitably pool into one big
  // cluster at the end.
  double tolerance = 2.0 / eps2;
  std::vector<std::vector<size_t>> clusters;
  std::vector<size_t> current;
  double cur_sum = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    size_t cell = order[rank];
    double v = noisy[cell];
    if (current.empty()) {
      current.push_back(cell);
      cur_sum = v;
      continue;
    }
    double mean = cur_sum / static_cast<double>(current.size());
    if (std::abs(v - mean) <= tolerance) {
      current.push_back(cell);
      cur_sum += v;
    } else {
      clusters.push_back(std::move(current));
      current = {cell};
      cur_sum = v;
    }
  }
  if (!current.empty()) clusters.push_back(std::move(current));

  // Step 2: fresh Laplace per cluster total, spread uniformly.
  DataVector out(domain);
  for (const std::vector<size_t>& cluster : clusters) {
    double truth = 0.0;
    for (size_t cell : cluster) truth += ctx.data[cell];
    DPB_ASSIGN_OR_RETURN(double measured,
                         LaplaceMechanismScalar(truth, 1.0, eps2, ctx.rng));
    double per_cell = measured / static_cast<double>(cluster.size());
    for (size_t cell : cluster) out[cell] = per_cell;
  }
  return out;
}

}  // namespace dpbench
