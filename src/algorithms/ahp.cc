#include "src/algorithms/ahp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

std::pair<double, double> AhpMechanism::TunedParams(
    double eps_scale_product) {
  // Low signal: spend more on clustering and threshold aggressively (noise
  // dominates); high signal: spend more on counting and keep fine structure.
  const double p = eps_scale_product;
  if (p < 500) return {0.7, 2.0};
  if (p < 5e4) return {0.5, 1.5};
  if (p < 5e6) return {0.3, 1.0};
  return {0.15, 0.5};
}

Result<DataVector> AhpMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  const size_t n = ctx.data.size();

  double rho = rho_, eta = eta_;
  BudgetAccountant budget(ctx.epsilon);
  if (tuned_) {
    // AHP*: estimate scale with 5% of the budget to select parameters.
    double rho_total = 0.05 * ctx.epsilon;
    DPB_RETURN_NOT_OK(budget.Spend(rho_total, "scale-estimate"));
    DPB_ASSIGN_OR_RETURN(
        double noisy_scale,
        LaplaceMechanismScalar(ctx.data.Scale(), 1.0, rho_total, ctx.rng));
    noisy_scale = std::max(noisy_scale, 1.0);
    std::tie(rho, eta) = TunedParams(ctx.epsilon * noisy_scale);
  }
  double eps1 = rho * budget.remaining();
  double eps2 = budget.remaining() - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "partition"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "measure"));

  // Step 1: noisy counts, thresholding, sort, greedy clustering.
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> noisy,
      LaplaceMechanism(ctx.data.counts(), 1.0, eps1, ctx.rng));
  double threshold =
      eta * std::sqrt(std::log(static_cast<double>(std::max<size_t>(n, 2)))) /
      eps1;
  for (double& v : noisy) {
    if (v < threshold) v = 0.0;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return noisy[a] > noisy[b]; });

  // Greedy clustering over the sorted sequence: extend the current cluster
  // while the next value stays within the noise tolerance of the cluster
  // mean; otherwise close it. Zeroed cells inevitably pool into one big
  // cluster at the end.
  double tolerance = 2.0 / eps2;
  std::vector<std::vector<size_t>> clusters;
  std::vector<size_t> current;
  double cur_sum = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    size_t cell = order[rank];
    double v = noisy[cell];
    if (current.empty()) {
      current.push_back(cell);
      cur_sum = v;
      continue;
    }
    double mean = cur_sum / static_cast<double>(current.size());
    if (std::abs(v - mean) <= tolerance) {
      current.push_back(cell);
      cur_sum += v;
    } else {
      clusters.push_back(std::move(current));
      current = {cell};
      cur_sum = v;
    }
  }
  if (!current.empty()) clusters.push_back(std::move(current));

  // Step 2: fresh Laplace per cluster total, spread uniformly.
  DataVector out(domain);
  for (const std::vector<size_t>& cluster : clusters) {
    double truth = 0.0;
    for (size_t cell : cluster) truth += ctx.data[cell];
    DPB_ASSIGN_OR_RETURN(double measured,
                         LaplaceMechanismScalar(truth, 1.0, eps2, ctx.rng));
    double per_cell = measured / static_cast<double>(cluster.size());
    for (size_t cell : cluster) out[cell] = per_cell;
  }
  return out;
}

}  // namespace dpbench
