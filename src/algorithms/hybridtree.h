// HYBRIDTREE (Cormode et al. ICDE'12): a private kd-tree for the top few
// levels (splits adapt to the data through the exponential mechanism over
// balanced-split scores), then a fixed quadtree below, with geometric
// budget allocation and GLS consistency.
//
// Described in the paper's Appendix B (and analyzed in Theorems 5/13)
// though not part of the Table 1 evaluation; included here as the
// documented extension.
#ifndef DPBENCH_ALGORITHMS_HYBRIDTREE_H_
#define DPBENCH_ALGORITHMS_HYBRIDTREE_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class HybridTreeMechanism : public Mechanism {
 public:
  explicit HybridTreeMechanism(size_t kd_levels = 3, size_t max_height = 10,
                               double rho = 0.2)
      : kd_levels_(kd_levels), max_height_(max_height), rho_(rho) {}

  std::string name() const override { return "HYBRIDTREE"; }
  bool SupportsDims(size_t dims) const override { return dims == 2; }

  /// Structured plan: budget split, per-level kd budget and geometric
  /// level weights hoisted; the private kd/quadtree build runs over flat
  /// node arrays in scratch with block-uniform split selection, the
  /// counts use one per-scale Laplace block, and consistency runs through
  /// the flat allocation-free GLS.
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;

 protected:
  Result<DataVector> RunImpl(const RunContext& ctx) const override;

 public:

 private:
  size_t kd_levels_;
  size_t max_height_;
  double rho_;  // budget fraction for kd split selection
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_HYBRIDTREE_H_
