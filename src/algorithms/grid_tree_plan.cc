#include "src/algorithms/grid_tree_plan.h"

#include <utility>

#include "src/algorithms/hier.h"  // shared GLS payload helpers
#include "src/common/lockstep.h"
#include "src/common/logging.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {
namespace grid_internal {

GridTreePlan::GridTreePlan(std::string name, Domain domain,
                           std::vector<GridRect> nodes,
                           std::vector<double> eps_per_level, double epsilon)
    : MechanismPlan(std::move(name), std::move(domain)),
      nodes_(std::move(nodes)),
      eps_per_level_(std::move(eps_per_level)),
      planned_epsilon_(epsilon) {
  std::vector<MeasurementNode> mnodes(nodes_.size());
  for (size_t v = 0; v < nodes_.size(); ++v) {
    mnodes[v].children = nodes_[v].children;
    mnodes[v].variance =
        LaplaceVariance(1.0, eps_per_level_[nodes_[v].level]);
  }
  auto plan = PlannedTreeGls::Build(mnodes, 0);
  DPB_CHECK(plan.ok());  // grid trees are well-formed by construction
  gls_ = std::move(plan).value();
  InitSchedule();
}

GridTreePlan::GridTreePlan(std::string name, Domain domain,
                           std::vector<GridRect> nodes,
                           std::vector<double> eps_per_level, double epsilon,
                           PlannedTreeGls gls)
    : MechanismPlan(std::move(name), std::move(domain)),
      nodes_(std::move(nodes)),
      eps_per_level_(std::move(eps_per_level)),
      planned_epsilon_(epsilon),
      gls_(std::move(gls)) {
  InitSchedule();
}

void GridTreePlan::InitSchedule() {
  // Plan-time corner indices into the prefix-sum table, in the 2D
  // inclusion-exclusion order (+ - - +) PrefixSums::RangeSum uses, so
  // execution measures each node with four flat loads.
  size_t stride = this->domain().size(1) + 1;
  corners_.reserve(4 * nodes_.size());
  scales_.reserve(nodes_.size());
  for (size_t v = 0; v < nodes_.size(); ++v) {
    const GridRect& node = nodes_[v];
    if (node.children.empty()) leaves_.push_back(v);
    corners_.push_back((node.r1 + 1) * stride + (node.c1 + 1));  // +
    corners_.push_back(node.r0 * stride + (node.c1 + 1));        // -
    corners_.push_back((node.r1 + 1) * stride + node.c0);        // -
    corners_.push_back(node.r0 * stride + node.c0);              // +
    scales_.push_back(1.0 / eps_per_level_[node.level]);
  }
}

Result<PlanPayload> GridTreePlan::SerializePayload() const {
  PlanPayload p;
  p.mechanism = mechanism_name();
  p.kind = "grid_tree";
  p.reals["epsilon"] = planned_epsilon_;
  // Tree geometry in struct-of-arrays form plus CSR children. Unlike the
  // 1D range tree (rebuildable from (cells, branching)), grid hierarchies
  // have per-mechanism construction rules, so the topology itself is the
  // serialized schedule.
  const size_t n = nodes_.size();
  std::vector<uint64_t> r0(n), r1(n), c0(n), c1(n), level(n);
  std::vector<uint64_t> child_start(n + 1, 0), children;
  for (size_t v = 0; v < n; ++v) {
    r0[v] = nodes_[v].r0;
    r1[v] = nodes_[v].r1;
    c0[v] = nodes_[v].c0;
    c1[v] = nodes_[v].c1;
    level[v] = static_cast<uint64_t>(nodes_[v].level);
    child_start[v + 1] = child_start[v] + nodes_[v].children.size();
    children.insert(children.end(), nodes_[v].children.begin(),
                    nodes_[v].children.end());
  }
  p.int_vecs["r0"] = std::move(r0);
  p.int_vecs["r1"] = std::move(r1);
  p.int_vecs["c0"] = std::move(c0);
  p.int_vecs["c1"] = std::move(c1);
  p.int_vecs["level"] = std::move(level);
  p.int_vecs["child_start"] = std::move(child_start);
  p.int_vecs["children"] = std::move(children);
  p.real_vecs["eps_per_level"] = eps_per_level_;
  hier_internal::GlsToPayload(gls_, &p);
  return p;
}

Result<PlanPtr> GridTreePlan::FromPayload(const std::string& mechanism_name,
                                          const Domain& domain,
                                          double epsilon,
                                          const PlanPayload& payload) {
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> r0, payload.IntVec("r0"));
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> r1, payload.IntVec("r1"));
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> c0, payload.IntVec("c0"));
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> c1, payload.IntVec("c1"));
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> level,
                       payload.IntVec("level"));
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> child_start,
                       payload.IntVec("child_start"));
  DPB_ASSIGN_OR_RETURN(std::vector<uint64_t> children,
                       payload.IntVec("children"));
  DPB_ASSIGN_OR_RETURN(std::vector<double> eps_per_level,
                       payload.RealVec("eps_per_level"));
  const size_t n = r0.size();
  if (n == 0 || r1.size() != n || c0.size() != n || c1.size() != n ||
      level.size() != n || child_start.size() != n + 1) {
    return Status::InvalidArgument(
        "grid-tree payload: inconsistent node array arities");
  }
  if (child_start[0] != 0 || child_start[n] != children.size()) {
    return Status::InvalidArgument(
        "grid-tree payload: CSR offsets do not span the child array");
  }
  size_t rows = domain.size(0), cols = domain.size(1);
  std::vector<GridRect> nodes(n);
  for (size_t v = 0; v < n; ++v) {
    if (child_start[v + 1] < child_start[v]) {
      return Status::InvalidArgument(
          "grid-tree payload: CSR offsets not monotone");
    }
    if (r0[v] > r1[v] || c0[v] > c1[v] || r1[v] >= rows || c1[v] >= cols) {
      return Status::InvalidArgument(
          "grid-tree payload: node rectangle outside the domain");
    }
    if (level[v] >= eps_per_level.size()) {
      return Status::InvalidArgument(
          "grid-tree payload: node level has no budget entry");
    }
    if (eps_per_level[level[v]] <= 0.0) {
      return Status::InvalidArgument(
          "grid-tree payload: non-positive budget on a measured level");
    }
    nodes[v].r0 = r0[v];
    nodes[v].r1 = r1[v];
    nodes[v].c0 = c0[v];
    nodes[v].c1 = c1[v];
    nodes[v].level = static_cast<int>(level[v]);
    for (size_t k = child_start[v]; k < child_start[v + 1]; ++k) {
      if (children[k] >= n) {
        return Status::InvalidArgument(
            "grid-tree payload: child index out of range");
      }
      nodes[v].children.push_back(children[k]);
    }
  }
  DPB_ASSIGN_OR_RETURN(PlannedTreeGls gls,
                       hier_internal::GlsFromPayload(payload));
  if (gls.num_nodes() != n) {
    return Status::InvalidArgument(
        "grid-tree payload: GLS solver arity does not match the tree");
  }
  return PlanPtr(new GridTreePlan(mechanism_name, domain, std::move(nodes),
                                  std::move(eps_per_level), epsilon,
                                  std::move(gls)));
}

Result<DataVector> GridTreePlan::Execute(const ExecContext& ctx) const {
  DataVector out;
  DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
  return out;
}

Status GridTreePlan::ExecuteInto(const ExecContext& ctx,
                                 DataVector* out) const {
  DPB_RETURN_NOT_OK(CheckExec(ctx));
  ExecScratch local;
  ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
  size_t cols = domain().size(1);

  // Measure every node via the precomputed corner indices; planned GLS
  // for consistency.
  ComputePrefixSums(ctx.data, &s.prefix);
  const std::vector<double>& cum = s.prefix;
  std::vector<double>& y = s.y;
  const size_t m = nodes_.size();
  y.assign(m, 0.0);
  // Block-fill the per-node noise through the planned scale array, then
  // add it to the four-corner range sums — same draw order as the scalar
  // per-node loop, one vectorized transform for the whole hierarchy.
  std::vector<double>& noise = s.noise;
  noise.resize(m);
  ctx.rng->FillLaplace(noise.data(), scales_.data(), m);
  for (size_t v = 0; v < m; ++v) {
    double truth = cum[corners_[4 * v]] - cum[corners_[4 * v + 1]] -
                   cum[corners_[4 * v + 2]] + cum[corners_[4 * v + 3]];
    y[v] = truth + noise[v];
  }
  gls_.InferNodesInto(y, &s.z, &s.node_est);
  const std::vector<double>& est = s.node_est;

  PrepareOut(out);
  std::vector<double>& cells = out->mutable_counts();
  // Leaf rectangles partition the grid, so every cell is overwritten.
  for (size_t v : leaves_) {
    const GridRect& node = nodes_[v];
    double area = static_cast<double>((node.r1 - node.r0 + 1) *
                                      (node.c1 - node.c0 + 1));
    for (size_t r = node.r0; r <= node.r1; ++r) {
      for (size_t c = node.c0; c <= node.c1; ++c) {
        cells[r * cols + c] = est[v] / area;
      }
    }
  }
  return Status::OK();
}

Status GridTreePlan::ExecuteMany(const ExecContext& ctx, size_t lanes,
                                 std::vector<double>* est_lanes) const {
  DPB_RETURN_NOT_OK(CheckExec(ctx));
  DPB_RETURN_NOT_OK(CheckLanes(lanes));
  ExecScratch local;
  ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
  const lockstep::Kernels& kernels = lockstep::Active();
  const size_t cols = domain().size(1);

  // Four-corner truths are data-only: compute once, share across lanes.
  ComputePrefixSums(ctx.data, &s.prefix);
  const std::vector<double>& cum = s.prefix;
  const size_t m = nodes_.size();
  s.lane.truth.resize(m);
  for (size_t v = 0; v < m; ++v) {
    s.lane.truth[v] = cum[corners_[4 * v]] - cum[corners_[4 * v + 1]] -
                      cum[corners_[4 * v + 2]] + cum[corners_[4 * v + 3]];
  }
  s.lane.noise.resize(m * lanes);
  ctx.rng->FillLaplaceLanes(s.lane.noise.data(), scales_.data(), m, lanes);
  s.lane.y.resize(m * lanes);
  kernels.add_shared_noise(s.lane.truth.data(), s.lane.noise.data(),
                           s.lane.y.data(), m, lanes);
  gls_.InferNodesMany(s.lane.y.data(), lanes, &s.lane.z, &s.lane.node_est);

  est_lanes->resize(domain().TotalCells() * lanes);
  for (size_t v : leaves_) {
    const GridRect& node = nodes_[v];
    const double area = static_cast<double>((node.r1 - node.r0 + 1) *
                                            (node.c1 - node.c0 + 1));
    const size_t width = node.c1 - node.c0 + 1;
    for (size_t r = node.r0; r <= node.r1; ++r) {
      kernels.spread_divided(
          s.lane.node_est.data() + v * lanes, area,
          est_lanes->data() + (r * cols + node.c0) * lanes, width, lanes);
    }
  }
  return Status::OK();
}

}  // namespace grid_internal
}  // namespace dpbench
