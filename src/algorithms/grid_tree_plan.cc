#include "src/algorithms/grid_tree_plan.h"

#include <utility>

#include "src/common/logging.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {
namespace grid_internal {

GridTreePlan::GridTreePlan(std::string name, Domain domain,
                           std::vector<GridRect> nodes,
                           std::vector<double> eps_per_level)
    : MechanismPlan(std::move(name), std::move(domain)),
      nodes_(std::move(nodes)),
      eps_per_level_(std::move(eps_per_level)) {
  std::vector<MeasurementNode> mnodes(nodes_.size());
  for (size_t v = 0; v < nodes_.size(); ++v) {
    mnodes[v].children = nodes_[v].children;
    mnodes[v].variance =
        LaplaceVariance(1.0, eps_per_level_[nodes_[v].level]);
    if (nodes_[v].children.empty()) leaves_.push_back(v);
  }
  auto plan = PlannedTreeGls::Build(mnodes, 0);
  DPB_CHECK(plan.ok());  // grid trees are well-formed by construction
  gls_ = std::move(plan).value();
}

Result<DataVector> GridTreePlan::Execute(const ExecContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckExec(ctx));
  size_t cols = domain().size(1);

  // Measure every node; planned GLS for consistency.
  PrefixSums ps(ctx.data);
  std::vector<double> y(nodes_.size(), 0.0);
  for (size_t v = 0; v < nodes_.size(); ++v) {
    const GridRect& node = nodes_[v];
    double eps = eps_per_level_[node.level];
    double truth = ps.RangeSum({node.r0, node.c0}, {node.r1, node.c1});
    y[v] = truth + ctx.rng->Laplace(1.0 / eps);
  }
  std::vector<double> est = gls_.InferNodes(y);

  DataVector out(domain());
  for (size_t v : leaves_) {
    const GridRect& node = nodes_[v];
    double area = static_cast<double>((node.r1 - node.r0 + 1) *
                                      (node.c1 - node.c0 + 1));
    for (size_t r = node.r0; r <= node.r1; ++r) {
      for (size_t c = node.c0; c <= node.c1; ++c) {
        out[r * cols + c] = est[v] / area;
      }
    }
  }
  return out;
}

}  // namespace grid_internal
}  // namespace dpbench
