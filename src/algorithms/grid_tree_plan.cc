#include "src/algorithms/grid_tree_plan.h"

#include <utility>

#include "src/common/logging.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {
namespace grid_internal {

GridTreePlan::GridTreePlan(std::string name, Domain domain,
                           std::vector<GridRect> nodes,
                           std::vector<double> eps_per_level)
    : MechanismPlan(std::move(name), std::move(domain)),
      nodes_(std::move(nodes)),
      eps_per_level_(std::move(eps_per_level)) {
  std::vector<MeasurementNode> mnodes(nodes_.size());
  for (size_t v = 0; v < nodes_.size(); ++v) {
    mnodes[v].children = nodes_[v].children;
    mnodes[v].variance =
        LaplaceVariance(1.0, eps_per_level_[nodes_[v].level]);
    if (nodes_[v].children.empty()) leaves_.push_back(v);
  }
  auto plan = PlannedTreeGls::Build(mnodes, 0);
  DPB_CHECK(plan.ok());  // grid trees are well-formed by construction
  gls_ = std::move(plan).value();

  // Plan-time corner indices into the prefix-sum table, in the 2D
  // inclusion-exclusion order (+ - - +) PrefixSums::RangeSum uses, so
  // execution measures each node with four flat loads.
  size_t stride = this->domain().size(1) + 1;
  corners_.reserve(4 * nodes_.size());
  scales_.reserve(nodes_.size());
  for (const GridRect& node : nodes_) {
    corners_.push_back((node.r1 + 1) * stride + (node.c1 + 1));  // +
    corners_.push_back(node.r0 * stride + (node.c1 + 1));        // -
    corners_.push_back((node.r1 + 1) * stride + node.c0);        // -
    corners_.push_back(node.r0 * stride + node.c0);              // +
    scales_.push_back(1.0 / eps_per_level_[node.level]);
  }
}

Result<DataVector> GridTreePlan::Execute(const ExecContext& ctx) const {
  DataVector out;
  DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
  return out;
}

Status GridTreePlan::ExecuteInto(const ExecContext& ctx,
                                 DataVector* out) const {
  DPB_RETURN_NOT_OK(CheckExec(ctx));
  ExecScratch local;
  ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
  size_t cols = domain().size(1);

  // Measure every node via the precomputed corner indices; planned GLS
  // for consistency.
  ComputePrefixSums(ctx.data, &s.prefix);
  const std::vector<double>& cum = s.prefix;
  std::vector<double>& y = s.y;
  y.assign(nodes_.size(), 0.0);
  for (size_t v = 0; v < nodes_.size(); ++v) {
    double truth = cum[corners_[4 * v]] - cum[corners_[4 * v + 1]] -
                   cum[corners_[4 * v + 2]] + cum[corners_[4 * v + 3]];
    y[v] = truth + ctx.rng->Laplace(scales_[v]);
  }
  gls_.InferNodesInto(y, &s.z, &s.node_est);
  const std::vector<double>& est = s.node_est;

  PrepareOut(out);
  std::vector<double>& cells = out->mutable_counts();
  // Leaf rectangles partition the grid, so every cell is overwritten.
  for (size_t v : leaves_) {
    const GridRect& node = nodes_[v];
    double area = static_cast<double>((node.r1 - node.r0 + 1) *
                                      (node.c1 - node.c0 + 1));
    for (size_t r = node.r0; r <= node.r1; ++r) {
      for (size_t c = node.c0; c <= node.c1; ++c) {
        cells[r * cols + c] = est[v] / area;
      }
    }
  }
  return Status::OK();
}

}  // namespace grid_internal
}  // namespace dpbench
