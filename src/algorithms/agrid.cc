#include "src/algorithms/agrid.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

size_t AGridMechanism::CoarseGridSize(double scale, double epsilon,
                                      double c) {
  double m = std::sqrt(std::max(scale, 0.0) * epsilon / c) / 2.0;
  return std::max<size_t>(10, static_cast<size_t>(std::ceil(m)));
}

size_t AGridMechanism::FineGridSize(double noisy_count, double eps2,
                                    double c2) {
  if (noisy_count <= 0.0) return 1;
  double m = std::sqrt(noisy_count * eps2 / c2);
  return std::max<size_t>(1, static_cast<size_t>(std::ceil(m)));
}

Result<DataVector> AGridMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  size_t rows = domain.size(0), cols = domain.size(1);

  BudgetAccountant budget(ctx.epsilon);
  double scale;
  double eps_work = ctx.epsilon;
  if (ctx.side_info.true_scale.has_value()) {
    scale = *ctx.side_info.true_scale;
  } else {
    double rho_total = 0.05 * ctx.epsilon;
    DPB_RETURN_NOT_OK(budget.Spend(rho_total, "scale-estimate"));
    DPB_ASSIGN_OR_RETURN(
        scale, LaplaceMechanismScalar(ctx.data.Scale(), 1.0, rho_total,
                                      ctx.rng));
    scale = std::max(scale, 1.0);
    eps_work = budget.remaining();
  }
  double eps1 = rho_ * eps_work;
  double eps2 = eps_work - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "level1"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "level2"));

  size_t m1 = CoarseGridSize(scale, eps_work, c_);
  m1 = std::min({m1, rows, cols});
  m1 = std::max<size_t>(m1, 1);

  PrefixSums ps(ctx.data);
  DataVector out(domain);
  double var1 = LaplaceVariance(1.0, eps1);
  double var2 = LaplaceVariance(1.0, eps2);

  auto row_lo = [&](size_t g) { return g * rows / m1; };
  auto col_lo = [&](size_t g) { return g * cols / m1; };
  for (size_t gr = 0; gr < m1; ++gr) {
    size_t r0 = row_lo(gr), r1 = row_lo(gr + 1) - 1;
    for (size_t gc = 0; gc < m1; ++gc) {
      size_t c0 = col_lo(gc), c1 = col_lo(gc + 1) - 1;
      double truth1 = ps.RangeSum({r0, c0}, {r1, c1});
      double noisy1 = truth1 + ctx.rng->Laplace(1.0 / eps1);

      // Level-2 subdivision sized by the noisy level-1 count.
      size_t side_r = r1 - r0 + 1, side_c = c1 - c0 + 1;
      size_t m2 = FineGridSize(noisy1, eps2, c2_);
      m2 = std::min({m2, side_r, side_c});
      m2 = std::max<size_t>(m2, 1);

      // Measure the m2 x m2 sub-cells.
      std::vector<double> sub(m2 * m2, 0.0);
      std::vector<std::array<size_t, 4>> bounds(m2 * m2);
      double sub_sum = 0.0;
      for (size_t sr = 0; sr < m2; ++sr) {
        size_t rr0 = r0 + sr * side_r / m2;
        size_t rr1 = r0 + (sr + 1) * side_r / m2 - 1;
        for (size_t sc = 0; sc < m2; ++sc) {
          size_t cc0 = c0 + sc * side_c / m2;
          size_t cc1 = c0 + (sc + 1) * side_c / m2 - 1;
          double t = ps.RangeSum({rr0, cc0}, {rr1, cc1});
          double v = t + ctx.rng->Laplace(1.0 / eps2);
          sub[sr * m2 + sc] = v;
          bounds[sr * m2 + sc] = {rr0, rr1, cc0, cc1};
          sub_sum += v;
        }
      }

      // Two-level GLS: reconcile the level-1 measurement with the sum of
      // level-2 measurements, then distribute the residual equally.
      double cells2 = static_cast<double>(m2 * m2);
      double w1 = 1.0 / var1, w2 = 1.0 / (cells2 * var2);
      double combined = (noisy1 * w1 + sub_sum * w2) / (w1 + w2);
      double residual = (combined - sub_sum) / cells2;

      for (size_t s = 0; s < m2 * m2; ++s) {
        double v = sub[s] + residual;
        auto [rr0, rr1, cc0, cc1] = bounds[s];
        double area = static_cast<double>((rr1 - rr0 + 1) * (cc1 - cc0 + 1));
        for (size_t r = rr0; r <= rr1; ++r) {
          for (size_t c = cc0; c <= cc1; ++c) {
            out[r * cols + c] = v / area;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace dpbench
