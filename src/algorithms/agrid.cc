#include "src/algorithms/agrid.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

// Structured AGRID plan. With the scale provided as side information (the
// benchmark's Table 1 configuration, and the reason the runner keys AGRID
// plans by scale) the coarse grid size m1 and the level budgets are
// plan-time constants; without it the scale is estimated per trial with
// the same 5% slice as the legacy path. Execution mirrors RunImpl
// draw-for-draw: one scalar level-1 draw per coarse cell followed by one
// Laplace block for its m2 x m2 level-2 grid, against a scratch
// prefix-sum table whose corner arithmetic matches PrefixSums::RangeSum.
class AGridPlan : public MechanismPlan {
 public:
  AGridPlan(std::string name, const PlanContext& ctx, double c, double c2,
            double rho)
      : MechanismPlan(std::move(name), ctx.domain),
        c_(c),
        c2_(c2),
        rho_(rho),
        epsilon_(ctx.epsilon),
        rows_(ctx.domain.size(0)),
        cols_(ctx.domain.size(1)),
        side_scale_(ctx.side_info.true_scale) {
    if (side_scale_.has_value()) {
      double eps_work = epsilon_;
      eps1_ = rho_ * eps_work;
      eps2_ = eps_work - eps1_;
      m1_ = AGridMechanism::CoarseGridSize(*side_scale_, eps_work, c_);
      m1_ = std::min({m1_, rows_, cols_});
      m1_ = std::max<size_t>(m1_, 1);
    }
  }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;

    double eps1 = eps1_, eps2 = eps2_;
    size_t m1 = m1_;
    if (!side_scale_.has_value()) {
      // No public scale: spend 5% estimating it, as in the legacy path.
      double rho_total = 0.05 * epsilon_;
      double scale = ctx.data.Scale() + ctx.rng->Laplace(1.0 / rho_total);
      scale = std::max(scale, 1.0);
      double eps_work = epsilon_ - rho_total;
      eps1 = rho_ * eps_work;
      eps2 = eps_work - eps1;
      m1 = AGridMechanism::CoarseGridSize(scale, eps_work, c_);
      m1 = std::min({m1, rows_, cols_});
      m1 = std::max<size_t>(m1, 1);
    }
    if (eps1 <= 0.0 || eps2 <= 0.0) {
      return Status::InvalidArgument(
          "LaplaceMechanism: epsilon must be > 0");
    }

    // The level-2 grid of one coarse cell never exceeds the cell itself.
    s.y.reserve(rows_ * cols_);

    ComputePrefixSums(ctx.data, &s.prefix);
    const std::vector<double>& cum = s.prefix;
    auto range_sum = [&](size_t r0, size_t c0, size_t r1, size_t c1) {
      return CumRangeSum2D(cum, cols_, r0, c0, r1, c1);
    };

    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    double var1 = LaplaceVariance(1.0, eps1);
    double var2 = LaplaceVariance(1.0, eps2);

    auto row_lo = [&](size_t g) { return g * rows_ / m1; };
    auto col_lo = [&](size_t g) { return g * cols_ / m1; };
    for (size_t gr = 0; gr < m1; ++gr) {
      size_t r0 = row_lo(gr), r1 = row_lo(gr + 1) - 1;
      for (size_t gc = 0; gc < m1; ++gc) {
        size_t c0 = col_lo(gc), c1 = col_lo(gc + 1) - 1;
        double truth1 = range_sum(r0, c0, r1, c1);
        double noisy1 = truth1 + ctx.rng->Laplace(1.0 / eps1);

        // Level-2 subdivision sized by the noisy level-1 count.
        size_t side_r = r1 - r0 + 1, side_c = c1 - c0 + 1;
        size_t m2 = AGridMechanism::FineGridSize(noisy1, eps2, c2_);
        m2 = std::min({m2, side_r, side_c});
        m2 = std::max<size_t>(m2, 1);

        // Measure the m2 x m2 sub-cells (noise block-filled; the draw
        // order matches the legacy per-cell scalar draws).
        std::vector<double>& sub = s.y;
        sub.resize(m2 * m2);
        ctx.rng->FillLaplace(sub.data(), m2 * m2, 1.0 / eps2);
        double sub_sum = 0.0;
        for (size_t sr = 0; sr < m2; ++sr) {
          size_t rr0 = r0 + sr * side_r / m2;
          size_t rr1 = r0 + (sr + 1) * side_r / m2 - 1;
          for (size_t sc = 0; sc < m2; ++sc) {
            size_t cc0 = c0 + sc * side_c / m2;
            size_t cc1 = c0 + (sc + 1) * side_c / m2 - 1;
            double t = range_sum(rr0, cc0, rr1, cc1);
            double v = t + sub[sr * m2 + sc];
            sub[sr * m2 + sc] = v;
            sub_sum += v;
          }
        }

        // Two-level GLS: reconcile the level-1 measurement with the sum
        // of level-2 measurements, then distribute the residual equally.
        double cells2 = static_cast<double>(m2 * m2);
        double w1 = 1.0 / var1, w2 = 1.0 / (cells2 * var2);
        double combined = (noisy1 * w1 + sub_sum * w2) / (w1 + w2);
        double residual = (combined - sub_sum) / cells2;

        for (size_t sr = 0; sr < m2; ++sr) {
          size_t rr0 = r0 + sr * side_r / m2;
          size_t rr1 = r0 + (sr + 1) * side_r / m2 - 1;
          for (size_t sc = 0; sc < m2; ++sc) {
            size_t cc0 = c0 + sc * side_c / m2;
            size_t cc1 = c0 + (sc + 1) * side_c / m2 - 1;
            double v = sub[sr * m2 + sc] + residual;
            double area = static_cast<double>((rr1 - rr0 + 1) *
                                              (cc1 - cc0 + 1));
            for (size_t r = rr0; r <= rr1; ++r) {
              for (size_t c = cc0; c <= cc1; ++c) {
                cells[r * cols_ + c] = v / area;
              }
            }
          }
        }
      }
    }
    return Status::OK();
  }

 private:
  double c_, c2_, rho_;
  double epsilon_;
  size_t rows_, cols_;
  std::optional<double> side_scale_;
  double eps1_ = 0.0, eps2_ = 0.0;
  size_t m1_ = 1;
};

}  // namespace

Result<PlanPtr> AGridMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new AGridPlan(name(), ctx, c_, c2_, rho_));
}

size_t AGridMechanism::CoarseGridSize(double scale, double epsilon,
                                      double c) {
  double m = std::sqrt(std::max(scale, 0.0) * epsilon / c) / 2.0;
  return std::max<size_t>(10, static_cast<size_t>(std::ceil(m)));
}

size_t AGridMechanism::FineGridSize(double noisy_count, double eps2,
                                    double c2) {
  if (noisy_count <= 0.0) return 1;
  double m = std::sqrt(noisy_count * eps2 / c2);
  return std::max<size_t>(1, static_cast<size_t>(std::ceil(m)));
}

Result<DataVector> AGridMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  size_t rows = domain.size(0), cols = domain.size(1);

  BudgetAccountant budget(ctx.epsilon);
  double scale;
  double eps_work = ctx.epsilon;
  if (ctx.side_info.true_scale.has_value()) {
    scale = *ctx.side_info.true_scale;
  } else {
    double rho_total = 0.05 * ctx.epsilon;
    DPB_RETURN_NOT_OK(budget.Spend(rho_total, "scale-estimate"));
    DPB_ASSIGN_OR_RETURN(
        scale, LaplaceMechanismScalar(ctx.data.Scale(), 1.0, rho_total,
                                      ctx.rng));
    scale = std::max(scale, 1.0);
    eps_work = budget.remaining();
  }
  double eps1 = rho_ * eps_work;
  double eps2 = eps_work - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "level1"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "level2"));

  size_t m1 = CoarseGridSize(scale, eps_work, c_);
  m1 = std::min({m1, rows, cols});
  m1 = std::max<size_t>(m1, 1);

  PrefixSums ps(ctx.data);
  DataVector out(domain);
  double var1 = LaplaceVariance(1.0, eps1);
  double var2 = LaplaceVariance(1.0, eps2);

  auto row_lo = [&](size_t g) { return g * rows / m1; };
  auto col_lo = [&](size_t g) { return g * cols / m1; };
  for (size_t gr = 0; gr < m1; ++gr) {
    size_t r0 = row_lo(gr), r1 = row_lo(gr + 1) - 1;
    for (size_t gc = 0; gc < m1; ++gc) {
      size_t c0 = col_lo(gc), c1 = col_lo(gc + 1) - 1;
      double truth1 = ps.RangeSum({r0, c0}, {r1, c1});
      double noisy1 = truth1 + ctx.rng->Laplace(1.0 / eps1);

      // Level-2 subdivision sized by the noisy level-1 count.
      size_t side_r = r1 - r0 + 1, side_c = c1 - c0 + 1;
      size_t m2 = FineGridSize(noisy1, eps2, c2_);
      m2 = std::min({m2, side_r, side_c});
      m2 = std::max<size_t>(m2, 1);

      // Measure the m2 x m2 sub-cells.
      std::vector<double> sub(m2 * m2, 0.0);
      std::vector<std::array<size_t, 4>> bounds(m2 * m2);
      double sub_sum = 0.0;
      for (size_t sr = 0; sr < m2; ++sr) {
        size_t rr0 = r0 + sr * side_r / m2;
        size_t rr1 = r0 + (sr + 1) * side_r / m2 - 1;
        for (size_t sc = 0; sc < m2; ++sc) {
          size_t cc0 = c0 + sc * side_c / m2;
          size_t cc1 = c0 + (sc + 1) * side_c / m2 - 1;
          double t = ps.RangeSum({rr0, cc0}, {rr1, cc1});
          double v = t + ctx.rng->Laplace(1.0 / eps2);
          sub[sr * m2 + sc] = v;
          bounds[sr * m2 + sc] = {rr0, rr1, cc0, cc1};
          sub_sum += v;
        }
      }

      // Two-level GLS: reconcile the level-1 measurement with the sum of
      // level-2 measurements, then distribute the residual equally.
      double cells2 = static_cast<double>(m2 * m2);
      double w1 = 1.0 / var1, w2 = 1.0 / (cells2 * var2);
      double combined = (noisy1 * w1 + sub_sum * w2) / (w1 + w2);
      double residual = (combined - sub_sum) / cells2;

      for (size_t s = 0; s < m2 * m2; ++s) {
        double v = sub[s] + residual;
        auto [rr0, rr1, cc0, cc1] = bounds[s];
        double area = static_cast<double>((rr1 - rr0 + 1) * (cc1 - cc0 + 1));
        for (size_t r = rr0; r <= rr1; ++r) {
          for (size_t c = cc0; c <= cc1; ++c) {
            out[r * cols + c] = v / area;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace dpbench
