// Generalized least-squares inference on measurement trees.
//
// Hierarchical algorithms (H, HB, GREEDY_H, QUADTREE, HYBRIDTREE, DAWA's
// second stage, SF's within-bucket trees) measure noisy counts at the nodes
// of a tree whose leaves partition the domain and whose internal nodes are
// sums of their children. The minimum-variance consistent estimate is the
// GLS solution, which on trees has an exact two-pass closed form
// (Hay et al. PVLDB'10, generalized to heterogeneous variances):
//
//   bottom-up:  combine each node's own measurement with the sum of its
//               children's aggregated estimates by inverse variance;
//   top-down:   distribute the parent residual to children proportionally
//               to their aggregated variances.
#ifndef DPBENCH_ALGORITHMS_TREE_INFERENCE_H_
#define DPBENCH_ALGORITHMS_TREE_INFERENCE_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "src/common/status.h"

namespace dpbench {

/// Variance marking an unmeasured node.
inline constexpr double kUnmeasured = std::numeric_limits<double>::infinity();

/// One node of a measurement tree. Children must form a partition of the
/// node (the consistency constraint is: node value == sum of child values).
struct MeasurementNode {
  std::vector<size_t> children;  ///< indices into the node array; empty=leaf
  double y = 0.0;                ///< noisy measurement (ignored if unmeasured)
  double variance = kUnmeasured; ///< measurement variance; kUnmeasured if none
};

/// Computes the GLS-consistent estimate for every node. `root` is the index
/// of the root node. Requires: the node array forms a forest where each node
/// is referenced by at most one parent and the root reaches all nodes that
/// matter. Unmeasured leaves under a measured ancestor receive an equal
/// share of the ancestor's residual.
Result<std::vector<double>> TreeGlsInfer(
    const std::vector<MeasurementNode>& nodes, size_t root);

/// Plan-once form of TreeGlsInfer. The GLS combination weights of the
/// two-pass solver depend only on the tree topology and the measurement
/// variances — never on the measurements themselves — so for a fixed
/// (tree, variance profile) they can be folded into per-node linear
/// coefficients once:
///
///   bottom-up:  z_v = a_v * y_v + b_v * sum_c z_c
///   top-down:   est_c = z_c + (est_v - sum z_c) * r_c
///
/// Build() resolves every special case of TreeGlsInfer (unmeasured nodes,
/// exact children, unconstrained subtrees) into (a, b, r); InferNodes()
/// is then two allocation-light passes over flat arrays. Mechanism plans
/// build this once and reuse it across thousands of noisy trials.
class PlannedTreeGls {
 public:
  /// `nodes` supplies topology + variances; y values are ignored.
  static Result<PlannedTreeGls> Build(
      const std::vector<MeasurementNode>& nodes, size_t root);

  /// GLS node estimates for one set of measurements (one entry per node;
  /// entries of unmeasured nodes are ignored). Result matches
  /// TreeGlsInfer on the same inputs.
  std::vector<double> InferNodes(const std::vector<double>& y) const;

  /// Allocation-free form of InferNodes: both passes run in caller-owned
  /// buffers (reusing their capacity). `z` holds the bottom-up
  /// accumulators, `est` receives the node estimates; both are fully
  /// overwritten. Results are bit-identical to InferNodes.
  void InferNodesInto(const std::vector<double>& y, std::vector<double>* z,
                      std::vector<double>* est) const;

  /// Lane-major lockstep form of InferNodesInto for trial batches:
  /// y_lanes holds num_nodes() * lanes measurements (node v of lane l at
  /// [v * lanes + l]); z/est are resized likewise. Lane l's estimates are
  /// bit-identical to InferNodesInto on lane l's measurements — both
  /// passes keep per-lane accumulation order, vectorizing only across the
  /// independent lane dimension (dispatched through lockstep::Active()).
  /// lanes must be in [1, lockstep::kMaxLanes].
  void InferNodesMany(const double* y_lanes, size_t lanes,
                      std::vector<double>* z, std::vector<double>* est) const;

  size_t num_nodes() const { return a_.size(); }

  /// The solver's full internal state, exposed so plans can serialize
  /// their GLS coefficients: a solver rebuilt with FromCoefficients infers
  /// bit-identically to the one the coefficients came from. Indices are
  /// widened to uint64_t for a platform-independent wire form.
  struct Coefficients {
    std::vector<uint64_t> order;        ///< BFS from root, parents first
    std::vector<uint64_t> child_start;  ///< CSR offsets, num_nodes + 1
    std::vector<uint64_t> children;     ///< flat child ids, CSR layout
    std::vector<double> a;              ///< own-measurement weight
    std::vector<double> b;              ///< children-sum weight
    std::vector<double> r;              ///< residual share (as child)
    uint64_t root = 0;
  };

  Coefficients coefficients() const;

  /// Rebuilds a solver from serialized coefficients, validating internal
  /// consistency (array arities, CSR shape, index bounds) so a corrupt
  /// payload fails loudly instead of executing out of bounds. Takes the
  /// coefficients by value: the double arrays are adopted without another
  /// copy (they run to megabytes for paper-scale trees).
  static Result<PlannedTreeGls> FromCoefficients(Coefficients c);

 private:
  std::vector<size_t> order_;        // BFS from root, parents first
  std::vector<size_t> child_start_;  // CSR offsets, size num_nodes + 1
  std::vector<size_t> children_;     // flat child ids, CSR layout
  std::vector<double> a_;            // own-measurement weight per node
  std::vector<double> b_;            // children-sum weight per node
  std::vector<double> r_;            // residual share per node (as child)
  size_t root_ = 0;
};

/// Capacity-reusing workspace for per-trial *dynamic* measurement trees —
/// trees whose topology depends on the data or on earlier noise draws
/// (DAWA's bucket hierarchy, SF's within-bucket trees, HYBRIDTREE's kd
/// phase) and therefore cannot be planned once. The flat arrays hold a
/// tree in BFS order (node 0 is the root, parents precede children, each
/// node's children occupy the consecutive index range
/// [first_child[v], first_child[v] + child_count[v])), which is exactly
/// the order the builders in this codebase append nodes in. Buffers are
/// assign()ed each trial, so in the steady state the trial loop performs
/// no heap allocations (capacity only grows toward the per-cell maximum).
struct FlatTreeScratch {
  // Topology: inclusive bounds per node (lo2/hi2 carry the second
  // dimension for 2D trees), CSR-style consecutive children, level, and a
  // per-node marker (e.g. HYBRIDTREE's kd-phase flag).
  std::vector<size_t> lo, hi;
  std::vector<size_t> lo2, hi2;
  std::vector<size_t> first_child;
  std::vector<size_t> child_count;
  std::vector<int> level;
  std::vector<char> flag;
  // Measurement state: per-node noisy values and variances, the compact
  // schedule of measured nodes with their per-draw noise scales, and the
  // block-filled draws.
  std::vector<double> y, variance, noise;
  std::vector<double> meas_scale;
  std::vector<size_t> meas_node;
  // GLS pass buffers and per-level budget work space.
  std::vector<double> z, s, node_est;
  std::vector<double> usage, eps;
  std::vector<double> prefix;
  std::vector<size_t> stack;
  size_t num_nodes = 0;
  int num_levels = 0;

  /// Reserves every buffer for trees of up to `max_nodes` nodes over up
  /// to `max_cells` cells. Dynamic trees vary in size from trial to
  /// trial, so capacity grown on demand would still allocate occasionally
  /// deep into the trial loop; plans call this once per execution with
  /// their worst-case bound (any tree whose leaves partition n cells has
  /// at most 2n - 1 nodes; the kd/quad hybrids stay under that too) to
  /// make the steady state allocation-free from the first trial on.
  void Reserve(size_t max_nodes, size_t max_cells) {
    lo.reserve(max_nodes);
    hi.reserve(max_nodes);
    lo2.reserve(max_nodes);
    hi2.reserve(max_nodes);
    first_child.reserve(max_nodes);
    child_count.reserve(max_nodes);
    level.reserve(max_nodes);
    flag.reserve(max_nodes);
    y.reserve(max_nodes);
    variance.reserve(max_nodes);
    noise.reserve(max_nodes);
    meas_scale.reserve(max_nodes);
    meas_node.reserve(max_nodes);
    z.reserve(max_nodes);
    s.reserve(max_nodes);
    node_est.reserve(max_nodes);
    stack.reserve(4 * max_nodes);
    prefix.reserve(max_cells + 1);
    // Levels are logarithmic in the cell count; 64 covers any size_t.
    usage.reserve(64);
    eps.reserve(64);
  }
};

/// Allocation-free TreeGlsInfer over a flat BFS-ordered tree (see
/// FlatTreeScratch): children of node v are
/// children [first_child[v], first_child[v] + child_count[v]). Because
/// nodes are in BFS order with parents first, the traversal order is the
/// index order, and the two passes mirror TreeGlsInfer's arithmetic
/// operation for operation — results are bit-identical to TreeGlsInfer on
/// the equivalent MeasurementNode array. `z_buf`/`s_buf` hold the
/// bottom-up accumulators, `est_buf` receives the node estimates; all
/// three are fully overwritten (capacity reuse).
void FlatTreeGlsInfer(size_t num_nodes, const size_t* first_child,
                      const size_t* child_count, const double* y,
                      const double* variance, std::vector<double>* z_buf,
                      std::vector<double>* s_buf,
                      std::vector<double>* est_buf);

/// A complete hierarchy over a 1D range of n cells with branching factor b:
/// leaves are single cells in order; internal nodes own contiguous ranges.
/// Helper used by H, HB, GREEDY_H, DAWA and SF.
class RangeTree {
 public:
  struct Node {
    size_t lo = 0, hi = 0;  ///< inclusive cell range
    size_t parent = kNoParent;
    std::vector<size_t> children;
    int level = 0;  ///< root = 0
  };
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  /// Builds the tree over n cells splitting every node into (up to) b
  /// nearly equal children until single cells.
  static RangeTree Build(size_t n, size_t branching);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_cells() const { return n_; }
  /// The branching factor Build() was called with. Together with
  /// num_cells() it identifies the topology exactly (Build is
  /// deterministic), which is how range-tree plans serialize their tree.
  size_t branching() const { return branching_; }
  const Node& node(size_t i) const { return nodes_[i]; }
  size_t root() const { return 0; }

  /// Number of levels (root level 0 .. num_levels-1 == leaf level).
  int num_levels() const { return num_levels_; }

  /// Indices of nodes on a level.
  const std::vector<size_t>& level_nodes(int level) const {
    return by_level_[level];
  }

  /// Decomposes the inclusive range [lo, hi] into a minimal set of tree
  /// nodes whose ranges exactly tile it (canonical decomposition).
  std::vector<size_t> Decompose(size_t lo, size_t hi) const;

  /// Given per-node measurements (y, variance), runs GLS and returns
  /// per-cell estimates (length n). Unmeasured nodes use kUnmeasured.
  Result<std::vector<double>> Infer(const std::vector<double>& y,
                                    const std::vector<double>& variance) const;

 private:
  size_t n_ = 0;
  size_t branching_ = 2;
  int num_levels_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::vector<size_t>> by_level_;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_TREE_INFERENCE_H_
