#include "src/algorithms/mwem.h"

#include <algorithm>
#include <cmath>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/exponential.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

// Evaluates every workload query against an arbitrary cell vector using
// prefix sums (1D/2D).
std::vector<double> EvalAll(const Workload& w, const Domain& domain,
                            const std::vector<double>& cells) {
  DataVector v(domain, cells);
  return w.Evaluate(v);
}

// Structured MWEM plan. Data-independent state hoisted out of the trial
// loop: the flattened query bounds of the workload (so the multiplicative
// update walks plain arrays instead of chasing RangeQuery vectors), the
// budget split, and the round count of the untuned variant. Execution
// mirrors RunImpl draw-for-draw: the same scale-estimate draw (MWEM*),
// one block-uniform exponential-mechanism selection plus one Laplace
// measurement per round, evaluated against the scratch synthetic estimate
// with the workload's prefix-sum plan.
class MwemPlan : public MechanismPlan {
 public:
  MwemPlan(std::string name, const PlanContext& ctx, bool tuned,
           size_t default_rounds)
      : MechanismPlan(std::move(name), ctx.domain),
        workload_(&ctx.workload),
        epsilon_(ctx.epsilon),
        side_info_(ctx.side_info),
        tuned_(tuned),
        default_rounds_(default_rounds),
        cols_(ctx.domain.num_dims() == 2 ? ctx.domain.size(1) : 0) {
    const std::vector<RangeQuery>& qs = ctx.workload.queries();
    qlo0_.reserve(qs.size());
    qhi0_.reserve(qs.size());
    if (cols_ > 0) {
      qlo1_.reserve(qs.size());
      qhi1_.reserve(qs.size());
    }
    for (const RangeQuery& q : qs) {
      qlo0_.push_back(q.lo[0]);
      qhi0_.push_back(q.hi[0]);
      if (cols_ > 0) {
        qlo1_.push_back(q.lo[1]);
        qhi1_.push_back(q.hi[1]);
      }
    }
  }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    const size_t n = ctx.data.size();
    const size_t num_q = qlo0_.size();

    double scale_estimate = 0.0;
    size_t rounds = default_rounds_;
    if (tuned_) {
      // MWEM*: spend 5% estimating scale, then choose T from the schedule.
      double rho_total = 0.05 * epsilon_;
      scale_estimate =
          ctx.data.Scale() + ctx.rng->Laplace(1.0 / rho_total);
      scale_estimate = std::max(scale_estimate, 1.0);
      rounds = MwemMechanism::TunedRounds(epsilon_ * scale_estimate);
    } else {
      // Original MWEM: the scale is public side information.
      scale_estimate = side_info_.true_scale.value_or(ctx.data.Scale());
      if (scale_estimate <= 0.0) scale_estimate = 1.0;
    }
    double eps_rounds = tuned_ ? epsilon_ - 0.05 * epsilon_ : epsilon_;
    double eps_t = eps_rounds / static_cast<double>(rounds);

    // True workload answers (accessed only through DP mechanisms below).
    workload_->EvaluateInto(ctx.data, &s.prefix, &s.truth);

    // Current synthetic estimate, kept as counts summing to scale_estimate.
    if (s.synth.domain() != domain()) s.synth = DataVector(domain());
    std::vector<double>& est = s.synth.mutable_counts();
    est.assign(n, scale_estimate / static_cast<double>(n));
    s.avg.assign(n, 0.0);

    for (size_t t = 0; t < rounds; ++t) {
      workload_->EvaluateInto(s.synth, &s.prefix, &s.answers);
      // Select the worst-approximated query. Score sensitivity is 1 (a
      // range count changes by at most 1 when one record changes).
      s.scores.resize(num_q);
      for (size_t q = 0; q < num_q; ++q) {
        s.scores[q] = std::abs(s.truth[q] - s.answers[q]);
      }
      DPB_ASSIGN_OR_RETURN(
          size_t chosen,
          ExponentialMechanismInto(s.scores.data(), num_q,
                                   /*sensitivity=*/1.0, eps_t / 2.0,
                                   ctx.rng, &s.unif));
      double measured =
          s.truth[chosen] + ctx.rng->Laplace(1.0 / (eps_t / 2.0));

      // Multiplicative weights update on cells inside the chosen query.
      double err = measured - s.answers[chosen];
      double factor = std::exp(err / (2.0 * scale_estimate));
      if (cols_ == 0) {
        for (size_t i = qlo0_[chosen]; i <= qhi0_[chosen]; ++i) {
          est[i] *= factor;
        }
      } else {
        for (size_t r = qlo0_[chosen]; r <= qhi0_[chosen]; ++r) {
          for (size_t c = qlo1_[chosen]; c <= qhi1_[chosen]; ++c) {
            est[r * cols_ + c] *= factor;
          }
        }
      }
      // Renormalize to the (noisy) scale; the averaging pass is fused in
      // (same per-element operations, one pass fewer over the cells).
      double sum = 0.0;
      for (double v : est) sum += v;
      if (sum > 0.0) {
        double norm = scale_estimate / sum;
        for (size_t i = 0; i < n; ++i) {
          est[i] *= norm;
          s.avg[i] += est[i];
        }
      } else {
        for (size_t i = 0; i < n; ++i) s.avg[i] += est[i];
      }
    }
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    for (size_t i = 0; i < n; ++i) {
      cells[i] = s.avg[i] / static_cast<double>(rounds);
    }
    return Status::OK();
  }

 private:
  const Workload* workload_;
  double epsilon_;
  SideInfo side_info_;
  bool tuned_;
  size_t default_rounds_;
  size_t cols_;  // 0 for 1D
  std::vector<size_t> qlo0_, qhi0_, qlo1_, qhi1_;
};

}  // namespace

Result<PlanPtr> MwemMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  if (ctx.domain.num_dims() > 2) return ReferencePlan(ctx);
  if (ctx.workload.size() == 0) {
    return Status::InvalidArgument("MWEM requires a non-empty workload");
  }
  return PlanPtr(new MwemPlan(name(), ctx, tuned_, default_rounds_));
}

size_t MwemMechanism::TunedRounds(double eps_scale_product) {
  // Learned schedule: stronger signal (larger eps*scale) supports more
  // measurement rounds (paper Finding 7: T grows from 2 to ~100).
  const double p = eps_scale_product;
  if (p < 50) return 2;
  if (p < 500) return 5;
  if (p < 5e3) return 10;
  if (p < 5e4) return 20;
  if (p < 5e5) return 40;
  if (p < 5e6) return 70;
  return 100;
}

Result<DataVector> MwemMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  const size_t n = ctx.data.size();
  const Workload& w = ctx.workload;
  if (w.size() == 0) {
    return Status::InvalidArgument("MWEM requires a non-empty workload");
  }

  BudgetAccountant budget(ctx.epsilon);
  double scale_estimate = 0.0;
  size_t rounds = default_rounds_;
  if (tuned_) {
    // MWEM*: spend 5% estimating scale, then choose T from the schedule.
    double rho_total = 0.05 * ctx.epsilon;
    DPB_RETURN_NOT_OK(budget.Spend(rho_total, "scale-estimate"));
    DPB_ASSIGN_OR_RETURN(
        scale_estimate,
        LaplaceMechanismScalar(ctx.data.Scale(), 1.0, rho_total, ctx.rng));
    scale_estimate = std::max(scale_estimate, 1.0);
    rounds = TunedRounds(ctx.epsilon * scale_estimate);
  } else {
    // Original MWEM: the scale is public side information.
    scale_estimate = ctx.side_info.true_scale.value_or(ctx.data.Scale());
    if (scale_estimate <= 0.0) scale_estimate = 1.0;
  }
  double eps_rounds = budget.remaining();
  DPB_RETURN_NOT_OK(budget.Spend(eps_rounds, "mwem-rounds"));
  double eps_t = eps_rounds / static_cast<double>(rounds);

  // True workload answers (accessed only through DP mechanisms below).
  std::vector<double> truth = w.Evaluate(ctx.data);

  // Current synthetic estimate, kept as counts summing to scale_estimate.
  std::vector<double> est(n, scale_estimate / static_cast<double>(n));
  std::vector<double> avg(n, 0.0);

  for (size_t t = 0; t < rounds; ++t) {
    std::vector<double> est_answers = EvalAll(w, domain, est);
    // Select the worst-approximated query. Score sensitivity is 1 (a range
    // count changes by at most 1 when one record changes).
    std::vector<double> scores(w.size());
    for (size_t q = 0; q < w.size(); ++q) {
      scores[q] = std::abs(truth[q] - est_answers[q]);
    }
    DPB_ASSIGN_OR_RETURN(
        size_t chosen,
        ExponentialMechanism(scores, /*sensitivity=*/1.0, eps_t / 2.0,
                             ctx.rng));
    DPB_ASSIGN_OR_RETURN(
        double measured,
        LaplaceMechanismScalar(truth[chosen], 1.0, eps_t / 2.0, ctx.rng));

    // Multiplicative weights update on cells inside the chosen query.
    const RangeQuery& q = w.queries()[chosen];
    double err = measured - est_answers[chosen];
    double factor = std::exp(err / (2.0 * scale_estimate));
    if (domain.num_dims() == 1) {
      for (size_t i = q.lo[0]; i <= q.hi[0]; ++i) est[i] *= factor;
    } else {
      size_t cols = domain.size(1);
      for (size_t r = q.lo[0]; r <= q.hi[0]; ++r) {
        for (size_t c = q.lo[1]; c <= q.hi[1]; ++c) {
          est[r * cols + c] *= factor;
        }
      }
    }
    // Renormalize to the (noisy) scale.
    double sum = 0.0;
    for (double v : est) sum += v;
    if (sum > 0.0) {
      double norm = scale_estimate / sum;
      for (double& v : est) v *= norm;
    }
    for (size_t i = 0; i < n; ++i) avg[i] += est[i];
  }
  for (double& v : avg) v /= static_cast<double>(rounds);
  return DataVector(domain, std::move(avg));
}

}  // namespace dpbench
