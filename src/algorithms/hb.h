// HB (Qardaji, Yang, Li PVLDB'13): hierarchical counts where the branching
// factor b is chosen from the domain size to minimize the average variance
// of range queries; uniform budget per level plus GLS consistency.
//
// 1D uses the closed-form cost (b-1)h^3 minimization from the paper; 2D
// builds a grid hierarchy splitting both dimensions by b per level with the
// analogous cost ((b-1)h)^2 * h ~ per-dimension strips squared.
#ifndef DPBENCH_ALGORITHMS_HB_H_
#define DPBENCH_ALGORITHMS_HB_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class HbMechanism : public Mechanism {
 public:
  std::string name() const override { return "HB"; }
  bool SupportsDims(size_t dims) const override {
    return dims == 1 || dims == 2;
  }
  bool data_independent() const override { return true; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;
  Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                              const PlanPayload& payload) const override;

  /// Branching factor minimizing (b-1) * ceil(log_b n)^3 (exposed for tests).
  static size_t ChooseBranching1D(size_t n);

  /// 2D analogue on a side x side grid.
  static size_t ChooseBranching2D(size_t side);
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_HB_H_
