#include "src/algorithms/dawa.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/algorithms/greedy_h.h"
#include "src/common/math.h"
#include "src/histogram/hilbert.h"
#include "src/mechanisms/budget.h"

namespace dpbench {

namespace dawa_internal {

std::vector<size_t> LeastCostPartition(const std::vector<double>& counts,
                                       double eps1, double bucket_noise_cost,
                                       Rng* rng) {
  const size_t n = counts.size();
  const int levels = FloorLog2(NextPowerOfTwo(n)) + 1;

  // Noisy view of the data: one Laplace(1/eps1) draw per cell (cells are
  // disjoint, so this consumes eps1 by parallel composition). All interval
  // costs are raw L1 deviations of this noisy vector, as in the original
  // DAWA. The deviation the noise alone contributes to an interval of L
  // cells is ~(L-1)/eps1, so across any partition the noise bias equals
  // (n - #buckets)/eps1 — a constant minus #buckets/eps1. Correcting for
  // it is therefore equivalent to adding 1/eps1 to the per-bucket penalty,
  // which is how it is folded in below (no per-interval clipping, so the
  // estimator stays unbiased across alternatives and the DP's comparisons
  // are meaningful even at low signal, where the partition gracefully
  // collapses toward few buckets — DAWA's observed small-scale strength).
  std::vector<double> noisy = counts;
  double cell_noise = (eps1 > 0.0) ? 1.0 / eps1 : 0.0;
  if (eps1 > 0.0) {
    for (double& v : noisy) v += rng->Laplace(cell_noise);
  }
  // The noise-bias correction contributes cell_noise per bucket (see
  // above); doubling it compensates for the DP's selection bias (the
  // minimum over many noisy alternatives is optimistically low), which
  // otherwise manufactures spurious buckets out of noise dips.
  constexpr double kSelectionBias = 1.3;
  double per_bucket = bucket_noise_cost + kSelectionBias * cell_noise;

  // cost_by_level[l][k] is the noisy L1-deviation cost of the aligned
  // dyadic interval [k*L, min((k+1)*L, n)) with L = 2^l.
  std::vector<std::vector<double>> cost_by_level(levels);
  for (int l = 0; l < levels; ++l) {
    size_t len = size_t{1} << l;
    size_t buckets = (n + len - 1) / len;
    cost_by_level[l].assign(buckets, 0.0);
    for (size_t k = 0; k < buckets; ++k) {
      size_t lo = k * len, hi = std::min(lo + len, n);
      double width = static_cast<double>(hi - lo);
      double sum = 0.0;
      for (size_t i = lo; i < hi; ++i) sum += noisy[i];
      double mean = sum / width;
      double dev = 0.0;
      for (size_t i = lo; i < hi; ++i) dev += std::abs(noisy[i] - mean);
      cost_by_level[l][k] = dev;
    }
  }

  // DP over prefix positions; interval [j-L, j) is admissible when aligned.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n + 1, kInf);
  std::vector<size_t> back(n + 1, 0);
  best[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    for (int l = 0; l < levels; ++l) {
      size_t len = size_t{1} << l;
      size_t k = (j - 1) / len;  // aligned bucket containing cell j-1
      if (std::min((k + 1) * len, n) != j) continue;  // j must end bucket k
      size_t start = k * len;
      double cand = best[start] + cost_by_level[l][k] + per_bucket;
      if (cand < best[j]) {
        best[j] = cand;
        back[j] = start;
      }
    }
  }

  // Reconstruct bucket boundaries (exclusive ends).
  std::vector<size_t> ends;
  size_t j = n;
  while (j > 0) {
    ends.push_back(j);
    j = back[j];
  }
  std::reverse(ends.begin(), ends.end());
  return ends;
}

}  // namespace dawa_internal

Result<DataVector> DawaMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  const bool two_d = domain.num_dims() == 2;

  // Linearize 2D inputs along the Hilbert curve.
  DataVector linear;
  if (two_d) {
    DPB_ASSIGN_OR_RETURN(linear, HilbertLinearize(ctx.data));
  } else {
    linear = ctx.data;
  }
  const std::vector<double>& counts = linear.counts();
  const size_t n = counts.size();

  BudgetAccountant budget(ctx.epsilon);
  double eps1 = rho_ * ctx.epsilon;
  double eps2 = ctx.epsilon - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "partition"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "measure"));

  // Stage 1: least-cost partition. The per-bucket penalty is the expected
  // absolute Laplace error of one stage-2 measurement.
  std::vector<size_t> ends = dawa_internal::LeastCostPartition(
      counts, eps1, /*bucket_noise_cost=*/1.0 / eps2, ctx.rng);

  // Bucket totals (true values; measured privately below).
  size_t num_buckets = ends.size();
  std::vector<double> bucket_counts(num_buckets, 0.0);
  std::vector<size_t> cell_bucket(n, 0);
  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    for (size_t i = start; i < ends[b]; ++i) {
      bucket_counts[b] += counts[i];
      cell_bucket[i] = b;
    }
    start = ends[b];
  }

  // Stage 2: GREEDY_H over the bucket vector. Workload ranges are mapped
  // onto bucket indices (1D); 2D uses the dyadic-range proxy.
  std::vector<std::pair<size_t, size_t>> ranges;
  if (!two_d) {
    for (const RangeQuery& q : ctx.workload.queries()) {
      ranges.emplace_back(cell_bucket[q.lo[0]], cell_bucket[q.hi[0]]);
    }
  } else {
    for (size_t len = 1; len <= num_buckets; len *= 2) {
      for (size_t s = 0; s + len <= num_buckets && ranges.size() <= 4096;
           s += len) {
        ranges.emplace_back(s, s + len - 1);
      }
    }
  }
  if (ranges.empty()) ranges.emplace_back(0, num_buckets - 1);
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> bucket_est,
      greedy_h_internal::RunOnCounts(bucket_counts, ranges, branching_, eps2,
                                     ctx.rng));

  // Expand buckets uniformly back to cells.
  std::vector<double> est(n, 0.0);
  start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    double width = static_cast<double>(ends[b] - start);
    for (size_t i = start; i < ends[b]; ++i) est[i] = bucket_est[b] / width;
    start = ends[b];
  }

  if (two_d) {
    DataVector est1d(Domain::D1(n), std::move(est));
    return HilbertDelinearize(est1d, domain);
  }
  return DataVector(domain, std::move(est));
}

}  // namespace dpbench
