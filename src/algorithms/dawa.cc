#include "src/algorithms/dawa.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/algorithms/greedy_h.h"
#include "src/algorithms/hier.h"
#include "src/common/math.h"
#include "src/histogram/hilbert.h"
#include "src/mechanisms/budget.h"

namespace dpbench {

namespace dawa_internal {

std::vector<size_t> LeastCostPartition(const std::vector<double>& counts,
                                       double eps1, double bucket_noise_cost,
                                       Rng* rng) {
  const size_t n = counts.size();
  const int levels = FloorLog2(NextPowerOfTwo(n)) + 1;

  // Noisy view of the data: one Laplace(1/eps1) draw per cell (cells are
  // disjoint, so this consumes eps1 by parallel composition). All interval
  // costs are raw L1 deviations of this noisy vector, as in the original
  // DAWA. The deviation the noise alone contributes to an interval of L
  // cells is ~(L-1)/eps1, so across any partition the noise bias equals
  // (n - #buckets)/eps1 — a constant minus #buckets/eps1. Correcting for
  // it is therefore equivalent to adding 1/eps1 to the per-bucket penalty,
  // which is how it is folded in below (no per-interval clipping, so the
  // estimator stays unbiased across alternatives and the DP's comparisons
  // are meaningful even at low signal, where the partition gracefully
  // collapses toward few buckets — DAWA's observed small-scale strength).
  std::vector<double> noisy = counts;
  double cell_noise = (eps1 > 0.0) ? 1.0 / eps1 : 0.0;
  if (eps1 > 0.0) {
    for (double& v : noisy) v += rng->Laplace(cell_noise);
  }
  // The noise-bias correction contributes cell_noise per bucket (see
  // above); doubling it compensates for the DP's selection bias (the
  // minimum over many noisy alternatives is optimistically low), which
  // otherwise manufactures spurious buckets out of noise dips.
  constexpr double kSelectionBias = 1.3;
  double per_bucket = bucket_noise_cost + kSelectionBias * cell_noise;

  // cost_by_level[l][k] is the noisy L1-deviation cost of the aligned
  // dyadic interval [k*L, min((k+1)*L, n)) with L = 2^l.
  std::vector<std::vector<double>> cost_by_level(levels);
  for (int l = 0; l < levels; ++l) {
    size_t len = size_t{1} << l;
    size_t buckets = (n + len - 1) / len;
    cost_by_level[l].assign(buckets, 0.0);
    for (size_t k = 0; k < buckets; ++k) {
      size_t lo = k * len, hi = std::min(lo + len, n);
      double width = static_cast<double>(hi - lo);
      double sum = 0.0;
      for (size_t i = lo; i < hi; ++i) sum += noisy[i];
      double mean = sum / width;
      double dev = 0.0;
      for (size_t i = lo; i < hi; ++i) dev += std::abs(noisy[i] - mean);
      cost_by_level[l][k] = dev;
    }
  }

  // DP over prefix positions; interval [j-L, j) is admissible when aligned.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n + 1, kInf);
  std::vector<size_t> back(n + 1, 0);
  best[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    for (int l = 0; l < levels; ++l) {
      size_t len = size_t{1} << l;
      size_t k = (j - 1) / len;  // aligned bucket containing cell j-1
      if (std::min((k + 1) * len, n) != j) continue;  // j must end bucket k
      size_t start = k * len;
      double cand = best[start] + cost_by_level[l][k] + per_bucket;
      if (cand < best[j]) {
        best[j] = cand;
        back[j] = start;
      }
    }
  }

  // Reconstruct bucket boundaries (exclusive ends).
  std::vector<size_t> ends;
  size_t j = n;
  while (j > 0) {
    ends.push_back(j);
    j = back[j];
  }
  std::reverse(ends.begin(), ends.end());
  return ends;
}

}  // namespace dawa_internal

namespace {

// Structured DAWA plan. Hoisted at plan time: the budget split and
// partition penalties, the aligned-dyadic cost-table layout (per-level
// bucket counts and offsets into one flattened array — a function of the
// linearized domain size alone), the Hilbert permutation (2D), and the 1D
// workload's flattened query bounds. Execution mirrors RunImpl
// draw-for-draw: one Laplace block for the stage-1 noisy view, the same
// least-cost DP over the same noisy interval costs, and stage 2 through
// the flat (allocation-free) form of the GREEDY_H bucket pipeline.
class DawaPlan : public MechanismPlan {
 public:
  DawaPlan(std::string name, const PlanContext& ctx, double rho,
           size_t branching)
      : MechanismPlan(std::move(name), ctx.domain),
        branching_(branching),
        two_d_(ctx.domain.num_dims() == 2),
        n_(ctx.domain.TotalCells()),
        linear_domain_(Domain::D1(n_)) {
    eps1_ = rho * ctx.epsilon;
    eps2_ = ctx.epsilon - eps1_;
    cell_noise_ = (eps1_ > 0.0) ? 1.0 / eps1_ : 0.0;
    constexpr double kSelectionBias = 1.3;
    per_bucket_ = 1.0 / eps2_ + kSelectionBias * cell_noise_;
    levels_ = FloorLog2(NextPowerOfTwo(n_)) + 1;
    // Flattened cost-table layout: level l occupies
    // [cost_offset_[l], cost_offset_[l + 1]), one slot per aligned bucket.
    cost_offset_.resize(static_cast<size_t>(levels_) + 1, 0);
    for (int l = 0; l < levels_; ++l) {
      size_t len = size_t{1} << l;
      cost_offset_[static_cast<size_t>(l) + 1] =
          cost_offset_[static_cast<size_t>(l)] + (n_ + len - 1) / len;
    }
    if (two_d_) {
      // perm_[row-major cell] = Hilbert position; identical to what
      // HilbertLinearize/Delinearize compute per call. The mechanism only
      // builds this plan for domains the curve accepts.
      uint64_t side = ctx.domain.size(0);
      perm_.reserve(n_);
      for (uint64_t r = 0; r < side; ++r) {
        for (uint64_t c = 0; c < side; ++c) {
          perm_.push_back(HilbertXYToIndex(side, r, c));
        }
      }
    } else {
      qlo_.reserve(ctx.workload.size());
      qhi_.reserve(ctx.workload.size());
      for (const RangeQuery& q : ctx.workload.queries()) {
        qlo_.push_back(q.lo[0]);
        qhi_.push_back(q.hi[0]);
      }
    }
  }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    const size_t n = n_;
    // Worst-case reserves (partition sizes vary per trial with the noise;
    // growing on demand would allocate deep into the trial loop).
    s.tree.Reserve(2 * n, n);
    s.ends.reserve(n);
    s.truth.reserve(n);
    s.answers.reserve(n);
    s.range_lo.reserve(std::max(qlo_.size(), 2 * n + 2));
    s.range_hi.reserve(std::max(qhi_.size(), 2 * n + 2));

    // Linearize 2D inputs along the Hilbert curve.
    const std::vector<double>* counts = &ctx.data.counts();
    if (two_d_) {
      if (s.linear.domain() != linear_domain_) {
        s.linear = DataVector(linear_domain_);
      }
      for (size_t i = 0; i < n; ++i) s.linear[perm_[i]] = ctx.data[i];
      counts = &s.linear.counts();
    }

    // Stage 1: least-cost partition (dawa_internal::LeastCostPartition
    // with the cost table flattened into the planned layout).
    std::vector<double>& noisy = s.noisy;
    noisy.assign(counts->begin(), counts->end());
    if (eps1_ > 0.0) {
      s.noise.resize(n);
      ctx.rng->FillLaplace(s.noise.data(), n, cell_noise_);
      for (size_t i = 0; i < n; ++i) noisy[i] += s.noise[i];
    }
    // cost[cost_offset_[l] + k] is the noisy L1-deviation cost of the
    // aligned dyadic interval [k*L, min((k+1)*L, n)) with L = 2^l.
    std::vector<double>& cost = s.cost;
    cost.assign(cost_offset_.back(), 0.0);
    for (int l = 0; l < levels_; ++l) {
      size_t len = size_t{1} << l;
      size_t buckets = (n + len - 1) / len;
      double* level_cost = cost.data() + cost_offset_[static_cast<size_t>(l)];
      for (size_t k = 0; k < buckets; ++k) {
        size_t lo = k * len, hi = std::min(lo + len, n);
        double width = static_cast<double>(hi - lo);
        double sum = 0.0;
        for (size_t i = lo; i < hi; ++i) sum += noisy[i];
        double mean = sum / width;
        double dev = 0.0;
        for (size_t i = lo; i < hi; ++i) dev += std::abs(noisy[i] - mean);
        level_cost[k] = dev;
      }
    }

    // DP over prefix positions; interval [j-L, j) is admissible when
    // aligned.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double>& best = s.dp;
    std::vector<size_t>& back = s.back;
    best.assign(n + 1, kInf);
    back.assign(n + 1, 0);
    best[0] = 0.0;
    for (size_t j = 1; j <= n; ++j) {
      for (int l = 0; l < levels_; ++l) {
        size_t len = size_t{1} << l;
        size_t k = (j - 1) / len;  // aligned bucket containing cell j-1
        if (std::min((k + 1) * len, n) != j) continue;  // j must end k
        size_t start = k * len;
        double cand = best[start] +
                      cost[cost_offset_[static_cast<size_t>(l)] + k] +
                      per_bucket_;
        if (cand < best[j]) {
          best[j] = cand;
          back[j] = start;
        }
      }
    }

    // Reconstruct bucket boundaries (exclusive ends).
    std::vector<size_t>& ends = s.ends;
    ends.clear();
    size_t j = n;
    while (j > 0) {
      ends.push_back(j);
      j = back[j];
    }
    std::reverse(ends.begin(), ends.end());

    // Bucket totals (true values; measured privately below).
    const size_t num_buckets = ends.size();
    std::vector<double>& bucket_counts = s.truth;
    std::vector<size_t>& cell_bucket = s.bucket_of;
    bucket_counts.assign(num_buckets, 0.0);
    cell_bucket.assign(n, 0);
    size_t start = 0;
    for (size_t b = 0; b < num_buckets; ++b) {
      for (size_t i = start; i < ends[b]; ++i) {
        bucket_counts[b] += (*counts)[i];
        cell_bucket[i] = b;
      }
      start = ends[b];
    }

    // Stage 2: GREEDY_H over the bucket vector. Workload ranges are
    // mapped onto bucket indices (1D); 2D uses the dyadic-range proxy.
    std::vector<size_t>& range_lo = s.range_lo;
    std::vector<size_t>& range_hi = s.range_hi;
    range_lo.clear();
    range_hi.clear();
    if (!two_d_) {
      for (size_t q = 0; q < qlo_.size(); ++q) {
        range_lo.push_back(cell_bucket[qlo_[q]]);
        range_hi.push_back(cell_bucket[qhi_[q]]);
      }
    } else {
      for (size_t len = 1; len <= num_buckets; len *= 2) {
        for (size_t p = 0; p + len <= num_buckets && range_lo.size() <= 4096;
             p += len) {
          range_lo.push_back(p);
          range_hi.push_back(p + len - 1);
        }
      }
    }
    if (range_lo.empty()) {
      range_lo.push_back(0);
      range_hi.push_back(num_buckets - 1);
    }
    // The flat form of greedy_h_internal::RunOnCounts (bit-identical).
    hier_internal::FlatRangeTreeBuild(num_buckets, branching_, &s.tree);
    hier_internal::FlatLevelUsage(s.tree, range_lo.data(), range_hi.data(),
                                  range_lo.size(), &s.tree.usage,
                                  &s.tree.stack);
    // Guarantee the leaf level is measured so every cell has an estimate
    // even if the workload never touches single cells.
    if (s.tree.usage.back() <= 0.0) s.tree.usage.back() = 1.0;
    hier_internal::FlatAllocateBudget(s.tree.usage, eps2_, &s.tree.eps);
    std::vector<double>& bucket_est = s.answers;
    bucket_est.resize(num_buckets);
    DPB_RETURN_NOT_OK(hier_internal::FlatMeasureAndInfer(
        bucket_counts.data(), num_buckets, s.tree.eps, ctx.rng, &s.tree,
        bucket_est.data()));

    // Expand buckets uniformly back to cells.
    PrepareOut(out);
    std::vector<double>& cells = out->mutable_counts();
    double* est = cells.data();
    if (two_d_) {
      // Stage the linear estimate, then scatter through the permutation
      // (identical to HilbertDelinearize).
      if (s.linear_est.domain() != s.linear.domain()) {
        s.linear_est = DataVector(s.linear.domain());
      }
      est = s.linear_est.mutable_counts().data();
    }
    start = 0;
    for (size_t b = 0; b < num_buckets; ++b) {
      double width = static_cast<double>(ends[b] - start);
      for (size_t i = start; i < ends[b]; ++i) {
        est[i] = bucket_est[b] / width;
      }
      start = ends[b];
    }
    if (two_d_) {
      for (size_t i = 0; i < n; ++i) cells[i] = s.linear_est[perm_[i]];
    }
    return Status::OK();
  }

 private:
  size_t branching_;
  bool two_d_;
  size_t n_;
  Domain linear_domain_;
  double eps1_, eps2_, cell_noise_, per_bucket_;
  int levels_;
  std::vector<size_t> cost_offset_;
  std::vector<size_t> perm_;
  std::vector<size_t> qlo_, qhi_;
};

}  // namespace

Result<PlanPtr> DawaMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  if (ctx.domain.num_dims() == 2) {
    uint64_t side = ctx.domain.size(0);
    if (ctx.domain.size(1) != side || !IsPowerOfTwo(side)) {
      // Domain unsupported by the Hilbert curve: keep the per-call path,
      // whose linearization reports the precise error.
      return ReferencePlan(ctx);
    }
  }
  return PlanPtr(new DawaPlan(name(), ctx, rho_, branching_));
}

Result<DataVector> DawaMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();
  const bool two_d = domain.num_dims() == 2;

  // Linearize 2D inputs along the Hilbert curve.
  DataVector linear;
  if (two_d) {
    DPB_ASSIGN_OR_RETURN(linear, HilbertLinearize(ctx.data));
  } else {
    linear = ctx.data;
  }
  const std::vector<double>& counts = linear.counts();
  const size_t n = counts.size();

  BudgetAccountant budget(ctx.epsilon);
  double eps1 = rho_ * ctx.epsilon;
  double eps2 = ctx.epsilon - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "partition"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "measure"));

  // Stage 1: least-cost partition. The per-bucket penalty is the expected
  // absolute Laplace error of one stage-2 measurement.
  std::vector<size_t> ends = dawa_internal::LeastCostPartition(
      counts, eps1, /*bucket_noise_cost=*/1.0 / eps2, ctx.rng);

  // Bucket totals (true values; measured privately below).
  size_t num_buckets = ends.size();
  std::vector<double> bucket_counts(num_buckets, 0.0);
  std::vector<size_t> cell_bucket(n, 0);
  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    for (size_t i = start; i < ends[b]; ++i) {
      bucket_counts[b] += counts[i];
      cell_bucket[i] = b;
    }
    start = ends[b];
  }

  // Stage 2: GREEDY_H over the bucket vector. Workload ranges are mapped
  // onto bucket indices (1D); 2D uses the dyadic-range proxy.
  std::vector<std::pair<size_t, size_t>> ranges;
  if (!two_d) {
    for (const RangeQuery& q : ctx.workload.queries()) {
      ranges.emplace_back(cell_bucket[q.lo[0]], cell_bucket[q.hi[0]]);
    }
  } else {
    for (size_t len = 1; len <= num_buckets; len *= 2) {
      for (size_t s = 0; s + len <= num_buckets && ranges.size() <= 4096;
           s += len) {
        ranges.emplace_back(s, s + len - 1);
      }
    }
  }
  if (ranges.empty()) ranges.emplace_back(0, num_buckets - 1);
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> bucket_est,
      greedy_h_internal::RunOnCounts(bucket_counts, ranges, branching_, eps2,
                                     ctx.rng));

  // Expand buckets uniformly back to cells.
  std::vector<double> est(n, 0.0);
  start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    double width = static_cast<double>(ends[b] - start);
    for (size_t i = start; i < ends[b]; ++i) est[i] = bucket_est[b] / width;
    start = ends[b];
  }

  if (two_d) {
    DataVector est1d(Domain::D1(n), std::move(est));
    return HilbertDelinearize(est1d, domain);
  }
  return DataVector(domain, std::move(est));
}

}  // namespace dpbench
