#include "src/algorithms/identity.h"

#include "src/common/lockstep.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

// All plan-time state IDENTITY needs: the per-cell noise scale.
class IdentityPlan : public MechanismPlan {
 public:
  IdentityPlan(std::string name, Domain domain, double epsilon)
      : MechanismPlan(std::move(name), std::move(domain)),
        epsilon_(epsilon) {}

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    PrepareOut(out);
    // Sensitivity of the full histogram is 1: one record changes one cell.
    return LaplaceMechanismInto(ctx.data.counts(), /*sensitivity=*/1.0,
                                epsilon_, ctx.rng, &out->mutable_counts());
  }

  bool SupportsLockstep() const override { return true; }

  Status ExecuteMany(const ExecContext& ctx, size_t lanes,
                     std::vector<double>* est_lanes) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    DPB_RETURN_NOT_OK(CheckLanes(lanes));
    ExecScratch local_scratch;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local_scratch;
    const size_t n = ctx.data.size();
    s.lane.noise.resize(n * lanes);
    // Lane l draws the exact stream segment of the l-th scalar trial's
    // FillLaplace; the add is commutative, so value + noise matches the
    // scalar noise += value bit-for-bit.
    ctx.rng->FillLaplaceLanes(s.lane.noise.data(), n, 1.0 / epsilon_, lanes);
    est_lanes->resize(n * lanes);
    lockstep::Active().add_shared_noise(ctx.data.counts().data(),
                                        s.lane.noise.data(),
                                        est_lanes->data(), n, lanes);
    return Status::OK();
  }

  Result<PlanPayload> SerializePayload() const override {
    PlanPayload p;
    p.mechanism = mechanism_name();
    p.kind = "identity";
    p.reals["epsilon"] = epsilon_;
    return p;
  }

 private:
  double epsilon_;
};

}  // namespace

Result<PlanPtr> IdentityMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  return PlanPtr(new IdentityPlan(name(), ctx.domain, ctx.epsilon));
}

Result<PlanPtr> IdentityMechanism::HydratePlan(
    const PlanContext& ctx, const PlanPayload& payload) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  DPB_RETURN_NOT_OK(payload.CheckHeader(name(), "identity", ctx.epsilon));
  return PlanPtr(new IdentityPlan(name(), ctx.domain, ctx.epsilon));
}

}  // namespace dpbench
