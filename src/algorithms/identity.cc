#include "src/algorithms/identity.h"

#include "src/mechanisms/laplace.h"

namespace dpbench {

Result<DataVector> IdentityMechanism::Run(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  // Sensitivity of the full histogram is 1: one record changes one cell.
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> noisy,
      LaplaceMechanism(ctx.data.counts(), /*sensitivity=*/1.0, ctx.epsilon,
                       ctx.rng));
  return DataVector(ctx.data.domain(), std::move(noisy));
}

}  // namespace dpbench
