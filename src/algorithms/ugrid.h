// UGRID (Qardaji, Yang, Li ICDE'13): uniform grid for 2D spatial data.
//
// Chooses the grid resolution m = sqrt(N * eps / c) from the dataset scale
// N (public side information per Table 1, or estimated privately with a 5%
// budget slice when unavailable), measures each of the m x m equi-width
// grid cells with the Laplace mechanism, and assumes uniformity within
// grid cells.
#ifndef DPBENCH_ALGORITHMS_UGRID_H_
#define DPBENCH_ALGORITHMS_UGRID_H_

#include "src/algorithms/mechanism.h"

namespace dpbench {

class UGridMechanism : public Mechanism {
 public:
  /// Table 1 parameter c = 10.
  explicit UGridMechanism(double c = 10.0) : c_(c) {}

  std::string name() const override { return "UGRID"; }
  bool SupportsDims(size_t dims) const override { return dims == 2; }
  bool uses_side_info() const override { return true; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;
  Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                              const PlanPayload& payload) const override;

  /// Grid resolution rule m = max(10, sqrt(N*eps/c)) (exposed for tests).
  static size_t GridSize(double scale, double epsilon, double c);

 private:
  double c_;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_UGRID_H_
