#include "src/algorithms/dpcube.h"

#include <algorithm>
#include <cmath>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

// Axis-aligned region with inclusive per-dimension bounds.
struct Region {
  std::vector<size_t> lo, hi;

  size_t NumCells() const {
    size_t n = 1;
    for (size_t j = 0; j < lo.size(); ++j) n *= hi[j] - lo[j] + 1;
    return n;
  }
  size_t WidestDim() const {
    size_t best = 0, best_len = 0;
    for (size_t j = 0; j < lo.size(); ++j) {
      size_t len = hi[j] - lo[j] + 1;
      if (len > best_len) {
        best_len = len;
        best = j;
      }
    }
    return best;
  }
};

// Sum of noisy counts in the region.
double RegionSum(const DataVector& noisy, const Region& r) {
  return noisy.RangeSum(r.lo, r.hi);
}

// L1 deviation of noisy counts from the region mean: the kd-tree splits a
// region while it looks non-uniform relative to the phase-1 noise level.
double RegionHeterogeneity(const DataVector& noisy, const Region& r) {
  double sum = RegionSum(noisy, r);
  double mean = sum / static_cast<double>(r.NumCells());
  // Iterate cells.
  double dev = 0.0;
  std::vector<size_t> idx = r.lo;
  while (true) {
    dev += std::abs(noisy[noisy.domain().Flatten(idx)] - mean);
    size_t j = idx.size();
    bool done = true;
    while (j-- > 0) {
      if (idx[j] < r.hi[j]) {
        ++idx[j];
        done = false;
        break;
      }
      idx[j] = r.lo[j];
    }
    if (done) break;
  }
  return dev;
}

}  // namespace

Result<DataVector> DpCubeMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();

  BudgetAccountant budget(ctx.epsilon);
  double eps1 = rho_ * ctx.epsilon;
  double eps2 = ctx.epsilon - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "phase1-cells"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "phase2-partitions"));

  // Phase 1: noisy counts for every cell.
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> noisy_cells,
      LaplaceMechanism(ctx.data.counts(), 1.0, eps1, ctx.rng));
  DataVector noisy(domain, std::move(noisy_cells));

  // Build the kd-tree on the noisy counts (pure post-processing).
  Region root;
  root.lo.assign(domain.num_dims(), 0);
  root.hi.resize(domain.num_dims());
  for (size_t j = 0; j < domain.num_dims(); ++j) {
    root.hi[j] = domain.size(j) - 1;
  }
  std::vector<Region> leaves;
  std::vector<Region> stack{root};
  double noise_l1 = 1.0 / eps1;  // E|Laplace(1/eps1)|
  while (!stack.empty()) {
    Region r = stack.back();
    stack.pop_back();
    size_t cells = r.NumCells();
    bool splittable = false;
    if (cells > 1) {
      // Split when the observed deviation exceeds what phase-1 noise alone
      // explains; larger regions (above the np floor) split under a weaker
      // threshold. Because the threshold vanishes as eps grows, the tree
      // refines to a zero-bias partition, keeping DPCUBE consistent
      // (paper Theorem 3).
      double het = RegionHeterogeneity(noisy, r);
      double base = noise_l1 * static_cast<double>(cells);
      splittable = het > 2.0 * base || (cells > min_cells_ && het > base);
    }
    if (!splittable) {
      leaves.push_back(r);
      continue;
    }
    // Split along the widest dimension at the weighted median of noisy mass.
    size_t dim = r.WidestDim();
    size_t lo = r.lo[dim], hi = r.hi[dim];
    double total = std::max(RegionSum(noisy, r), 0.0);
    double half = total / 2.0, acc = 0.0;
    size_t cut = lo;  // last index of the left part
    for (size_t i = lo; i < hi; ++i) {
      Region slice = r;
      slice.lo[dim] = i;
      slice.hi[dim] = i;
      acc += std::max(RegionSum(noisy, slice), 0.0);
      cut = i;
      if (acc >= half) break;
    }
    Region left = r, right = r;
    left.hi[dim] = cut;
    right.lo[dim] = cut + 1;
    stack.push_back(left);
    stack.push_back(right);
  }

  // Phase 2: fresh count per leaf; the leaf total combines the phase-2
  // measurement with the summed phase-1 cells by inverse variance
  // ("inference to average the two sets of counts", paper App. B) and is
  // spread uniformly across the leaf.
  DataVector out(domain);
  double var2 = LaplaceVariance(1.0, eps2);
  double var1 = LaplaceVariance(1.0, eps1);
  for (const Region& leaf : leaves) {
    double cells = static_cast<double>(leaf.NumCells());
    double phase1_sum = RegionSum(noisy, leaf);
    double truth = ctx.data.RangeSum(leaf.lo, leaf.hi);
    DPB_ASSIGN_OR_RETURN(double phase2_sum,
                         LaplaceMechanismScalar(truth, 1.0, eps2, ctx.rng));
    double w1 = 1.0 / (cells * var1), w2 = 1.0 / var2;
    double leaf_total = (phase1_sum * w1 + phase2_sum * w2) / (w1 + w2);
    double per_cell = leaf_total / cells;
    std::vector<size_t> idx = leaf.lo;
    while (true) {
      out[domain.Flatten(idx)] = per_cell;
      size_t j = idx.size();
      bool done = true;
      while (j-- > 0) {
        if (idx[j] < leaf.hi[j]) {
          ++idx[j];
          done = false;
          break;
        }
        idx[j] = leaf.lo[j];
      }
      if (done) break;
    }
  }
  return out;
}

}  // namespace dpbench
