#include "src/algorithms/dpcube.h"

#include <algorithm>
#include <cmath>

#include "src/mechanisms/budget.h"
#include "src/mechanisms/laplace.h"

namespace dpbench {

namespace {

// Axis-aligned region with inclusive per-dimension bounds.
struct Region {
  std::vector<size_t> lo, hi;

  size_t NumCells() const {
    size_t n = 1;
    for (size_t j = 0; j < lo.size(); ++j) n *= hi[j] - lo[j] + 1;
    return n;
  }
  size_t WidestDim() const {
    size_t best = 0, best_len = 0;
    for (size_t j = 0; j < lo.size(); ++j) {
      size_t len = hi[j] - lo[j] + 1;
      if (len > best_len) {
        best_len = len;
        best = j;
      }
    }
    return best;
  }
};

// Sum of noisy counts in the region.
double RegionSum(const DataVector& noisy, const Region& r) {
  return noisy.RangeSum(r.lo, r.hi);
}

// L1 deviation of noisy counts from the region mean: the kd-tree splits a
// region while it looks non-uniform relative to the phase-1 noise level.
double RegionHeterogeneity(const DataVector& noisy, const Region& r) {
  double sum = RegionSum(noisy, r);
  double mean = sum / static_cast<double>(r.NumCells());
  // Iterate cells.
  double dev = 0.0;
  std::vector<size_t> idx = r.lo;
  while (true) {
    dev += std::abs(noisy[noisy.domain().Flatten(idx)] - mean);
    size_t j = idx.size();
    bool done = true;
    while (j-- > 0) {
      if (idx[j] < r.hi[j]) {
        ++idx[j];
        done = false;
        break;
      }
      idx[j] = r.lo[j];
    }
    if (done) break;
  }
  return dev;
}

// Structured DPCUBE plan for the benchmark's 1D/2D domains. Regions are
// tracked as flat (row, column) bound quadruples (1D uses a single
// column), the kd stack and leaf list live in scratch, and both phases
// block-fill their draws. All region sums iterate cells directly in
// row-major order — the same arithmetic as DataVector::RangeSum on the
// legacy path — so results are bit-identical to RunImpl.
class DpCubePlan : public MechanismPlan {
 public:
  DpCubePlan(std::string name, const PlanContext& ctx, double rho,
             size_t min_cells)
      : MechanismPlan(std::move(name), ctx.domain),
        min_cells_(min_cells),
        rows_(ctx.domain.size(0)),
        cols_(ctx.domain.num_dims() == 2 ? ctx.domain.size(1) : 1) {
    eps1_ = rho * ctx.epsilon;
    eps2_ = ctx.epsilon - eps1_;
    noise_l1_ = 1.0 / eps1_;  // E|Laplace(1/eps1)|
  }

  Result<DataVector> Execute(const ExecContext& ctx) const override {
    DataVector out;
    DPB_RETURN_NOT_OK(ExecuteInto(ctx, &out));
    return out;
  }

  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override {
    DPB_RETURN_NOT_OK(CheckExec(ctx));
    if (eps1_ <= 0.0 || eps2_ <= 0.0) {
      return Status::InvalidArgument(
          "LaplaceMechanism: epsilon must be > 0");
    }
    ExecScratch local;
    ExecScratch& s = ctx.scratch != nullptr ? *ctx.scratch : local;
    const std::vector<double>& counts = ctx.data.counts();
    const size_t n = counts.size();
    // Worst-case reserves: the kd-tree shape varies with the phase-1
    // noise (at most one leaf per cell).
    s.tree.Reserve(n, n);
    s.noise.reserve(n);

    // Phase 1: noisy counts for every cell.
    std::vector<double>& noisy = s.noisy;
    noisy.resize(n);
    ctx.rng->FillLaplace(noisy.data(), n, 1.0 / eps1_);
    for (size_t i = 0; i < n; ++i) noisy[i] += counts[i];

    // Row-major direct summation, the same cell order (hence the same
    // floating-point result) as DataVector::RangeSum.
    auto region_sum = [&](const std::vector<double>& cells, size_t r0,
                          size_t r1, size_t c0, size_t c1) {
      double sum = 0.0;
      for (size_t r = r0; r <= r1; ++r) {
        for (size_t c = c0; c <= c1; ++c) sum += cells[r * cols_ + c];
      }
      return sum;
    };

    // Build the kd-tree on the noisy counts (pure post-processing). The
    // stack packs one region per four entries (r0, r1, c0, c1); leaves
    // accumulate in the scratch tree's bound arrays in pop order,
    // mirroring the legacy LIFO traversal.
    std::vector<size_t>& stack = s.tree.stack;
    stack.assign({0, rows_ - 1, 0, cols_ - 1});
    std::vector<size_t>& leaf_r0 = s.tree.lo;
    std::vector<size_t>& leaf_r1 = s.tree.hi;
    std::vector<size_t>& leaf_c0 = s.tree.lo2;
    std::vector<size_t>& leaf_c1 = s.tree.hi2;
    leaf_r0.clear();
    leaf_r1.clear();
    leaf_c0.clear();
    leaf_c1.clear();
    while (!stack.empty()) {
      size_t c1 = stack.back();
      stack.pop_back();
      size_t c0 = stack.back();
      stack.pop_back();
      size_t r1 = stack.back();
      stack.pop_back();
      size_t r0 = stack.back();
      stack.pop_back();
      size_t cells = (r1 - r0 + 1) * (c1 - c0 + 1);
      bool splittable = false;
      if (cells > 1) {
        // Split when the observed deviation exceeds what phase-1 noise
        // alone explains; larger regions (above the np floor) split under
        // a weaker threshold (see RunImpl).
        double sum = region_sum(noisy, r0, r1, c0, c1);
        double mean = sum / static_cast<double>(cells);
        double het = 0.0;
        for (size_t r = r0; r <= r1; ++r) {
          for (size_t c = c0; c <= c1; ++c) {
            het += std::abs(noisy[r * cols_ + c] - mean);
          }
        }
        double base = noise_l1_ * static_cast<double>(cells);
        splittable =
            het > 2.0 * base || (cells > min_cells_ && het > base);
      }
      if (!splittable) {
        leaf_r0.push_back(r0);
        leaf_r1.push_back(r1);
        leaf_c0.push_back(c0);
        leaf_c1.push_back(c1);
        continue;
      }
      // Split along the widest dimension at the weighted median of noisy
      // mass.
      size_t len_r = r1 - r0 + 1, len_c = c1 - c0 + 1;
      bool split_rows = len_c <= len_r;  // dim 0 wins ties (WidestDim)
      size_t lo = split_rows ? r0 : c0;
      size_t hi = split_rows ? r1 : c1;
      double total =
          std::max(region_sum(noisy, r0, r1, c0, c1), 0.0);
      double half = total / 2.0, acc = 0.0;
      size_t cut = lo;  // last index of the left part
      for (size_t i = lo; i < hi; ++i) {
        double slice = split_rows ? region_sum(noisy, i, i, c0, c1)
                                  : region_sum(noisy, r0, r1, i, i);
        acc += std::max(slice, 0.0);
        cut = i;
        if (acc >= half) break;
      }
      // Push left then right: the right half pops (and measures) first,
      // exactly like the legacy stack.
      if (split_rows) {
        stack.insert(stack.end(), {r0, cut, c0, c1});
        stack.insert(stack.end(), {cut + 1, r1, c0, c1});
      } else {
        stack.insert(stack.end(), {r0, r1, c0, cut});
        stack.insert(stack.end(), {r0, r1, cut + 1, c1});
      }
    }

    // Phase 2: fresh count per leaf; inverse-variance combination of the
    // two observations, spread uniformly across the leaf.
    const size_t num_leaves = leaf_r0.size();
    double var2 = LaplaceVariance(1.0, eps2_);
    double var1 = LaplaceVariance(1.0, eps1_);
    s.noise.resize(num_leaves);
    ctx.rng->FillLaplace(s.noise.data(), num_leaves, 1.0 / eps2_);
    PrepareOut(out);
    std::vector<double>& est = out->mutable_counts();
    for (size_t v = 0; v < num_leaves; ++v) {
      size_t r0 = leaf_r0[v], r1 = leaf_r1[v];
      size_t c0 = leaf_c0[v], c1 = leaf_c1[v];
      double cells = static_cast<double>((r1 - r0 + 1) * (c1 - c0 + 1));
      double phase1_sum = region_sum(noisy, r0, r1, c0, c1);
      double truth = region_sum(counts, r0, r1, c0, c1);
      double phase2_sum = s.noise[v] + truth;
      double w1 = 1.0 / (cells * var1), w2 = 1.0 / var2;
      double leaf_total = (phase1_sum * w1 + phase2_sum * w2) / (w1 + w2);
      double per_cell = leaf_total / cells;
      for (size_t r = r0; r <= r1; ++r) {
        for (size_t c = c0; c <= c1; ++c) est[r * cols_ + c] = per_cell;
      }
    }
    return Status::OK();
  }

 private:
  size_t min_cells_;
  size_t rows_, cols_;
  double eps1_, eps2_, noise_l1_;
};

}  // namespace

Result<PlanPtr> DpCubeMechanism::Plan(const PlanContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckPlanContext(ctx));
  if (ctx.domain.num_dims() > 2) return ReferencePlan(ctx);
  return PlanPtr(new DpCubePlan(name(), ctx, rho_, min_cells_));
}

Result<DataVector> DpCubeMechanism::RunImpl(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();

  BudgetAccountant budget(ctx.epsilon);
  double eps1 = rho_ * ctx.epsilon;
  double eps2 = ctx.epsilon - eps1;
  DPB_RETURN_NOT_OK(budget.Spend(eps1, "phase1-cells"));
  DPB_RETURN_NOT_OK(budget.Spend(eps2, "phase2-partitions"));

  // Phase 1: noisy counts for every cell.
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> noisy_cells,
      LaplaceMechanism(ctx.data.counts(), 1.0, eps1, ctx.rng));
  DataVector noisy(domain, std::move(noisy_cells));

  // Build the kd-tree on the noisy counts (pure post-processing).
  Region root;
  root.lo.assign(domain.num_dims(), 0);
  root.hi.resize(domain.num_dims());
  for (size_t j = 0; j < domain.num_dims(); ++j) {
    root.hi[j] = domain.size(j) - 1;
  }
  std::vector<Region> leaves;
  std::vector<Region> stack{root};
  double noise_l1 = 1.0 / eps1;  // E|Laplace(1/eps1)|
  while (!stack.empty()) {
    Region r = stack.back();
    stack.pop_back();
    size_t cells = r.NumCells();
    bool splittable = false;
    if (cells > 1) {
      // Split when the observed deviation exceeds what phase-1 noise alone
      // explains; larger regions (above the np floor) split under a weaker
      // threshold. Because the threshold vanishes as eps grows, the tree
      // refines to a zero-bias partition, keeping DPCUBE consistent
      // (paper Theorem 3).
      double het = RegionHeterogeneity(noisy, r);
      double base = noise_l1 * static_cast<double>(cells);
      splittable = het > 2.0 * base || (cells > min_cells_ && het > base);
    }
    if (!splittable) {
      leaves.push_back(r);
      continue;
    }
    // Split along the widest dimension at the weighted median of noisy mass.
    size_t dim = r.WidestDim();
    size_t lo = r.lo[dim], hi = r.hi[dim];
    double total = std::max(RegionSum(noisy, r), 0.0);
    double half = total / 2.0, acc = 0.0;
    size_t cut = lo;  // last index of the left part
    for (size_t i = lo; i < hi; ++i) {
      Region slice = r;
      slice.lo[dim] = i;
      slice.hi[dim] = i;
      acc += std::max(RegionSum(noisy, slice), 0.0);
      cut = i;
      if (acc >= half) break;
    }
    Region left = r, right = r;
    left.hi[dim] = cut;
    right.lo[dim] = cut + 1;
    stack.push_back(left);
    stack.push_back(right);
  }

  // Phase 2: fresh count per leaf; the leaf total combines the phase-2
  // measurement with the summed phase-1 cells by inverse variance
  // ("inference to average the two sets of counts", paper App. B) and is
  // spread uniformly across the leaf.
  DataVector out(domain);
  double var2 = LaplaceVariance(1.0, eps2);
  double var1 = LaplaceVariance(1.0, eps1);
  for (const Region& leaf : leaves) {
    double cells = static_cast<double>(leaf.NumCells());
    double phase1_sum = RegionSum(noisy, leaf);
    double truth = ctx.data.RangeSum(leaf.lo, leaf.hi);
    DPB_ASSIGN_OR_RETURN(double phase2_sum,
                         LaplaceMechanismScalar(truth, 1.0, eps2, ctx.rng));
    double w1 = 1.0 / (cells * var1), w2 = 1.0 / var2;
    double leaf_total = (phase1_sum * w1 + phase2_sum * w2) / (w1 + w2);
    double per_cell = leaf_total / cells;
    std::vector<size_t> idx = leaf.lo;
    while (true) {
      out[domain.Flatten(idx)] = per_cell;
      size_t j = idx.size();
      bool done = true;
      while (j-- > 0) {
        if (idx[j] < leaf.hi[j]) {
          ++idx[j];
          done = false;
          break;
        }
        idx[j] = leaf.lo[j];
      }
      if (done) break;
    }
  }
  return out;
}

}  // namespace dpbench
