// The matrix mechanism (Li et al. PODS'10 / VLDBJ'15): the generic
// framework of which every data-independent algorithm in the benchmark is
// an instance (paper §3.1).
//
//   1. pick a strategy matrix S (rows = linear queries over cells),
//   2. answer S x with the Laplace mechanism at sensitivity ||S||_1
//      (max column L1 norm),
//   3. reconstruct x-hat by least squares.
//
// This dense implementation is exact but O(n^3); it exists to (a) run small
// domains, (b) verify the structured implementations (H, HB, PRIVELET are
// checked against it in tests), and (c) compute exact expected-error
// profiles for strategies.
#ifndef DPBENCH_ALGORITHMS_MATRIX_MECHANISM_H_
#define DPBENCH_ALGORITHMS_MATRIX_MECHANISM_H_

#include "src/algorithms/mechanism.h"
#include "src/linalg/matrix.h"

namespace dpbench {

/// Canonical strategy constructions.
namespace strategies {

/// The identity strategy (yields IDENTITY).
Matrix IdentityStrategy(size_t n);

/// Full b-ary hierarchy over n cells: one row per tree node (yields H/HB
/// without the uniform-budget split — the matrix view folds the levels'
/// budget split into the sensitivity).
Matrix HierarchicalStrategy(size_t n, size_t branching);

/// Unnormalized Haar wavelet rows (yields PRIVELET); n must be a power of
/// two.
Matrix WaveletStrategy(size_t n);

}  // namespace strategies

/// A data-independent mechanism defined by an explicit strategy matrix.
class MatrixMechanism : public Mechanism {
 public:
  MatrixMechanism(std::string name, Matrix strategy)
      : name_(std::move(name)), strategy_(std::move(strategy)) {}

  std::string name() const override { return name_; }
  bool SupportsDims(size_t dims) const override { return dims == 1; }
  bool data_independent() const override { return true; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;
  /// Rebuilds a plan from serialized factors (sensitivity, materialized
  /// S^T, cached Cholesky of S^T S) without re-running the O(n^3)
  /// factorization. The strategy matrix itself stays mechanism-owned.
  Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                              const PlanPayload& payload) const override;

  /// Exact expected squared error of answering workload W through this
  /// strategy at the given epsilon:
  ///   E||W x-hat - W x||^2 = 2 (||S||_1/eps)^2 * ||W S^+||_F^2.
  Result<double> ExpectedSquaredError(const Workload& w,
                                      double epsilon) const;

  const Matrix& strategy() const { return strategy_; }

 private:
  std::string name_;
  Matrix strategy_;
};

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_MATRIX_MECHANISM_H_
