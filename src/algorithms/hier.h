// H (Hay et al. PVLDB'10): hierarchical counts with branching factor b=2,
// uniform budget per level, and consistency via GLS tree inference.
#ifndef DPBENCH_ALGORITHMS_HIER_H_
#define DPBENCH_ALGORITHMS_HIER_H_

#include <memory>

#include "src/algorithms/mechanism.h"
#include "src/algorithms/tree_inference.h"

namespace dpbench {

class HierMechanism : public Mechanism {
 public:
  explicit HierMechanism(size_t branching = 2) : branching_(branching) {}

  std::string name() const override { return "H"; }
  bool SupportsDims(size_t dims) const override { return dims == 1; }
  bool data_independent() const override { return true; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;

  size_t branching() const { return branching_; }

 private:
  size_t branching_;
};

namespace hier_internal {

/// Measures every node of `tree` against the 1D counts with per-level
/// epsilon budgets `eps_per_level` (0 = skip level), then infers per-cell
/// estimates with GLS. Shared by H, HB, GREEDY_H, DAWA and SF.
Result<std::vector<double>> MeasureAndInfer(
    const RangeTree& tree, const std::vector<double>& counts,
    const std::vector<double>& eps_per_level, Rng* rng);

/// The shared plan of the 1D hierarchy family (H, HB-1D, GREEDY_H-1D):
/// a prebuilt RangeTree, a per-level budget allocation, and the
/// precomputed GLS inference coefficients for that budget's variance
/// profile. Execution measures the planned nodes (same noise-draw order
/// as MeasureAndInfer) and runs the planned two-pass inference.
class RangeTreePlan : public MechanismPlan {
 public:
  RangeTreePlan(std::string name, Domain domain,
                std::shared_ptr<const RangeTree> tree,
                std::vector<double> eps_per_level);

  Result<DataVector> Execute(const ExecContext& ctx) const override;
  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override;

  const RangeTree& tree() const { return *tree_; }
  const std::vector<double>& eps_per_level() const { return eps_per_level_; }

 private:
  std::shared_ptr<const RangeTree> tree_;
  std::vector<double> eps_per_level_;
  PlannedTreeGls gls_;
  std::vector<size_t> leaves_;  // node ids of leaves, in tree order
  // Flattened measurement schedule (level order, the rng draw order):
  // node id, prefix-table endpoints, and the per-draw noise scale — so the
  // hot measure loop is sequential array walks with no per-node division.
  std::vector<size_t> meas_node_;
  std::vector<size_t> meas_lo_;
  std::vector<size_t> meas_hi1_;  // hi + 1
  std::vector<double> meas_scale_;
};

}  // namespace hier_internal

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_HIER_H_
