// H (Hay et al. PVLDB'10): hierarchical counts with branching factor b=2,
// uniform budget per level, and consistency via GLS tree inference.
#ifndef DPBENCH_ALGORITHMS_HIER_H_
#define DPBENCH_ALGORITHMS_HIER_H_

#include "src/algorithms/mechanism.h"
#include "src/algorithms/tree_inference.h"

namespace dpbench {

class HierMechanism : public Mechanism {
 public:
  explicit HierMechanism(size_t branching = 2) : branching_(branching) {}

  std::string name() const override { return "H"; }
  bool SupportsDims(size_t dims) const override { return dims == 1; }
  bool data_independent() const override { return true; }
  Result<DataVector> Run(const RunContext& ctx) const override;

  size_t branching() const { return branching_; }

 private:
  size_t branching_;
};

namespace hier_internal {

/// Measures every node of `tree` against the 1D counts with per-level
/// epsilon budgets `eps_per_level` (0 = skip level), then infers per-cell
/// estimates with GLS. Shared by H, HB, GREEDY_H, DAWA and SF.
Result<std::vector<double>> MeasureAndInfer(
    const RangeTree& tree, const std::vector<double>& counts,
    const std::vector<double>& eps_per_level, Rng* rng);

}  // namespace hier_internal

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_HIER_H_
