// H (Hay et al. PVLDB'10): hierarchical counts with branching factor b=2,
// uniform budget per level, and consistency via GLS tree inference.
#ifndef DPBENCH_ALGORITHMS_HIER_H_
#define DPBENCH_ALGORITHMS_HIER_H_

#include <memory>

#include "src/algorithms/mechanism.h"
#include "src/algorithms/tree_inference.h"

namespace dpbench {

class HierMechanism : public Mechanism {
 public:
  explicit HierMechanism(size_t branching = 2) : branching_(branching) {}

  std::string name() const override { return "H"; }
  bool SupportsDims(size_t dims) const override { return dims == 1; }
  bool data_independent() const override { return true; }
  Result<PlanPtr> Plan(const PlanContext& ctx) const override;
  Result<PlanPtr> HydratePlan(const PlanContext& ctx,
                              const PlanPayload& payload) const override;

  size_t branching() const { return branching_; }

 private:
  size_t branching_;
};

namespace hier_internal {

/// Measures every node of `tree` against the 1D counts with per-level
/// epsilon budgets `eps_per_level` (0 = skip level), then infers per-cell
/// estimates with GLS. Shared by H, HB, GREEDY_H, DAWA and SF.
Result<std::vector<double>> MeasureAndInfer(
    const RangeTree& tree, const std::vector<double>& counts,
    const std::vector<double>& eps_per_level, Rng* rng);

/// The shared plan of the 1D hierarchy family (H, HB-1D, GREEDY_H-1D):
/// a prebuilt RangeTree, a per-level budget allocation, and the
/// precomputed GLS inference coefficients for that budget's variance
/// profile. Execution measures the planned nodes (same noise-draw order
/// as MeasureAndInfer) and runs the planned two-pass inference.
class RangeTreePlan : public MechanismPlan {
 public:
  /// `epsilon` is the total budget the plan was built for; it is recorded
  /// (alongside the derived per-level split) so serialized payloads can be
  /// validated bit-exactly against the hydrating context.
  RangeTreePlan(std::string name, Domain domain,
                std::shared_ptr<const RangeTree> tree,
                std::vector<double> eps_per_level, double epsilon);

  /// Hydrating form (plan-cache load path): trusts previously serialized
  /// GLS coefficients instead of rebuilding them from the variance
  /// profile. Execution is bit-identical to the planning form.
  RangeTreePlan(std::string name, Domain domain,
                std::shared_ptr<const RangeTree> tree,
                std::vector<double> eps_per_level, double epsilon,
                PlannedTreeGls gls);

  Result<DataVector> Execute(const ExecContext& ctx) const override;
  Status ExecuteInto(const ExecContext& ctx, DataVector* out) const override;

  /// The measurement schedule is fixed at plan time and the GLS passes
  /// are branch-free in the measurements, so trials cannot diverge:
  /// lockstep-safe.
  bool SupportsLockstep() const override { return true; }
  Status ExecuteMany(const ExecContext& ctx, size_t lanes,
                     std::vector<double>* est_lanes) const override;

  Result<PlanPayload> SerializePayload() const override;

  /// Fills the shared range-tree payload fields (tree identity, budget
  /// split, GLS coefficients). Used by SerializePayload and by plans that
  /// embed a linearized 1D pipeline (GREEDY_H's 2D Hilbert wrapper).
  void FillPayload(PlanPayload* out) const;

  const RangeTree& tree() const { return *tree_; }
  const std::vector<double>& eps_per_level() const { return eps_per_level_; }

 private:
  /// Flattens leaves + the level-order measurement schedule (shared by
  /// both constructors; depends only on tree_ and eps_per_level_).
  void InitSchedule();

  std::shared_ptr<const RangeTree> tree_;
  std::vector<double> eps_per_level_;
  double planned_epsilon_;
  PlannedTreeGls gls_;
  std::vector<size_t> leaves_;  // node ids of leaves, in tree order
  // Flattened measurement schedule (level order, the rng draw order):
  // node id, prefix-table endpoints, and the per-draw noise scale — so the
  // hot measure loop is sequential array walks with no per-node division.
  std::vector<size_t> meas_node_;
  std::vector<size_t> meas_lo_;
  std::vector<size_t> meas_hi1_;  // hi + 1
  std::vector<double> meas_scale_;
};

/// The deserialized pieces of a range-tree payload, ready to construct a
/// hydrated RangeTreePlan (or the linearized half of the 2D wrapper).
struct RangeTreeParts {
  std::shared_ptr<const RangeTree> tree;
  std::vector<double> eps_per_level;
  PlannedTreeGls gls;
};

/// Decodes and validates the shared range-tree fields of a payload:
/// rebuilds the (deterministic) tree topology from its identity and
/// restores the serialized GLS coefficients. `expected_cells` is the cell
/// count of the domain being planned for.
Result<RangeTreeParts> RangeTreePartsFromPayload(const PlanPayload& payload,
                                                 size_t expected_cells);

/// The GLS-coefficient fields shared by every tree plan payload
/// (gls_order/child_start/children/a/b/r/root). One writer/reader pair so
/// the field set cannot drift between the 1D and 2D plan families.
void GlsToPayload(const PlannedTreeGls& gls, PlanPayload* out);
Result<PlannedTreeGls> GlsFromPayload(const PlanPayload& payload);

/// The full 1D hydrate path shared by the range-tree plan family (H,
/// HB-1D, GREEDY_H-1D): payload header check against `mechanism_name` and
/// the context epsilon, parts decode, hydrating construction. One
/// implementation so the three mechanisms cannot drift.
Result<PlanPtr> HydrateRangeTreePlan(const std::string& mechanism_name,
                                     const PlanContext& ctx,
                                     const PlanPayload& payload);

// --- Flat (allocation-free) forms of the dynamic 1D hierarchy pipeline.
//
// DAWA's stage 2 and SF's within-bucket histograms build a fresh RangeTree
// per trial because its size depends on the data (and on stage-1 noise).
// These forms run the identical pipeline — same topology, same budget
// arithmetic, same noise-draw order, same GLS — in a caller-owned
// FlatTreeScratch, so the trial loop performs no heap allocations in the
// steady state (buffer capacity only grows). Results are bit-identical to
// the RangeTree-based path.

/// Mirror of RangeTree::Build(n, branching) into s's flat arrays
/// (lo/hi/first_child/child_count/level, num_nodes, num_levels). Children
/// of every node are consecutive indices, in BFS order, exactly as
/// RangeTree::Build numbers them.
void FlatRangeTreeBuild(size_t n, size_t branching, FlatTreeScratch* s);

/// Mirror of greedy_h_internal::LevelUsage: per-level count of
/// canonical-decomposition nodes of each [range_lo[i], range_hi[i]] on the
/// flat tree (DFS instead of BFS — the per-level tallies are identical).
void FlatLevelUsage(const FlatTreeScratch& s, const size_t* range_lo,
                    const size_t* range_hi, size_t num_ranges,
                    std::vector<double>* usage, std::vector<size_t>* stack);

/// Mirror of greedy_h_internal::AllocateBudget into *eps (reusing
/// capacity): identical weights, total, and division order, hence
/// bit-identical budgets.
void FlatAllocateBudget(const std::vector<double>& usage, double epsilon,
                        std::vector<double>* eps);

/// Mirror of MeasureAndInfer on the flat tree: measures every node of a
/// level with positive budget (level order == flat index order, the same
/// noise-draw order) through one per-scale Laplace block fill, infers
/// node values with FlatTreeGlsInfer, and expands leaves into
/// cells_out[0..n). The eps_per_level arity must match s->num_levels.
Status FlatMeasureAndInfer(const double* counts, size_t n,
                           const std::vector<double>& eps_per_level,
                           Rng* rng, FlatTreeScratch* s, double* cells_out);

}  // namespace hier_internal

}  // namespace dpbench

#endif  // DPBENCH_ALGORITHMS_HIER_H_
