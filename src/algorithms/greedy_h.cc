#include "src/algorithms/greedy_h.h"

#include <cmath>

#include "src/algorithms/hier.h"
#include "src/histogram/hilbert.h"

namespace dpbench {

namespace greedy_h_internal {

std::vector<double> AllocateBudget(const std::vector<double>& usage,
                                   double epsilon) {
  std::vector<double> weights(usage.size(), 0.0);
  double total_w = 0.0;
  for (size_t l = 0; l < usage.size(); ++l) {
    if (usage[l] > 0.0) {
      weights[l] = std::cbrt(usage[l]);
      total_w += weights[l];
    }
  }
  if (total_w <= 0.0) {
    // Degenerate workload: measure leaves only.
    weights.back() = 1.0;
    total_w = 1.0;
  }
  std::vector<double> eps(usage.size(), 0.0);
  for (size_t l = 0; l < usage.size(); ++l) {
    eps[l] = epsilon * weights[l] / total_w;
  }
  return eps;
}

std::vector<double> LevelUsage(
    const RangeTree& tree,
    const std::vector<std::pair<size_t, size_t>>& ranges) {
  std::vector<double> usage(tree.num_levels(), 0.0);
  for (const auto& [lo, hi] : ranges) {
    for (size_t v : tree.Decompose(lo, hi)) {
      usage[tree.node(v).level] += 1.0;
    }
  }
  return usage;
}

Result<std::vector<double>> RunOnCounts(
    const std::vector<double>& counts,
    const std::vector<std::pair<size_t, size_t>>& ranges, size_t branching,
    double epsilon, Rng* rng) {
  RangeTree tree = RangeTree::Build(counts.size(), branching);
  std::vector<double> usage = LevelUsage(tree, ranges);
  // Guarantee the leaf level is measured so every cell has an estimate
  // even if the workload never touches single cells.
  if (usage.back() <= 0.0) usage.back() = 1.0;
  std::vector<double> eps = AllocateBudget(usage, epsilon);
  return hier_internal::MeasureAndInfer(tree, counts, eps, rng);
}

}  // namespace greedy_h_internal

Result<DataVector> GreedyHMechanism::Run(const RunContext& ctx) const {
  DPB_RETURN_NOT_OK(CheckContext(ctx));
  const Domain& domain = ctx.data.domain();

  if (domain.num_dims() == 1) {
    std::vector<std::pair<size_t, size_t>> ranges;
    ranges.reserve(ctx.workload.size());
    for (const RangeQuery& q : ctx.workload.queries()) {
      ranges.emplace_back(q.lo[0], q.hi[0]);
    }
    DPB_ASSIGN_OR_RETURN(
        std::vector<double> cells,
        greedy_h_internal::RunOnCounts(ctx.data.counts(), ranges, branching_,
                                       ctx.epsilon, ctx.rng));
    return DataVector(domain, std::move(cells));
  }

  // 2D: Hilbert-linearize; 2D rectangles do not map to 1D intervals, so we
  // charge usage uniformly by decomposing the full-domain range per level
  // (equivalent to H-with-allocation on the linearized domain).
  DPB_ASSIGN_OR_RETURN(DataVector linear, HilbertLinearize(ctx.data));
  std::vector<std::pair<size_t, size_t>> ranges;
  size_t n = linear.size();
  // Use a spread of dyadic ranges as a usage proxy for spatial queries.
  for (size_t len = 1; len <= n; len *= 2) {
    for (size_t start = 0; start + len <= n; start += len) {
      ranges.emplace_back(start, start + len - 1);
      if (ranges.size() > 4096) break;
    }
    if (ranges.size() > 4096) break;
  }
  DPB_ASSIGN_OR_RETURN(
      std::vector<double> cells,
      greedy_h_internal::RunOnCounts(linear.counts(), ranges, branching_,
                                     ctx.epsilon, ctx.rng));
  DataVector est1d(Domain::D1(n), std::move(cells));
  return HilbertDelinearize(est1d, domain);
}

}  // namespace dpbench
